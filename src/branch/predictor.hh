/**
 * @file
 * Branch prediction hardware: a two-level adaptive predictor (Table 1:
 * "2-lev, 2K-entry"), a branch target buffer for calls/jumps, and the
 * paper's *modified* return address stack.
 *
 * The RAS modification is the enabling hook for CGP's return-time
 * prefetch access (paper §3.2): alongside each return address, the
 * stack records the *starting address of the calling function*, so
 * that on a return the CGHC can be probed with the returnee's start
 * address one cycle after prediction.
 */

#ifndef CGP_BRANCH_PREDICTOR_HH
#define CGP_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace cgp
{

class Json;

struct BranchPredictorConfig
{
    /** log2 of pattern history table entries (2K entries = 11). */
    unsigned phtBits = 11;

    /** Branch target buffer geometry. */
    unsigned btbEntries = 512;
    unsigned btbAssoc = 4;

    /** Return address stack depth. */
    unsigned rasEntries = 32;
};

/**
 * GAg two-level predictor: a global history register indexes a table
 * of 2-bit saturating counters.
 */
class TwoLevelPredictor
{
  public:
    explicit TwoLevelPredictor(unsigned pht_bits);

    bool predict(Addr pc) const;
    void update(Addr pc, bool taken);

    /// @{ Warm-state checkpointing (history register + PHT).
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    std::size_t index(Addr pc) const;

    unsigned bits_;
    std::uint64_t history_ = 0;
    std::vector<std::uint8_t> pht_;
};

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    /** @return true and fill @p target on a hit. */
    bool lookup(Addr pc, Addr &target) const;

    void update(Addr pc, Addr target);

    /// @{ Warm-state checkpointing (entry array + LRU tick).
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    struct Entry
    {
        Addr pc = invalidAddr;
        Addr target = invalidAddr;
        std::uint64_t lru = 0;
    };

    std::size_t setOf(Addr pc) const;

    unsigned sets_;
    unsigned assoc_;
    std::vector<Entry> entries_;
    std::uint64_t tick_ = 0;
};

/**
 * Return address stack extended with the caller function's start
 * address (the paper's modification).  Fixed depth, circular
 * overwrite on overflow — deep recursion wrecks predictions exactly
 * as in real hardware.
 */
class ReturnAddressStack
{
  public:
    struct Entry
    {
        Addr returnAddr = invalidAddr;
        Addr callerFuncStart = invalidAddr;
    };

    explicit ReturnAddressStack(unsigned depth);

    void push(Addr return_addr, Addr caller_func_start);

    /** Pop the predicted entry; empty stack yields invalid fields. */
    Entry pop();

    bool empty() const { return size_ == 0; }
    unsigned size() const { return size_; }

    /// @{ Warm-state checkpointing (circular buffer + top + size).
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    std::vector<Entry> stack_;
    unsigned top_ = 0;  ///< index one past the newest entry
    unsigned size_ = 0; ///< live entries (<= depth)
};

/**
 * Facade bundling the three predictor structures, with the counters
 * the CPU model and the benchmark harness report.
 */
class BranchUnit
{
  public:
    explicit BranchUnit(const BranchPredictorConfig &config);

    /** Outcome of predicting one fetched control instruction. */
    struct Prediction
    {
        bool taken = false;       ///< predicted direction
        Addr target = invalidAddr; ///< predicted target (if any)
        bool targetKnown = false;  ///< BTB/RAS supplied a target
        /** For returns: predicted returnee function start. */
        Addr callerFuncStart = invalidAddr;
    };

    /** Conditional branch: predict and update. */
    Prediction predictConditional(Addr pc, bool actual_taken,
                                  Addr actual_target);

    /** Unconditional jump: BTB only. */
    Prediction predictJump(Addr pc, Addr actual_target);

    /**
     * Call: BTB for the target; pushes (return addr, caller start)
     * onto the modified RAS.
     */
    Prediction predictCall(Addr pc, Addr actual_target,
                           Addr caller_func_start);

    /** Return: pop the modified RAS. */
    Prediction predictReturn(Addr pc, Addr actual_target);

    const StatGroup &stats() const { return stats_; }
    std::uint64_t mispredicts() const { return mispredicts_.value(); }
    std::uint64_t lookups() const { return lookups_.value(); }

    /**
     * Functional-warming mode: predict*() keeps updating the PHT,
     * BTB and RAS (state trains) but every counter stays frozen —
     * warmed instructions are outside the measured windows.
     */
    void setWarming(bool warming) { warming_ = warming; }

    /// @{ Warm-state checkpointing of the three structures (counters
    /// are not serialized: checkpoints are cut from a pure warmup,
    /// during which every counter is frozen at zero).
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    TwoLevelPredictor direction_;
    Btb btb_;
    ReturnAddressStack ras_;
    bool warming_ = false;

    Counter lookups_;
    Counter mispredicts_;
    Counter condLookups_;
    Counter condMispredicts_;
    Counter btbMisses_;
    Counter rasMispredicts_;
    StatGroup stats_;
};

} // namespace cgp

#endif // CGP_BRANCH_PREDICTOR_HH
