#include "branch/predictor.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace cgp
{

TwoLevelPredictor::TwoLevelPredictor(unsigned pht_bits)
    : bits_(pht_bits), pht_(1u << pht_bits, 2) // weakly taken
{
    cgp_assert(pht_bits >= 4 && pht_bits <= 24, "unreasonable PHT size");
}

std::size_t
TwoLevelPredictor::index(Addr pc) const
{
    // GAg with a gshare-style hash keeps aliasing tolerable.
    const std::uint64_t mask = (1ull << bits_) - 1;
    return static_cast<std::size_t>((history_ ^ (pc >> 2)) & mask);
}

bool
TwoLevelPredictor::predict(Addr pc) const
{
    return pht_[index(pc)] >= 2;
}

void
TwoLevelPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = pht_[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

Btb::Btb(unsigned entries, unsigned assoc)
    : sets_(entries / assoc), assoc_(assoc), entries_(entries)
{
    cgp_assert(assoc > 0 && entries % assoc == 0,
               "BTB entries must divide evenly into ways");
    cgp_assert(isPowerOfTwo(sets_), "BTB set count must be a power of 2");
}

std::size_t
Btb::setOf(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (sets_ - 1));
}

bool
Btb::lookup(Addr pc, Addr &target) const
{
    const std::size_t base = setOf(pc) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.pc == pc) {
            target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::size_t base = setOf(pc) * assoc_;
    ++tick_;
    std::size_t victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.pc == pc) {
            e.target = target;
            e.lru = tick_;
            return;
        }
        if (e.lru < entries_[victim].lru)
            victim = base + w;
    }
    entries_[victim] = {pc, target, tick_};
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack_(depth)
{
    cgp_assert(depth > 0, "RAS must have at least one entry");
}

void
ReturnAddressStack::push(Addr return_addr, Addr caller_func_start)
{
    stack_[top_] = {return_addr, caller_func_start};
    top_ = (top_ + 1) % stack_.size();
    if (size_ < stack_.size())
        ++size_;
}

ReturnAddressStack::Entry
ReturnAddressStack::pop()
{
    if (size_ == 0)
        return {};
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --size_;
    return stack_[top_];
}

BranchUnit::BranchUnit(const BranchPredictorConfig &config)
    : direction_(config.phtBits),
      btb_(config.btbEntries, config.btbAssoc),
      ras_(config.rasEntries),
      stats_("branch")
{
    stats_.addCounter("lookups", &lookups_,
                      "control instructions predicted");
    stats_.addCounter("mispredicts", &mispredicts_,
                      "direction or target mispredictions");
    stats_.addCounter("cond_lookups", &condLookups_,
                      "conditional branches predicted");
    stats_.addCounter("cond_mispredicts", &condMispredicts_,
                      "conditional direction mispredictions");
    stats_.addCounter("btb_misses", &btbMisses_,
                      "taken control transfers missing a BTB target");
    stats_.addCounter("ras_mispredicts", &rasMispredicts_,
                      "returns with a wrong RAS prediction");
    stats_.addFormula(
        "mispredict_rate",
        [this]() {
            const auto l = lookups_.value();
            return l == 0 ? 0.0
                          : static_cast<double>(mispredicts_.value())
                              / static_cast<double>(l);
        },
        "fraction of predicted control instructions mispredicted");
}

BranchUnit::Prediction
BranchUnit::predictConditional(Addr pc, bool actual_taken,
                               Addr actual_target)
{
    ++lookups_;
    ++condLookups_;
    Prediction p;
    p.taken = direction_.predict(pc);
    if (p.taken)
        p.targetKnown = btb_.lookup(pc, p.target);

    const bool direction_wrong = p.taken != actual_taken;
    const bool target_wrong =
        actual_taken && p.taken && (!p.targetKnown ||
                                    p.target != actual_target);
    if (direction_wrong || target_wrong) {
        ++mispredicts_;
        if (direction_wrong)
            ++condMispredicts_;
    }

    direction_.update(pc, actual_taken);
    if (actual_taken)
        btb_.update(pc, actual_target);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictJump(Addr pc, Addr actual_target)
{
    ++lookups_;
    Prediction p;
    p.taken = true;
    p.targetKnown = btb_.lookup(pc, p.target);
    if (!p.targetKnown || p.target != actual_target) {
        ++mispredicts_;
        ++btbMisses_;
    }
    btb_.update(pc, actual_target);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictCall(Addr pc, Addr actual_target,
                        Addr caller_func_start)
{
    ++lookups_;
    Prediction p;
    p.taken = true;
    p.targetKnown = btb_.lookup(pc, p.target);
    if (!p.targetKnown || p.target != actual_target) {
        ++mispredicts_;
        ++btbMisses_;
    }
    btb_.update(pc, actual_target);
    // The paper's modification: push the caller's starting address
    // beside the return address.
    ras_.push(pc + 4, caller_func_start);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictReturn(Addr pc, Addr actual_target)
{
    (void)pc;
    ++lookups_;
    Prediction p;
    p.taken = true;
    const auto entry = ras_.pop();
    p.target = entry.returnAddr;
    p.targetKnown = entry.returnAddr != invalidAddr;
    p.callerFuncStart = entry.callerFuncStart;
    if (!p.targetKnown || p.target != actual_target) {
        ++mispredicts_;
        ++rasMispredicts_;
    }
    return p;
}

} // namespace cgp
