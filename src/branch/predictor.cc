#include "branch/predictor.hh"

#include <stdexcept>

#include "util/bitops.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp
{

TwoLevelPredictor::TwoLevelPredictor(unsigned pht_bits)
    : bits_(pht_bits), pht_(1u << pht_bits, 2) // weakly taken
{
    cgp_assert(pht_bits >= 4 && pht_bits <= 24, "unreasonable PHT size");
}

std::size_t
TwoLevelPredictor::index(Addr pc) const
{
    // GAg with a gshare-style hash keeps aliasing tolerable.
    const std::uint64_t mask = (1ull << bits_) - 1;
    return static_cast<std::size_t>((history_ ^ (pc >> 2)) & mask);
}

bool
TwoLevelPredictor::predict(Addr pc) const
{
    return pht_[index(pc)] >= 2;
}

void
TwoLevelPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = pht_[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

Btb::Btb(unsigned entries, unsigned assoc)
    : sets_(entries / assoc), assoc_(assoc), entries_(entries)
{
    cgp_assert(assoc > 0 && entries % assoc == 0,
               "BTB entries must divide evenly into ways");
    cgp_assert(isPowerOfTwo(sets_), "BTB set count must be a power of 2");
}

std::size_t
Btb::setOf(Addr pc) const
{
    return static_cast<std::size_t>((pc >> 2) & (sets_ - 1));
}

bool
Btb::lookup(Addr pc, Addr &target) const
{
    const std::size_t base = setOf(pc) * assoc_;
    for (unsigned w = 0; w < assoc_; ++w) {
        const Entry &e = entries_[base + w];
        if (e.pc == pc) {
            target = e.target;
            return true;
        }
    }
    return false;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::size_t base = setOf(pc) * assoc_;
    ++tick_;
    std::size_t victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = entries_[base + w];
        if (e.pc == pc) {
            e.target = target;
            e.lru = tick_;
            return;
        }
        if (e.lru < entries_[victim].lru)
            victim = base + w;
    }
    entries_[victim] = {pc, target, tick_};
}

ReturnAddressStack::ReturnAddressStack(unsigned depth) : stack_(depth)
{
    cgp_assert(depth > 0, "RAS must have at least one entry");
}

void
ReturnAddressStack::push(Addr return_addr, Addr caller_func_start)
{
    stack_[top_] = {return_addr, caller_func_start};
    top_ = (top_ + 1) % stack_.size();
    if (size_ < stack_.size())
        ++size_;
}

ReturnAddressStack::Entry
ReturnAddressStack::pop()
{
    if (size_ == 0)
        return {};
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --size_;
    return stack_[top_];
}

BranchUnit::BranchUnit(const BranchPredictorConfig &config)
    : direction_(config.phtBits),
      btb_(config.btbEntries, config.btbAssoc),
      ras_(config.rasEntries),
      stats_("branch")
{
    stats_.addCounter("lookups", &lookups_,
                      "control instructions predicted");
    stats_.addCounter("mispredicts", &mispredicts_,
                      "direction or target mispredictions");
    stats_.addCounter("cond_lookups", &condLookups_,
                      "conditional branches predicted");
    stats_.addCounter("cond_mispredicts", &condMispredicts_,
                      "conditional direction mispredictions");
    stats_.addCounter("btb_misses", &btbMisses_,
                      "taken control transfers missing a BTB target");
    stats_.addCounter("ras_mispredicts", &rasMispredicts_,
                      "returns with a wrong RAS prediction");
    stats_.addFormula(
        "mispredict_rate",
        [this]() {
            const auto l = lookups_.value();
            return l == 0 ? 0.0
                          : static_cast<double>(mispredicts_.value())
                              / static_cast<double>(l);
        },
        "fraction of predicted control instructions mispredicted");
}

BranchUnit::Prediction
BranchUnit::predictConditional(Addr pc, bool actual_taken,
                               Addr actual_target)
{
    if (!warming_) {
        ++lookups_;
        ++condLookups_;
    }
    Prediction p;
    p.taken = direction_.predict(pc);
    if (p.taken)
        p.targetKnown = btb_.lookup(pc, p.target);

    const bool direction_wrong = p.taken != actual_taken;
    const bool target_wrong =
        actual_taken && p.taken && (!p.targetKnown ||
                                    p.target != actual_target);
    if ((direction_wrong || target_wrong) && !warming_) {
        ++mispredicts_;
        if (direction_wrong)
            ++condMispredicts_;
    }

    direction_.update(pc, actual_taken);
    if (actual_taken)
        btb_.update(pc, actual_target);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictJump(Addr pc, Addr actual_target)
{
    if (!warming_)
        ++lookups_;
    Prediction p;
    p.taken = true;
    p.targetKnown = btb_.lookup(pc, p.target);
    if ((!p.targetKnown || p.target != actual_target) && !warming_) {
        ++mispredicts_;
        ++btbMisses_;
    }
    btb_.update(pc, actual_target);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictCall(Addr pc, Addr actual_target,
                        Addr caller_func_start)
{
    if (!warming_)
        ++lookups_;
    Prediction p;
    p.taken = true;
    p.targetKnown = btb_.lookup(pc, p.target);
    if ((!p.targetKnown || p.target != actual_target) && !warming_) {
        ++mispredicts_;
        ++btbMisses_;
    }
    btb_.update(pc, actual_target);
    // The paper's modification: push the caller's starting address
    // beside the return address.
    ras_.push(pc + 4, caller_func_start);
    return p;
}

BranchUnit::Prediction
BranchUnit::predictReturn(Addr pc, Addr actual_target)
{
    (void)pc;
    if (!warming_)
        ++lookups_;
    Prediction p;
    p.taken = true;
    const auto entry = ras_.pop();
    p.target = entry.returnAddr;
    p.targetKnown = entry.returnAddr != invalidAddr;
    p.callerFuncStart = entry.callerFuncStart;
    if ((!p.targetKnown || p.target != actual_target) && !warming_) {
        ++mispredicts_;
        ++rasMispredicts_;
    }
    return p;
}

Json
TwoLevelPredictor::saveState() const
{
    Json j = Json::object();
    j.set("bits", bits_);
    j.set("history", history_);
    Json pht = Json::array();
    for (std::uint8_t ctr : pht_)
        pht.push(static_cast<unsigned>(ctr));
    j.set("pht", std::move(pht));
    return j;
}

void
TwoLevelPredictor::loadState(const Json &state)
{
    if (state.at("bits").asUint() != bits_)
        throw std::runtime_error("PHT geometry mismatch");
    const Json &pht = state.at("pht");
    if (pht.size() != pht_.size())
        throw std::runtime_error("PHT size mismatch");
    history_ = state.at("history").asUint();
    for (std::size_t i = 0; i < pht_.size(); ++i)
        pht_[i] = static_cast<std::uint8_t>(pht[i].asUint());
}

Json
Btb::saveState() const
{
    Json j = Json::object();
    j.set("sets", sets_);
    j.set("assoc", assoc_);
    j.set("tick", tick_);
    Json pcs = Json::array();
    Json targets = Json::array();
    Json lrus = Json::array();
    for (const Entry &e : entries_) {
        pcs.push(e.pc);
        targets.push(e.target);
        lrus.push(e.lru);
    }
    j.set("pc", std::move(pcs));
    j.set("target", std::move(targets));
    j.set("lru", std::move(lrus));
    return j;
}

void
Btb::loadState(const Json &state)
{
    if (state.at("sets").asUint() != sets_ ||
        state.at("assoc").asUint() != assoc_) {
        throw std::runtime_error("BTB geometry mismatch");
    }
    const Json &pcs = state.at("pc");
    const Json &targets = state.at("target");
    const Json &lrus = state.at("lru");
    if (pcs.size() != entries_.size() ||
        targets.size() != entries_.size() ||
        lrus.size() != entries_.size()) {
        throw std::runtime_error("BTB size mismatch");
    }
    tick_ = state.at("tick").asUint();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].pc = pcs[i].asUint();
        entries_[i].target = targets[i].asUint();
        entries_[i].lru = lrus[i].asUint();
    }
}

Json
ReturnAddressStack::saveState() const
{
    Json j = Json::object();
    j.set("depth",
          static_cast<std::uint64_t>(stack_.size()));
    j.set("top", top_);
    j.set("size", size_);
    Json entries = Json::array();
    for (const Entry &e : stack_) {
        entries.push(e.returnAddr);
        entries.push(e.callerFuncStart);
    }
    j.set("entries", std::move(entries));
    return j;
}

void
ReturnAddressStack::loadState(const Json &state)
{
    if (state.at("depth").asUint() != stack_.size())
        throw std::runtime_error("RAS depth mismatch");
    const Json &entries = state.at("entries");
    if (entries.size() != stack_.size() * 2)
        throw std::runtime_error("RAS entry count mismatch");
    top_ = static_cast<unsigned>(state.at("top").asUint());
    size_ = static_cast<unsigned>(state.at("size").asUint());
    if (top_ >= stack_.size() || size_ > stack_.size())
        throw std::runtime_error("RAS pointers out of range");
    for (std::size_t i = 0; i < stack_.size(); ++i) {
        stack_[i].returnAddr = entries[i * 2].asUint();
        stack_[i].callerFuncStart = entries[i * 2 + 1].asUint();
    }
}

Json
BranchUnit::saveState() const
{
    Json j = Json::object();
    j.set("direction", direction_.saveState());
    j.set("btb", btb_.saveState());
    j.set("ras", ras_.saveState());
    return j;
}

void
BranchUnit::loadState(const Json &state)
{
    direction_.loadState(state.at("direction"));
    btb_.loadState(state.at("btb"));
    ras_.loadState(state.at("ras"));
}

} // namespace cgp
