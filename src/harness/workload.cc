#include "harness/workload.hh"

#include <cstdlib>
#include <stdexcept>

#include "db/dbsys.hh"
#include "db/tpch.hh"
#include "db/wisconsin.hh"
#include "server/compat.hh"
#include "trace/expand.hh"
#include "util/logging.hh"

namespace cgp
{

namespace
{

/** Record one Wisconsin query into a fresh buffer. */
TraceBuffer
recordWiscQuery(db::DbSystem &dbsys, int query, std::uint32_t n,
                std::uint64_t seed)
{
    TraceBuffer buf;
    dbsys.record(buf);
    Rng rng(seed);
    db::Wisconsin::runQuery(dbsys, query, n, rng);
    return buf;
}

TraceBuffer
recordTpchQuery(db::DbSystem &dbsys, int query,
                const db::Tpch::Scale &scale, std::uint64_t seed)
{
    TraceBuffer buf;
    dbsys.record(buf);
    Rng rng(seed);
    db::Tpch::runQuery(dbsys, query, scale, rng);
    return buf;
}

/**
 * Record the OS-scheduler stub once.  The stub body is stateless and
 * balanced, so replaying this buffer at every context switch emits
 * exactly the events the old per-switch onSwitch callback recorded.
 */
std::shared_ptr<TraceBuffer>
recordSwitchStub(const db::DbFuncs &fn)
{
    auto buf = std::make_shared<TraceBuffer>();
    TraceRecorder rec(*buf);
    TraceScope s(rec, fn.osSchedule);
    s.work(60);
    s.branch(true);
    {
        TraceScope save(rec, fn.osCtxSave);
        save.work(35);
    }
    {
        TraceScope restore(rec, fn.osCtxRestore);
        restore.work(35);
    }
    s.work(20);
    return buf;
}

/** Merge per-query buffers into one scheduled trace via the server
 *  model's legacy-compatible shim (byte-identical to the deprecated
 *  trace/interleave merger). */
std::shared_ptr<TraceBuffer>
schedule(const std::vector<TraceBuffer> &queries,
         const TraceBuffer &stub)
{
    std::vector<const TraceBuffer *> ptrs;
    ptrs.reserve(queries.size());
    for (const auto &q : queries)
        ptrs.push_back(&q);
    return std::make_shared<TraceBuffer>(server::legacyMerge(
        ptrs, WorkloadFactory::quantumInstrs(), &stub));
}

/** Build a layout-independent profile by replaying over O5. */
ExecutionProfile
profileOf(const FunctionRegistry &registry, const TraceBuffer &trace)
{
    LayoutBuilder builder(registry);
    const CodeImage o5 = builder.buildOriginal();
    InstructionExpander expander(registry, o5, trace);
    ExecutionProfile profile;
    expander.setProfile(&profile);
    DynInst inst;
    while (expander.next(inst)) {
    }
    return profile;
}

} // anonymous namespace

double
WorkloadFactory::scale()
{
    if (const char *env = std::getenv("CGP_SCALE")) {
        const double v = std::atof(env);
        if (v > 0.0)
            return v;
        cgp_warn("ignoring bad CGP_SCALE value '", env, "'");
    }
    return 0.25;
}

std::uint64_t
WorkloadFactory::quantumInstrs()
{
    // Query threads in the paper's server switch at I/O / lock-wait
    // granularity, far coarser than an OS time slice; each slice is
    // long enough that a query's loop warms the L1-I and the switch
    // costs a full working-set refill.
    return 60000;
}

DbWorkloadSet
WorkloadFactory::buildDbSet()
{
    return buildDbSet(scale());
}

DbWorkloadSet
WorkloadFactory::buildDbSet(double s)
{
    if (!(s > 0.0))
        throw std::invalid_argument("workload scale must be > 0");
    const auto wisc_prof_n =
        static_cast<std::uint32_t>(std::max(1000.0 * s, 200.0));
    const auto wisc_large_n =
        static_cast<std::uint32_t>(std::max(10000.0 * s, 500.0));
    const auto tpch_lines =
        static_cast<std::uint32_t>(std::max(8000.0 * s, 400.0));

    DbWorkloadSet set;
    set.registry = std::make_shared<FunctionRegistry>();
    FunctionRegistry &reg = *set.registry;

    // ---- wisc-prof: queries 1, 5, 9 on the small database --------
    TraceBuffer scratch;
    db::DbConfig small_cfg;
    small_cfg.bufferFrames = 2048;
    db::DbSystem db_prof(reg, scratch, small_cfg);
    db::Wisconsin::load(db_prof, wisc_prof_n);
    auto prof_queries = std::make_shared<std::vector<TraceBuffer>>();
    prof_queries->push_back(
        recordWiscQuery(db_prof, 1, wisc_prof_n, 11));
    prof_queries->push_back(
        recordWiscQuery(db_prof, 5, wisc_prof_n, 15));
    prof_queries->push_back(
        recordWiscQuery(db_prof, 9, wisc_prof_n, 19));
    const db::DbFuncs fn = db_prof.ctx().fn;
    auto stub = recordSwitchStub(fn);
    auto wisc_prof_trace = schedule(*prof_queries, *stub);

    // ---- wisc-large-1: same queries, full-size database ----------
    TraceBuffer scratch1;
    db::DbConfig large_cfg;
    large_cfg.bufferFrames = 4096;
    db::DbSystem db_large(reg, scratch1, large_cfg);
    db::Wisconsin::load(db_large, wisc_large_n);
    auto large1_queries = std::make_shared<std::vector<TraceBuffer>>();
    large1_queries->push_back(
        recordWiscQuery(db_large, 1, wisc_large_n, 21));
    large1_queries->push_back(
        recordWiscQuery(db_large, 5, wisc_large_n, 25));
    large1_queries->push_back(
        recordWiscQuery(db_large, 9, wisc_large_n, 29));
    auto wisc_large1_trace = schedule(*large1_queries, *stub);

    // ---- wisc-large-2: all eight queries --------------------------
    auto large2_queries = std::make_shared<std::vector<TraceBuffer>>();
    for (int q : {1, 2, 3, 4, 5, 6, 7, 9}) {
        large2_queries->push_back(
            recordWiscQuery(db_large, q, wisc_large_n,
                            static_cast<std::uint64_t>(30 + q)));
    }
    auto wisc_large2_trace = schedule(*large2_queries, *stub);

    // ---- wisc+tpch: eight Wisconsin + five TPC-H queries ----------
    TraceBuffer scratch2;
    db::DbConfig tpch_cfg;
    tpch_cfg.bufferFrames = 8192;
    tpch_cfg.bufferSegment = 0x3000'0000;
    db::DbSystem db_tpch(reg, scratch2, tpch_cfg);
    const auto tpch_scale = db::Tpch::Scale::fromLineitems(tpch_lines);
    db::Tpch::load(db_tpch, tpch_scale);

    auto mixed_queries = std::make_shared<std::vector<TraceBuffer>>();
    for (int q : {1, 2, 3, 4, 5, 6, 7, 9}) {
        mixed_queries->push_back(
            recordWiscQuery(db_large, q, wisc_large_n,
                            static_cast<std::uint64_t>(50 + q)));
    }
    for (int q : {1, 2, 3, 5, 6}) {
        mixed_queries->push_back(
            recordTpchQuery(db_tpch, q, tpch_scale,
                            static_cast<std::uint64_t>(70 + q)));
    }
    auto wisc_tpch_trace = schedule(*mixed_queries, *stub);

    // ---- OM feedback: wisc-prof + wisc+tpch profiles merged -------
    auto om = std::make_shared<ExecutionProfile>(
        profileOf(reg, *wisc_prof_trace));
    om->merge(profileOf(reg, *wisc_tpch_trace));
    set.omProfile = om;

    auto add =
        [&set, &stub](const std::string &name,
                      std::shared_ptr<TraceBuffer> trace,
                      std::shared_ptr<std::vector<TraceBuffer>> lib) {
            Workload w;
            w.name = name;
            w.registry = set.registry;
            w.trace = std::move(trace);
            w.omProfile = set.omProfile;
            w.queryLibrary = std::move(lib);
            w.switchStub = stub;
            set.workloads.push_back(std::move(w));
        };
    add("wisc-prof", wisc_prof_trace, prof_queries);
    add("wisc-large-1", wisc_large1_trace, large1_queries);
    add("wisc-large-2", wisc_large2_trace, large2_queries);
    add("wisc+tpch", wisc_tpch_trace, mixed_queries);
    return set;
}

Workload
WorkloadFactory::buildSpec(const spec::SpecProgramSpec &spec)
{
    return buildSpec(spec, scale());
}

Workload
WorkloadFactory::buildSpec(const spec::SpecProgramSpec &spec,
                           double s)
{
    if (!(s > 0.0))
        throw std::invalid_argument("workload scale must be > 0");
    Workload w;
    w.name = spec.name;
    w.registry = std::make_shared<FunctionRegistry>();

    spec::SpecProgram program(*w.registry, spec);

    // Profile from the SPEC-provided "test" input (paper §5.7) ...
    TraceBuffer test;
    program.emitTest(test);
    w.omProfile = std::make_shared<ExecutionProfile>(
        profileOf(*w.registry, test));

    // ... measurement on the "train" input.
    auto train = std::make_shared<TraceBuffer>();
    spec::SpecProgramSpec scaled = spec;
    scaled.trainInstrs = static_cast<std::uint64_t>(
        static_cast<double>(spec.trainInstrs) * std::min(s * 4, 1.0));
    program.emit(*train, scaled.trainInstrs,
                 0x7 + w.registry->lookup(spec.name + "::fn0") * 131);
    w.trace = train;
    return w;
}

std::vector<Workload>
WorkloadFactory::buildCpu2000Suite()
{
    return buildCpu2000Suite(scale());
}

std::vector<Workload>
WorkloadFactory::buildCpu2000Suite(double s)
{
    std::vector<Workload> out;
    for (const auto &spec : spec::cpu2000Suite())
        out.push_back(buildSpec(spec, s));
    return out;
}

} // namespace cgp
