/**
 * @file
 * SimConfig: one experiment point — which binary (layout), which
 * prefetcher, CGHC geometry, perfect-I$ flag — on top of the fixed
 * Table 1 machine.  Named constructors produce the configurations
 * the paper's figures compare.
 */

#ifndef CGP_HARNESS_SIMCONFIG_HH
#define CGP_HARNESS_SIMCONFIG_HH

#include <string>

#include "codegen/layout.hh"
#include "cpu/core.hh"
#include "dprefetch/factory.hh"
#include "mem/hierarchy.hh"
#include "prefetch/cghc.hh"
#include "sample/config.hh"
#include "server/config.hh"

namespace cgp
{

enum class PrefetchKind
{
    None,
    NextNLine,
    RunAheadNL,
    Cgp,
    SoftwareCgp ///< §6 future work: compiler-inserted prefetches
};

const char *prefetchKindName(PrefetchKind kind);

struct SimConfig
{
    LayoutKind layout = LayoutKind::Original;
    PrefetchKind prefetch = PrefetchKind::None;

    /** N: lines per prefetch action (NL_N / CGP_N). */
    unsigned depth = 4;

    /** M: skip distance of run-ahead NL (§5.6). */
    unsigned runaheadSkip = 4;

    CghcConfig cghc = CghcConfig::twoLevel2K32K();

    /** Data-side prefetch engine on the L1-D path (src/dprefetch). */
    DPrefetchConfig dprefetch;

    bool perfectICache = false;

    /**
     * OM's traditional link-time re-optimizations cut the dynamic
     * instruction count by 12% (paper §5.1); applied when the layout
     * is PettisHansen.
     */
    double omInstrScale = 0.88;

    CoreConfig core;       ///< Table 1 pipeline
    HierarchyConfig mem;   ///< Table 1 memory system

    /**
     * Multi-core server axis (src/server).  When enabled the point
     * runs N cores — private L1s, prefetch engines and arbiter per
     * core — against one shared L2, fed by closed-loop client
     * sessions through the admission scheduler.  Disabled (the
     * default) keeps the legacy single-core path untouched.
     */
    server::ServerConfig server;

    /**
     * SMARTS-style sampling axis (src/sample).  When enabled the
     * run alternates detailed windows with fast-forward functional
     * warming and reports CPI / miss-rate estimates with confidence
     * intervals; disabled (the default) the simulation path is
     * bit-identical to the legacy full-detail run.
     */
    sample::SampleConfig sample;

    /// @{ Named experiment points.
    static SimConfig o5();
    static SimConfig o5Om();
    static SimConfig withNL(LayoutKind layout, unsigned n);
    static SimConfig withCgp(LayoutKind layout, unsigned n);
    static SimConfig withCgpGeometry(LayoutKind layout, unsigned n,
                                     const CghcConfig &cghc);
    static SimConfig withRunAheadNL(LayoutKind layout, unsigned n,
                                    unsigned skip);
    static SimConfig withSoftwareCgp(LayoutKind layout, unsigned n);
    static SimConfig perfectICacheOn(LayoutKind layout);
    /** O5 binary, no I-prefetch, the given D-prefetch engine —
     *  isolates the data side for the figD_dstall campaign. */
    static SimConfig withDPrefetch(DataPrefetchKind kind);
    /**
     * The combined axis: I-side CGP_4 on the OM binary plus the
     * given D-side engine, both competing for the shared L2 port.
     * With @p throttled the shared prefetch arbiter is enabled
     * (accuracy-gated throttling, demand priority, duplicate
     * filtering — knobs in mem.arbiter); without it the engines
     * fire directly as in the isolated figures.
     */
    static SimConfig withIPlusD(DataPrefetchKind dkind,
                                bool throttled);
    /**
     * Lift any base configuration onto the N-core server: @p cores
     * cores serving @p sessions closed-loop sessions until
     * @p totalQueries queries have been admitted (a floor; admitted
     * queries run to completion).
     */
    static SimConfig withServer(SimConfig base, unsigned cores,
                                unsigned sessions,
                                std::uint64_t totalQueries);
    /**
     * Lift any base configuration onto sampled simulation: detailed
     * windows of @p windowCycles every @p periodCycles, functional
     * warming in between.
     */
    static SimConfig withSampling(SimConfig base, Cycle windowCycles,
                                  Cycle periodCycles,
                                  std::uint64_t warmupInstrs = 200000);
    /// @}

    /** Bar label in the paper's style ("O5+OM+CGP_4"). */
    std::string describe() const;
};

} // namespace cgp

#endif // CGP_HARNESS_SIMCONFIG_HH
