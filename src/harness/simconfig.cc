#include "harness/simconfig.hh"

namespace cgp
{

const char *
prefetchKindName(PrefetchKind kind)
{
    switch (kind) {
      case PrefetchKind::None:
        return "none";
      case PrefetchKind::NextNLine:
        return "NL";
      case PrefetchKind::RunAheadNL:
        return "RA-NL";
      case PrefetchKind::Cgp:
        return "CGP";
      case PrefetchKind::SoftwareCgp:
        return "SW-CGP";
    }
    return "?";
}

SimConfig
SimConfig::o5()
{
    return SimConfig{};
}

SimConfig
SimConfig::o5Om()
{
    SimConfig c;
    c.layout = LayoutKind::PettisHansen;
    return c;
}

SimConfig
SimConfig::withNL(LayoutKind layout, unsigned n)
{
    SimConfig c;
    c.layout = layout;
    c.prefetch = PrefetchKind::NextNLine;
    c.depth = n;
    return c;
}

SimConfig
SimConfig::withCgp(LayoutKind layout, unsigned n)
{
    SimConfig c;
    c.layout = layout;
    c.prefetch = PrefetchKind::Cgp;
    c.depth = n;
    return c;
}

SimConfig
SimConfig::withCgpGeometry(LayoutKind layout, unsigned n,
                           const CghcConfig &cghc)
{
    SimConfig c = withCgp(layout, n);
    c.cghc = cghc;
    return c;
}

SimConfig
SimConfig::withRunAheadNL(LayoutKind layout, unsigned n, unsigned skip)
{
    SimConfig c;
    c.layout = layout;
    c.prefetch = PrefetchKind::RunAheadNL;
    c.depth = n;
    c.runaheadSkip = skip;
    return c;
}

SimConfig
SimConfig::withSoftwareCgp(LayoutKind layout, unsigned n)
{
    SimConfig c;
    c.layout = layout;
    c.prefetch = PrefetchKind::SoftwareCgp;
    c.depth = n;
    return c;
}

SimConfig
SimConfig::perfectICacheOn(LayoutKind layout)
{
    SimConfig c;
    c.layout = layout;
    c.perfectICache = true;
    return c;
}

SimConfig
SimConfig::withDPrefetch(DataPrefetchKind kind)
{
    SimConfig c;
    c.dprefetch.kind = kind;
    return c;
}

SimConfig
SimConfig::withIPlusD(DataPrefetchKind dkind, bool throttled)
{
    SimConfig c = withCgp(LayoutKind::PettisHansen, 4);
    c.dprefetch.kind = dkind;
    c.mem.arbiter.enabled = throttled;
    return c;
}

SimConfig
SimConfig::withServer(SimConfig base, unsigned cores,
                      unsigned sessions, std::uint64_t totalQueries)
{
    SimConfig c = std::move(base);
    c.server.enabled = true;
    c.server.cores = cores;
    c.server.sessions = sessions;
    c.server.totalQueries = totalQueries;
    return c;
}

SimConfig
SimConfig::withSampling(SimConfig base, Cycle windowCycles,
                        Cycle periodCycles,
                        std::uint64_t warmupInstrs)
{
    SimConfig c = std::move(base);
    c.sample.enabled = true;
    c.sample.windowCycles = windowCycles;
    c.sample.periodCycles = periodCycles;
    c.sample.warmupInstrs = warmupInstrs;
    return c;
}

std::string
SimConfig::describe() const
{
    std::string s = layoutName(layout);
    if (perfectICache) {
        s += "+perf-Icache";
    } else {
        switch (prefetch) {
          case PrefetchKind::None:
            break;
          case PrefetchKind::NextNLine:
            s += "+NL_" + std::to_string(depth);
            break;
          case PrefetchKind::RunAheadNL:
            s += "+RANL_" + std::to_string(depth) + "skip" +
                std::to_string(runaheadSkip);
            break;
          case PrefetchKind::Cgp:
            s += "+CGP_" + std::to_string(depth);
            break;
          case PrefetchKind::SoftwareCgp:
            s += "+SWCGP_" + std::to_string(depth);
            break;
        }
    }
    if (dprefetch.kind != DataPrefetchKind::None) {
        s += std::string("+D-") +
            dataPrefetchKindName(dprefetch.kind);
    }
    if (mem.arbiter.enabled)
        s += "+arb";
    if (server.enabled) {
        s += "+srv" + std::to_string(server.cores) + "c" +
            std::to_string(server.sessions) + "s";
    }
    if (sample.enabled)
        s += "+" + sample.describe();
    return s;
}

} // namespace cgp
