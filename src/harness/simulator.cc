#include "harness/simulator.hh"

#include <memory>

#include "cpu/core.hh"
#include "dprefetch/factory.hh"
#include "dprefetch/failsoft.hh"
#include "mem/hierarchy.hh"
#include "mem/pfarbiter.hh"
#include "prefetch/cgp.hh"
#include "prefetch/failsoft.hh"
#include "prefetch/nextline.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/software_cgp.hh"
#include "sample/controller.hh"
#include "server/server.hh"
#include "trace/expand.hh"
#include "trace/source.hh"
#include "util/logging.hh"

namespace cgp
{

namespace
{

/**
 * One core's prefetch engines plus the observation pointers the
 * result collection needs.  The owning pointers move into the core
 * wiring; the raw pointers stay valid for the life of the engines.
 */
struct EngineSet
{
    std::unique_ptr<InstrPrefetcher> iengine;
    std::unique_ptr<DataPrefetcher> dengine;
    FailSoftPrefetcher *failsoft = nullptr;
    FailSoftDataPrefetcher *dfailsoft = nullptr;
    const Cghc *cghc = nullptr;
    Cghc *cghcMut = nullptr; ///< checkpoint restore needs mutability
    bool ctorFailed = false;
    std::string ctorReason;
};

/**
 * Build the configured I- and D-side engines against @p mem's L1s.
 * Prefetching is an optimisation: a prefetcher that faults — at
 * construction or at any hook mid-run — must not take down the
 * simulation.  Construction failures fall back to no-prefetch here;
 * mid-run faults are absorbed by the FailSoft wrappers.
 */
EngineSet
buildEngines(MemoryHierarchy &mem, const SimConfig &config,
             const FunctionRegistry &registry, const CodeImage &image,
             const ExecutionProfile &profile)
{
    EngineSet set;

    std::unique_ptr<InstrPrefetcher> inner;
    try {
        switch (config.prefetch) {
          case PrefetchKind::None:
            break;
          case PrefetchKind::NextNLine:
            inner = std::make_unique<NextNLinePrefetcher>(
                mem.l1i(), config.depth);
            break;
          case PrefetchKind::RunAheadNL:
            inner = std::make_unique<RunAheadNLPrefetcher>(
                mem.l1i(), config.depth, config.runaheadSkip);
            break;
          case PrefetchKind::Cgp: {
            auto cgp = std::make_unique<CgpPrefetcher>(
                mem.l1i(), config.cghc, config.depth);
            set.cghcMut = &cgp->cghc();
            set.cghc = set.cghcMut;
            inner = std::move(cgp);
            break;
          }
          case PrefetchKind::SoftwareCgp:
            // The "compiler" consumes the same profile feedback OM
            // does.
            inner = std::make_unique<SoftwareCgpPrefetcher>(
                mem.l1i(), registry, image, profile, config.depth);
            break;
        }
    } catch (const std::exception &e) {
        set.ctorFailed = true;
        set.ctorReason = e.what();
        set.cghc = nullptr;
        set.cghcMut = nullptr;
        inner.reset();
        cgp_error("prefetcher construction failed (", set.ctorReason,
                  "); running without prefetch");
    }

    if (inner != nullptr) {
        auto fs =
            std::make_unique<FailSoftPrefetcher>(std::move(inner));
        set.failsoft = fs.get();
        set.iengine = std::move(fs);
    }

    // The data-side engine gets the same fail-soft treatment: a
    // construction failure falls back to no data prefetch, a mid-run
    // fault disables it for the rest of the run.
    std::unique_ptr<DataPrefetcher> dinner;
    try {
        dinner = makeDataPrefetcher(mem.l1d(), config.dprefetch);
    } catch (const std::exception &e) {
        if (!set.ctorFailed) {
            set.ctorFailed = true;
            set.ctorReason = e.what();
        }
        dinner.reset();
        cgp_error("data prefetcher construction failed (", e.what(),
                  "); running without data prefetch");
    }
    if (dinner != nullptr) {
        auto fs = std::make_unique<FailSoftDataPrefetcher>(
            std::move(dinner));
        set.dfailsoft = fs.get();
        set.dengine = std::move(fs);
    }
    return set;
}

/** Add one core's L1 counters into the (aggregate) result. */
void
accumulateCacheCounters(SimResult &r, const Cache &l1i,
                        const Cache &l1d)
{
    r.icacheAccesses += l1i.demandAccesses();
    r.icacheMisses += l1i.demandMisses();
    r.dcacheAccesses += l1d.demandAccesses();
    r.dcacheMisses += l1d.demandMisses();

    r.nl.issued += l1i.prefetchesIssued(AccessSource::PrefetchNL);
    r.nl.prefHits += l1i.prefHits(AccessSource::PrefetchNL);
    r.nl.delayedHits += l1i.delayedHits(AccessSource::PrefetchNL);
    r.nl.useless += l1i.useless(AccessSource::PrefetchNL);
    r.cghc.issued += l1i.prefetchesIssued(AccessSource::PrefetchCGHC);
    r.cghc.prefHits += l1i.prefHits(AccessSource::PrefetchCGHC);
    r.cghc.delayedHits +=
        l1i.delayedHits(AccessSource::PrefetchCGHC);
    r.cghc.useless += l1i.useless(AccessSource::PrefetchCGHC);
    r.dpf.issued +=
        l1d.prefetchesIssued(AccessSource::DataPrefetch);
    r.dpf.prefHits += l1d.prefHits(AccessSource::DataPrefetch);
    r.dpf.delayedHits += l1d.delayedHits(AccessSource::DataPrefetch);
    r.dpf.useless += l1d.useless(AccessSource::DataPrefetch);
    r.squashedPrefetches += l1i.squashedPrefetches();
    r.dSquashedPrefetches += l1d.squashedPrefetches();
}

/**
 * Wire the checkpointable structures of one single-core machine into
 * a CheckpointParts.  The D-side engines hide behind the fail-soft
 * wrapper (and, for the Combined stack, the multi fan-out), so they
 * are recovered by type.
 */
sample::CheckpointParts
makeCheckpointParts(MemoryHierarchy &mem, Core &core,
                    EngineSet &engines)
{
    sample::CheckpointParts p;
    p.l1i = &mem.l1i();
    p.l1d = &mem.l1d();
    p.l2 = &mem.l2();
    p.branch = &core.branchUnit();
    p.cghc = engines.cghcMut;
    p.core = &core;
    if (engines.dfailsoft != nullptr) {
        const auto bind = [&p](DataPrefetcher *e) {
            if (auto *s = dynamic_cast<StrideDataPrefetcher *>(e))
                p.stride = s;
            else if (auto *c =
                         dynamic_cast<CorrelationDataPrefetcher *>(e))
                p.correlation = c;
            else if (auto *h =
                         dynamic_cast<SemanticDataPrefetcher *>(e))
                p.semantic = h;
        };
        DataPrefetcher *inner = engines.dfailsoft->inner();
        if (auto *multi = dynamic_cast<MultiDataPrefetcher *>(inner)) {
            for (const auto &part : multi->parts())
                bind(part.get());
        } else {
            bind(inner);
        }
    }
    return p;
}

/** Add one core's arbiter counters (no-op without an arbiter). */
void
accumulateArbiterCounters(SimResult &r, const PrefetchArbiter *arb)
{
    if (arb == nullptr)
        return;
    const auto grab = [arb](ArbiterBreakdown &b, AccessSource src) {
        b.issued += arb->issued(src);
        b.deferred += arb->deferred(src);
        b.dropped += arb->dropped(src);
        b.duplicateMerged += arb->duplicateMerged(src);
    };
    grab(r.arbNl, AccessSource::PrefetchNL);
    grab(r.arbCghc, AccessSource::PrefetchCGHC);
    grab(r.arbDpf, AccessSource::DataPrefetch);
}

/** Fold one core's engine health into the degraded flag/reason. */
void
accumulateDegraded(SimResult &r, const EngineSet &engines)
{
    if (r.prefetchDegraded)
        return;
    if (engines.ctorFailed) {
        r.prefetchDegraded = true;
        r.degradedReason = engines.ctorReason;
    } else if (engines.failsoft != nullptr &&
               engines.failsoft->degraded()) {
        r.prefetchDegraded = true;
        r.degradedReason = engines.failsoft->reason();
    } else if (engines.dfailsoft != nullptr &&
               engines.dfailsoft->degraded()) {
        r.prefetchDegraded = true;
        r.degradedReason = engines.dfailsoft->reason();
    }
}

/**
 * The N-core server-model path (config.server.enabled): per-core
 * hierarchies and engines behind one shared L2, sessions fed by the
 * admission scheduler (or the pre-merged trace in singleStream
 * mode).  The scalar SimResult counters aggregate across cores; the
 * per-core breakdown and latency summary ride in result.server.
 */
SimResult
runServerSimulation(const Workload &workload, const SimConfig &config)
{
    LayoutBuilder builder(*workload.registry);
    ExecutionProfile empty_profile;
    const ExecutionProfile &profile = workload.omProfile
        ? *workload.omProfile
        : empty_profile;
    const CodeImage image = builder.build(config.layout, profile);

    server::ServerWiring wiring;
    wiring.registry = workload.registry.get();
    wiring.image = &image;
    wiring.expand.instrScale =
        config.layout == LayoutKind::PettisHansen
        ? config.omInstrScale
        : 1.0;
    wiring.mem = config.mem;
    wiring.core = config.core;
    wiring.core.perfectICache = config.perfectICache;
    wiring.sample = config.sample;
    // No warm-state checkpoints on the server path: session and
    // scheduler state are not serialized (DESIGN.md §11.4).
    wiring.sample.checkpoints = {};

    if (config.server.singleStream) {
        wiring.singleStream = workload.trace.get();
    } else if (workload.queryLibrary != nullptr &&
               !workload.queryLibrary->empty()) {
        for (const auto &q : *workload.queryLibrary)
            wiring.queries.push_back(&q);
        wiring.switchStub = workload.switchStub.get();
    } else {
        // SPEC proxies have no query structure: the whole trace is a
        // one-query library.
        wiring.queries.push_back(workload.trace.get());
    }

    std::vector<EngineSet> engines(config.server.cores);
    wiring.engines = [&](MemoryHierarchy &mem, unsigned coreId) {
        EngineSet set = buildEngines(mem, config, *workload.registry,
                                     image, profile);
        server::EnginePair pair;
        pair.iengine = std::move(set.iengine);
        pair.dengine = std::move(set.dengine);
        engines[coreId] = std::move(set);
        return pair;
    };

    server::DbServer srv(config.server, wiring);
    srv.run();

    SimResult r;
    r.workload = workload.name;
    r.config = config.describe();
    r.cycles = srv.cycles();

    std::uint64_t emitted = 0;
    std::uint64_t calls = 0;
    for (unsigned i = 0; i < srv.numCores(); ++i) {
        r.instrs += srv.coreAt(i).committedInstrs();
        r.branchMispredicts +=
            srv.coreAt(i).branchUnit().mispredicts();
        accumulateCacheCounters(r, srv.memAt(i).l1i(),
                                srv.memAt(i).l1d());
        accumulateArbiterCounters(r, srv.memAt(i).arbiter());
        accumulateDegraded(r, engines[i]);
        if (engines[i].cghc != nullptr) {
            r.cghcAccesses += engines[i].cghc->accesses();
            r.cghcHits += engines[i].cghc->hits();
        }
        emitted += srv.expanderAt(i).emittedInstrs();
        calls += srv.expanderAt(i).emittedCalls();
    }
    r.l2Misses = srv.sharedL2().cache().demandMisses();
    r.busLines = srv.sharedL2().port().requests();
    r.instrsPerCall = calls == 0
        ? 0.0
        : static_cast<double>(emitted) / static_cast<double>(calls);

    r.serverEnabled = true;
    r.server = srv.stats();
    if (config.sample.enabled) {
        r.sampledEnabled = true;
        r.sampled = srv.sampledStats();
        r.instrs += r.sampled.warmedInstrs;
    }
    return r;
}

} // anonymous namespace

SimResult
runSimulation(const Workload &workload, const SimConfig &config)
{
    cgp_assert(workload.registry != nullptr && workload.trace != nullptr,
               "incomplete workload");

    if (config.server.enabled)
        return runServerSimulation(workload, config);

    // 1. Bind the trace to the requested binary layout.
    LayoutBuilder builder(*workload.registry);
    ExecutionProfile empty_profile;
    const ExecutionProfile &profile = workload.omProfile
        ? *workload.omProfile
        : empty_profile;
    const CodeImage image = builder.build(config.layout, profile);

    ExpanderConfig expand_cfg;
    expand_cfg.instrScale =
        config.layout == LayoutKind::PettisHansen
        ? config.omInstrScale
        : 1.0;
    InstructionExpander stream(*workload.registry, image,
                               *workload.trace, expand_cfg);

    // 2. Assemble the machine.
    MemoryHierarchy mem(config.mem);
    EngineSet engines = buildEngines(mem, config, *workload.registry,
                                     image, profile);

    CoreConfig core_cfg = config.core;
    core_cfg.perfectICache = config.perfectICache;
    Core core(stream, mem, engines.iengine.get(), core_cfg,
              engines.dengine.get());

    // 3. Run — full-detail Core::run(), or the sampling controller
    // when the sampling axis is enabled (the legacy path stays
    // byte-identical: nothing below branches on sampling except the
    // extra result block).
    sample::SampledStats sampledStats;
    if (config.sample.enabled) {
        sample::CheckpointParts parts =
            makeCheckpointParts(mem, core, engines);
        sampledStats =
            sample::runSampled(core, mem, stream, config.sample,
                               parts, workload.name,
                               config.describe());
    } else {
        core.run();
    }

    // 4. Collect.
    SimResult r;
    r.workload = workload.name;
    r.config = config.describe();
    r.cycles = core.cycles();
    r.instrs = core.committedInstrs();
    if (config.sample.enabled) {
        // Warmed instructions executed (functionally); cycles()
        // already includes the IPC-scaled clock jumps, so the pair
        // remains an end-to-end CPI estimate.
        r.instrs += sampledStats.warmedInstrs;
        r.sampledEnabled = true;
        r.sampled = sampledStats;
    }

    accumulateCacheCounters(r, mem.l1i(), mem.l1d());
    r.l2Misses = mem.l2().demandMisses();
    accumulateArbiterCounters(r, mem.arbiter());
    r.busLines = mem.port().requests();

    r.branchMispredicts = core.branchUnit().mispredicts();
    if (engines.cghc != nullptr) {
        r.cghcAccesses = engines.cghc->accesses();
        r.cghcHits = engines.cghc->hits();
    }
    accumulateDegraded(r, engines);
    r.instrsPerCall = stream.instrsPerCall();
    return r;
}

} // namespace cgp
