#include "harness/simulator.hh"

#include <memory>

#include "cpu/core.hh"
#include "dprefetch/factory.hh"
#include "dprefetch/failsoft.hh"
#include "mem/hierarchy.hh"
#include "mem/pfarbiter.hh"
#include "prefetch/cgp.hh"
#include "prefetch/failsoft.hh"
#include "prefetch/nextline.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/software_cgp.hh"
#include "trace/expand.hh"
#include "util/logging.hh"

namespace cgp
{

SimResult
runSimulation(const Workload &workload, const SimConfig &config)
{
    cgp_assert(workload.registry != nullptr && workload.trace != nullptr,
               "incomplete workload");

    // 1. Bind the trace to the requested binary layout.
    LayoutBuilder builder(*workload.registry);
    ExecutionProfile empty_profile;
    const ExecutionProfile &profile = workload.omProfile
        ? *workload.omProfile
        : empty_profile;
    const CodeImage image = builder.build(config.layout, profile);

    ExpanderConfig expand_cfg;
    expand_cfg.instrScale =
        config.layout == LayoutKind::PettisHansen
        ? config.omInstrScale
        : 1.0;
    InstructionExpander stream(*workload.registry, image,
                               *workload.trace, expand_cfg);

    // 2. Assemble the machine.
    MemoryHierarchy mem(config.mem);

    // Prefetching is an optimisation: a prefetcher that faults — at
    // construction or at any hook mid-run — must not take down the
    // simulation.  Construction failures fall back to no-prefetch
    // here; mid-run faults are absorbed by the FailSoft wrapper.
    std::unique_ptr<InstrPrefetcher> inner;
    const Cghc *cghc = nullptr;
    bool ctor_failed = false;
    std::string ctor_reason;
    try {
        switch (config.prefetch) {
          case PrefetchKind::None:
            break;
          case PrefetchKind::NextNLine:
            inner = std::make_unique<NextNLinePrefetcher>(
                mem.l1i(), config.depth);
            break;
          case PrefetchKind::RunAheadNL:
            inner = std::make_unique<RunAheadNLPrefetcher>(
                mem.l1i(), config.depth, config.runaheadSkip);
            break;
          case PrefetchKind::Cgp: {
            auto cgp = std::make_unique<CgpPrefetcher>(
                mem.l1i(), config.cghc, config.depth);
            cghc = &cgp->cghc();
            inner = std::move(cgp);
            break;
          }
          case PrefetchKind::SoftwareCgp:
            // The "compiler" consumes the same profile feedback OM
            // does.
            inner = std::make_unique<SoftwareCgpPrefetcher>(
                mem.l1i(), *workload.registry, image, profile,
                config.depth);
            break;
        }
    } catch (const std::exception &e) {
        ctor_failed = true;
        ctor_reason = e.what();
        cghc = nullptr;
        inner.reset();
        cgp_error("prefetcher construction failed (", ctor_reason,
                  "); running without prefetch");
    }

    FailSoftPrefetcher *failsoft = nullptr;
    std::unique_ptr<InstrPrefetcher> prefetcher;
    if (inner != nullptr) {
        auto fs =
            std::make_unique<FailSoftPrefetcher>(std::move(inner));
        failsoft = fs.get();
        prefetcher = std::move(fs);
    }

    // The data-side engine gets the same fail-soft treatment: a
    // construction failure falls back to no data prefetch, a mid-run
    // fault disables it for the rest of the run.
    std::unique_ptr<DataPrefetcher> dinner;
    try {
        dinner = makeDataPrefetcher(mem.l1d(), config.dprefetch);
    } catch (const std::exception &e) {
        if (!ctor_failed) {
            ctor_failed = true;
            ctor_reason = e.what();
        }
        dinner.reset();
        cgp_error("data prefetcher construction failed (", e.what(),
                  "); running without data prefetch");
    }
    FailSoftDataPrefetcher *dfailsoft = nullptr;
    std::unique_ptr<DataPrefetcher> dprefetcher;
    if (dinner != nullptr) {
        auto fs = std::make_unique<FailSoftDataPrefetcher>(
            std::move(dinner));
        dfailsoft = fs.get();
        dprefetcher = std::move(fs);
    }

    CoreConfig core_cfg = config.core;
    core_cfg.perfectICache = config.perfectICache;
    Core core(stream, mem, prefetcher.get(), core_cfg,
              dprefetcher.get());

    // 3. Run.
    core.run();

    // 4. Collect.
    SimResult r;
    r.workload = workload.name;
    r.config = config.describe();
    r.cycles = core.cycles();
    r.instrs = core.committedInstrs();

    const Cache &l1i = mem.l1i();
    const Cache &l1d = mem.l1d();
    r.icacheAccesses = l1i.demandAccesses();
    r.icacheMisses = l1i.demandMisses();
    r.dcacheAccesses = l1d.demandAccesses();
    r.dcacheMisses = l1d.demandMisses();
    r.l2Misses = mem.l2().demandMisses();

    r.nl.issued = l1i.prefetchesIssued(AccessSource::PrefetchNL);
    r.nl.prefHits = l1i.prefHits(AccessSource::PrefetchNL);
    r.nl.delayedHits = l1i.delayedHits(AccessSource::PrefetchNL);
    r.nl.useless = l1i.useless(AccessSource::PrefetchNL);
    r.cghc.issued = l1i.prefetchesIssued(AccessSource::PrefetchCGHC);
    r.cghc.prefHits = l1i.prefHits(AccessSource::PrefetchCGHC);
    r.cghc.delayedHits =
        l1i.delayedHits(AccessSource::PrefetchCGHC);
    r.cghc.useless = l1i.useless(AccessSource::PrefetchCGHC);
    r.dpf.issued =
        l1d.prefetchesIssued(AccessSource::DataPrefetch);
    r.dpf.prefHits = l1d.prefHits(AccessSource::DataPrefetch);
    r.dpf.delayedHits = l1d.delayedHits(AccessSource::DataPrefetch);
    r.dpf.useless = l1d.useless(AccessSource::DataPrefetch);
    r.squashedPrefetches = l1i.squashedPrefetches();
    r.dSquashedPrefetches = l1d.squashedPrefetches();
    if (mem.arbiter() != nullptr) {
        const PrefetchArbiter &arb = *mem.arbiter();
        const auto grab = [&arb](AccessSource src) {
            ArbiterBreakdown b;
            b.issued = arb.issued(src);
            b.deferred = arb.deferred(src);
            b.dropped = arb.dropped(src);
            b.duplicateMerged = arb.duplicateMerged(src);
            return b;
        };
        r.arbNl = grab(AccessSource::PrefetchNL);
        r.arbCghc = grab(AccessSource::PrefetchCGHC);
        r.arbDpf = grab(AccessSource::DataPrefetch);
    }
    r.busLines = mem.port().requests();

    r.branchMispredicts = core.branchUnit().mispredicts();
    if (cghc != nullptr) {
        r.cghcAccesses = cghc->accesses();
        r.cghcHits = cghc->hits();
    }
    if (ctor_failed) {
        r.prefetchDegraded = true;
        r.degradedReason = ctor_reason;
    } else if (failsoft != nullptr && failsoft->degraded()) {
        r.prefetchDegraded = true;
        r.degradedReason = failsoft->reason();
    } else if (dfailsoft != nullptr && dfailsoft->degraded()) {
        r.prefetchDegraded = true;
        r.degradedReason = dfailsoft->reason();
    }
    r.instrsPerCall = stream.instrsPerCall();
    return r;
}

} // namespace cgp
