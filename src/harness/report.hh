/**
 * @file
 * Reporting of simulation results: a one-screen human-readable
 * summary of a SimResult, side-by-side comparisons of several
 * results over the same workload (the building block of the
 * per-figure benches, exposed for downstream users), and the
 * canonical machine-readable JSON form shared by the experiment
 * engine's run directories and BENCH_*.json artifacts.
 */

#ifndef CGP_HARNESS_REPORT_HH
#define CGP_HARNESS_REPORT_HH

#include <ostream>
#include <vector>

#include "harness/simulator.hh"
#include "util/json.hh"

namespace cgp
{

/** Write a detailed single-run report. */
void writeReport(const SimResult &result, std::ostream &os);

/**
 * Write a comparison table of several runs of the same workload
 * (cycles, IPC, misses, prefetch usefulness), normalized to the
 * first entry.
 */
void writeComparison(const std::vector<SimResult> &results,
                     std::ostream &os);

/// @{ Canonical JSON form of a result.  The mapping is lossless:
/// simResultFromJson(toJson(r)) == r, and the emitted member order
/// is fixed so equal results serialize to identical bytes.
Json toJson(const PrefetchBreakdown &breakdown);
Json toJson(const SimResult &result);
PrefetchBreakdown prefetchBreakdownFromJson(const Json &json);
SimResult simResultFromJson(const Json &json);
/// @}

} // namespace cgp

#endif // CGP_HARNESS_REPORT_HH
