/**
 * @file
 * Human-readable reporting of simulation results: a one-screen
 * summary of a SimResult, and side-by-side comparisons of several
 * results over the same workload (the building block of the
 * per-figure benches, exposed for downstream users).
 */

#ifndef CGP_HARNESS_REPORT_HH
#define CGP_HARNESS_REPORT_HH

#include <ostream>
#include <vector>

#include "harness/simulator.hh"

namespace cgp
{

/** Write a detailed single-run report. */
void writeReport(const SimResult &result, std::ostream &os);

/**
 * Write a comparison table of several runs of the same workload
 * (cycles, IPC, misses, prefetch usefulness), normalized to the
 * first entry.
 */
void writeComparison(const std::vector<SimResult> &results,
                     std::ostream &os);

} // namespace cgp

#endif // CGP_HARNESS_REPORT_HH
