/**
 * @file
 * Simulation driver: bind a workload trace to a layout, run it
 * through the Table 1 machine under a SimConfig, and collect the
 * numbers every paper figure needs.
 */

#ifndef CGP_HARNESS_SIMULATOR_HH
#define CGP_HARNESS_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "harness/simconfig.hh"
#include "harness/workload.hh"
#include "sample/estimator.hh"
#include "server/stats.hh"

namespace cgp
{

/** Prefetch classification for one source (Figure 8/9 bars). */
struct PrefetchBreakdown
{
    std::uint64_t issued = 0;
    std::uint64_t prefHits = 0;
    std::uint64_t delayedHits = 0;
    std::uint64_t useless = 0;

    double
    usefulFraction() const
    {
        const auto useful = prefHits + delayedHits;
        const auto classified = useful + useless;
        return classified == 0
            ? 0.0
            : static_cast<double>(useful)
                / static_cast<double>(classified);
    }

    friend bool
    operator==(const PrefetchBreakdown &a, const PrefetchBreakdown &b)
    {
        return a.issued == b.issued && a.prefHits == b.prefHits &&
            a.delayedHits == b.delayedHits && a.useless == b.useless;
    }
};

/** Per-engine arbiter accounting (shared L2-port arbitration). */
struct ArbiterBreakdown
{
    std::uint64_t issued = 0;    ///< admitted and sent to the cache
    std::uint64_t deferred = 0;  ///< queued behind demand traffic
    std::uint64_t dropped = 0;   ///< duplicate-filtered, gated, or
                                 ///< overflowed/stale
    std::uint64_t duplicateMerged = 0; ///< merged with a pending or
                                       ///< already-covered request

    bool
    any() const
    {
        return issued + deferred + dropped + duplicateMerged != 0;
    }

    friend bool
    operator==(const ArbiterBreakdown &a, const ArbiterBreakdown &b)
    {
        return a.issued == b.issued && a.deferred == b.deferred &&
            a.dropped == b.dropped &&
            a.duplicateMerged == b.duplicateMerged;
    }
};

struct SimResult
{
    std::string workload;
    std::string config;

    Cycle cycles = 0;
    std::uint64_t instrs = 0;

    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t dcacheMisses = 0;
    std::uint64_t l2Misses = 0;

    PrefetchBreakdown nl;   ///< NL-attributed prefetches (I-side)
    PrefetchBreakdown cghc; ///< CGHC-attributed prefetches (I-side)
    PrefetchBreakdown dpf;  ///< data-prefetch engine (D-side)
    std::uint64_t squashedPrefetches = 0;  ///< L1-I squashes
    std::uint64_t dSquashedPrefetches = 0; ///< L1-D squashes

    /// @{ Shared-port arbitration, per engine (all zero when the
    /// arbiter is disabled).
    ArbiterBreakdown arbNl;
    ArbiterBreakdown arbCghc;
    ArbiterBreakdown arbDpf;
    /// @}

    /** L2->L1 lines moved (demand fills + prefetch fills). */
    std::uint64_t busLines = 0;

    std::uint64_t branchMispredicts = 0;
    std::uint64_t cghcAccesses = 0;
    std::uint64_t cghcHits = 0;

    /**
     * True when the prefetcher faulted (at construction or mid-run)
     * and the simulation finished without prefetching from that
     * point — graceful degradation, not a crash.
     */
    bool prefetchDegraded = false;
    std::string degradedReason; ///< what disabled it (empty if healthy)

    double instrsPerCall = 0.0; ///< paper §5.4: ~43 for DBMS

    /// @{ Multi-core server-model run (config.server.enabled): the
    /// scalar counters above are aggregated across cores; `server`
    /// carries the per-core breakdown and session-latency summary.
    bool serverEnabled = false;
    server::ServerStats server;
    /// @}

    /// @{ Sampled run (config.sample.enabled): cycles/instrs above
    /// include the fast-forwarded regions (estimated clock, warmed
    /// instructions); `sampled` carries the per-window estimators
    /// and the detailed-cycle count the speedup claim rests on.
    bool sampledEnabled = false;
    sample::SampledStats sampled;
    /// @}

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instrs)
                               / static_cast<double>(cycles);
    }

    PrefetchBreakdown
    totalPrefetch() const
    {
        PrefetchBreakdown t;
        t.issued = nl.issued + cghc.issued;
        t.prefHits = nl.prefHits + cghc.prefHits;
        t.delayedHits = nl.delayedHits + cghc.delayedHits;
        t.useless = nl.useless + cghc.useless;
        return t;
    }

    /** Field-wise equality (serialization round-trip checks). */
    friend bool
    operator==(const SimResult &a, const SimResult &b)
    {
        return a.workload == b.workload && a.config == b.config &&
            a.cycles == b.cycles && a.instrs == b.instrs &&
            a.icacheAccesses == b.icacheAccesses &&
            a.icacheMisses == b.icacheMisses &&
            a.dcacheAccesses == b.dcacheAccesses &&
            a.dcacheMisses == b.dcacheMisses &&
            a.l2Misses == b.l2Misses && a.nl == b.nl &&
            a.cghc == b.cghc && a.dpf == b.dpf &&
            a.squashedPrefetches == b.squashedPrefetches &&
            a.dSquashedPrefetches == b.dSquashedPrefetches &&
            a.arbNl == b.arbNl && a.arbCghc == b.arbCghc &&
            a.arbDpf == b.arbDpf &&
            a.busLines == b.busLines &&
            a.branchMispredicts == b.branchMispredicts &&
            a.cghcAccesses == b.cghcAccesses &&
            a.cghcHits == b.cghcHits &&
            a.prefetchDegraded == b.prefetchDegraded &&
            a.degradedReason == b.degradedReason &&
            a.instrsPerCall == b.instrsPerCall &&
            a.serverEnabled == b.serverEnabled &&
            a.server == b.server &&
            a.sampledEnabled == b.sampledEnabled &&
            a.sampled == b.sampled;
    }
};

/** Run one (workload, config) point. */
SimResult runSimulation(const Workload &workload,
                        const SimConfig &config);

} // namespace cgp

#endif // CGP_HARNESS_SIMULATOR_HH
