#include "harness/report.hh"

#include "util/logging.hh"
#include "util/table.hh"

namespace cgp
{

void
writeReport(const SimResult &result, std::ostream &os)
{
    TablePrinter t(result.workload + " / " + result.config);
    t.setHeader({"metric", "value"});
    t.addRow({"cycles", TablePrinter::num(result.cycles)});
    t.addRow({"instructions", TablePrinter::num(result.instrs)});
    t.addRow({"IPC", TablePrinter::fixed(result.ipc(), 3)});
    t.addRule();
    t.addRow({"I-cache accesses",
              TablePrinter::num(result.icacheAccesses)});
    t.addRow({"I-cache misses",
              TablePrinter::num(result.icacheMisses)});
    if (result.icacheAccesses > 0) {
        t.addRow({"I-cache miss ratio",
                  TablePrinter::percent(
                      static_cast<double>(result.icacheMisses) /
                          static_cast<double>(result.icacheAccesses),
                      2)});
    }
    t.addRow({"D-cache accesses",
              TablePrinter::num(result.dcacheAccesses)});
    t.addRow({"D-cache misses",
              TablePrinter::num(result.dcacheMisses)});
    if (result.dcacheAccesses > 0) {
        t.addRow({"D-cache miss ratio",
                  TablePrinter::percent(
                      static_cast<double>(result.dcacheMisses) /
                          static_cast<double>(result.dcacheAccesses),
                      2)});
    }
    t.addRow({"L2 misses", TablePrinter::num(result.l2Misses)});
    t.addRow({"bus lines (L1<->L2)",
              TablePrinter::num(result.busLines)});
    t.addRow({"branch mispredicts",
              TablePrinter::num(result.branchMispredicts)});
    t.addRow({"instructions / call",
              TablePrinter::fixed(result.instrsPerCall, 1)});

    const auto total = result.totalPrefetch();
    if (total.issued > 0) {
        t.addRule();
        t.addRow({"prefetches issued",
                  TablePrinter::num(total.issued)});
        t.addRow({"  pref hits", TablePrinter::num(total.prefHits)});
        t.addRow({"  delayed hits",
                  TablePrinter::num(total.delayedHits)});
        t.addRow({"  useless", TablePrinter::num(total.useless)});
        t.addRow({"  useful fraction",
                  TablePrinter::percent(total.usefulFraction())});
        t.addRow({"  squashed",
                  TablePrinter::num(result.squashedPrefetches)});
        if (result.cghc.issued > 0) {
            t.addRow({"  CGHC-issued",
                      TablePrinter::num(result.cghc.issued)});
            t.addRow({"  CGHC useful fraction",
                      TablePrinter::percent(
                          result.cghc.usefulFraction())});
        }
    }
    if (result.dpf.issued > 0) {
        t.addRule();
        t.addRow({"D-prefetches issued",
                  TablePrinter::num(result.dpf.issued)});
        t.addRow({"  pref hits",
                  TablePrinter::num(result.dpf.prefHits)});
        t.addRow({"  delayed hits",
                  TablePrinter::num(result.dpf.delayedHits)});
        t.addRow({"  useless", TablePrinter::num(result.dpf.useless)});
        t.addRow({"  useful fraction",
                  TablePrinter::percent(result.dpf.usefulFraction())});
        t.addRow({"  squashed",
                  TablePrinter::num(result.dSquashedPrefetches)});
    }
    if (result.arbNl.any() || result.arbCghc.any() ||
        result.arbDpf.any()) {
        t.addRule();
        const auto arb_rows = [&t](const char *name,
                                   const ArbiterBreakdown &b) {
            if (!b.any())
                return;
            t.addRow({std::string("arbiter[") + name + "] issued",
                      TablePrinter::num(b.issued)});
            t.addRow({"  deferred", TablePrinter::num(b.deferred)});
            t.addRow({"  dropped", TablePrinter::num(b.dropped)});
            t.addRow({"  duplicate-merged",
                      TablePrinter::num(b.duplicateMerged)});
        };
        arb_rows("NL", result.arbNl);
        arb_rows("CGHC", result.arbCghc);
        arb_rows("D", result.arbDpf);
    }
    if (result.cghcAccesses > 0) {
        t.addRow({"CGHC accesses",
                  TablePrinter::num(result.cghcAccesses)});
        t.addRow({"CGHC hit rate",
                  TablePrinter::percent(
                      static_cast<double>(result.cghcHits) /
                          static_cast<double>(result.cghcAccesses))});
    }
    t.print(os);
}

void
writeComparison(const std::vector<SimResult> &results,
                std::ostream &os)
{
    cgp_assert(!results.empty(), "nothing to compare");
    TablePrinter t("comparison: " + results.front().workload);
    t.setHeader({"config", "cycles", "norm", "IPC", "I$ misses",
                 "pf useful", "bus lines"});
    const auto base = static_cast<double>(results.front().cycles);
    for (const auto &r : results) {
        cgp_assert(r.workload == results.front().workload,
                   "comparing different workloads");
        const auto total = r.totalPrefetch();
        t.addRow({r.config, TablePrinter::num(r.cycles),
                  TablePrinter::fixed(
                      static_cast<double>(r.cycles) / base, 3),
                  TablePrinter::fixed(r.ipc(), 2),
                  TablePrinter::num(r.icacheMisses),
                  total.issued > 0
                      ? TablePrinter::percent(total.usefulFraction())
                      : "-",
                  TablePrinter::num(r.busLines)});
    }
    t.print(os);
}

Json
toJson(const PrefetchBreakdown &breakdown)
{
    Json j = Json::object();
    j.set("issued", breakdown.issued);
    j.set("pref_hits", breakdown.prefHits);
    j.set("delayed_hits", breakdown.delayedHits);
    j.set("useless", breakdown.useless);
    return j;
}

namespace
{

Json
arbToJson(const ArbiterBreakdown &breakdown)
{
    Json j = Json::object();
    j.set("issued", breakdown.issued);
    j.set("deferred", breakdown.deferred);
    j.set("dropped", breakdown.dropped);
    j.set("duplicate_merged", breakdown.duplicateMerged);
    return j;
}

// Absent in artifacts written before the arbiter existed; default to
// all-zero so old run directories keep parsing.
ArbiterBreakdown
arbFromJson(const Json &parent, std::string_view key)
{
    ArbiterBreakdown b;
    const Json *j = parent.find(key);
    if (j == nullptr)
        return b;
    b.issued = j->at("issued").asUint();
    b.deferred = j->at("deferred").asUint();
    b.dropped = j->at("dropped").asUint();
    b.duplicateMerged = j->at("duplicate_merged").asUint();
    return b;
}

} // namespace

Json
toJson(const SimResult &result)
{
    Json j = Json::object();
    j.set("workload", result.workload);
    j.set("config", result.config);
    j.set("cycles", result.cycles);
    j.set("instrs", result.instrs);
    j.set("icache_accesses", result.icacheAccesses);
    j.set("icache_misses", result.icacheMisses);
    j.set("dcache_accesses", result.dcacheAccesses);
    j.set("dcache_misses", result.dcacheMisses);
    j.set("l2_misses", result.l2Misses);
    j.set("nl", toJson(result.nl));
    j.set("cghc", toJson(result.cghc));
    j.set("dpf", toJson(result.dpf));
    j.set("squashed_prefetches", result.squashedPrefetches);
    j.set("d_squashed_prefetches", result.dSquashedPrefetches);
    j.set("arb_nl", arbToJson(result.arbNl));
    j.set("arb_cghc", arbToJson(result.arbCghc));
    j.set("arb_dpf", arbToJson(result.arbDpf));
    j.set("bus_lines", result.busLines);
    j.set("branch_mispredicts", result.branchMispredicts);
    j.set("cghc_accesses", result.cghcAccesses);
    j.set("cghc_hits", result.cghcHits);
    j.set("prefetch_degraded", result.prefetchDegraded);
    j.set("degraded_reason", result.degradedReason);
    j.set("instrs_per_call", result.instrsPerCall);
    return j;
}

PrefetchBreakdown
prefetchBreakdownFromJson(const Json &json)
{
    PrefetchBreakdown p;
    p.issued = json.at("issued").asUint();
    p.prefHits = json.at("pref_hits").asUint();
    p.delayedHits = json.at("delayed_hits").asUint();
    p.useless = json.at("useless").asUint();
    return p;
}

SimResult
simResultFromJson(const Json &json)
{
    SimResult r;
    r.workload = json.at("workload").asString();
    r.config = json.at("config").asString();
    r.cycles = json.at("cycles").asUint();
    r.instrs = json.at("instrs").asUint();
    r.icacheAccesses = json.at("icache_accesses").asUint();
    r.icacheMisses = json.at("icache_misses").asUint();
    r.dcacheAccesses = json.at("dcache_accesses").asUint();
    r.dcacheMisses = json.at("dcache_misses").asUint();
    r.l2Misses = json.at("l2_misses").asUint();
    r.nl = prefetchBreakdownFromJson(json.at("nl"));
    r.cghc = prefetchBreakdownFromJson(json.at("cghc"));
    r.dpf = prefetchBreakdownFromJson(json.at("dpf"));
    r.squashedPrefetches = json.at("squashed_prefetches").asUint();
    r.dSquashedPrefetches =
        json.at("d_squashed_prefetches").asUint();
    r.arbNl = arbFromJson(json, "arb_nl");
    r.arbCghc = arbFromJson(json, "arb_cghc");
    r.arbDpf = arbFromJson(json, "arb_dpf");
    r.busLines = json.at("bus_lines").asUint();
    r.branchMispredicts = json.at("branch_mispredicts").asUint();
    r.cghcAccesses = json.at("cghc_accesses").asUint();
    r.cghcHits = json.at("cghc_hits").asUint();
    r.prefetchDegraded = json.at("prefetch_degraded").asBool();
    r.degradedReason = json.at("degraded_reason").asString();
    r.instrsPerCall = json.at("instrs_per_call").asDouble();
    return r;
}

} // namespace cgp
