#include "harness/report.hh"

#include "util/logging.hh"
#include "util/table.hh"

namespace cgp
{

void
writeReport(const SimResult &result, std::ostream &os)
{
    TablePrinter t(result.workload + " / " + result.config);
    t.setHeader({"metric", "value"});
    t.addRow({"cycles", TablePrinter::num(result.cycles)});
    t.addRow({"instructions", TablePrinter::num(result.instrs)});
    t.addRow({"IPC", TablePrinter::fixed(result.ipc(), 3)});
    t.addRule();
    t.addRow({"I-cache accesses",
              TablePrinter::num(result.icacheAccesses)});
    t.addRow({"I-cache misses",
              TablePrinter::num(result.icacheMisses)});
    if (result.icacheAccesses > 0) {
        t.addRow({"I-cache miss ratio",
                  TablePrinter::percent(
                      static_cast<double>(result.icacheMisses) /
                          static_cast<double>(result.icacheAccesses),
                      2)});
    }
    t.addRow({"D-cache accesses",
              TablePrinter::num(result.dcacheAccesses)});
    t.addRow({"D-cache misses",
              TablePrinter::num(result.dcacheMisses)});
    if (result.dcacheAccesses > 0) {
        t.addRow({"D-cache miss ratio",
                  TablePrinter::percent(
                      static_cast<double>(result.dcacheMisses) /
                          static_cast<double>(result.dcacheAccesses),
                      2)});
    }
    t.addRow({"L2 misses", TablePrinter::num(result.l2Misses)});
    t.addRow({"bus lines (L1<->L2)",
              TablePrinter::num(result.busLines)});
    t.addRow({"branch mispredicts",
              TablePrinter::num(result.branchMispredicts)});
    t.addRow({"instructions / call",
              TablePrinter::fixed(result.instrsPerCall, 1)});

    const auto total = result.totalPrefetch();
    if (total.issued > 0) {
        t.addRule();
        t.addRow({"prefetches issued",
                  TablePrinter::num(total.issued)});
        t.addRow({"  pref hits", TablePrinter::num(total.prefHits)});
        t.addRow({"  delayed hits",
                  TablePrinter::num(total.delayedHits)});
        t.addRow({"  useless", TablePrinter::num(total.useless)});
        t.addRow({"  useful fraction",
                  TablePrinter::percent(total.usefulFraction())});
        t.addRow({"  squashed",
                  TablePrinter::num(result.squashedPrefetches)});
        if (result.cghc.issued > 0) {
            t.addRow({"  CGHC-issued",
                      TablePrinter::num(result.cghc.issued)});
            t.addRow({"  CGHC useful fraction",
                      TablePrinter::percent(
                          result.cghc.usefulFraction())});
        }
    }
    if (result.dpf.issued > 0) {
        t.addRule();
        t.addRow({"D-prefetches issued",
                  TablePrinter::num(result.dpf.issued)});
        t.addRow({"  pref hits",
                  TablePrinter::num(result.dpf.prefHits)});
        t.addRow({"  delayed hits",
                  TablePrinter::num(result.dpf.delayedHits)});
        t.addRow({"  useless", TablePrinter::num(result.dpf.useless)});
        t.addRow({"  useful fraction",
                  TablePrinter::percent(result.dpf.usefulFraction())});
        t.addRow({"  squashed",
                  TablePrinter::num(result.dSquashedPrefetches)});
    }
    if (result.arbNl.any() || result.arbCghc.any() ||
        result.arbDpf.any()) {
        t.addRule();
        const auto arb_rows = [&t](const char *name,
                                   const ArbiterBreakdown &b) {
            if (!b.any())
                return;
            t.addRow({std::string("arbiter[") + name + "] issued",
                      TablePrinter::num(b.issued)});
            t.addRow({"  deferred", TablePrinter::num(b.deferred)});
            t.addRow({"  dropped", TablePrinter::num(b.dropped)});
            t.addRow({"  duplicate-merged",
                      TablePrinter::num(b.duplicateMerged)});
        };
        arb_rows("NL", result.arbNl);
        arb_rows("CGHC", result.arbCghc);
        arb_rows("D", result.arbDpf);
    }
    if (result.cghcAccesses > 0) {
        t.addRow({"CGHC accesses",
                  TablePrinter::num(result.cghcAccesses)});
        t.addRow({"CGHC hit rate",
                  TablePrinter::percent(
                      static_cast<double>(result.cghcHits) /
                          static_cast<double>(result.cghcAccesses))});
    }
    if (result.serverEnabled) {
        const auto &srv = result.server;
        t.addRule();
        t.addRow({"server cores", TablePrinter::num(srv.cores)});
        t.addRow({"sessions", TablePrinter::num(srv.sessions)});
        t.addRow({"queries served",
                  TablePrinter::num(srv.queriesServed)});
        t.addRow({"queries / Mcycle",
                  TablePrinter::fixed(srv.queriesPerMcycle(), 2)});
        t.addRow({"latency p50", TablePrinter::num(srv.latencyP50)});
        t.addRow({"latency p95", TablePrinter::num(srv.latencyP95)});
        t.addRow({"latency p99", TablePrinter::num(srv.latencyP99)});
        t.addRow({"L2-port wait cycles",
                  TablePrinter::num(srv.portWaitCycles)});
        for (std::size_t i = 0; i < srv.perCore.size(); ++i) {
            t.addRow({"  core " + std::to_string(i) + " util",
                      TablePrinter::percent(
                          srv.perCore[i].utilization())});
        }
    }
    if (result.sampledEnabled) {
        const auto &smp = result.sampled;
        t.addRule();
        t.addRow({"sampled windows", TablePrinter::num(smp.windows)});
        t.addRow({"detailed cycles",
                  TablePrinter::num(smp.detailedCycles)});
        t.addRow({"warmed instrs",
                  TablePrinter::num(smp.warmedInstrs)});
        if (smp.detailedCycles > 0) {
            t.addRow({"cycle-loop speedup",
                      TablePrinter::fixed(
                          static_cast<double>(result.cycles) /
                              static_cast<double>(smp.detailedCycles),
                          1) + "x"});
        }
        const auto est_row = [&t](const char *name,
                                  const sample::SampledEstimate &e) {
            t.addRow({name,
                      TablePrinter::fixed(e.mean, 4) + " [" +
                          TablePrinter::fixed(e.ciLow, 4) + ", " +
                          TablePrinter::fixed(e.ciHigh, 4) + "]"});
        };
        est_row("CPI est [95% CI]", smp.cpi);
        est_row("L1-I miss rate est", smp.l1iMissRate);
        est_row("L1-D miss rate est", smp.l1dMissRate);
        est_row("fetch stall/instr est", smp.fetchStallPerInstr);
    }
    t.print(os);
}

void
writeComparison(const std::vector<SimResult> &results,
                std::ostream &os)
{
    cgp_assert(!results.empty(), "nothing to compare");
    TablePrinter t("comparison: " + results.front().workload);
    t.setHeader({"config", "cycles", "norm", "IPC", "I$ misses",
                 "pf useful", "bus lines"});
    const auto base = static_cast<double>(results.front().cycles);
    for (const auto &r : results) {
        cgp_assert(r.workload == results.front().workload,
                   "comparing different workloads");
        const auto total = r.totalPrefetch();
        t.addRow({r.config, TablePrinter::num(r.cycles),
                  TablePrinter::fixed(
                      static_cast<double>(r.cycles) / base, 3),
                  TablePrinter::fixed(r.ipc(), 2),
                  TablePrinter::num(r.icacheMisses),
                  total.issued > 0
                      ? TablePrinter::percent(total.usefulFraction())
                      : "-",
                  TablePrinter::num(r.busLines)});
    }
    t.print(os);
}

Json
toJson(const PrefetchBreakdown &breakdown)
{
    Json j = Json::object();
    j.set("issued", breakdown.issued);
    j.set("pref_hits", breakdown.prefHits);
    j.set("delayed_hits", breakdown.delayedHits);
    j.set("useless", breakdown.useless);
    return j;
}

namespace
{

Json
arbToJson(const ArbiterBreakdown &breakdown)
{
    Json j = Json::object();
    j.set("issued", breakdown.issued);
    j.set("deferred", breakdown.deferred);
    j.set("dropped", breakdown.dropped);
    j.set("duplicate_merged", breakdown.duplicateMerged);
    return j;
}

// Absent in artifacts written before the arbiter existed; default to
// all-zero so old run directories keep parsing.
ArbiterBreakdown
arbFromJson(const Json &parent, std::string_view key)
{
    ArbiterBreakdown b;
    const Json *j = parent.find(key);
    if (j == nullptr)
        return b;
    b.issued = j->at("issued").asUint();
    b.deferred = j->at("deferred").asUint();
    b.dropped = j->at("dropped").asUint();
    b.duplicateMerged = j->at("duplicate_merged").asUint();
    return b;
}

Json
serverToJson(const server::ServerStats &stats)
{
    Json j = Json::object();
    j.set("cores", stats.cores);
    j.set("sessions", stats.sessions);
    j.set("cycles", stats.cycles);
    j.set("queries_served", stats.queriesServed);
    j.set("binds", stats.binds);
    j.set("latency_p50", stats.latencyP50);
    j.set("latency_p95", stats.latencyP95);
    j.set("latency_p99", stats.latencyP99);
    j.set("port_wait_cycles", stats.portWaitCycles);
    Json per_core = Json::array();
    for (const auto &c : stats.perCore) {
        Json cj = Json::object();
        cj.set("cycles", c.cycles);
        cj.set("instrs", c.instrs);
        cj.set("idle_cycles", c.idleCycles);
        cj.set("icache_accesses", c.icacheAccesses);
        cj.set("icache_misses", c.icacheMisses);
        cj.set("dcache_accesses", c.dcacheAccesses);
        cj.set("dcache_misses", c.dcacheMisses);
        cj.set("bus_lines", c.busLines);
        cj.set("port_wait_cycles", c.portWaitCycles);
        cj.set("queries", c.queries);
        cj.set("binds", c.binds);
        per_core.push(std::move(cj));
    }
    j.set("per_core", std::move(per_core));
    return j;
}

Json
estimateToJson(const sample::SampledEstimate &est)
{
    Json j = Json::object();
    j.set("samples", est.samples);
    j.set("mean", est.mean);
    j.set("sem", est.sem);
    j.set("ci_low", est.ciLow);
    j.set("ci_high", est.ciHigh);
    return j;
}

sample::SampledEstimate
estimateFromJson(const Json &j)
{
    sample::SampledEstimate est;
    est.samples = j.at("samples").asUint();
    est.mean = j.at("mean").asDouble();
    est.sem = j.at("sem").asDouble();
    est.ciLow = j.at("ci_low").asDouble();
    est.ciHigh = j.at("ci_high").asDouble();
    return est;
}

Json
sampledToJson(const sample::SampledStats &stats)
{
    Json j = Json::object();
    j.set("windows", stats.windows);
    j.set("detailed_cycles", stats.detailedCycles);
    j.set("detailed_instrs", stats.detailedInstrs);
    j.set("warmed_instrs", stats.warmedInstrs);
    j.set("skipped_cycles", stats.skippedCycles);
    j.set("checkpoint_used", stats.checkpointUsed);
    j.set("checkpoint_saved", stats.checkpointSaved);
    j.set("cpi", estimateToJson(stats.cpi));
    j.set("l1i_miss_rate", estimateToJson(stats.l1iMissRate));
    j.set("l1d_miss_rate", estimateToJson(stats.l1dMissRate));
    j.set("fetch_stall_per_instr",
          estimateToJson(stats.fetchStallPerInstr));
    return j;
}

sample::SampledStats
sampledFromJson(const Json &j)
{
    sample::SampledStats s;
    s.windows = j.at("windows").asUint();
    s.detailedCycles = j.at("detailed_cycles").asUint();
    s.detailedInstrs = j.at("detailed_instrs").asUint();
    s.warmedInstrs = j.at("warmed_instrs").asUint();
    s.skippedCycles = j.at("skipped_cycles").asUint();
    s.checkpointUsed = j.at("checkpoint_used").asBool();
    s.checkpointSaved = j.at("checkpoint_saved").asBool();
    s.cpi = estimateFromJson(j.at("cpi"));
    s.l1iMissRate = estimateFromJson(j.at("l1i_miss_rate"));
    s.l1dMissRate = estimateFromJson(j.at("l1d_miss_rate"));
    s.fetchStallPerInstr =
        estimateFromJson(j.at("fetch_stall_per_instr"));
    return s;
}

server::ServerStats
serverFromJson(const Json &j)
{
    server::ServerStats s;
    s.cores = j.at("cores").asUint();
    s.sessions = j.at("sessions").asUint();
    s.cycles = j.at("cycles").asUint();
    s.queriesServed = j.at("queries_served").asUint();
    s.binds = j.at("binds").asUint();
    s.latencyP50 = j.at("latency_p50").asUint();
    s.latencyP95 = j.at("latency_p95").asUint();
    s.latencyP99 = j.at("latency_p99").asUint();
    s.portWaitCycles = j.at("port_wait_cycles").asUint();
    for (const Json &cj : j.at("per_core").items()) {
        server::ServerCoreStats c;
        c.cycles = cj.at("cycles").asUint();
        c.instrs = cj.at("instrs").asUint();
        c.idleCycles = cj.at("idle_cycles").asUint();
        c.icacheAccesses = cj.at("icache_accesses").asUint();
        c.icacheMisses = cj.at("icache_misses").asUint();
        c.dcacheAccesses = cj.at("dcache_accesses").asUint();
        c.dcacheMisses = cj.at("dcache_misses").asUint();
        c.busLines = cj.at("bus_lines").asUint();
        c.portWaitCycles = cj.at("port_wait_cycles").asUint();
        c.queries = cj.at("queries").asUint();
        c.binds = cj.at("binds").asUint();
        s.perCore.push_back(c);
    }
    return s;
}

} // namespace

Json
toJson(const SimResult &result)
{
    Json j = Json::object();
    j.set("workload", result.workload);
    j.set("config", result.config);
    j.set("cycles", result.cycles);
    j.set("instrs", result.instrs);
    j.set("icache_accesses", result.icacheAccesses);
    j.set("icache_misses", result.icacheMisses);
    j.set("dcache_accesses", result.dcacheAccesses);
    j.set("dcache_misses", result.dcacheMisses);
    j.set("l2_misses", result.l2Misses);
    j.set("nl", toJson(result.nl));
    j.set("cghc", toJson(result.cghc));
    j.set("dpf", toJson(result.dpf));
    j.set("squashed_prefetches", result.squashedPrefetches);
    j.set("d_squashed_prefetches", result.dSquashedPrefetches);
    j.set("arb_nl", arbToJson(result.arbNl));
    j.set("arb_cghc", arbToJson(result.arbCghc));
    j.set("arb_dpf", arbToJson(result.arbDpf));
    j.set("bus_lines", result.busLines);
    j.set("branch_mispredicts", result.branchMispredicts);
    j.set("cghc_accesses", result.cghcAccesses);
    j.set("cghc_hits", result.cghcHits);
    j.set("prefetch_degraded", result.prefetchDegraded);
    j.set("degraded_reason", result.degradedReason);
    j.set("instrs_per_call", result.instrsPerCall);
    // Emitted only for server-model runs so legacy artifacts (and
    // their goldens) stay byte-identical.
    if (result.serverEnabled)
        j.set("server", serverToJson(result.server));
    // Same backward-compatibility contract for sampled runs.
    if (result.sampledEnabled)
        j.set("sampled", sampledToJson(result.sampled));
    return j;
}

PrefetchBreakdown
prefetchBreakdownFromJson(const Json &json)
{
    PrefetchBreakdown p;
    p.issued = json.at("issued").asUint();
    p.prefHits = json.at("pref_hits").asUint();
    p.delayedHits = json.at("delayed_hits").asUint();
    p.useless = json.at("useless").asUint();
    return p;
}

SimResult
simResultFromJson(const Json &json)
{
    SimResult r;
    r.workload = json.at("workload").asString();
    r.config = json.at("config").asString();
    r.cycles = json.at("cycles").asUint();
    r.instrs = json.at("instrs").asUint();
    r.icacheAccesses = json.at("icache_accesses").asUint();
    r.icacheMisses = json.at("icache_misses").asUint();
    r.dcacheAccesses = json.at("dcache_accesses").asUint();
    r.dcacheMisses = json.at("dcache_misses").asUint();
    r.l2Misses = json.at("l2_misses").asUint();
    r.nl = prefetchBreakdownFromJson(json.at("nl"));
    r.cghc = prefetchBreakdownFromJson(json.at("cghc"));
    r.dpf = prefetchBreakdownFromJson(json.at("dpf"));
    r.squashedPrefetches = json.at("squashed_prefetches").asUint();
    r.dSquashedPrefetches =
        json.at("d_squashed_prefetches").asUint();
    r.arbNl = arbFromJson(json, "arb_nl");
    r.arbCghc = arbFromJson(json, "arb_cghc");
    r.arbDpf = arbFromJson(json, "arb_dpf");
    r.busLines = json.at("bus_lines").asUint();
    r.branchMispredicts = json.at("branch_mispredicts").asUint();
    r.cghcAccesses = json.at("cghc_accesses").asUint();
    r.cghcHits = json.at("cghc_hits").asUint();
    r.prefetchDegraded = json.at("prefetch_degraded").asBool();
    r.degradedReason = json.at("degraded_reason").asString();
    r.instrsPerCall = json.at("instrs_per_call").asDouble();
    // Absent in pre-server artifacts and in legacy runs.
    if (const Json *srv = json.find("server")) {
        r.serverEnabled = true;
        r.server = serverFromJson(*srv);
    }
    if (const Json *smp = json.find("sampled")) {
        r.sampledEnabled = true;
        r.sampled = sampledFromJson(*smp);
    }
    return r;
}

} // namespace cgp
