/**
 * @file
 * Workload construction: runs the real database system (or a SPEC
 * proxy) natively, records per-thread traces, interleaves them with
 * the OS-scheduler stub, and derives the OM feedback profile exactly
 * as the paper does (profiles of wisc-prof and wisc+tpch, merged).
 */

#ifndef CGP_HARNESS_WORKLOAD_HH
#define CGP_HARNESS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "codegen/profile.hh"
#include "codegen/registry.hh"
#include "spec/cpu2000.hh"
#include "trace/events.hh"

namespace cgp
{

/** One measurable workload: a trace plus its program identity. */
struct Workload
{
    std::string name;
    std::shared_ptr<FunctionRegistry> registry;
    std::shared_ptr<TraceBuffer> trace;

    /** OM feedback (shared across a workload set). */
    std::shared_ptr<ExecutionProfile> omProfile;

    /**
     * Per-query traces the server model's sessions draw from — the
     * same buffers `trace` was merged out of.  Null for workloads
     * without a concurrent-query structure (SPEC proxies); the
     * server then treats the whole trace as a one-query library.
     */
    std::shared_ptr<std::vector<TraceBuffer>> queryLibrary;

    /** Scheduler stub replayed at each session bind (may be null). */
    std::shared_ptr<TraceBuffer> switchStub;
};

/** The paper's four database workloads (§4.1), sharing one binary. */
struct DbWorkloadSet
{
    std::shared_ptr<FunctionRegistry> registry;
    std::vector<Workload> workloads; ///< wisc-prof, wisc-large-1,
                                     ///< wisc-large-2, wisc+tpch
    std::shared_ptr<ExecutionProfile> omProfile;
};

class WorkloadFactory
{
  public:
    /**
     * Scale factor applied to tuple counts (CGP_SCALE environment
     * variable; default keeps full-suite simulations to minutes).
     */
    static double scale();

    /** Scheduling quantum in instructions for query interleaving. */
    static std::uint64_t quantumInstrs();

    /** Build all four DB workloads plus the merged OM profile,
     *  at the environment scale (CGP_SCALE). */
    static DbWorkloadSet buildDbSet();

    /** Same, at an explicit scale.  Builds are deterministic: the
     *  same @p scale always produces the same traces regardless of
     *  the environment.  Throws std::invalid_argument unless
     *  scale > 0. */
    static DbWorkloadSet buildDbSet(double scale);

    /** Build one SPEC proxy workload (train input) + its profile
     *  (test input), per the paper's §5.7 methodology. */
    static Workload buildSpec(const spec::SpecProgramSpec &spec);

    /** Same, at an explicit scale (see buildDbSet(double)). */
    static Workload buildSpec(const spec::SpecProgramSpec &spec,
                              double scale);

    /** All seven CPU2000 proxies. */
    static std::vector<Workload> buildCpu2000Suite();

    /** Same, at an explicit scale (see buildDbSet(double)). */
    static std::vector<Workload> buildCpu2000Suite(double scale);
};

} // namespace cgp

#endif // CGP_HARNESS_WORKLOAD_HH
