#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cgp
{
namespace detail
{

namespace
{

/**
 * When set (by tests), panic/fatal throw instead of terminating so
 * death paths can be exercised without forking.
 */
bool throwOnError = false;

} // anonymous namespace

void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (throwOnError)
        throw std::logic_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace cgp
