#include "util/logging.hh"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace cgp
{

namespace
{

LogLevel printThreshold = LogLevel::Info;

/** Fixed-capacity ring of the last N events. */
struct LogRing
{
    std::vector<LogEvent> slots;
    std::size_t capacity = 256;
    std::size_t head = 0; ///< next write position
    std::uint64_t seq = 0;

    void
    record(LogLevel level, const std::string &msg)
    {
        LogEvent ev{++seq, level, msg};
        if (slots.size() < capacity) {
            slots.push_back(std::move(ev));
            head = slots.size() % capacity;
        } else {
            slots[head] = std::move(ev);
            head = (head + 1) % capacity;
        }
    }

    std::vector<LogEvent>
    snapshot() const
    {
        std::vector<LogEvent> out;
        out.reserve(slots.size());
        if (slots.size() < capacity) {
            out = slots;
        } else {
            for (std::size_t i = 0; i < slots.size(); ++i)
                out.push_back(slots[(head + i) % slots.size()]);
        }
        return out;
    }
};

LogRing &
ring()
{
    static LogRing r;
    return r;
}

/**
 * Guards the ring and the print path.  The experiment engine logs
 * per-job progress from worker threads; the lock keeps ring updates
 * race-free and whole messages unsplit on the output streams.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

} // anonymous namespace

const char *
toString(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    printThreshold = level;
}

LogLevel
logLevel()
{
    return printThreshold;
}

void
setLogRingCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(logMutex());
    LogRing &r = ring();
    r.capacity = capacity == 0 ? 1 : capacity;
    r.slots.clear();
    r.head = 0;
}

std::vector<LogEvent>
recentEvents()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return ring().snapshot();
}

void
clearRecentEvents()
{
    std::lock_guard<std::mutex> lock(logMutex());
    LogRing &r = ring();
    r.slots.clear();
    r.head = 0;
}

void
dumpRecentEvents(std::FILE *out)
{
    std::lock_guard<std::mutex> lock(logMutex());
    for (const LogEvent &ev : ring().snapshot())
        std::fprintf(out, "[%llu] %s: %s\n",
                     static_cast<unsigned long long>(ev.seq),
                     toString(ev.level), ev.message.c_str());
}

namespace detail
{

namespace
{

/**
 * When set (by tests), panic/fatal throw instead of terminating so
 * death paths can be exercised without forking.
 */
bool throwOnError = false;

} // anonymous namespace

void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        ring().record(LogLevel::Error, "panic: " + msg);
    }
    if (throwOnError)
        throw std::logic_error("panic: " + msg);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        ring().record(LogLevel::Error, "fatal: " + msg);
    }
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    ring().record(level, msg);
    if (level < printThreshold)
        return;
    if (level >= LogLevel::Warn)
        std::fprintf(stderr, "%s: %s\n", toString(level), msg.c_str());
    else
        std::fprintf(stdout, "%s: %s\n", toString(level), msg.c_str());
}

} // namespace detail
} // namespace cgp
