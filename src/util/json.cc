#include "util/json.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cgp
{

namespace
{

[[noreturn]] void
typeError(const char *want, Json::Type got)
{
    static const char *names[] = {"null",   "bool",  "int",
                                  "uint",   "double", "string",
                                  "array",  "object"};
    throw std::runtime_error(std::string("json: expected ") + want +
                             ", have " +
                             names[static_cast<int>(got)]);
}

} // anonymous namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool", type_);
    return bool_;
}

std::int64_t
Json::asInt() const
{
    switch (type_) {
      case Type::Int:
        return int_;
      case Type::Uint:
        if (uint_ > static_cast<std::uint64_t>(INT64_MAX))
            throw std::runtime_error("json: uint out of int64 range");
        return static_cast<std::int64_t>(uint_);
      case Type::Double:
        return static_cast<std::int64_t>(dbl_);
      default:
        typeError("number", type_);
    }
}

std::uint64_t
Json::asUint() const
{
    switch (type_) {
      case Type::Uint:
        return uint_;
      case Type::Int:
        if (int_ < 0)
            throw std::runtime_error("json: negative value as uint");
        return static_cast<std::uint64_t>(int_);
      case Type::Double:
        if (dbl_ < 0)
            throw std::runtime_error("json: negative value as uint");
        return static_cast<std::uint64_t>(dbl_);
      default:
        typeError("number", type_);
    }
}

double
Json::asDouble() const
{
    switch (type_) {
      case Type::Double:
        return dbl_;
      case Type::Int:
        return static_cast<double>(int_);
      case Type::Uint:
        return static_cast<double>(uint_);
      default:
        typeError("number", type_);
    }
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string", type_);
    return str_;
}

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        typeError("array", type_);
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    typeError("array or object", type_);
}

const Json &
Json::operator[](std::size_t i) const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    if (i >= arr_.size())
        throw std::runtime_error("json: array index out of range");
    return arr_[i];
}

const Json::Array &
Json::items() const
{
    if (type_ != Type::Array)
        typeError("array", type_);
    return arr_;
}

Json &
Json::set(std::string key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        typeError("object", type_);
    for (auto &[k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(std::move(key), std::move(v));
    return *this;
}

bool
Json::remove(std::string_view key)
{
    if (type_ != Type::Object)
        return false;
    for (auto it = obj_.begin(); it != obj_.end(); ++it) {
        if (it->first == key) {
            obj_.erase(it);
            return true;
        }
    }
    return false;
}

const Json *
Json::find(std::string_view key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const Json &
Json::at(std::string_view key) const
{
    const Json *v = find(key);
    if (v == nullptr) {
        throw std::runtime_error("json: missing key '" +
                                 std::string(key) + "'");
    }
    return *v;
}

const Json::Object &
Json::members() const
{
    if (type_ != Type::Object)
        typeError("object", type_);
    return obj_;
}

bool
Json::operator==(const Json &other) const
{
    if (isNumber() && other.isNumber()) {
        // Compare across Int/Uint/Double by value.
        if (type_ == Type::Double || other.type_ == Type::Double)
            return asDouble() == other.asDouble();
        const bool neg_a = type_ == Type::Int && int_ < 0;
        const bool neg_b =
            other.type_ == Type::Int && other.int_ < 0;
        if (neg_a != neg_b)
            return false;
        if (neg_a)
            return int_ == other.int_;
        return asUint() == other.asUint();
    }
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null:
        return true;
      case Type::Bool:
        return bool_ == other.bool_;
      case Type::String:
        return str_ == other.str_;
      case Type::Array:
        return arr_ == other.arr_;
      case Type::Object:
        return obj_ == other.obj_;
      default:
        return false; // numbers handled above
    }
}

namespace
{

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    out += '\n';
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
}

} // anonymous namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[40];
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        std::snprintf(buf, sizeof buf, "%" PRId64, int_);
        out += buf;
        break;
      case Type::Uint:
        std::snprintf(buf, sizeof buf, "%" PRIu64, uint_);
        out += buf;
        break;
      case Type::Double:
        if (!std::isfinite(dbl_)) {
            out += "null"; // JSON has no inf/nan
        } else if (dbl_ == std::floor(dbl_) &&
                   std::fabs(dbl_) < 9.0e15) {
            // Keep a fraction marker so the value parses back as a
            // double, not an integer (round-trip type stability).
            std::snprintf(buf, sizeof buf, "%.1f", dbl_);
            out += buf;
        } else {
            std::snprintf(buf, sizeof buf, "%.17g", dbl_);
            out += buf;
        }
        break;
      case Type::String:
        escapeString(out, str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (indent >= 0)
                newlineIndent(out, indent, depth + 1);
            escapeString(out, obj_[i].first);
            out += indent >= 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(out, indent, depth);
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char
    take()
    {
        const char c = peek();
        ++pos_;
        return c;
    }

    void
    expect(char c)
    {
        if (take() != c)
            fail(std::string("expected '") + c + "'");
    }

    void
    expectWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            fail("invalid literal");
        pos_ += word.size();
    }

    Json
    parseValue()
    {
        if (++depth_ > maxDepth)
            fail("nesting too deep");
        skipWs();
        Json v;
        switch (peek()) {
          case 'n':
            expectWord("null");
            break;
          case 't':
            expectWord("true");
            v = Json(true);
            break;
          case 'f':
            expectWord("false");
            v = Json(false);
            break;
          case '"':
            v = Json(parseString());
            break;
          case '[':
            v = parseArray();
            break;
          case '{':
            v = parseObject();
            break;
          default:
            v = parseNumber();
            break;
        }
        --depth_;
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = take();
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    text_.substr(pos_, 2) == "\\u") {
                    pos_ += 2;
                    const unsigned lo = parseHex4();
                    if (lo >= 0xDC00 && lo <= 0xDFFF) {
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                            (lo - 0xDC00);
                    } else {
                        fail("invalid low surrogate");
                    }
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape");
            }
        }
    }

    unsigned
    parseHex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = take();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return v;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            ++pos_;
        }
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9'))
            fail("invalid number");
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string tok(text_.substr(start, pos_ - start));
        if (integral) {
            errno = 0;
            if (negative) {
                const long long v =
                    std::strtoll(tok.c_str(), nullptr, 10);
                if (errno == ERANGE)
                    fail("integer out of range");
                return Json(v);
            }
            const unsigned long long v =
                std::strtoull(tok.c_str(), nullptr, 10);
            if (errno == ERANGE)
                fail("integer out of range");
            return Json(v);
        }
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("invalid number");
        return Json(v);
    }

    Json
    parseArray()
    {
        expect('[');
        Json v = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.push(parseValue());
            skipWs();
            const char c = take();
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']'");
        }
    }

    Json
    parseObject()
    {
        expect('{');
        Json v = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.set(std::move(key), parseValue());
            skipWs();
            const char c = take();
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}'");
        }
    }

    static constexpr int maxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // anonymous namespace

Json
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

} // namespace cgp
