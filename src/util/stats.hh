/**
 * @file
 * Lightweight statistics framework in the gem5 spirit.
 *
 * Simulation components register named statistics in a StatGroup; a
 * group can be dumped as an aligned text report or walked
 * programmatically by the benchmark harness.  Counters are plain
 * uint64 values (no sampling), Distributions bucket observed values,
 * and derived ratios are computed at dump time by Formula callbacks.
 */

#ifndef CGP_UTIL_STATS_HH
#define CGP_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cgp
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A running distribution: min/max/mean plus fixed-width buckets.
 */
class Distribution
{
  public:
    /**
     * @param lo Lowest bucketed value.
     * @param hi Highest bucketed value (inclusive).
     * @param bucketSize Width of each bucket.
     */
    Distribution(std::uint64_t lo, std::uint64_t hi,
                 std::uint64_t bucketSize);

    void sample(std::uint64_t value, std::uint64_t count = 1);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t total() const { return sum_; }
    double mean() const;
    std::uint64_t minValue() const { return min_; }
    std::uint64_t maxValue() const { return max_; }

    /** Count in bucket @p i; bucket 0 covers [lo, lo+bucketSize). */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }

    void reset();

  private:
    std::uint64_t lo_;
    std::uint64_t bucketSize_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics with optional nested groups.
 *
 * Components own their Counters directly (for fast increment) and
 * register pointers here for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p name with a describing @p desc. */
    void addCounter(const std::string &name, const Counter *counter,
                    const std::string &desc);

    /** Register a distribution. */
    void addDistribution(const std::string &name,
                         const Distribution *dist,
                         const std::string &desc);

    /** Register a value computed at dump time (ratios etc.). */
    void addFormula(const std::string &name,
                    std::function<double()> fn,
                    const std::string &desc);

    /** Attach a child group (not owned). */
    void addChild(const StatGroup *child);

    const std::string &name() const { return name_; }

    /** Look up a registered counter value; panics if absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Look up a formula value; panics if absent. */
    double formulaValue(const std::string &name) const;

    /** True if a counter with this name is registered. */
    bool hasCounter(const std::string &name) const;

    /** Write an aligned text report (recursing into children). */
    void dump(std::ostream &os, int indent = 0) const;

  private:
    struct CounterEntry { const Counter *counter; std::string desc; };
    struct DistEntry { const Distribution *dist; std::string desc; };
    struct FormulaEntry
    {
        std::function<double()> fn;
        std::string desc;
    };

    std::string name_;
    std::vector<std::pair<std::string, CounterEntry>> counters_;
    std::vector<std::pair<std::string, DistEntry>> dists_;
    std::vector<std::pair<std::string, FormulaEntry>> formulas_;
    std::vector<const StatGroup *> children_;
};

} // namespace cgp

#endif // CGP_UTIL_STATS_HH
