/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic decision in the simulator and the workload generators
 * draws from an explicitly seeded Rng so that runs are reproducible
 * bit-for-bit; there is deliberately no global generator.
 */

#ifndef CGP_UTIL_RNG_HH
#define CGP_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace cgp
{

/**
 * xoshiro256** generator seeded via splitmix64.
 *
 * Chosen over std::mt19937 for speed, tiny state, and a guaranteed
 * stable stream across standard library implementations.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) — bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of returning true. */
    bool nextBool(double p);

    /** Geometric-ish positive count with the given mean (>= 1). */
    std::uint64_t nextGeometric(double mean);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = nextBelow(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independently seeded child generator. */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(theta) distribution over [0, n) with a precomputed CDF;
 * used to generate skewed key popularity in workload generators.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta);

    /** Draw one sample in [0, n). */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t domain() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace cgp

#endif // CGP_UTIL_RNG_HH
