/**
 * @file
 * Cooperative cancellation and run budgets for long simulations.
 *
 * The campaign engine runs thousands of jobs; one livelocked config
 * must not wedge the whole run.  Three mechanisms cooperate:
 *
 *  - a *cycle budget* (CoreConfig::maxCycles): deterministic — a
 *    runaway simulation throws TimeoutError at the same cycle on
 *    every machine, so the job's "timed-out" classification is
 *    reproducible and resume-stable;
 *  - a *wall-clock budget* (CoreConfig::maxWallSeconds): a safety
 *    net against configs that are merely pathologically slow;
 *  - a *CancelToken*: the scheduler's hung-shard monitor flips the
 *    token of a worker that has sat on one job too long, and the
 *    simulation loop polls it (every few thousand cycles) and
 *    unwinds with CancelledError.
 *
 * The token is published thread-locally (ScopedCancelToken) so the
 * deep simulation loop needs no plumbing: it calls cancelRequested()
 * and gets the token of whatever job its thread is running.
 */

#ifndef CGP_UTIL_WATCHDOG_HH
#define CGP_UTIL_WATCHDOG_HH

#include <atomic>
#include <stdexcept>
#include <string>

namespace cgp
{

/** A run exceeded its cycle or wall-clock budget. */
class TimeoutError : public std::runtime_error
{
  public:
    explicit TimeoutError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** A run was cancelled by the hung-shard monitor. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * One job's cancellation flag.  The owner (a scheduler worker)
 * arms it per job; the monitor thread sets it; the simulation
 * polls it through the thread-local registration.
 */
class CancelToken
{
  public:
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        cancelled_.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

/// @{ Thread-local current token (nullptr = nothing to poll).
CancelToken *currentCancelToken();
void setCurrentCancelToken(CancelToken *token);
/// @}

/** True iff this thread's job has been asked to stop. */
inline bool
cancelRequested()
{
    const CancelToken *t = currentCancelToken();
    return t != nullptr && t->cancelled();
}

/** RAII: publish @p token as this thread's token for a scope. */
class ScopedCancelToken
{
  public:
    explicit ScopedCancelToken(CancelToken &token)
        : prev_(currentCancelToken())
    {
        setCurrentCancelToken(&token);
    }

    ~ScopedCancelToken() { setCurrentCancelToken(prev_); }

    ScopedCancelToken(const ScopedCancelToken &) = delete;
    ScopedCancelToken &operator=(const ScopedCancelToken &) = delete;

  private:
    CancelToken *prev_;
};

} // namespace cgp

#endif // CGP_UTIL_WATCHDOG_HH
