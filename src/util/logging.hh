/**
 * @file
 * Error/diagnostic reporting in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user configuration errors
 * (clean exit), error()/warn()/inform()/debug() for leveled advisory
 * output.
 *
 * Every message — printed or filtered — is also recorded in a
 * fixed-capacity ring buffer of the last N events so a crashed or
 * fault-injected run can be inspected post-mortem (dumpRecentEvents,
 * recentEvents).
 */

#ifndef CGP_UTIL_LOGGING_HH
#define CGP_UTIL_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace cgp
{

/** Message severity, least to most severe. */
enum class LogLevel : std::uint8_t
{
    Debug,
    Info,
    Warn,
    Error
};

const char *toString(LogLevel level);

/** One recorded log message (ring-buffer entry). */
struct LogEvent
{
    std::uint64_t seq = 0; ///< monotonically increasing event number
    LogLevel level = LogLevel::Info;
    std::string message;
};

/**
 * Minimum level printed to stderr/stdout (default Info).  The ring
 * buffer records all levels regardless, so post-mortem dumps still
 * see Debug events of a quiet run.
 */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Resize the ring buffer (drops recorded events); default 256. */
void setLogRingCapacity(std::size_t capacity);

/** Last N recorded events, oldest first. */
std::vector<LogEvent> recentEvents();

/** Drop all recorded events. */
void clearRecentEvents();

/** Write the ring contents to @p out ("post-mortem dump"). */
void dumpRecentEvents(std::FILE *out);

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/**
 * Test hook: when enabled, panic/fatal throw std::logic_error /
 * std::runtime_error instead of terminating the process.
 */
void setThrowOnError(bool enable);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

} // namespace detail

/**
 * Abort on a condition that indicates a simulator bug — something that
 * should never happen regardless of user input.
 */
#define cgp_panic(...) \
    ::cgp::detail::panicImpl(__FILE__, __LINE__, \
                             ::cgp::detail::concat(__VA_ARGS__))

/**
 * Exit cleanly on a condition that is the user's fault (bad
 * configuration, invalid arguments), not a simulator bug.
 */
#define cgp_fatal(...) \
    ::cgp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::cgp::detail::concat(__VA_ARGS__))

/** A definite problem that the system survived (degraded mode). */
#define cgp_error(...) \
    ::cgp::detail::logImpl(::cgp::LogLevel::Error, \
                           ::cgp::detail::concat(__VA_ARGS__))

/** Advisory: something may not behave as the user expects. */
#define cgp_warn(...) \
    ::cgp::detail::logImpl(::cgp::LogLevel::Warn, \
                           ::cgp::detail::concat(__VA_ARGS__))

/** Status output with no connotation of misbehaviour. */
#define cgp_inform(...) \
    ::cgp::detail::logImpl(::cgp::LogLevel::Info, \
                           ::cgp::detail::concat(__VA_ARGS__))

/** Developer tracing; filtered from output by default. */
#define cgp_debug(...) \
    ::cgp::detail::logImpl(::cgp::LogLevel::Debug, \
                           ::cgp::detail::concat(__VA_ARGS__))

/** panic() unless the asserted invariant holds. */
#define cgp_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cgp::detail::panicImpl(__FILE__, __LINE__, \
                ::cgp::detail::concat("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace cgp

#endif // CGP_UTIL_LOGGING_HH
