/**
 * @file
 * Error/diagnostic reporting in the gem5 spirit: panic() for internal
 * invariant violations (aborts), fatal() for user configuration errors
 * (clean exit), warn()/inform() for advisory output.
 */

#ifndef CGP_UTIL_LOGGING_HH
#define CGP_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace cgp
{

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/**
 * Test hook: when enabled, panic/fatal throw std::logic_error /
 * std::runtime_error instead of terminating the process.
 */
void setThrowOnError(bool enable);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort on a condition that indicates a simulator bug — something that
 * should never happen regardless of user input.
 */
#define cgp_panic(...) \
    ::cgp::detail::panicImpl(__FILE__, __LINE__, \
                             ::cgp::detail::concat(__VA_ARGS__))

/**
 * Exit cleanly on a condition that is the user's fault (bad
 * configuration, invalid arguments), not a simulator bug.
 */
#define cgp_fatal(...) \
    ::cgp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::cgp::detail::concat(__VA_ARGS__))

/** Advisory: something may not behave as the user expects. */
#define cgp_warn(...) \
    ::cgp::detail::warnImpl(::cgp::detail::concat(__VA_ARGS__))

/** Status output with no connotation of misbehaviour. */
#define cgp_inform(...) \
    ::cgp::detail::informImpl(::cgp::detail::concat(__VA_ARGS__))

/** panic() unless the asserted invariant holds. */
#define cgp_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::cgp::detail::panicImpl(__FILE__, __LINE__, \
                ::cgp::detail::concat("assertion failed: " #cond " ", \
                                      ##__VA_ARGS__)); \
        } \
    } while (0)

} // namespace cgp

#endif // CGP_UTIL_LOGGING_HH
