#include "util/crc.hh"

#include <array>

namespace cgp
{

namespace
{

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // anonymous namespace

std::uint32_t
crc32Update(std::uint32_t crc, std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    for (const char ch : data) {
        const auto byte = static_cast<std::uint8_t>(ch);
        crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
}

} // namespace cgp
