/**
 * @file
 * CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) for artifact
 * integrity.  Every JSON artifact the experiment engine persists —
 * per-job result files, run-directory manifests, BENCH_*.json —
 * carries a CRC over its payload so a torn write, a bit flip, or a
 * partially-synced file is *detected* on resume instead of silently
 * poisoning campaign results.
 *
 * The checksum is deliberately cheap and deterministic: the same
 * bytes always produce the same value, so sealed artifacts stay
 * byte-identical across thread counts and resumes — the property the
 * chaos audit byte-compares.
 */

#ifndef CGP_UTIL_CRC_HH
#define CGP_UTIL_CRC_HH

#include <cstdint>
#include <string_view>

namespace cgp
{

/**
 * Continue a CRC32 over @p data.  @p crc is the value returned by a
 * previous call (or crc32Init for the first block).
 */
std::uint32_t crc32Update(std::uint32_t crc, std::string_view data);

inline constexpr std::uint32_t crc32Init = 0xFFFFFFFFu;

/** Finalize an incremental CRC (the standard xor-out). */
inline std::uint32_t
crc32Final(std::uint32_t crc)
{
    return crc ^ 0xFFFFFFFFu;
}

/** One-shot CRC32 of @p data ("123456789" -> 0xCBF43926). */
inline std::uint32_t
crc32(std::string_view data)
{
    return crc32Final(crc32Update(crc32Init, data));
}

} // namespace cgp

#endif // CGP_UTIL_CRC_HH
