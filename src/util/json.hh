/**
 * @file
 * Minimal JSON value type for machine-readable artifacts (campaign
 * manifests, per-job result files, BENCH_*.json).
 *
 * Designed for *deterministic* output: objects preserve insertion
 * order, integers keep their signedness, and doubles are printed in
 * a round-trip-stable form, so serializing the same data always
 * yields byte-identical text — the property the experiment engine's
 * resumable manifests depend on.
 */

#ifndef CGP_UTIL_JSON_HH
#define CGP_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cgp
{

class Json
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Int,    ///< signed 64-bit
        Uint,   ///< unsigned 64-bit
        Double,
        String,
        Array,
        Object
    };

    using Array = std::vector<Json>;
    /** Object member; members() preserves insertion order. */
    using Member = std::pair<std::string, Json>;
    using Object = std::vector<Member>;

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(int v) : type_(Type::Int), int_(v) {}
    Json(long v) : type_(Type::Int), int_(v) {}
    Json(long long v) : type_(Type::Int), int_(v) {}
    Json(unsigned v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned long v) : type_(Type::Uint), uint_(v) {}
    Json(unsigned long long v) : type_(Type::Uint), uint_(v) {}
    Json(double v) : type_(Type::Double), dbl_(v) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string_view s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
            type_ == Type::Double;
    }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /// @{ Scalar accessors; throw std::runtime_error on type
    /// mismatch (numbers convert between each other).
    bool asBool() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &asString() const;
    /// @}

    /// @{ Array interface (converts a Null value to an empty array
    /// on first push).
    void push(Json v);
    std::size_t size() const;
    const Json &operator[](std::size_t i) const;
    const Array &items() const;
    /// @}

    /// @{ Object interface (converts a Null value to an empty object
    /// on first set).  set() replaces an existing key in place so the
    /// member order stays stable; it returns *this for chaining.
    Json &set(std::string key, Json v);
    /** Erase @p key; returns true if a member was removed. */
    bool remove(std::string_view key);
    const Json *find(std::string_view key) const;
    const Json &at(std::string_view key) const;
    bool contains(std::string_view key) const
    {
        return find(key) != nullptr;
    }
    const Object &members() const;
    /// @}

    /**
     * Structural equality.  Numbers compare by value across
     * Int/Uint/Double so a parsed document equals its source value
     * even when a lossless type normalization occurred.
     */
    bool operator==(const Json &other) const;
    bool operator!=(const Json &other) const
    {
        return !(*this == other);
    }

    /**
     * Serialize.  @p indent < 0 yields compact one-line output;
     * otherwise pretty-printed with that many spaces per level.
     * Output is deterministic for equal values built in the same
     * member order.
     */
    std::string dump(int indent = -1) const;

    /** Parse a document; throws std::runtime_error with position. */
    static Json parse(std::string_view text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double dbl_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace cgp

#endif // CGP_UTIL_JSON_HH
