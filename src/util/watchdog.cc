#include "util/watchdog.hh"

namespace cgp
{

namespace
{

thread_local CancelToken *currentToken = nullptr;

} // anonymous namespace

CancelToken *
currentCancelToken()
{
    return currentToken;
}

void
setCurrentCancelToken(CancelToken *token)
{
    currentToken = token;
}

} // namespace cgp
