/**
 * @file
 * Small bit-manipulation helpers used by the cache and predictor models.
 */

#ifndef CGP_UTIL_BITOPS_HH
#define CGP_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace cgp
{

/** True iff @p v is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v > 0. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v | 1));
}

/** ceil(log2(v)) for v > 0. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace cgp

#endif // CGP_UTIL_BITOPS_HH
