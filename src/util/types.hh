/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef CGP_UTIL_TYPES_HH
#define CGP_UTIL_TYPES_HH

#include <cstdint>

namespace cgp
{

/** A (synthetic) code or data address in the simulated machine. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Identifier of a traced function in the FunctionRegistry. */
using FunctionId = std::uint32_t;

/** Sentinel for "no function". */
constexpr FunctionId invalidFunctionId = ~0u;

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~0ull;

} // namespace cgp

#endif // CGP_UTIL_TYPES_HH
