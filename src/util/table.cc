#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace cgp
{

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TablePrinter::addRule()
{
    rows_.push_back({ruleMarker});
}

std::string
TablePrinter::num(std::uint64_t v)
{
    // Group digits for readability: 1234567 -> 1,234,567.
    std::string digits = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
TablePrinter::fixed(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    return fixed(fraction * 100.0, precision) + "%";
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto account = [&widths](const std::vector<std::string> &row) {
        if (!row.empty() && row[0] == ruleMarker)
            return;
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    account(header_);
    for (const auto &row : rows_)
        account(row);

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;

    if (!title_.empty())
        os << title_ << "\n";
    os << std::string(total, '=') << "\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            const bool left = (i == 0);
            os << (left ? std::left : std::right)
               << std::setw(static_cast<int>(widths[i]))
               << row[i] << "  ";
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == ruleMarker)
            os << std::string(total, '-') << "\n";
        else
            emit(row);
    }
    os << std::string(total, '=') << "\n";
}

} // namespace cgp
