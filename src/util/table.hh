/**
 * @file
 * Fixed-width text table printer used by the benchmark binaries to
 * emit paper-style rows (one table/figure per binary).
 */

#ifndef CGP_UTIL_TABLE_HH
#define CGP_UTIL_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cgp
{

/**
 * Accumulates rows of string/numeric cells and prints them with
 * column-aligned formatting plus an optional title and rule lines.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (cells already formatted). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal rule between rows. */
    void addRule();

    /** Format helpers. */
    static std::string num(std::uint64_t v);
    static std::string fixed(double v, int precision = 2);
    static std::string percent(double fraction, int precision = 1);

    /** Render the table. */
    void print(std::ostream &os) const;

  private:
    static constexpr const char *ruleMarker = "\x01rule";

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cgp

#endif // CGP_UTIL_TABLE_HH
