#include "util/stats.hh"

#include <algorithm>
#include <iomanip>

#include "util/logging.hh"

namespace cgp
{

Distribution::Distribution(std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t bucket_size)
    : lo_(lo), bucketSize_(bucket_size)
{
    cgp_assert(bucket_size > 0, "bucket size must be positive");
    cgp_assert(hi >= lo, "distribution range inverted");
    buckets_.resize((hi - lo) / bucket_size + 1, 0);
}

void
Distribution::sample(std::uint64_t value, std::uint64_t count)
{
    samples_ += count;
    sum_ += value * count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    if (value < lo_) {
        underflow_ += count;
    } else {
        const std::size_t idx = (value - lo_) / bucketSize_;
        if (idx >= buckets_.size())
            overflow_ += count;
        else
            buckets_[idx] += count;
    }
}

double
Distribution::mean() const
{
    return samples_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(samples_);
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

void
StatGroup::addCounter(const std::string &name, const Counter *counter,
                      const std::string &desc)
{
    cgp_assert(counter != nullptr, "null counter registered");
    counters_.emplace_back(name, CounterEntry{counter, desc});
}

void
StatGroup::addDistribution(const std::string &name,
                           const Distribution *dist,
                           const std::string &desc)
{
    cgp_assert(dist != nullptr, "null distribution registered");
    dists_.emplace_back(name, DistEntry{dist, desc});
}

void
StatGroup::addFormula(const std::string &name,
                      std::function<double()> fn,
                      const std::string &desc)
{
    cgp_assert(fn != nullptr, "null formula registered");
    formulas_.emplace_back(name, FormulaEntry{std::move(fn), desc});
}

void
StatGroup::addChild(const StatGroup *child)
{
    cgp_assert(child != nullptr, "null child group");
    children_.push_back(child);
}

std::uint64_t
StatGroup::counterValue(const std::string &name) const
{
    for (const auto &[n, e] : counters_) {
        if (n == name)
            return e.counter->value();
    }
    cgp_panic("unknown counter '", name, "' in group '", name_, "'");
}

bool
StatGroup::hasCounter(const std::string &name) const
{
    for (const auto &[n, e] : counters_) {
        (void)e;
        if (n == name)
            return true;
    }
    return false;
}

double
StatGroup::formulaValue(const std::string &name) const
{
    for (const auto &[n, e] : formulas_) {
        if (n == name)
            return e.fn();
    }
    cgp_panic("unknown formula '", name, "' in group '", name_, "'");
}

void
StatGroup::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << name_ << "\n";
    for (const auto &[n, e] : counters_) {
        os << pad << "  " << std::left << std::setw(36) << n
           << std::right << std::setw(16) << e.counter->value()
           << "  # " << e.desc << "\n";
    }
    for (const auto &[n, e] : formulas_) {
        os << pad << "  " << std::left << std::setw(36) << n
           << std::right << std::setw(16) << std::fixed
           << std::setprecision(4) << e.fn()
           << "  # " << e.desc << "\n";
    }
    for (const auto &[n, e] : dists_) {
        os << pad << "  " << std::left << std::setw(36) << n
           << std::right
           << " samples=" << e.dist->samples()
           << " mean=" << std::fixed << std::setprecision(2)
           << e.dist->mean()
           << " min=" << (e.dist->samples() ? e.dist->minValue() : 0)
           << " max=" << e.dist->maxValue()
           << "  # " << e.desc << "\n";
    }
    for (const auto *child : children_)
        child->dump(os, indent + 1);
}

} // namespace cgp
