#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace cgp
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    cgp_assert(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v > limit);
    return v % bound;
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    cgp_assert(lo <= hi, "nextRange with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    cgp_assert(mean >= 1.0, "geometric mean must be >= 1");
    if (mean == 1.0)
        return 1;
    const double p = 1.0 / mean;
    double u = nextDouble();
    // Clamp away from 0 so log() is finite.
    u = std::max(u, 1e-18);
    const double v = std::ceil(std::log(u) / std::log(1.0 - p));
    return static_cast<std::uint64_t>(std::max(v, 1.0));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xdeadbeefcafef00dull);
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
{
    cgp_assert(n > 0, "zipf domain must be nonempty");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

std::uint64_t
ZipfGenerator::next(Rng &rng) const
{
    const double u = rng.nextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace cgp
