#include "codegen/profile.hh"

#include <algorithm>

namespace cgp
{

const ExecutionProfile::BlockEdgeMap ExecutionProfile::emptyEdges_;

void
ExecutionProfile::onCall(FunctionId caller, FunctionId callee)
{
    ++callEdges_[{caller, callee}];
    ++totalCalls_;
}

void
ExecutionProfile::onBlockEdge(FunctionId fid, std::uint16_t from,
                              std::uint16_t to)
{
    ++blockEdges_[fid][{from, to}];
}

void
ExecutionProfile::onDecision(FunctionId fid, std::uint16_t site,
                             bool taken)
{
    auto &d = decisions_[{fid, site}];
    if (taken)
        ++d.first;
    else
        ++d.second;
}

void
ExecutionProfile::onEntry(FunctionId fid)
{
    ++entries_[fid];
}

void
ExecutionProfile::merge(const ExecutionProfile &other)
{
    for (const auto &[edge, w] : other.callEdges_)
        callEdges_[edge] += w;
    for (const auto &[fid, n] : other.entries_)
        entries_[fid] += n;
    for (const auto &[fid, edges] : other.blockEdges_) {
        auto &mine = blockEdges_[fid];
        for (const auto &[e, w] : edges)
            mine[e] += w;
    }
    for (const auto &[site, tn] : other.decisions_) {
        auto &d = decisions_[site];
        d.first += tn.first;
        d.second += tn.second;
    }
    totalCalls_ += other.totalCalls_;
}

std::uint64_t
ExecutionProfile::callWeight(FunctionId caller, FunctionId callee) const
{
    auto it = callEdges_.find({caller, callee});
    return it == callEdges_.end() ? 0 : it->second;
}

std::uint64_t
ExecutionProfile::entryCount(FunctionId fid) const
{
    auto it = entries_.find(fid);
    return it == entries_.end() ? 0 : it->second;
}

const ExecutionProfile::BlockEdgeMap &
ExecutionProfile::blockEdges(FunctionId fid) const
{
    auto it = blockEdges_.find(fid);
    return it == blockEdges_.end() ? emptyEdges_ : it->second;
}

double
ExecutionProfile::decisionBias(FunctionId fid, std::uint16_t site) const
{
    auto it = decisions_.find({fid, site});
    if (it == decisions_.end())
        return 0.5;
    const auto [taken, not_taken] = it->second;
    const auto total = taken + not_taken;
    return total == 0
        ? 0.5
        : static_cast<double>(taken) / static_cast<double>(total);
}

std::size_t
ExecutionProfile::distinctCallees(FunctionId fid) const
{
    std::size_t n = 0;
    auto it = callEdges_.lower_bound({fid, 0});
    for (; it != callEdges_.end() && it->first.first == fid; ++it)
        ++n;
    return n;
}

CallGraphAnalyzer::CallGraphAnalyzer(const ExecutionProfile &profile)
{
    FunctionId current = invalidFunctionId;
    std::size_t count = 0;
    for (const auto &[edge, w] : profile.callEdges()) {
        (void)w;
        if (edge.first != current) {
            if (current != invalidFunctionId)
                calleeCounts_.push_back(count);
            current = edge.first;
            count = 0;
        }
        ++count;
    }
    if (current != invalidFunctionId)
        calleeCounts_.push_back(count);
}

double
CallGraphAnalyzer::fractionWithFewerCalleesThan(std::size_t n) const
{
    if (calleeCounts_.empty())
        return 1.0;
    const auto below = std::count_if(
        calleeCounts_.begin(), calleeCounts_.end(),
        [n](std::size_t c) { return c < n; });
    return static_cast<double>(below)
        / static_cast<double>(calleeCounts_.size());
}

std::size_t
CallGraphAnalyzer::maxDistinctCallees() const
{
    if (calleeCounts_.empty())
        return 0;
    return *std::max_element(calleeCounts_.begin(), calleeCounts_.end());
}

} // namespace cgp
