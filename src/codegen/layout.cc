#include "codegen/layout.hh"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cgp
{

const char *
layoutName(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::Original:
        return "O5";
      case LayoutKind::PettisHansen:
        return "O5+OM";
    }
    return "?";
}

Addr
CodeImage::funcStart(FunctionId fid) const
{
    cgp_assert(fid < funcs_.size(), "bad function id ", fid);
    return funcs_[fid].base;
}

Addr
CodeImage::blockAddr(FunctionId fid, std::uint16_t block) const
{
    cgp_assert(fid < funcs_.size(), "bad function id ", fid);
    const auto &fe = funcs_[fid];
    cgp_assert(block < fe.blockAddrs.size(), "bad block index ", block);
    return fe.blockAddrs[block];
}

std::uint16_t
CodeImage::blockPosition(FunctionId fid, std::uint16_t block) const
{
    cgp_assert(fid < funcs_.size(), "bad function id ", fid);
    const auto &fe = funcs_[fid];
    cgp_assert(block < fe.positions.size(), "bad block index ", block);
    return fe.positions[block];
}

CodeImage
LayoutBuilder::buildOriginal() const
{
    std::vector<FunctionId> func_order(registry_.size());
    std::iota(func_order.begin(), func_order.end(), 0u);
    // Link order in an unoptimized binary is object-file order —
    // essentially arbitrary with respect to dynamic call patterns
    // (and in particular not systematically strided the way our
    // declaration order is).  A deterministic shuffle models that.
    Rng rng(0x0'5eed);
    rng.shuffle(func_order);

    std::vector<std::vector<std::uint16_t>> block_orders;
    block_orders.reserve(registry_.size());
    for (const auto &f : registry_.functions())
        block_orders.push_back(f.originalOrder);

    return assemble(LayoutKind::Original, func_order, block_orders,
                    /*padded=*/true);
}

CodeImage
LayoutBuilder::buildPettisHansen(const ExecutionProfile &profile) const
{
    const auto func_order = orderFunctionsPettisHansen(profile);

    std::vector<std::vector<std::uint16_t>> block_orders;
    block_orders.reserve(registry_.size());
    for (const auto &f : registry_.functions())
        block_orders.push_back(orderBlocksPettisHansen(f, profile));

    return assemble(LayoutKind::PettisHansen, func_order, block_orders,
                    /*padded=*/false);
}

CodeImage
LayoutBuilder::build(LayoutKind kind,
                     const ExecutionProfile &profile) const
{
    return kind == LayoutKind::Original ? buildOriginal()
                                        : buildPettisHansen(profile);
}

std::vector<std::uint16_t>
LayoutBuilder::orderBlocksPettisHansen(
    const Function &f, const ExecutionProfile &profile) const
{
    // Pettis-Hansen bottom-up chaining over profiled block edges:
    // process edges heaviest first; join two chains when the edge
    // connects one chain's tail to another chain's head.  Then emit
    // the entry chain first, remaining chains by weight, and
    // never-executed (cold) blocks last in original relative order.
    const auto &edges = profile.blockEdges(f.id);

    const std::size_t n = f.blocks.size();
    std::vector<int> chainOf(n);
    std::iota(chainOf.begin(), chainOf.end(), 0);
    std::vector<std::vector<std::uint16_t>> chains(n);
    for (std::uint16_t i = 0; i < n; ++i)
        chains[i] = {i};

    std::vector<std::pair<std::uint64_t,
                          std::pair<std::uint16_t, std::uint16_t>>>
        sorted;
    sorted.reserve(edges.size());
    for (const auto &[e, w] : edges)
        sorted.push_back({w, e});
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second; // deterministic tie-break
              });

    const std::uint16_t entry = f.hotWalk.empty() ? 0 : f.hotWalk[0];

    for (const auto &[w, e] : sorted) {
        (void)w;
        const auto [from, to] = e;
        // The entry block must stay at the function head, so it can
        // never become a chain's interior via an incoming edge.
        if (to == entry)
            continue;
        const int cf = chainOf[from];
        const int ct = chainOf[to];
        if (cf == ct)
            continue;
        if (chains[cf].back() != from || chains[ct].front() != to)
            continue;
        for (auto b : chains[ct]) {
            chainOf[b] = cf;
            chains[cf].push_back(b);
        }
        chains[ct].clear();
    }

    // Chain weight = sum of entries of its blocks in the edge map.
    std::unordered_map<int, std::uint64_t> weight;
    for (const auto &[e, w] : edges) {
        weight[chainOf[e.first]] += w;
        weight[chainOf[e.second]] += w;
    }

    const int entry_chain = chainOf[entry];

    std::vector<int> chain_ids;
    for (std::size_t c = 0; c < chains.size(); ++c) {
        if (!chains[c].empty() && static_cast<int>(c) != entry_chain)
            chain_ids.push_back(static_cast<int>(c));
    }
    std::sort(chain_ids.begin(), chain_ids.end(),
              [&](int a, int b) {
                  const auto wa = weight[a];
                  const auto wb = weight[b];
                  if (wa != wb)
                      return wa > wb;
                  return a < b;
              });

    std::vector<std::uint16_t> out;
    out.reserve(n);
    auto emit_chain = [&out](const std::vector<std::uint16_t> &c) {
        out.insert(out.end(), c.begin(), c.end());
    };
    emit_chain(chains[entry_chain]);
    // Split profiled chains from unprofiled singleton (cold) chains:
    // profiled first by weight, cold afterwards in original order.
    std::vector<int> hot_chains;
    std::vector<std::uint16_t> cold_blocks;
    for (int c : chain_ids) {
        if (weight[c] > 0) {
            hot_chains.push_back(c);
        } else {
            for (auto b : chains[c])
                cold_blocks.push_back(b);
        }
    }
    for (int c : hot_chains)
        emit_chain(chains[c]);

    // Cold blocks in original relative order for determinism.
    std::sort(cold_blocks.begin(), cold_blocks.end(),
              [&f](std::uint16_t a, std::uint16_t b) {
                  const auto pa = std::find(f.originalOrder.begin(),
                                            f.originalOrder.end(), a);
                  const auto pb = std::find(f.originalOrder.begin(),
                                            f.originalOrder.end(), b);
                  return pa < pb;
              });
    out.insert(out.end(), cold_blocks.begin(), cold_blocks.end());

    cgp_assert(out.size() == n, "PH block order lost blocks in ",
               f.name);
    return out;
}

std::vector<FunctionId>
LayoutBuilder::orderFunctionsPettisHansen(
    const ExecutionProfile &profile) const
{
    // Closest-is-best: chain functions along heavy call edges so that
    // frequent caller/callee pairs are adjacent in memory.
    const std::size_t n = registry_.size();
    std::vector<int> chainOf(n);
    std::iota(chainOf.begin(), chainOf.end(), 0);
    std::vector<std::vector<FunctionId>> chains(n);
    for (FunctionId i = 0; i < n; ++i)
        chains[i] = {i};

    std::vector<std::pair<std::uint64_t,
                          std::pair<FunctionId, FunctionId>>> sorted;
    for (const auto &[e, w] : profile.callEdges()) {
        if (e.first != e.second)
            sorted.push_back({w, e});
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });

    for (const auto &[w, e] : sorted) {
        (void)w;
        const auto [caller, callee] = e;
        const int cc = chainOf[caller];
        const int ce = chainOf[callee];
        if (cc == ce)
            continue;
        // Closest-is-best merges whole chains; orientation keeps the
        // caller chain before the callee chain.
        for (auto f : chains[ce]) {
            chainOf[f] = cc;
            chains[cc].push_back(f);
        }
        chains[ce].clear();
    }

    // Order chains by their heaviest member's entry count so the
    // hottest cluster sits first; unprofiled functions keep original
    // relative order at the end.
    std::vector<int> chain_ids;
    for (std::size_t c = 0; c < chains.size(); ++c) {
        if (!chains[c].empty())
            chain_ids.push_back(static_cast<int>(c));
    }
    auto chain_weight = [&](int c) {
        std::uint64_t w = 0;
        for (auto f : chains[c])
            w += profile.entryCount(f);
        return w;
    };
    std::stable_sort(chain_ids.begin(), chain_ids.end(),
                     [&](int a, int b) {
                         return chain_weight(a) > chain_weight(b);
                     });

    std::vector<FunctionId> out;
    out.reserve(n);
    for (int c : chain_ids) {
        for (auto f : chains[c])
            out.push_back(f);
    }
    cgp_assert(out.size() == n, "PH function order lost functions");
    return out;
}

CodeImage
LayoutBuilder::assemble(
    LayoutKind kind, const std::vector<FunctionId> &func_order,
    const std::vector<std::vector<std::uint16_t>> &block_orders,
    bool padded) const
{
    CodeImage image;
    image.kind_ = kind;
    image.funcs_.resize(registry_.size());
    image.order_ = func_order;

    Addr cursor = CodeImage::textBase;
    for (const FunctionId fid : func_order) {
        const Function &f = registry_.function(fid);
        const auto &order = block_orders[fid];
        cgp_assert(order.size() == f.blocks.size(),
                   "block order size mismatch in ", f.name);

        // Functions start cache-line aligned (32B lines, paper Table 1).
        cursor = alignUp(cursor, 32);

        auto &fe = image.funcs_[fid];
        fe.blockAddrs.assign(f.blocks.size(), invalidAddr);
        fe.positions.assign(f.blocks.size(), 0);

        Addr fcursor = cursor;
        for (std::uint16_t pos = 0; pos < order.size(); ++pos) {
            const std::uint16_t b = order[pos];
            fe.blockAddrs[b] = fcursor;
            fe.positions[b] = pos;
            fcursor += f.blocks[b].sizeBytes();
        }
        fe.base = fe.blockAddrs[order[0]];
        cursor = fcursor;

        if (padded) {
            // The unoptimized binary carries alignment padding and
            // literal pools between functions; deterministic per-id.
            cursor += 8 + (fid * 37) % 40;
        }
    }
    image.limit_ = cursor;
    return image;
}

} // namespace cgp
