/**
 * @file
 * ExecutionProfile: dynamic weights gathered from a profiling replay
 * of a trace, feeding the OM (Pettis-Hansen) layout pass — exactly
 * the feedback file the paper generates by running wisc-prof and
 * wisc+tpch through instrumented binaries.
 */

#ifndef CGP_CODEGEN_PROFILE_HH
#define CGP_CODEGEN_PROFILE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace cgp
{

class ExecutionProfile
{
  public:
    /** Record one dynamic call edge caller -> callee. */
    void onCall(FunctionId caller, FunctionId callee);

    /** Record a block-to-block transition inside @p fid. */
    void onBlockEdge(FunctionId fid, std::uint16_t from,
                     std::uint16_t to);

    /** Record a decision-site outcome inside @p fid. */
    void onDecision(FunctionId fid, std::uint16_t site, bool taken);

    /** Record a function entry (including trace roots). */
    void onEntry(FunctionId fid);

    /** Accumulate another profile into this one (paper merges two). */
    void merge(const ExecutionProfile &other);

    /** Weight of a call edge (0 if never seen). */
    std::uint64_t callWeight(FunctionId caller, FunctionId callee) const;

    /** All call edges with weights. */
    const std::map<std::pair<FunctionId, FunctionId>, std::uint64_t> &
    callEdges() const
    {
        return callEdges_;
    }

    /** Entry count of a function (0 if never entered). */
    std::uint64_t entryCount(FunctionId fid) const;

    /** Block edges of one function: ((from, to) -> weight). */
    using BlockEdgeMap =
        std::map<std::pair<std::uint16_t, std::uint16_t>, std::uint64_t>;
    const BlockEdgeMap &blockEdges(FunctionId fid) const;

    /** Taken fraction of a decision site; 0.5 when unobserved. */
    double decisionBias(FunctionId fid, std::uint16_t site) const;

    /** Number of distinct callees observed for @p fid. */
    std::size_t distinctCallees(FunctionId fid) const;

    /** Total dynamic calls recorded. */
    std::uint64_t totalCalls() const { return totalCalls_; }

  private:
    std::map<std::pair<FunctionId, FunctionId>, std::uint64_t> callEdges_;
    std::unordered_map<FunctionId, std::uint64_t> entries_;
    std::unordered_map<FunctionId, BlockEdgeMap> blockEdges_;
    std::map<std::pair<FunctionId, std::uint16_t>,
             std::pair<std::uint64_t, std::uint64_t>> decisions_;
    std::uint64_t totalCalls_ = 0;

    static const BlockEdgeMap emptyEdges_;
};

/**
 * Post-hoc analysis of a profile's call graph: reproduces the ATOM
 * measurement from paper §3.2 ("80% of the functions have calls to
 * fewer than 8 distinct functions") for our workloads.
 */
class CallGraphAnalyzer
{
  public:
    explicit CallGraphAnalyzer(const ExecutionProfile &profile);

    /** Functions observed making at least one call. */
    std::size_t callerCount() const { return calleeCounts_.size(); }

    /**
     * Fraction of calling functions with fewer than @p n distinct
     * callees.
     */
    double fractionWithFewerCalleesThan(std::size_t n) const;

    /** Largest distinct-callee count observed. */
    std::size_t maxDistinctCallees() const;

  private:
    std::vector<std::size_t> calleeCounts_;
};

} // namespace cgp

#endif // CGP_CODEGEN_PROFILE_HH
