/**
 * @file
 * Code layout: binding synthesized function bodies to addresses.
 *
 * Two layout policies reproduce the paper's binaries:
 *
 *  - OriginalLayout ("O5"): functions in declaration order with
 *    compiler-ish padding; blocks inside each function in their
 *    original order (hot/cold interleaved, some hot blocks displaced).
 *
 *  - PettisHansenLayout ("OM"): the two-level profile-directed layout
 *    of the OM link-time optimizer (paper §5.1): (1) basic blocks are
 *    reordered inside each function so the profiled-hot path falls
 *    through; (2) functions are reordered globally with the
 *    closest-is-best strategy over the weighted dynamic call graph.
 */

#ifndef CGP_CODEGEN_LAYOUT_HH
#define CGP_CODEGEN_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "codegen/function.hh"
#include "codegen/profile.hh"
#include "codegen/registry.hh"
#include "util/types.hh"

namespace cgp
{

/** Which binary the simulation models. */
enum class LayoutKind
{
    Original,     ///< the -O5 binary
    PettisHansen  ///< the -O5 binary after OM code layout
};

const char *layoutName(LayoutKind kind);

/**
 * An address binding for every block of every function in a
 * registry.  Immutable once built.
 */
class CodeImage
{
  public:
    /** Base of the synthetic text segment. */
    static constexpr Addr textBase = 0x0040'0000;

    /** Starting address of function @p fid. */
    Addr funcStart(FunctionId fid) const;

    /** Address of block @p block of function @p fid. */
    Addr blockAddr(FunctionId fid, std::uint16_t block) const;

    /** One past the highest text address. */
    Addr textLimit() const { return limit_; }

    /** Function order in memory (ids, ascending address). */
    const std::vector<FunctionId> &order() const { return order_; }

    /**
     * Layout position of @p block within its function (0 = first).
     * Used by tests to validate layout properties.
     */
    std::uint16_t blockPosition(FunctionId fid,
                                std::uint16_t block) const;

    /** Which layout policy built this image. */
    LayoutKind kind() const { return kind_; }

  private:
    friend class LayoutBuilder;

    struct FuncEntry
    {
        Addr base = invalidAddr;
        std::vector<Addr> blockAddrs;     // by block index
        std::vector<std::uint16_t> positions; // by block index
    };

    LayoutKind kind_ = LayoutKind::Original;
    std::vector<FuncEntry> funcs_;
    std::vector<FunctionId> order_;
    Addr limit_ = textBase;
};

/**
 * Builds CodeImages from a registry (and, for Pettis-Hansen, a
 * profile).
 */
class LayoutBuilder
{
  public:
    explicit LayoutBuilder(const FunctionRegistry &registry)
        : registry_(registry)
    {}

    /** Build the unoptimized (O5) image. */
    CodeImage buildOriginal() const;

    /**
     * Build the OM image from profile feedback.  Functions or blocks
     * absent from the profile retain their original relative order
     * after all profiled code.
     */
    CodeImage buildPettisHansen(const ExecutionProfile &profile) const;

    /** Dispatch on @p kind (profile ignored for Original). */
    CodeImage build(LayoutKind kind,
                    const ExecutionProfile &profile) const;

  private:
    /** Per-function block order for the PH image. */
    std::vector<std::uint16_t>
    orderBlocksPettisHansen(const Function &f,
                            const ExecutionProfile &profile) const;

    /** Global function order for the PH image (closest-is-best). */
    std::vector<FunctionId>
    orderFunctionsPettisHansen(const ExecutionProfile &profile) const;

    CodeImage assemble(LayoutKind kind,
                       const std::vector<FunctionId> &funcOrder,
                       const std::vector<std::vector<std::uint16_t>>
                           &blockOrders,
                       bool padded) const;

    const FunctionRegistry &registry_;
};

} // namespace cgp

#endif // CGP_CODEGEN_LAYOUT_HH
