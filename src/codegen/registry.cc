#include "codegen/registry.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cgp
{

FunctionTraits
FunctionTraits::tiny()
{
    FunctionTraits t;
    t.hotInstrs = 24;
    t.coldFraction = 0.6;
    t.decisionSites = 0;
    t.loops = false;
    return t;
}

FunctionTraits
FunctionTraits::small()
{
    FunctionTraits t;
    t.hotInstrs = 128;
    t.coldFraction = 0.8;
    t.decisionSites = 2;
    t.loops = false;
    return t;
}

FunctionTraits
FunctionTraits::medium()
{
    FunctionTraits t;
    t.hotInstrs = 288;
    t.coldFraction = 1.0;
    t.decisionSites = 3;
    t.loops = true;
    return t;
}

FunctionTraits
FunctionTraits::large()
{
    FunctionTraits t;
    t.hotInstrs = 576;
    t.coldFraction = 1.1;
    t.decisionSites = 4;
    t.loops = true;
    return t;
}

FunctionTraits
FunctionTraits::huge()
{
    FunctionTraits t;
    t.hotInstrs = 1152;
    t.coldFraction = 1.2;
    t.decisionSites = 5;
    t.loops = true;
    return t;
}

namespace
{

/** Stable 64-bit hash of a function name (FNV-1a). */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // anonymous namespace

FunctionId
FunctionRegistry::declare(const std::string &name,
                          const FunctionTraits &traits)
{
    auto it = byName_.find(name);
    if (it != byName_.end())
        return it->second;

    const auto id = static_cast<FunctionId>(functions_.size());
    functions_.push_back(synthesize(id, name, traits));
    byName_.emplace(name, id);
    return id;
}

const Function &
FunctionRegistry::function(FunctionId id) const
{
    cgp_assert(id < functions_.size(), "bad function id ", id);
    return functions_[id];
}

FunctionId
FunctionRegistry::lookup(const std::string &name) const
{
    auto it = byName_.find(name);
    return it == byName_.end() ? invalidFunctionId : it->second;
}

std::uint64_t
FunctionRegistry::totalCodeBytes() const
{
    std::uint64_t total = 0;
    for (const auto &f : functions_)
        total += f.sizeBytes();
    return total;
}

Function
FunctionRegistry::synthesize(FunctionId id, const std::string &name,
                             const FunctionTraits &traits) const
{
    cgp_assert(traits.hotInstrs >= 4, "function '", name, "' too small");

    Function f;
    f.id = id;
    f.name = name;
    f.loops = traits.loops;

    // Seed from the name so bodies are stable across runs and across
    // declaration-order changes.
    Rng rng(hashName(name));

    // --- Hot walk -------------------------------------------------
    // Split hotInstrs into blocks of 4..12 instructions.
    std::uint32_t remaining = traits.hotInstrs;
    while (remaining > 0) {
        std::uint16_t len = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(remaining,
                                    4 + rng.nextBelow(9)));
        if (remaining - len < 4 && remaining - len > 0) {
            // Avoid a trailing degenerate block.
            len = static_cast<std::uint16_t>(remaining);
        }
        remaining -= len;
        f.hotWalk.push_back(static_cast<std::uint16_t>(f.blocks.size()));
        f.blocks.push_back({len, BlockRole::Hot});
    }

    // --- Decision arms ---------------------------------------------
    for (unsigned d = 0; d < traits.decisionSites; ++d) {
        DecisionSite site;
        site.arm = static_cast<std::uint16_t>(f.blocks.size());
        f.blocks.push_back(
            {static_cast<std::uint16_t>(4 + rng.nextBelow(6)),
             BlockRole::Arm});
        f.decisions.push_back(site);
    }

    // --- Cold code --------------------------------------------------
    std::uint32_t cold_budget = static_cast<std::uint32_t>(
        static_cast<double>(traits.hotInstrs) * traits.coldFraction);
    while (cold_budget >= 4) {
        std::uint16_t len = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(cold_budget, 4 + rng.nextBelow(13)));
        cold_budget -= len;
        f.blocks.push_back({len, BlockRole::Cold});
    }

    // --- Original (O5) intra-function layout -------------------------
    // Compilers emit blocks roughly in source order: hot and cold code
    // interleave, and a fraction of hot blocks are displaced so that
    // following the walk requires taken branches.  We build the order
    // by interleaving cold blocks among the hot walk and then
    // displacing ~30% of hot blocks toward the end.
    std::vector<std::uint16_t> order;
    std::vector<std::uint16_t> displaced;
    std::size_t cold_idx = 0;
    std::vector<std::uint16_t> cold_ids;
    std::vector<std::uint16_t> arm_ids;
    for (std::uint16_t i = 0;
         i < static_cast<std::uint16_t>(f.blocks.size()); ++i) {
        if (f.blocks[i].role == BlockRole::Cold)
            cold_ids.push_back(i);
        else if (f.blocks[i].role == BlockRole::Arm)
            arm_ids.push_back(i);
    }

    for (std::size_t w = 0; w < f.hotWalk.size(); ++w) {
        const std::uint16_t hot = f.hotWalk[w];
        if (w > 0 && rng.nextBool(0.02)) {
            displaced.push_back(hot);
        } else {
            order.push_back(hot);
        }
        // Sprinkle arms and cold blocks between hot blocks.
        if (!arm_ids.empty() && rng.nextBool(0.3)) {
            order.push_back(arm_ids.back());
            arm_ids.pop_back();
        }
        if (cold_idx < cold_ids.size() && rng.nextBool(0.05))
            order.push_back(cold_ids[cold_idx++]);
    }
    for (auto a : arm_ids)
        order.push_back(a);
    for (auto d : displaced)
        order.push_back(d);
    while (cold_idx < cold_ids.size())
        order.push_back(cold_ids[cold_idx++]);

    f.originalOrder = std::move(order);
    cgp_assert(f.originalOrder.size() == f.blocks.size(),
               "layout permutation incomplete for ", name);
    return f;
}

} // namespace cgp
