/**
 * @file
 * FunctionRegistry: the set of all traced functions in one program.
 *
 * Workload code declares its functions once (name + traits) and gets
 * back stable FunctionIds used by the trace recorder.  The registry
 * synthesizes a deterministic CFG for each declaration, so a given
 * (name, traits) pair always produces the same body regardless of
 * declaration order — runs are reproducible bit-for-bit.
 */

#ifndef CGP_CODEGEN_REGISTRY_HH
#define CGP_CODEGEN_REGISTRY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/function.hh"
#include "util/types.hh"

namespace cgp
{

class FunctionRegistry
{
  public:
    /**
     * Declare a traced function.  Declaring the same name twice
     * returns the existing id (traits of the first call win), which
     * lets multiple component instances share one set of functions.
     */
    FunctionId declare(const std::string &name,
                       const FunctionTraits &traits);

    /** Number of declared functions. */
    std::size_t size() const { return functions_.size(); }

    /** Body of function @p id; panics on a bad id. */
    const Function &function(FunctionId id) const;

    /** Lookup by name; returns invalidFunctionId if absent. */
    FunctionId lookup(const std::string &name) const;

    /** All functions in declaration order. */
    const std::vector<Function> &functions() const { return functions_; }

    /** Total code bytes across all declared functions. */
    std::uint64_t totalCodeBytes() const;

  private:
    Function synthesize(FunctionId id, const std::string &name,
                        const FunctionTraits &traits) const;

    std::vector<Function> functions_;
    std::unordered_map<std::string, FunctionId> byName_;
};

} // namespace cgp

#endif // CGP_CODEGEN_REGISTRY_HH
