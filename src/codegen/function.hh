/**
 * @file
 * Synthetic function bodies.
 *
 * The reproduction does not execute real machine code; instead every
 * traced function in the workload (DBMS layers, SPEC proxies, kernel
 * scheduler stubs) is given a synthesized control-flow graph whose
 * shape is representative of compiled code:
 *
 *  - a *hot walk*: the sequence of basic blocks executed on the
 *    common path, possibly looping back to the walk head;
 *  - *cold blocks*: error/edge-case code that occupies space in the
 *    function body but is never executed (the code-density problem
 *    that OM's basic-block reordering fixes);
 *  - *decision sites*: data-dependent two-armed branches whose
 *    direction is recorded in the trace by the workload itself
 *    (e.g. "does this tuple satisfy the predicate?").
 *
 * The dynamic trace is layout independent; binding blocks to
 * addresses is done separately by a CodeImage (see layout.hh), which
 * is how the same execution is measured under the O5 and OM layouts.
 */

#ifndef CGP_CODEGEN_FUNCTION_HH
#define CGP_CODEGEN_FUNCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace cgp
{

/** Bytes per (synthetic) instruction; all instructions are 4 bytes. */
constexpr unsigned instrBytes = 4;

/** Role a basic block plays inside its function. */
enum class BlockRole : std::uint8_t
{
    Hot,  ///< on the common-path walk
    Cold, ///< present in the body, never executed
    Arm   ///< decision-site arm reached via a taken branch
};

/**
 * A basic block: straight-line instructions ending in an implicit
 * terminator (the last instruction slot).  Successor structure is
 * kept at the Function level (hot walk + decision sites), since the
 * walk is what execution follows.
 */
struct BasicBlock
{
    std::uint16_t instrs;   ///< instruction count, including terminator
    BlockRole role;

    std::uint32_t sizeBytes() const { return instrs * instrBytes; }
};

/**
 * A data-dependent branch site.  When the trace carries a Branch
 * event for this function, the expander emits a conditional branch
 * at the current position.  Not-taken falls through inside the
 * current block; taken jumps to the arm block, executes it, and
 * rejoins the walk at the next hot block.
 */
struct DecisionSite
{
    std::uint16_t arm; ///< block index of the taken arm
};

/**
 * A synthesized function body.
 *
 * @invariant hotWalk is nonempty and refers only to Hot blocks.
 * @invariant originalOrder is a permutation of all block indices.
 */
class Function
{
  public:
    FunctionId id = invalidFunctionId;
    std::string name;

    std::vector<BasicBlock> blocks;

    /** Execution order of hot blocks (indices into blocks). */
    std::vector<std::uint16_t> hotWalk;

    /** Data-dependent branch sites, used round-robin. */
    std::vector<DecisionSite> decisions;

    /** Unoptimized (O5) layout order of block indices. */
    std::vector<std::uint16_t> originalOrder;

    /** Whether the hot walk loops back to its head when exhausted. */
    bool loops = true;

    /** Total body size in bytes. */
    std::uint32_t
    sizeBytes() const
    {
        std::uint32_t total = 0;
        for (const auto &b : blocks)
            total += b.sizeBytes();
        return total;
    }

    /** Instructions on one pass of the hot walk. */
    std::uint32_t
    hotWalkInstrs() const
    {
        std::uint32_t total = 0;
        for (std::uint16_t b : hotWalk)
            total += blocks[b].instrs;
        return total;
    }
};

/**
 * Declarative size/shape hints used when synthesizing a function
 * body.  Workload code describes each traced function with one of
 * these; the registry turns it into a concrete CFG with a
 * name-seeded deterministic RNG.
 */
struct FunctionTraits
{
    /** Rough instruction count of the common path. */
    std::uint32_t hotInstrs = 48;

    /** Cold code fraction relative to hot code (O5 body bloat). */
    double coldFraction = 0.9;

    /** Number of data-dependent branch sites. */
    unsigned decisionSites = 1;

    /** Whether the body is a loop (walk wraps around). */
    bool loops = true;

    /** Convenience presets for the common layer shapes. */
    static FunctionTraits tiny();      ///< accessor-like, ~12 instrs
    static FunctionTraits small();     ///< leaf helper, ~32 instrs
    static FunctionTraits medium();    ///< typical layer entry, ~64
    static FunctionTraits large();     ///< operator inner loop, ~128
    static FunctionTraits huge();      ///< setup/parse code, ~320
};

} // namespace cgp

#endif // CGP_CODEGEN_FUNCTION_HH
