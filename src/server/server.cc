#include "server/server.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp::server
{

DbServer::DbServer(const ServerConfig &config, ServerWiring wiring)
    : config_(config), wiring_(std::move(wiring)),
      shared_(wiring_.mem.l2)
{
    cgp_assert(wiring_.registry != nullptr && wiring_.image != nullptr,
               "incomplete server wiring");
    cgp_assert(config_.cores >= 1, "server needs at least one core");

    if (config_.singleStream) {
        cgp_assert(config_.cores == 1,
                   "singleStream mode is single-core");
        cgp_assert(wiring_.singleStream != nullptr,
                   "singleStream mode without a trace");
    } else {
        cgp_assert(!wiring_.queries.empty(),
                   "admission mode without a query library");
        sched_ = std::make_unique<AdmissionScheduler>(
            config_, wiring_.queries.size());
    }

    CoreConfig core_cfg = wiring_.core;
    for (unsigned i = 0; i < config_.cores; ++i) {
        auto unit = std::make_unique<CoreUnit>();
        unit->mem = std::make_unique<MemoryHierarchy>(
            wiring_.mem, shared_, i);
        if (config_.singleStream) {
            unit->bufferSource = std::make_unique<BufferTraceSource>(
                *wiring_.singleStream);
            unit->expander = std::make_unique<InstructionExpander>(
                *wiring_.registry, *wiring_.image,
                *unit->bufferSource, wiring_.expand);
        } else {
            unit->source = std::make_unique<CoreTraceSource>(
                *sched_, wiring_.queries, wiring_.switchStub,
                config_, i);
            unit->expander = std::make_unique<InstructionExpander>(
                *wiring_.registry, *wiring_.image, *unit->source,
                wiring_.expand);
        }
        if (wiring_.engines)
            unit->engines = wiring_.engines(*unit->mem, i);
        unit->core = std::make_unique<Core>(
            *unit->expander, *unit->mem,
            unit->engines.iengine.get(), core_cfg,
            unit->engines.dengine.get());
        units_.push_back(std::move(unit));
    }
}

DbServer::~DbServer() = default;

void
DbServer::run()
{
    if (wiring_.sample.enabled) {
        runSampled(wiring_.sample);
        return;
    }

    for (auto &u : units_)
        u->core->beginRun();

    Cycle cycle = 0;
    for (;;) {
        bool running = false;
        for (auto &u : units_) {
            if (!u->core->finished()) {
                running = true;
                break;
            }
        }
        if (!running)
            break;
        ++cycle;
        if (sched_ != nullptr)
            sched_->wake(cycle);
        // Fixed core order every cycle: scheduler decisions (and
        // thus the whole run) are deterministic.
        for (auto &u : units_) {
            if (u->core->finished())
                continue;
            if (u->source != nullptr)
                u->source->setNow(cycle);
            u->core->stepCycle();
        }
    }
    finalize();
}

void
DbServer::runSampled(const sample::SampleConfig &cfg)
{
    for (auto &u : units_)
        u->core->beginRun();

    sample::WindowEstimator cpiE, l1iE, l1dE, stallE;
    Cycle cycle = 0;
    Cycle totalSkip = 0;
    const Cycle ffCycles = cfg.periodCycles > cfg.windowCycles
        ? cfg.periodCycles - cfg.windowCycles
        : 0;

    const auto anyRunning = [this]() {
        for (const auto &u : units_)
            if (!u->core->finished())
                return true;
        return false;
    };
    const auto allDrained = [this]() {
        for (const auto &u : units_)
            if (!u->core->finished() && !u->core->drained())
                return false;
        return true;
    };
    // One lockstep cycle, identical to the legacy loop's body.
    const auto stepAll = [this, &cycle]() {
        ++cycle;
        if (sched_ != nullptr)
            sched_->wake(cycle);
        for (auto &u : units_) {
            if (u->core->finished())
                continue;
            if (u->source != nullptr)
                u->source->setNow(cycle);
            u->core->stepCycle();
        }
    };

    // Warm the prefix.  In admission mode the sources are dry until
    // the scheduler binds sessions, so this mostly matters for
    // singleStream runs; per-period warming covers the rest.
    if (cfg.warmupInstrs > 0) {
        for (auto &u : units_)
            u->core->fastForward(cfg.warmupInstrs,
                                 cfg.functionalWarming);
    }

    std::vector<std::uint64_t> i0(units_.size(), 0);
    while (anyRunning()) {
        // 1. Global detailed window in lockstep.
        const Cycle winStart = cycle;
        Cycle coreCycles0 = 0;
        std::uint64_t iAcc0 = 0, iMiss0 = 0, dAcc0 = 0, dMiss0 = 0;
        std::uint64_t stall0 = 0;
        for (unsigned i = 0; i < units_.size(); ++i) {
            const CoreUnit &u = *units_[i];
            i0[i] = u.core->committedInstrs();
            coreCycles0 += u.core->cycles();
            iAcc0 += u.mem->l1i().demandAccesses();
            iMiss0 += u.mem->l1i().demandMisses();
            dAcc0 += u.mem->l1d().demandAccesses();
            dMiss0 += u.mem->l1d().demandMisses();
            stall0 += u.core->fetchIcacheStallCycles();
        }

        while (anyRunning() && cycle - winStart < cfg.windowCycles)
            stepAll();

        const Cycle winCycles = cycle - winStart;
        Cycle coreCycleDelta = 0;
        std::uint64_t winInstrs = 0;
        std::vector<std::uint64_t> coreWinInstrs(units_.size(), 0);
        std::uint64_t iAcc = 0, iMiss = 0, dAcc = 0, dMiss = 0;
        std::uint64_t stall = 0;
        for (unsigned i = 0; i < units_.size(); ++i) {
            const CoreUnit &u = *units_[i];
            coreWinInstrs[i] = u.core->committedInstrs() - i0[i];
            winInstrs += coreWinInstrs[i];
            coreCycleDelta += u.core->cycles();
            iAcc += u.mem->l1i().demandAccesses();
            iMiss += u.mem->l1i().demandMisses();
            dAcc += u.mem->l1d().demandAccesses();
            dMiss += u.mem->l1d().demandMisses();
            stall += u.core->fetchIcacheStallCycles();
        }
        coreCycleDelta -= coreCycles0;
        if (winCycles > 0 && winInstrs > 0) {
            ++sampledStats_.windows;
            // Aggregate CPI: detailed core-cycles over committed
            // instructions across all (still running) cores.
            cpiE.add(static_cast<double>(coreCycleDelta) /
                     static_cast<double>(winInstrs));
            if (iAcc > iAcc0)
                l1iE.add(static_cast<double>(iMiss - iMiss0) /
                         static_cast<double>(iAcc - iAcc0));
            if (dAcc > dAcc0)
                l1dE.add(static_cast<double>(dMiss - dMiss0) /
                         static_cast<double>(dAcc - dAcc0));
            stallE.add(static_cast<double>(stall - stall0) /
                       static_cast<double>(winInstrs));
        }
        if (!anyRunning())
            break;

        // 2. Drain every core so no in-flight instruction straddles
        // the clock jump.
        for (auto &u : units_)
            u->core->suspendFetch(true);
        while (anyRunning() && !allDrained())
            stepAll();
        for (auto &u : units_)
            u->core->suspendFetch(false);
        if (!anyRunning())
            break;

        // 3. Per-core fast-forward at each core's own window IPC.
        std::uint64_t consumed = 0;
        for (unsigned i = 0; i < units_.size(); ++i) {
            CoreUnit &u = *units_[i];
            if (u.core->finished())
                continue;
            const std::uint64_t budget = ffCycles *
                std::max<std::uint64_t>(coreWinInstrs[i], 1) /
                std::max<Cycle>(winCycles, 1);
            if (budget > 0)
                consumed += u.core->fastForward(
                    budget, cfg.functionalWarming);
        }

        // 4. One shared clock jump keeps the cores in lockstep and
        // lets the scheduler's think timers elapse over the skipped
        // region.  With nothing consumed and an idle window (cores
        // parked on think timers) the idle stretch itself is skipped
        // — there is no state to warm in it.
        Cycle skip = 0;
        if (consumed > 0)
            skip = consumed * std::max<Cycle>(winCycles, 1) /
                std::max<std::uint64_t>(winInstrs, 1);
        else if (winInstrs == 0)
            skip = ffCycles;
        if (skip > 0) {
            for (auto &u : units_) {
                if (!u->core->finished())
                    u->core->advanceClock(skip);
            }
            cycle += skip;
            totalSkip += skip;
        }
    }
    finalize();

    sampledStats_.detailedCycles = cycle - totalSkip;
    for (const auto &u : units_) {
        sampledStats_.detailedInstrs += u->core->committedInstrs();
        sampledStats_.warmedInstrs += u->core->warmedInstrs();
    }
    sampledStats_.skippedCycles = totalSkip;
    sampledStats_.cpi = cpiE.estimate();
    sampledStats_.l1iMissRate = l1iE.estimate();
    sampledStats_.l1dMissRate = l1dE.estimate();
    sampledStats_.fetchStallPerInstr = stallE.estimate();
}

void
DbServer::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    // Per-core state first (arbiter, L1s), then the shared L2 once —
    // the same order the owning single-core hierarchy uses.
    for (auto &u : units_)
        u->mem->finalize();
    shared_.finalize();
}

Cycle
DbServer::cycles() const
{
    Cycle c = 0;
    for (const auto &u : units_)
        c = std::max(c, u->core->cycles());
    return c;
}

ServerStats
DbServer::stats() const
{
    ServerStats s;
    s.cores = units_.size();
    s.sessions = config_.singleStream ? 1 : config_.sessions;
    s.cycles = cycles();
    s.portWaitCycles = shared_.port().waitCycles();

    if (sched_ != nullptr) {
        s.queriesServed = sched_->queriesServed();
        std::vector<std::uint64_t> lat = sched_->latencies();
        std::sort(lat.begin(), lat.end());
        s.latencyP50 = percentile(lat, 50.0);
        s.latencyP95 = percentile(lat, 95.0);
        s.latencyP99 = percentile(lat, 99.0);
    }

    for (unsigned i = 0; i < units_.size(); ++i) {
        const CoreUnit &u = *units_[i];
        ServerCoreStats c;
        c.cycles = u.core->cycles();
        c.instrs = u.core->committedInstrs();
        c.idleCycles = u.core->idleCycles();
        c.icacheAccesses = u.mem->l1i().demandAccesses();
        c.icacheMisses = u.mem->l1i().demandMisses();
        c.dcacheAccesses = u.mem->l1d().demandAccesses();
        c.dcacheMisses = u.mem->l1d().demandMisses();
        c.busLines = shared_.port().requestsBy(i);
        c.portWaitCycles = shared_.port().waitCyclesBy(i);
        if (u.source != nullptr) {
            c.queries = u.source->queriesCompleted();
            c.binds = u.source->binds();
        }
        s.binds += c.binds;
        s.perCore.push_back(c);
    }
    return s;
}

} // namespace cgp::server
