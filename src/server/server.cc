#include "server/server.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp::server
{

DbServer::DbServer(const ServerConfig &config, ServerWiring wiring)
    : config_(config), wiring_(std::move(wiring)),
      shared_(wiring_.mem.l2)
{
    cgp_assert(wiring_.registry != nullptr && wiring_.image != nullptr,
               "incomplete server wiring");
    cgp_assert(config_.cores >= 1, "server needs at least one core");

    if (config_.singleStream) {
        cgp_assert(config_.cores == 1,
                   "singleStream mode is single-core");
        cgp_assert(wiring_.singleStream != nullptr,
                   "singleStream mode without a trace");
    } else {
        cgp_assert(!wiring_.queries.empty(),
                   "admission mode without a query library");
        sched_ = std::make_unique<AdmissionScheduler>(
            config_, wiring_.queries.size());
    }

    CoreConfig core_cfg = wiring_.core;
    for (unsigned i = 0; i < config_.cores; ++i) {
        auto unit = std::make_unique<CoreUnit>();
        unit->mem = std::make_unique<MemoryHierarchy>(
            wiring_.mem, shared_, i);
        if (config_.singleStream) {
            unit->bufferSource = std::make_unique<BufferTraceSource>(
                *wiring_.singleStream);
            unit->expander = std::make_unique<InstructionExpander>(
                *wiring_.registry, *wiring_.image,
                *unit->bufferSource, wiring_.expand);
        } else {
            unit->source = std::make_unique<CoreTraceSource>(
                *sched_, wiring_.queries, wiring_.switchStub,
                config_, i);
            unit->expander = std::make_unique<InstructionExpander>(
                *wiring_.registry, *wiring_.image, *unit->source,
                wiring_.expand);
        }
        if (wiring_.engines)
            unit->engines = wiring_.engines(*unit->mem, i);
        unit->core = std::make_unique<Core>(
            *unit->expander, *unit->mem,
            unit->engines.iengine.get(), core_cfg,
            unit->engines.dengine.get());
        units_.push_back(std::move(unit));
    }
}

DbServer::~DbServer() = default;

void
DbServer::run()
{
    for (auto &u : units_)
        u->core->beginRun();

    Cycle cycle = 0;
    for (;;) {
        bool running = false;
        for (auto &u : units_) {
            if (!u->core->finished()) {
                running = true;
                break;
            }
        }
        if (!running)
            break;
        ++cycle;
        if (sched_ != nullptr)
            sched_->wake(cycle);
        // Fixed core order every cycle: scheduler decisions (and
        // thus the whole run) are deterministic.
        for (auto &u : units_) {
            if (u->core->finished())
                continue;
            if (u->source != nullptr)
                u->source->setNow(cycle);
            u->core->stepCycle();
        }
    }
    finalize();
}

void
DbServer::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    // Per-core state first (arbiter, L1s), then the shared L2 once —
    // the same order the owning single-core hierarchy uses.
    for (auto &u : units_)
        u->mem->finalize();
    shared_.finalize();
}

Cycle
DbServer::cycles() const
{
    Cycle c = 0;
    for (const auto &u : units_)
        c = std::max(c, u->core->cycles());
    return c;
}

ServerStats
DbServer::stats() const
{
    ServerStats s;
    s.cores = units_.size();
    s.sessions = config_.singleStream ? 1 : config_.sessions;
    s.cycles = cycles();
    s.portWaitCycles = shared_.port().waitCycles();

    if (sched_ != nullptr) {
        s.queriesServed = sched_->queriesServed();
        std::vector<std::uint64_t> lat = sched_->latencies();
        std::sort(lat.begin(), lat.end());
        s.latencyP50 = percentile(lat, 50.0);
        s.latencyP95 = percentile(lat, 95.0);
        s.latencyP99 = percentile(lat, 99.0);
    }

    for (unsigned i = 0; i < units_.size(); ++i) {
        const CoreUnit &u = *units_[i];
        ServerCoreStats c;
        c.cycles = u.core->cycles();
        c.instrs = u.core->committedInstrs();
        c.idleCycles = u.core->idleCycles();
        c.icacheAccesses = u.mem->l1i().demandAccesses();
        c.icacheMisses = u.mem->l1i().demandMisses();
        c.dcacheAccesses = u.mem->l1d().demandAccesses();
        c.dcacheMisses = u.mem->l1d().demandMisses();
        c.busLines = shared_.port().requestsBy(i);
        c.portWaitCycles = shared_.port().waitCyclesBy(i);
        if (u.source != nullptr) {
            c.queries = u.source->queriesCompleted();
            c.binds = u.source->binds();
        }
        s.binds += c.binds;
        s.perCore.push_back(c);
    }
    return s;
}

} // namespace cgp::server
