/**
 * @file
 * Compatibility shim for the deprecated trace/interleave path: the
 * legacy concurrent figures are produced by streaming the per-query
 * traces through a server-style source that reproduces the old
 * `interleaveTraces` schedule decision-for-decision (same rng stream,
 * same pick/re-pick rule, same jittered quanta, same Switch + stub
 * emission).  `legacyMerge` drains it into one buffer; a regression
 * test asserts the result is event-identical to the old merger.
 */

#ifndef CGP_SERVER_COMPAT_HH
#define CGP_SERVER_COMPAT_HH

#include <cstdint>
#include <vector>

#include "trace/events.hh"
#include "trace/source.hh"
#include "util/rng.hh"

namespace cgp::server
{

/** Streaming reproduction of the legacy `interleaveTraces` schedule
 *  (Rng(0x5c4ed), random pick avoiding back-to-back re-selection,
 *  quantum = q/2 + rng.nextBelow(q)). */
class LegacyInterleaveSource final : public TraceSource
{
  public:
    /**
     * @param threads Per-query traces, in legacy thread order.
     * @param quantumInstrs Legacy scheduling quantum.
     * @param switchStub Scheduler-stub events replayed after each
     *        Switch (may be null).
     */
    LegacyInterleaveSource(
        const std::vector<const TraceBuffer *> &threads,
        std::uint64_t quantumInstrs, const TraceBuffer *switchStub);

    Pull next(TraceEvent &out) override;

  private:
    /** Pick the next thread + quantum (legacy rng call order). */
    void bind();

    const std::vector<const TraceBuffer *> threads_;
    const std::uint64_t quantumInstrs_;
    const TraceBuffer *stub_;
    Rng rng_;

    std::vector<std::size_t> cursor_;
    std::vector<std::size_t> runnable_;
    std::size_t last_;
    std::size_t pick_ = 0;
    bool bound_ = false;
    bool pendingSwitch_ = false;
    std::size_t stubCursor_ = 0;
    std::uint64_t quantum_ = 0;
    std::uint64_t used_ = 0;
};

/** Drain the shim into one buffer (drop-in for interleaveTraces). */
TraceBuffer legacyMerge(
    const std::vector<const TraceBuffer *> &threads,
    std::uint64_t quantumInstrs, const TraceBuffer *switchStub);

} // namespace cgp::server

#endif // CGP_SERVER_COMPAT_HH
