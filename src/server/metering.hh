/**
 * @file
 * Quantum metering shared by the per-core session source and the
 * legacy-interleave shim: the instruction cost a trace event
 * contributes to a scheduling quantum (identical to the legacy
 * trace/interleave accounting, which the shim must reproduce
 * byte-for-byte).
 */

#ifndef CGP_SERVER_METERING_HH
#define CGP_SERVER_METERING_HH

#include <cstdint>

#include "trace/events.hh"

namespace cgp::server
{

inline std::uint64_t
eventCost(TraceEvent e)
{
    switch (e.kind()) {
      case EventKind::Work:
        return e.payload();
      case EventKind::Switch:
      case EventKind::Hint:
        return 0;
      default:
        return 1;
    }
}

} // namespace cgp::server

#endif // CGP_SERVER_METERING_HH
