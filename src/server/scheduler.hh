/**
 * @file
 * FIFO admission scheduler of the server model.
 *
 * Sessions wake out of think time into a global FIFO ready queue.
 * Each core runs a local FIFO of sessions whose current query it is
 * executing (a session's call-stack state lives in that core's
 * expander, so a session is core-affine for the duration of one
 * query).  When a core needs work it first admits at most one
 * session from the global FIFO into its local queue, then dispatches
 * the local front; quantum expiry re-queues at the local back.  The
 * double-FIFO gives a hard starvation bound: between two dispatches
 * of one session, every other session on its core runs at most once
 * and at most one new session is admitted.
 *
 * All decisions are functions of (config seed, call order); the
 * server steps cores in fixed index order, so a run is deterministic
 * at any host thread count.
 */

#ifndef CGP_SERVER_SCHEDULER_HH
#define CGP_SERVER_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "server/config.hh"
#include "server/session.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cgp::server
{

class AdmissionScheduler
{
  public:
    /** @param librarySize Number of queries in the workload's query
     *  library (the Zipf domain). */
    AdmissionScheduler(const ServerConfig &config,
                       std::size_t librarySize);

    /** Admit every session whose think time has elapsed by @p now
     *  (called once per simulated cycle, before cores step). */
    void wake(Cycle now);

    /**
     * Hand the next runnable session to core @p coreId: admit at
     * most one global-FIFO session to the core, then dispatch the
     * local front.  Returns nullptr when nothing is runnable on this
     * core this cycle.
     */
    ClientSession *dequeue(Cycle now, unsigned coreId);

    /** Quantum expired mid-query: back of the core's local queue. */
    void requeue(ClientSession &s, unsigned coreId);

    /** The session's current query finished at @p now: record the
     *  latency, then retire the session or start its next think. */
    void onQueryComplete(ClientSession &s, Cycle now);

    /** True once every session has retired (sources report End). */
    bool allRetired() const { return retired_ == sessions_.size(); }

    /**
     * Global query target reached: waking and still-queued sessions
     * retire instead of submitting; already-admitted queries run to
     * completion (the target is a floor, not an exact count).
     */
    bool
    draining() const
    {
        return config_.totalQueries != 0 &&
            served_ >= config_.totalQueries;
    }

    std::uint64_t queriesServed() const { return served_; }

    /** Completed-query latencies in completion order (cycles). */
    const std::vector<std::uint64_t> &
    latencies() const
    {
        return latencies_;
    }

    const std::vector<ClientSession> &
    sessions() const
    {
        return sessions_;
    }

    /**
     * The think-time draw a session makes on its private rng —
     * exposed so tests can replay one session's sequence in
     * isolation (reproducibility contract).
     */
    static std::uint64_t drawThink(Rng &rng, double meanCycles);

    /** Per-session base rng seed (splitmix64-expanded by Rng). */
    static std::uint64_t sessionSeed(std::uint64_t base,
                                     std::uint64_t id);

  private:
    void beginThink(ClientSession &s, Cycle now);
    void retire(ClientSession &s);
    /** Draw the query mix + enter the global ready FIFO. */
    void submit(ClientSession &s, Cycle now);

    ServerConfig config_;
    ZipfGenerator zipf_;
    std::vector<ClientSession> sessions_;
    /** (wake cycle, session) — multimap keeps id order within a
     *  cycle because equal keys preserve insertion order. */
    std::multimap<Cycle, std::uint64_t> waiting_;
    /** Sessions with a freshly-submitted query, not yet on a core. */
    std::deque<std::uint64_t> ready_;
    /** Per-core dispatch queues (admitted + descheduled sessions). */
    std::vector<std::deque<std::uint64_t>> local_;

    std::uint64_t served_ = 0;
    std::size_t retired_ = 0;
    std::vector<std::uint64_t> latencies_;
};

} // namespace cgp::server

#endif // CGP_SERVER_SCHEDULER_HH
