#include "server/scheduler.hh"

#include <cmath>

#include "util/logging.hh"

namespace cgp::server
{

std::uint64_t
AdmissionScheduler::sessionSeed(std::uint64_t base, std::uint64_t id)
{
    // Distinct odd-multiple offsets feed Rng's splitmix64 expansion,
    // giving each session an independent reproducible stream.
    return base ^ (0x9e3779b97f4a7c15ull * (id + 1));
}

std::uint64_t
AdmissionScheduler::drawThink(Rng &rng, double meanCycles)
{
    // One draw is always consumed so a session's stream is identical
    // whether or not think time is enabled.
    const double u = rng.nextDouble();
    if (meanCycles <= 0.0)
        return 0;
    const double v = -meanCycles * std::log(1.0 - u);
    return static_cast<std::uint64_t>(std::llround(v));
}

AdmissionScheduler::AdmissionScheduler(const ServerConfig &config,
                                       std::size_t librarySize)
    : config_(config),
      zipf_(librarySize == 0 ? 1 : librarySize, config.zipfTheta),
      local_(config.cores)
{
    cgp_assert(librarySize > 0, "empty query library");
    cgp_assert(config_.sessions > 0, "server with zero sessions");
    cgp_assert(config_.queriesPerSession != 0 ||
                   config_.totalQueries != 0,
               "unbounded server run: set queriesPerSession or "
               "totalQueries");
    sessions_.resize(config_.sessions);
    for (std::uint64_t i = 0; i < config_.sessions; ++i) {
        ClientSession &s = sessions_[i];
        s.id = i;
        s.rng = Rng(sessionSeed(config_.seed, i));
        s.state = ClientSession::State::Thinking;
        // Initial think staggers session arrivals.
        waiting_.emplace(drawThink(s.rng, config_.thinkMeanCycles),
                         i);
    }
}

void
AdmissionScheduler::wake(Cycle now)
{
    while (!waiting_.empty() && waiting_.begin()->first <= now) {
        ClientSession &s = sessions_[waiting_.begin()->second];
        waiting_.erase(waiting_.begin());
        if (draining())
            retire(s);
        else
            submit(s, now);
    }
}

void
AdmissionScheduler::submit(ClientSession &s, Cycle now)
{
    s.queryIdx = zipf_.next(s.rng);
    s.cursor = 0;
    s.submitCycle = now;
    s.state = ClientSession::State::Ready;
    ready_.push_back(s.id);
}

ClientSession *
AdmissionScheduler::dequeue(Cycle now, unsigned coreId)
{
    (void)now;
    cgp_assert(coreId < local_.size(), "dequeue from unknown core");
    // Admit at most one fresh session per dispatch so continuations
    // and new arrivals interleave fairly on the core.
    if (!ready_.empty()) {
        const std::uint64_t id = ready_.front();
        ready_.pop_front();
        if (draining() && sessions_[id].cursor == 0) {
            // Target reached before this query started: cancel it.
            retire(sessions_[id]);
        } else {
            local_[coreId].push_back(id);
        }
    }
    if (local_[coreId].empty())
        return nullptr;
    ClientSession &s = sessions_[local_[coreId].front()];
    local_[coreId].pop_front();
    s.state = ClientSession::State::Running;
    return &s;
}

void
AdmissionScheduler::requeue(ClientSession &s, unsigned coreId)
{
    cgp_assert(coreId < local_.size(), "requeue on unknown core");
    s.state = ClientSession::State::Ready;
    local_[coreId].push_back(s.id);
}

void
AdmissionScheduler::onQueryComplete(ClientSession &s, Cycle now)
{
    ++served_;
    ++s.served;
    latencies_.push_back(now - s.submitCycle);
    const bool quota = config_.queriesPerSession != 0 &&
        s.served >= config_.queriesPerSession;
    if (quota || draining())
        retire(s);
    else
        beginThink(s, now);
}

void
AdmissionScheduler::beginThink(ClientSession &s, Cycle now)
{
    s.state = ClientSession::State::Thinking;
    waiting_.emplace(now + drawThink(s.rng, config_.thinkMeanCycles),
                     s.id);
}

void
AdmissionScheduler::retire(ClientSession &s)
{
    cgp_assert(s.state != ClientSession::State::Retired,
               "double retire");
    s.state = ClientSession::State::Retired;
    ++retired_;
}

} // namespace cgp::server
