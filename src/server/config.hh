/**
 * @file
 * Configuration of the multi-core DB server model (see DESIGN.md
 * §10): N cores with private L1s + prefetch engines in front of one
 * shared L2, fed by a closed-loop population of client sessions
 * through a FIFO admission scheduler.
 */

#ifndef CGP_SERVER_CONFIG_HH
#define CGP_SERVER_CONFIG_HH

#include <cstdint>

namespace cgp::server
{

struct ServerConfig
{
    /** Model the workload through the server (false = legacy
     *  single-core pre-merged-trace path). */
    bool enabled = false;

    /** Cores, each with private L1-I/L1-D/CGP/D-engine/arbiter. */
    unsigned cores = 1;

    /** Concurrent client sessions (closed loop). */
    unsigned sessions = 1;

    /**
     * Replay the workload's pre-merged trace on core 0 instead of
     * running the admission scheduler.  With cores == sessions == 1
     * this is byte-identical to the legacy path (the golden
     * contract); it also routes the legacy interleaved figures
     * through the server plumbing.
     */
    bool singleStream = false;

    /** Instructions per scheduling quantum (jittered ±50% like the
     *  legacy interleaver). */
    std::uint64_t quantumInstrs = 60000;

    /** Mean of the exponential per-session think time, in cycles
     *  (0 = no think time: sessions resubmit immediately). */
    double thinkMeanCycles = 50000.0;

    /** Zipf skew of the query mix over the workload's query library
     *  (0 = uniform). */
    double zipfTheta = 0.75;

    /** Queries a session issues before retiring (0 = unbounded;
     *  then totalQueries must be set). */
    std::uint64_t queriesPerSession = 0;

    /** Global stop target: once this many queries completed, the
     *  server drains and stops admitting (0 = per-session limits
     *  only). */
    std::uint64_t totalQueries = 0;

    /** Base seed; per-session and per-core streams are derived
     *  through splitmix64 (the Rng seeding), so any session's think
     *  and mix sequences are reproducible in isolation. */
    std::uint64_t seed = 0x5e55;
};

} // namespace cgp::server

#endif // CGP_SERVER_CONFIG_HH
