/**
 * @file
 * DbServer: the N-core database server model (DESIGN.md §10).
 *
 * Topology: N cores, each owning a private L1-I/L1-D, its own
 * instruction- and data-prefetch engines and its own PrefetchArbiter,
 * all in front of one SharedL2 behind the shared FIFO port (per-core
 * request attribution gives the cross-core contention accounting).
 * In front, an AdmissionScheduler feeds closed-loop client sessions
 * (exponential think times, Zipf query mix over the workload's query
 * library) to the cores; each core's CoreTraceSource streams its
 * bound session's events into that core's private InstructionExpander
 * and Core, which the server steps in lockstep, one global cycle at
 * a time, in fixed core order (determinism).
 *
 * Correctness contract: with cores = sessions = 1 in singleStream
 * mode the server is byte-identical to the legacy single-core path
 * (enforced by a golden test).
 */

#ifndef CGP_SERVER_SERVER_HH
#define CGP_SERVER_SERVER_HH

#include <functional>
#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "dprefetch/dprefetcher.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "sample/config.hh"
#include "sample/estimator.hh"
#include "server/config.hh"
#include "server/scheduler.hh"
#include "server/source.hh"
#include "server/stats.hh"
#include "trace/expand.hh"
#include "trace/source.hh"

namespace cgp::server
{

/** Per-core prefetch engines built by the harness (the server does
 *  not know about SimConfig / fail-soft policy). */
struct EnginePair
{
    std::unique_ptr<InstrPrefetcher> iengine;
    std::unique_ptr<DataPrefetcher> dengine;
};

/** Called once per core, after that core's hierarchy exists. */
using EngineFactory =
    std::function<EnginePair(MemoryHierarchy &mem, unsigned coreId)>;

struct ServerWiring
{
    const FunctionRegistry *registry = nullptr;
    const CodeImage *image = nullptr;
    ExpanderConfig expand;
    /** Per-core L1 + arbiter geometry; `.l2` builds the SharedL2. */
    HierarchyConfig mem;
    CoreConfig core;
    /** May be empty: cores run without prefetch engines. */
    EngineFactory engines;

    /**
     * SMARTS-style sampling under the lockstep loop (DESIGN.md
     * §11.4): global detailed windows, an all-core drain, per-core
     * functional fast-forward and one shared clock jump so the cores
     * stay in lockstep.  Warm-state checkpoints are not offered on
     * the server path (the scheduler/session state is not
     * serialized); the hooks in here are ignored.
     */
    sample::SampleConfig sample;

    /** singleStream mode: the pre-merged trace replayed on core 0. */
    const TraceBuffer *singleStream = nullptr;
    /** Admission mode: the query library sessions draw from. */
    std::vector<const TraceBuffer *> queries;
    /** Scheduler stub replayed at each bind (may be null). */
    const TraceBuffer *switchStub = nullptr;
};

class DbServer
{
  public:
    DbServer(const ServerConfig &config, ServerWiring wiring);
    ~DbServer();

    /** Run to completion (throws TimeoutError / CancelledError via
     *  the per-core watchdogs) and finalize all memory state. */
    void run();

    /** Global cycle count (max over cores). */
    Cycle cycles() const;

    unsigned
    numCores() const
    {
        return static_cast<unsigned>(units_.size());
    }
    Core &coreAt(unsigned i) { return *units_[i]->core; }
    MemoryHierarchy &memAt(unsigned i) { return *units_[i]->mem; }
    InstructionExpander &expanderAt(unsigned i)
    {
        return *units_[i]->expander;
    }
    InstrPrefetcher *iengineAt(unsigned i)
    {
        return units_[i]->engines.iengine.get();
    }
    DataPrefetcher *dengineAt(unsigned i)
    {
        return units_[i]->engines.dengine.get();
    }
    /** Null in singleStream mode. */
    const CoreTraceSource *
    sourceAt(unsigned i) const
    {
        return units_[i]->source.get();
    }

    SharedL2 &sharedL2() { return shared_; }
    /** Null in singleStream mode. */
    const AdmissionScheduler *scheduler() const { return sched_.get(); }

    /** Aggregate + per-core queueing statistics (valid after run). */
    ServerStats stats() const;

    /** Sampling estimators (valid after run when wiring.sample is
     *  enabled; zeroed otherwise). */
    const sample::SampledStats &sampledStats() const
    {
        return sampledStats_;
    }

  private:
    struct CoreUnit
    {
        std::unique_ptr<CoreTraceSource> source;
        std::unique_ptr<BufferTraceSource> bufferSource;
        std::unique_ptr<MemoryHierarchy> mem;
        std::unique_ptr<InstructionExpander> expander;
        EnginePair engines;
        std::unique_ptr<Core> core;
    };

    void finalize();

    /** The sampled lockstep loop (run() dispatches here when the
     *  wiring enables sampling). */
    void runSampled(const sample::SampleConfig &cfg);

    ServerConfig config_;
    ServerWiring wiring_;
    SharedL2 shared_;
    std::unique_ptr<AdmissionScheduler> sched_;
    std::vector<std::unique_ptr<CoreUnit>> units_;
    sample::SampledStats sampledStats_;
    bool finalized_ = false;
};

} // namespace cgp::server

#endif // CGP_SERVER_SERVER_HH
