/**
 * @file
 * Queueing and per-core statistics of a server-model run, carried
 * inside SimResult (emitted to JSON only when the server model ran,
 * so legacy results stay byte-identical).
 */

#ifndef CGP_SERVER_STATS_HH
#define CGP_SERVER_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cgp::server
{

struct ServerCoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    std::uint64_t idleCycles = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t dcacheMisses = 0;
    /** L2-port requests issued by this core (demand + prefetch). */
    std::uint64_t busLines = 0;
    /** Cycles this core's requests queued behind the shared-port
     *  backlog — the cross-core contention signal. */
    std::uint64_t portWaitCycles = 0;
    std::uint64_t queries = 0;
    std::uint64_t binds = 0;

    double
    utilization() const
    {
        return cycles == 0
            ? 0.0
            : 1.0
                - static_cast<double>(idleCycles)
                    / static_cast<double>(cycles);
    }

    bool operator==(const ServerCoreStats &) const = default;
};

struct ServerStats
{
    std::uint64_t cores = 0;
    std::uint64_t sessions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t queriesServed = 0;
    std::uint64_t binds = 0;
    /** Session query latency percentiles in cycles (submit →
     *  completion, including queueing and descheduled time). */
    std::uint64_t latencyP50 = 0;
    std::uint64_t latencyP95 = 0;
    std::uint64_t latencyP99 = 0;
    std::uint64_t portWaitCycles = 0;
    std::vector<ServerCoreStats> perCore;

    /** Throughput in queries per million cycles (multiply by the
     *  clock in MHz for queries/sec). */
    double
    queriesPerMcycle() const
    {
        return cycles == 0
            ? 0.0
            : static_cast<double>(queriesServed) * 1e6
                / static_cast<double>(cycles);
    }

    bool operator==(const ServerStats &) const = default;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample.  Total over
 * its whole input domain: an empty sample yields 0, @p q is clamped
 * to [0, 100] (q = 0 selects the minimum, q = 100 the maximum), and
 * a non-finite @p q is treated as 0 rather than fed to the
 * float-to-integer cast (undefined behaviour for NaN).
 */
inline std::uint64_t
percentile(const std::vector<std::uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    if (!std::isfinite(q))
        q = 0.0;
    q = std::clamp(q, 0.0, 100.0);
    const double rank =
        std::ceil(q / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t idx = static_cast<std::size_t>(
        std::max(rank, 1.0)) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace cgp::server

#endif // CGP_SERVER_STATS_HH
