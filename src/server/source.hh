/**
 * @file
 * CoreTraceSource: the per-core TraceSource that turns scheduler
 * decisions into the event stream driving one core's expander.
 *
 * At each bind it emits a Switch event (the expander keys per-session
 * call stacks off the payload) followed by the OS scheduler stub,
 * then streams the bound session's query events, metering the
 * scheduling quantum exactly like the legacy interleaver (Work =
 * payload, Switch/Hint = 0, else 1).  Quantum expiry re-queues the
 * session on this core; query completion reports to the scheduler
 * (fetch-side completion — see DESIGN.md §10).  With no runnable
 * session the source reports Dry (the core idles the cycle), and End
 * once every session has retired.
 */

#ifndef CGP_SERVER_SOURCE_HH
#define CGP_SERVER_SOURCE_HH

#include <cstdint>
#include <vector>

#include "server/scheduler.hh"
#include "trace/events.hh"
#include "trace/source.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cgp::server
{

class CoreTraceSource final : public TraceSource
{
  public:
    /**
     * @param library Per-query recorded traces (Zipf domain).
     * @param switchStub Events replayed after every Switch (may be
     *        null: no scheduler stub).
     */
    CoreTraceSource(AdmissionScheduler &sched,
                    const std::vector<const TraceBuffer *> &library,
                    const TraceBuffer *switchStub,
                    const ServerConfig &config, unsigned coreId);

    /** The server sets the global cycle before stepping the core
     *  (completion/latency timestamps come from here). */
    void setNow(Cycle now) { now_ = now; }

    Pull next(TraceEvent &out) override;

    std::uint64_t binds() const { return binds_; }
    std::uint64_t queriesCompleted() const { return queries_; }

  private:
    AdmissionScheduler &sched_;
    const std::vector<const TraceBuffer *> &library_;
    const TraceBuffer *stub_;
    const std::uint64_t quantumInstrs_;
    const unsigned coreId_;
    /** Quantum jitter stream, independent per core. */
    Rng rng_;

    Cycle now_ = 0;
    ClientSession *bound_ = nullptr;
    bool pendingSwitch_ = false;
    std::size_t stubCursor_ = 0;
    std::uint64_t quantumLeft_ = 0;

    std::uint64_t binds_ = 0;
    std::uint64_t queries_ = 0;
};

} // namespace cgp::server

#endif // CGP_SERVER_SOURCE_HH
