#include "server/source.hh"

#include "server/metering.hh"
#include "util/logging.hh"

namespace cgp::server
{

CoreTraceSource::CoreTraceSource(
    AdmissionScheduler &sched,
    const std::vector<const TraceBuffer *> &library,
    const TraceBuffer *switchStub, const ServerConfig &config,
    unsigned coreId)
    : sched_(sched), library_(library), stub_(switchStub),
      quantumInstrs_(config.quantumInstrs), coreId_(coreId),
      rng_(AdmissionScheduler::sessionSeed(
          config.seed ^ 0xc0de5eedull, coreId))
{
    cgp_assert(quantumInstrs_ > 0, "zero scheduling quantum");
    for (const TraceBuffer *q : library_)
        cgp_assert(q != nullptr && !q->empty(), "bad query trace");
}

TraceSource::Pull
CoreTraceSource::next(TraceEvent &out)
{
    for (;;) {
        if (bound_ != nullptr) {
            if (pendingSwitch_) {
                pendingSwitch_ = false;
                out = TraceEvent::make(EventKind::Switch, bound_->id);
                return Pull::Event;
            }
            if (stub_ != nullptr && stubCursor_ < stub_->size()) {
                // Scheduler-stub events run on the incoming
                // session's stack and do not consume its quantum
                // (same accounting as the legacy interleaver).
                out = stub_->at(stubCursor_++);
                return Pull::Event;
            }
            cgp_assert(bound_->queryIdx < library_.size(),
                       "query index out of range");
            const TraceBuffer &q = *library_[bound_->queryIdx];
            if (bound_->cursor >= q.size()) {
                // Fetch-side completion: the last event has been
                // handed to the expander.
                sched_.onQueryComplete(*bound_, now_);
                ++queries_;
                bound_ = nullptr;
                continue;
            }
            if (quantumLeft_ == 0) {
                sched_.requeue(*bound_, coreId_);
                bound_ = nullptr;
                continue;
            }
            const TraceEvent e = q.at(bound_->cursor++);
            const std::uint64_t cost = eventCost(e);
            quantumLeft_ -= cost < quantumLeft_ ? cost : quantumLeft_;
            out = e;
            return Pull::Event;
        }

        ClientSession *s = sched_.dequeue(now_, coreId_);
        if (s == nullptr)
            return sched_.allRetired() ? Pull::End : Pull::Dry;
        bound_ = s;
        ++binds_;
        pendingSwitch_ = true;
        stubCursor_ = 0;
        // Jittered quantum, like the legacy interleaver's: I/O waits
        // and lock hand-offs make real slice lengths vary.
        quantumLeft_ = quantumInstrs_ / 2 +
            rng_.nextBelow(quantumInstrs_);
    }
}

} // namespace cgp::server
