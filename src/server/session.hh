/**
 * @file
 * One client session of the server model: a closed-loop generator
 * that thinks (exponential), submits a Zipf-drawn query from the
 * workload's query library, waits for it to complete, and repeats.
 *
 * A session's dynamic call-stack state lives in the expander of the
 * core executing its current query, keyed by the session id (the
 * expander's thread id), so a session is core-affine for the
 * duration of one query and free to land anywhere between queries.
 */

#ifndef CGP_SERVER_SESSION_HH
#define CGP_SERVER_SESSION_HH

#include <cstddef>
#include <cstdint>

#include "util/rng.hh"
#include "util/types.hh"

namespace cgp::server
{

struct ClientSession
{
    enum class State : std::uint8_t
    {
        Thinking, ///< waiting out the think time
        Ready,    ///< queued for a core
        Running,  ///< bound to a core
        Retired   ///< done for good
    };

    std::uint64_t id = 0;
    /** Private stream (think times + query mix); seeded so the
     *  session's whole behaviour replays in isolation. */
    Rng rng{0};
    State state = State::Thinking;

    std::uint64_t served = 0;

    /// @{ Current query (valid from submit to completion).
    std::size_t queryIdx = 0; ///< index into the query library
    std::size_t cursor = 0;   ///< next event within the query trace
    Cycle submitCycle = 0;    ///< when the query entered the system
    /// @}
};

} // namespace cgp::server

#endif // CGP_SERVER_SESSION_HH
