#include "server/compat.hh"

#include <algorithm>

#include "server/metering.hh"
#include "util/logging.hh"

namespace cgp::server
{

LegacyInterleaveSource::LegacyInterleaveSource(
    const std::vector<const TraceBuffer *> &threads,
    std::uint64_t quantumInstrs, const TraceBuffer *switchStub)
    : threads_(threads), quantumInstrs_(quantumInstrs),
      stub_(switchStub), rng_(0x5c4ed),
      cursor_(threads.size(), 0), last_(~std::size_t{0})
{
    cgp_assert(!threads_.empty(), "no threads to interleave");
    cgp_assert(quantumInstrs_ > 0, "zero scheduling quantum");
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        cgp_assert(threads_[i] != nullptr, "null thread trace");
        if (!threads_[i]->empty())
            runnable_.push_back(i);
    }
}

void
LegacyInterleaveSource::bind()
{
    // Same decision sequence as the legacy merger: one pick, one
    // conditional re-pick, then the quantum draw — rng call order
    // is part of the byte-compat contract.
    pick_ = runnable_[rng_.nextBelow(runnable_.size())];
    if (runnable_.size() > 1 && pick_ == last_)
        pick_ = runnable_[rng_.nextBelow(runnable_.size())];
    last_ = pick_;
    quantum_ = quantumInstrs_ / 2 + rng_.nextBelow(quantumInstrs_);
    used_ = 0;
    bound_ = true;
    pendingSwitch_ = true;
    stubCursor_ = 0;
}

TraceSource::Pull
LegacyInterleaveSource::next(TraceEvent &out)
{
    for (;;) {
        if (!bound_) {
            if (runnable_.empty())
                return Pull::End;
            bind();
        }
        if (pendingSwitch_) {
            pendingSwitch_ = false;
            out = TraceEvent::make(EventKind::Switch, pick_);
            return Pull::Event;
        }
        if (stub_ != nullptr && stubCursor_ < stub_->size()) {
            out = stub_->at(stubCursor_++);
            return Pull::Event;
        }
        const TraceBuffer &t = *threads_[pick_];
        if (cursor_[pick_] < t.size() && used_ < quantum_) {
            const TraceEvent e = t.at(cursor_[pick_]++);
            used_ += eventCost(e);
            out = e;
            return Pull::Event;
        }
        if (cursor_[pick_] >= t.size()) {
            runnable_.erase(std::find(runnable_.begin(),
                                      runnable_.end(), pick_));
        }
        bound_ = false;
    }
}

TraceBuffer
legacyMerge(const std::vector<const TraceBuffer *> &threads,
            std::uint64_t quantumInstrs, const TraceBuffer *switchStub)
{
    LegacyInterleaveSource src(threads, quantumInstrs, switchStub);
    TraceBuffer out;
    TraceEvent e = TraceEvent::make(EventKind::Work, 0);
    while (src.next(e) == TraceSource::Pull::Event)
        out.append(e);
    return out;
}

} // namespace cgp::server
