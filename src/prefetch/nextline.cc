#include "prefetch/nextline.hh"

#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp
{

NextNLinePrefetcher::NextNLinePrefetcher(Cache &l1i, unsigned depth,
                                         AccessSource source)
    : l1i_(l1i), depth_(depth), source_(source)
{
    cgp_assert(depth > 0, "NL depth must be positive");
}

void
NextNLinePrefetcher::onFetchLine(Addr line_addr, Cycle now)
{
    if (fault::hit("prefetch.issue"))
        throw fault::TransientIoError("injected NL issue fault");
    const Addr line = l1i_.lineBytes();
    for (unsigned i = 1; i <= depth_; ++i)
        l1i_.prefetch(line_addr + i * line, now, source_);
}

RunAheadNLPrefetcher::RunAheadNLPrefetcher(Cache &l1i, unsigned depth,
                                           unsigned skip)
    : l1i_(l1i), depth_(depth), skip_(skip)
{
    cgp_assert(depth > 0, "run-ahead depth must be positive");
}

void
RunAheadNLPrefetcher::onFetchLine(Addr line_addr, Cycle now)
{
    const Addr line = l1i_.lineBytes();
    for (unsigned i = 1; i <= depth_; ++i) {
        l1i_.prefetch(line_addr + (skip_ + i) * line, now,
                      AccessSource::PrefetchNL);
    }
}

} // namespace cgp
