#include "prefetch/cgp.hh"

#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp
{

CgpPrefetcher::CgpPrefetcher(Cache &l1i, const CghcConfig &cghc_config,
                             unsigned depth)
    : l1i_(l1i), cghc_(cghc_config),
      nl_(l1i, depth, AccessSource::PrefetchNL), depth_(depth)
{
    cgp_assert(depth > 0, "CGP depth must be positive");
}

void
CgpPrefetcher::prefetchFunction(Addr func_start, Cycle when)
{
    if (fault::hit("prefetch.issue"))
        throw fault::TransientIoError("injected CGP issue fault");
    const Addr line = l1i_.lineBytes();
    const Addr base = l1i_.lineAlign(func_start);
    for (unsigned i = 0; i < depth_; ++i) {
        l1i_.prefetch(base + i * line, when,
                      AccessSource::PrefetchCGHC);
    }
}

void
CgpPrefetcher::onFetchLine(Addr line_addr, Cycle now)
{
    // Within a function boundary CGP relies on plain NL (§3.2).
    nl_.onFetchLine(line_addr, now);
}

void
CgpPrefetcher::onCall(Addr callee_start, Addr caller_start, Cycle now)
{
    if (callee_start != invalidAddr) {
        const auto probe = cghc_.callPrefetchAccess(callee_start);
        if (probe.prefetchTarget != invalidAddr) {
            // The prefetch issues the cycle after the CGHC hit
            // (§3.3); an L2-CGHC hit adds that level's latency.
            prefetchFunction(probe.prefetchTarget, now + probe.delay);
        }
        if (caller_start != invalidAddr) {
            if (fault::hit("prefetch.train"))
                throw fault::TransientIoError(
                    "injected CGHC train fault");
            cghc_.callUpdateAccess(caller_start, callee_start);
        }
    }
}

void
CgpPrefetcher::onReturn(Addr returnee_start, Addr returning_start,
                        Cycle now)
{
    if (returnee_start != invalidAddr) {
        const auto probe = cghc_.returnPrefetchAccess(returnee_start);
        if (probe.prefetchTarget != invalidAddr)
            prefetchFunction(probe.prefetchTarget, now + probe.delay);
    }
    if (returning_start != invalidAddr) {
        if (fault::hit("prefetch.train"))
            throw fault::TransientIoError("injected CGHC train fault");
        cghc_.returnUpdateAccess(returning_start);
    }
}

} // namespace cgp
