#include "prefetch/software_cgp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp
{

SoftwareCgpPrefetcher::SoftwareCgpPrefetcher(
    Cache &l1i, const FunctionRegistry &registry,
    const CodeImage &image, const ExecutionProfile &profile,
    unsigned depth, unsigned max_callees)
    : l1i_(l1i), nl_(l1i, depth, AccessSource::PrefetchNL),
      depth_(depth)
{
    cgp_assert(depth > 0, "software CGP depth must be positive");
    cgp_assert(max_callees > 0, "need at least one callee slot");

    // "Compile" the prefetch schedule: for every profiled caller,
    // order its callees by observed frequency and keep the top
    // max_callees — these are the targets of the inserted prefetch
    // instructions at the function's successive call sites.
    std::unordered_map<FunctionId,
                       std::vector<std::pair<std::uint64_t,
                                             FunctionId>>> edges;
    for (const auto &[edge, weight] : profile.callEdges())
        edges[edge.first].push_back({weight, edge.second});

    for (auto &[caller, callees] : edges) {
        std::sort(callees.rbegin(), callees.rend());
        FuncInfo info;
        for (const auto &[w, callee] : callees) {
            (void)w;
            if (info.callees.size() >= max_callees)
                break;
            info.callees.push_back(image.funcStart(callee));
        }
        if (caller < registry.size())
            table_.emplace(image.funcStart(caller), std::move(info));
    }
}

void
SoftwareCgpPrefetcher::prefetchFunction(Addr func_start, Cycle now)
{
    const Addr line = l1i_.lineBytes();
    const Addr base = l1i_.lineAlign(func_start);
    for (unsigned i = 0; i < depth_; ++i) {
        // Software prefetches charge the same classification path as
        // CGHC-issued ones so the benches can compare them directly.
        l1i_.prefetch(base + i * line, now,
                      AccessSource::PrefetchCGHC);
    }
}

void
SoftwareCgpPrefetcher::onFetchLine(Addr line_addr, Cycle now)
{
    nl_.onFetchLine(line_addr, now);
}

void
SoftwareCgpPrefetcher::onCall(Addr callee_start, Addr caller_start,
                              Cycle now)
{
    (void)caller_start;
    if (callee_start == invalidAddr)
        return;
    // The inserted instructions at the callee's entry prefetch its
    // statically most likely first callee.
    auto it = table_.find(callee_start);
    if (it == table_.end())
        return;
    it->second.cursor = 0;
    if (!it->second.callees.empty()) {
        prefetchFunction(it->second.callees.front(), now + 1);
        it->second.cursor = 1;
    }
}

void
SoftwareCgpPrefetcher::onReturn(Addr returnee_start,
                                Addr returning_start, Cycle now)
{
    (void)returning_start;
    if (returnee_start == invalidAddr)
        return;
    // The instructions after each call site prefetch the next
    // statically scheduled callee.
    auto it = table_.find(returnee_start);
    if (it == table_.end())
        return;
    FuncInfo &info = it->second;
    if (info.cursor < info.callees.size()) {
        prefetchFunction(info.callees[info.cursor], now + 1);
        ++info.cursor;
    }
}

} // namespace cgp
