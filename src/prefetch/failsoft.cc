#include "prefetch/failsoft.hh"

#include "util/logging.hh"

namespace cgp
{

FailSoftPrefetcher::FailSoftPrefetcher(
    std::unique_ptr<InstrPrefetcher> inner)
    : inner_(std::move(inner))
{
    cgp_assert(inner_ != nullptr,
               "FailSoftPrefetcher needs an inner prefetcher");
}

void
FailSoftPrefetcher::disable(const char *hook, const std::string &why)
{
    degraded_ = true;
    reason_ = why;
    cgp_error("prefetcher '", inner_->name(), "' faulted in ", hook,
              " (", why, "); continuing without prefetch");
}

void
FailSoftPrefetcher::onFetchLine(Addr line_addr, Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onFetchLine(line_addr, now);
    } catch (const std::exception &e) {
        disable("onFetchLine", e.what());
    }
}

void
FailSoftPrefetcher::onCall(Addr callee_start, Addr caller_start,
                           Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onCall(callee_start, caller_start, now);
    } catch (const std::exception &e) {
        disable("onCall", e.what());
    }
}

void
FailSoftPrefetcher::onReturn(Addr returnee_start, Addr returning_start,
                             Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onReturn(returnee_start, returning_start, now);
    } catch (const std::exception &e) {
        disable("onReturn", e.what());
    }
}

const char *
FailSoftPrefetcher::name() const
{
    return degraded_ ? "none (degraded)" : inner_->name();
}

} // namespace cgp
