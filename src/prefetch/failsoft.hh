/**
 * @file
 * Fail-soft prefetcher decorator: prefetching is an optimisation, so
 * a fault inside a prefetcher — an injected crash point, a corrupt
 * trace observation, any thrown exception — must never take down the
 * simulated machine.  The wrapper forwards every hook to the inner
 * prefetcher; on the first exception it logs an error event,
 * permanently disables the inner prefetcher, and the run continues
 * prefetch-less from that point (graceful degradation).
 */

#ifndef CGP_PREFETCH_FAILSOFT_HH
#define CGP_PREFETCH_FAILSOFT_HH

#include <memory>
#include <string>

#include "prefetch/prefetcher.hh"

namespace cgp
{

class FailSoftPrefetcher : public InstrPrefetcher
{
  public:
    explicit FailSoftPrefetcher(
        std::unique_ptr<InstrPrefetcher> inner);

    void onFetchLine(Addr line_addr, Cycle now) override;
    void onCall(Addr callee_start, Addr caller_start,
                Cycle now) override;
    void onReturn(Addr returnee_start, Addr returning_start,
                  Cycle now) override;

    const char *name() const override;

    /** Forwarded so the inner engine can freeze its counters. */
    void setWarming(bool warming) override
    {
        if (inner_ != nullptr && !degraded_)
            inner_->setWarming(warming);
    }

    /** True once the inner prefetcher has been disabled. */
    bool degraded() const { return degraded_; }

    /** What disabled it (empty while healthy). */
    const std::string &reason() const { return reason_; }

    /** The wrapped engine (for checkpoint state access). */
    InstrPrefetcher *inner() { return inner_.get(); }

  private:
    void disable(const char *hook, const std::string &why);

    std::unique_ptr<InstrPrefetcher> inner_;
    bool degraded_ = false;
    std::string reason_;
};

} // namespace cgp

#endif // CGP_PREFETCH_FAILSOFT_HH
