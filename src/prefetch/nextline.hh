/**
 * @file
 * Sequential prefetchers: next-N-line (Smith/Hsu, paper §2) and the
 * run-ahead variant the paper evaluates and rejects in §5.6.
 */

#ifndef CGP_PREFETCH_NEXTLINE_HH
#define CGP_PREFETCH_NEXTLINE_HH

#include "prefetch/prefetcher.hh"

namespace cgp
{

/**
 * NL_N: when the CPU fetches a line, prefetch the next @p depth
 * sequential lines unless already present or in flight.
 */
class NextNLinePrefetcher : public InstrPrefetcher
{
  public:
    /**
     * @param l1i Target instruction cache.
     * @param depth Lines prefetched ahead (the paper's N: 2 or 4).
     * @param source Attribution for classification stats; CGP's
     *        embedded NL part passes PrefetchNL as well.
     */
    NextNLinePrefetcher(Cache &l1i, unsigned depth,
                        AccessSource source = AccessSource::PrefetchNL);

    void onFetchLine(Addr line_addr, Cycle now) override;

    const char *name() const override { return "next-n-line"; }

    unsigned depth() const { return depth_; }

  private:
    Cache &l1i_;
    unsigned depth_;
    AccessSource source_;
};

/**
 * Run-ahead NL (§5.6): prefetches @p depth lines starting @p skip
 * lines beyond the fetched line.  The paper found this performs much
 * worse than plain NL on DBMS code (43 instructions between calls
 * means far-ahead lines are usually never reached); we reproduce it
 * as an ablation.
 */
class RunAheadNLPrefetcher : public InstrPrefetcher
{
  public:
    RunAheadNLPrefetcher(Cache &l1i, unsigned depth, unsigned skip);

    void onFetchLine(Addr line_addr, Cycle now) override;

    const char *name() const override { return "runahead-nl"; }

  private:
    Cache &l1i_;
    unsigned depth_;
    unsigned skip_;
};

} // namespace cgp

#endif // CGP_PREFETCH_NEXTLINE_HH
