#include "prefetch/cghc.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/bitops.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp
{

namespace
{

/** Data-array bytes per finite entry (one cache line). */
constexpr std::uint32_t entryBytes = 32;

} // anonymous namespace

CghcConfig
CghcConfig::oneLevel1K()
{
    CghcConfig c;
    c.l1Bytes = 1024;
    c.l2Bytes = 0;
    return c;
}

CghcConfig
CghcConfig::oneLevel32K()
{
    CghcConfig c;
    c.l1Bytes = 32 * 1024;
    c.l2Bytes = 0;
    return c;
}

CghcConfig
CghcConfig::twoLevel1K16K()
{
    CghcConfig c;
    c.l1Bytes = 1024;
    c.l2Bytes = 16 * 1024;
    return c;
}

CghcConfig
CghcConfig::twoLevel2K32K()
{
    CghcConfig c;
    c.l1Bytes = 2 * 1024;
    c.l2Bytes = 32 * 1024;
    return c;
}

CghcConfig
CghcConfig::infiniteSize()
{
    CghcConfig c;
    c.infinite = true;
    return c;
}

std::string
CghcConfig::describe() const
{
    if (infinite)
        return "CGHC-Inf";
    std::ostringstream os;
    os << "CGHC-" << l1Bytes / 1024 << "K";
    if (l2Bytes > 0)
        os << "+" << l2Bytes / 1024 << "K";
    if (assoc > 1)
        os << "-" << assoc << "way";
    return os.str();
}

Cghc::Cghc(const CghcConfig &config)
    : config_(config),
      l1Entries_(config.infinite ? 0 : config.l1Bytes / entryBytes),
      l2Entries_(config.infinite ? 0 : config.l2Bytes / entryBytes),
      stats_("cghc")
{
    if (!config_.infinite) {
        cgp_assert(config_.assoc > 0, "CGHC associativity must be > 0");
        cgp_assert(l1Entries_ > 0 && isPowerOfTwo(l1Entries_),
                   "CGHC L1 entry count must be a power of two");
        cgp_assert(l2Entries_ == 0 || isPowerOfTwo(l2Entries_),
                   "CGHC L2 entry count must be a power of two");
        cgp_assert(l1Entries_ % config_.assoc == 0,
                   "CGHC L1 entries must divide into ways");
        cgp_assert(l2Entries_ % config_.assoc == 0,
                   "CGHC L2 entries must divide into ways");
        l1_.resize(l1Entries_);
        l2_.resize(l2Entries_);
        for (auto &e : l1_)
            e.slots.assign(config_.slots, invalidAddr);
        for (auto &e : l2_)
            e.slots.assign(config_.slots, invalidAddr);
    }

    stats_.addCounter("accesses", &accesses_, "prefetch-side accesses");
    stats_.addCounter("hits", &hits_, "prefetch-side tag hits");
    stats_.addCounter("l2_hits", &l2Hits_,
                      "hits served by the second-level CGHC");
    stats_.addCounter("allocs", &allocs_, "entries allocated on miss");
    stats_.addCounter("prefetch_hints", &prefetchHints_,
                      "accesses that produced a prefetch target");
    stats_.addFormula(
        "hit_rate",
        [this]() {
            const auto a = accesses_.value();
            return a == 0 ? 0.0
                          : static_cast<double>(hits_.value())
                              / static_cast<double>(a);
        },
        "prefetch-side hit rate");
}

std::size_t
Cghc::setOf(Addr start, std::size_t entries) const
{
    // Function starts are 32-byte aligned; drop those bits first
    // ("the lower order bits of the ... address", §3.2).
    const std::size_t sets = entries / config_.assoc;
    return static_cast<std::size_t>((start >> 5) & (sets - 1));
}

Cghc::Entry *
Cghc::findWay(std::vector<Entry> &level, std::size_t entries,
              Addr start)
{
    const std::size_t base = setOf(start, entries) * config_.assoc;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Entry &e = level[base + w];
        if (e.valid && e.tag == start)
            return &e;
    }
    return nullptr;
}

Cghc::Entry &
Cghc::victimWay(std::vector<Entry> &level, std::size_t entries,
                Addr start)
{
    const std::size_t base = setOf(start, entries) * config_.assoc;
    std::size_t victim = base;
    for (unsigned w = 0; w < config_.assoc; ++w) {
        Entry &e = level[base + w];
        if (!e.valid)
            return e;
        if (e.lru < level[victim].lru)
            victim = base + w;
    }
    return level[victim];
}

Cghc::Entry *
Cghc::lookup(Addr start, bool allocate, Cycle &delay, bool &hit)
{
    delay = config_.l1Latency;
    hit = false;
    ++tick_;

    if (Entry *e1 = findWay(l1_, l1Entries_, start); e1 != nullptr) {
        hit = true;
        e1->lru = tick_;
        return e1;
    }

    if (l2Entries_ > 0) {
        if (Entry *e2 = findWay(l2_, l2Entries_, start);
            e2 != nullptr) {
            // Swap: promote the hit entry to L1, demote the L1
            // victim to its own L2 set (paper §5.3).
            hit = true;
            delay = config_.l2Latency;
            if (!warming_)
                ++l2Hits_;
            Entry promoted = *e2;
            e2->valid = false;
            Entry &v1 = victimWay(l1_, l1Entries_, start);
            Entry demoted = v1;
            if (demoted.valid) {
                Entry &v2 =
                    victimWay(l2_, l2Entries_, demoted.tag);
                v2 = demoted;
                v2.lru = tick_;
            }
            v1 = promoted;
            v1.lru = tick_;
            return &v1;
        }
    }

    if (!allocate)
        return nullptr;

    // Total miss: allocate in L1; the displaced entry is written
    // back to the second level (if present).
    if (!warming_)
        ++allocs_;
    Entry &v1 = victimWay(l1_, l1Entries_, start);
    if (v1.valid && l2Entries_ > 0) {
        Entry &v2 = victimWay(l2_, l2Entries_, v1.tag);
        v2 = v1;
        v2.lru = tick_;
    }
    v1 = Entry{};
    v1.valid = true;
    v1.tag = start;
    v1.index = 1;
    v1.count = 0;
    v1.lru = tick_;
    v1.slots.assign(config_.slots, invalidAddr);
    return &v1;
}

Cghc::ProbeResult
Cghc::callPrefetchAccess(Addr callee_start)
{
    if (!warming_)
        ++accesses_;
    ProbeResult res;

    if (config_.infinite) {
        auto it = inf_.find(callee_start);
        if (it == inf_.end()) {
            if (!warming_)
                ++allocs_;
            inf_[callee_start];
            return res;
        }
        res.hit = true;
        if (!warming_)
            ++hits_;
        const InfEntry &e = it->second;
        const std::size_t slot = e.index - 1;
        if (slot < e.sequence.size()) {
            res.prefetchTarget = e.sequence[slot];
            if (!warming_)
                ++prefetchHints_;
        }
        return res;
    }

    bool hit = false;
    Entry *e = lookup(callee_start, /*allocate=*/true, res.delay, hit);
    if (!hit)
        return res; // fresh entry, nothing to prefetch
    res.hit = true;
    if (!warming_)
        ++hits_;
    const std::size_t slot = static_cast<std::size_t>(e->index) - 1;
    if (slot < e->count && e->slots[slot] != invalidAddr) {
        res.prefetchTarget = e->slots[slot];
        if (!warming_)
            ++prefetchHints_;
    }
    return res;
}

void
Cghc::callUpdateAccess(Addr caller_start, Addr callee_start)
{
    if (config_.infinite) {
        InfEntry &e = inf_[caller_start];
        const std::size_t slot = e.index - 1;
        if (slot < e.sequence.size())
            e.sequence[slot] = callee_start;
        else
            e.sequence.push_back(callee_start);
        ++e.index;
        return;
    }

    Cycle delay;
    bool hit = false;
    Entry *e = lookup(caller_start, /*allocate=*/true, delay, hit);
    if (!hit) {
        // Miss on the update access for a call: slot 1 gets the
        // callee (paper §3.2) and the index advances past it.
        e->slots[0] = callee_start;
        e->count = 1;
        e->index = 2;
        return;
    }
    // "The index is incremented by 1 on each call update, up to a
    // maximum value of 8" and "only the first 8 functions invoked
    // are stored" (§3.2): once the index has saturated with all
    // slots filled this invocation, further callees are dropped.
    const std::size_t slot = static_cast<std::size_t>(e->index) - 1;
    const bool saturated = e->index == config_.slots &&
        e->count >= config_.slots;
    if (slot < config_.slots && !saturated) {
        e->slots[slot] = callee_start;
        if (e->count < slot + 1)
            e->count = static_cast<std::uint8_t>(slot + 1);
        if (e->index < config_.slots)
            ++e->index;
    }
}

Cghc::ProbeResult
Cghc::returnPrefetchAccess(Addr returnee_start)
{
    if (!warming_)
        ++accesses_;
    ProbeResult res;

    if (config_.infinite) {
        auto it = inf_.find(returnee_start);
        if (it == inf_.end()) {
            if (!warming_)
                ++allocs_;
            inf_[returnee_start];
            return res;
        }
        res.hit = true;
        if (!warming_)
            ++hits_;
        const InfEntry &e = it->second;
        const std::size_t slot = e.index - 1;
        if (slot < e.sequence.size()) {
            res.prefetchTarget = e.sequence[slot];
            if (!warming_)
                ++prefetchHints_;
        }
        return res;
    }

    bool hit = false;
    Entry *e = lookup(returnee_start, /*allocate=*/true, res.delay,
                      hit);
    if (!hit)
        return res;
    res.hit = true;
    if (!warming_)
        ++hits_;
    const std::size_t slot = static_cast<std::size_t>(e->index) - 1;
    if (slot < e->count && e->slots[slot] != invalidAddr) {
        res.prefetchTarget = e->slots[slot];
        if (!warming_)
            ++prefetchHints_;
    }
    return res;
}

void
Cghc::returnUpdateAccess(Addr returning_start)
{
    if (config_.infinite) {
        auto it = inf_.find(returning_start);
        if (it != inf_.end()) {
            // A fresh invocation will rebuild the sequence; keep the
            // old one (most recent completed) but restart the index.
            it->second.index = 1;
        }
        return;
    }

    Cycle delay;
    bool hit = false;
    Entry *e = lookup(returning_start, /*allocate=*/true, delay, hit);
    e->index = 1;
    (void)hit;
}

Json
Cghc::saveState() const
{
    Json j = Json::object();
    j.set("describe", config_.describe());
    j.set("tick", tick_);
    const auto level_to_json = [this](const std::vector<Entry> &lv) {
        Json out = Json::object();
        Json tags = Json::array();
        Json idxs = Json::array();
        Json lrus = Json::array();
        Json slots = Json::array();
        for (const Entry &e : lv) {
            tags.push(e.valid ? Json(e.tag) : Json(nullptr));
            idxs.push((static_cast<unsigned>(e.index) << 8) |
                      static_cast<unsigned>(e.count));
            lrus.push(e.lru);
            for (unsigned s = 0; s < config_.slots; ++s) {
                slots.push(s < e.slots.size() ? e.slots[s]
                                              : invalidAddr);
            }
        }
        out.set("tag", std::move(tags));
        out.set("index_count", std::move(idxs));
        out.set("lru", std::move(lrus));
        out.set("slots", std::move(slots));
        return out;
    };
    if (config_.infinite) {
        // Sorted key order: unordered_map iteration order must never
        // leak into the artifact bytes.
        std::vector<Addr> keys;
        keys.reserve(inf_.size());
        for (const auto &[start, e] : inf_) {
            (void)e;
            keys.push_back(start);
        }
        std::sort(keys.begin(), keys.end());
        Json entries = Json::array();
        for (Addr start : keys) {
            const InfEntry &e = inf_.at(start);
            Json je = Json::object();
            je.set("start", start);
            je.set("index", e.index);
            Json seq = Json::array();
            for (Addr a : e.sequence)
                seq.push(a);
            je.set("sequence", std::move(seq));
            entries.push(std::move(je));
        }
        j.set("inf", std::move(entries));
        return j;
    }
    j.set("l1", level_to_json(l1_));
    j.set("l2", level_to_json(l2_));
    return j;
}

void
Cghc::loadState(const Json &state)
{
    if (state.at("describe").asString() != config_.describe())
        throw std::runtime_error("CGHC checkpoint geometry mismatch");
    tick_ = state.at("tick").asUint();
    const auto level_from_json = [this](std::vector<Entry> &lv,
                                        const Json &in) {
        const Json &tags = in.at("tag");
        const Json &idxs = in.at("index_count");
        const Json &lrus = in.at("lru");
        const Json &slots = in.at("slots");
        if (tags.size() != lv.size() || idxs.size() != lv.size() ||
            lrus.size() != lv.size() ||
            slots.size() != lv.size() * config_.slots) {
            throw std::runtime_error(
                "CGHC checkpoint level size mismatch");
        }
        for (std::size_t i = 0; i < lv.size(); ++i) {
            Entry &e = lv[i];
            e.valid = !tags[i].isNull();
            e.tag = e.valid ? tags[i].asUint() : invalidAddr;
            const unsigned ic =
                static_cast<unsigned>(idxs[i].asUint());
            e.index = static_cast<std::uint8_t>(ic >> 8);
            e.count = static_cast<std::uint8_t>(ic & 0xFF);
            e.lru = lrus[i].asUint();
            e.slots.assign(config_.slots, invalidAddr);
            for (unsigned s = 0; s < config_.slots; ++s)
                e.slots[s] = slots[i * config_.slots + s].asUint();
        }
    };
    if (config_.infinite) {
        inf_.clear();
        for (const Json &je : state.at("inf").items()) {
            InfEntry e;
            e.index =
                static_cast<std::uint32_t>(je.at("index").asUint());
            for (const Json &a : je.at("sequence").items())
                e.sequence.push_back(a.asUint());
            inf_.emplace(je.at("start").asUint(), std::move(e));
        }
        return;
    }
    level_from_json(l1_, state.at("l1"));
    level_from_json(l2_, state.at("l2"));
}

} // namespace cgp
