/**
 * @file
 * Call Graph History Cache (paper §3.2-3.3, §5.3).
 *
 * The CGHC records, per function F, the sequence of functions F
 * called during its most recent invocation, plus an index pointing
 * at the next expected callee.  Each executed call and return makes
 * two accesses:
 *
 *  call F->G:   prefetch access keyed by G (predicted target): on a
 *               hit, prefetch the function in slot[index-1] of G's
 *               entry (G's next expected callee — the index of a
 *               just-called function is 1, so its first callee);
 *               update access keyed by F: store G at slot[index-1]
 *               of F's entry and increment F's index (max 8).
 *
 *  return G->F: prefetch access keyed by F (the returnee start
 *               address, recovered from the modified RAS): on a hit,
 *               prefetch slot[index-1] of F's entry (F's next
 *               expected callee); update access keyed by G: reset
 *               G's index to 1.
 *
 *  Any access that misses allocates a fresh entry with index 1; a
 *  call-update miss additionally deposits the callee in slot 1.
 *
 * Geometries: direct-mapped single level, the paper's preferred
 * two-level arrangement (2KB L1 + 32KB L2 with swap on L2 hit), and
 * an infinite variant where every function keeps its entire most
 * recent call sequence (no 8-slot cap).  Entries are sized at 32
 * data bytes = 8 callee slots, matching the paper's observation that
 * 80% of functions call fewer than 8 distinct functions.
 */

#ifndef CGP_PREFETCH_CGHC_HH
#define CGP_PREFETCH_CGHC_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace cgp
{

class Json;

struct CghcConfig
{
    /** First-level data array bytes (32 bytes per entry). */
    std::uint32_t l1Bytes = 2 * 1024;

    /** Second-level data array bytes; 0 = single-level CGHC. */
    std::uint32_t l2Bytes = 32 * 1024;

    /** Unbounded CGHC with full call sequences (overrides sizes). */
    bool infinite = false;

    /**
     * Set associativity of the finite levels.  The paper chose a
     * direct-mapped CGHC (assoc = 1) after finding a small one
     * performs nearly as well as infinite (§3.2); higher values let
     * the ablation benches verify that choice.
     */
    unsigned assoc = 1;

    /** Access latencies, matching the L1/L2 cache latencies (§5.3). */
    Cycle l1Latency = 1;
    Cycle l2Latency = 16;

    /** Callee slots per finite entry (one 32-byte line). */
    unsigned slots = 8;

    /// @{ Named geometries from Figure 5.
    static CghcConfig oneLevel1K();
    static CghcConfig oneLevel32K();
    static CghcConfig twoLevel1K16K();
    static CghcConfig twoLevel2K32K(); ///< the paper's chosen design
    static CghcConfig infiniteSize();
    /// @}

    std::string describe() const;
};

class Cghc
{
  public:
    explicit Cghc(const CghcConfig &config);

    /** Result of a prefetch-side access. */
    struct ProbeResult
    {
        bool hit = false;
        /** Function start to prefetch; invalidAddr if none. */
        Addr prefetchTarget = invalidAddr;
        /** Access latency before the prefetch can issue. */
        Cycle delay = 1;
    };

    /** First access for a call: keyed by the predicted target. */
    ProbeResult callPrefetchAccess(Addr callee_start);

    /** Second access for a call: keyed by the caller's start. */
    void callUpdateAccess(Addr caller_start, Addr callee_start);

    /** First access for a return: keyed by the returnee's start. */
    ProbeResult returnPrefetchAccess(Addr returnee_start);

    /** Second access for a return: keyed by the returning start. */
    void returnUpdateAccess(Addr returning_start);

    const StatGroup &stats() const { return stats_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t accesses() const { return accesses_.value(); }

    /**
     * Functional-warming mode: accesses keep training the history
     * cache (entries allocate, indices advance, LRU moves) but the
     * counters stay frozen — warmed calls/returns are outside the
     * measured windows.
     */
    void setWarming(bool warming) { warming_ = warming; }

    /// @{ Warm-state checkpointing: both finite levels (or the
    /// infinite map, serialized in sorted key order for determinism)
    /// plus the LRU tick.
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = invalidAddr;
        std::uint8_t index = 1;      ///< 1-based next-slot pointer
        std::uint8_t count = 0;      ///< filled slots
        std::uint64_t lru = 0;       ///< recency (associative mode)
        std::vector<Addr> slots;
    };

    /** Infinite-variant entry: full sequence, unbounded index. */
    struct InfEntry
    {
        std::uint32_t index = 1;
        std::vector<Addr> sequence;
    };

    std::size_t setOf(Addr start, std::size_t entries) const;

    /** Find the way holding @p start in a level, or nullptr. */
    Entry *findWay(std::vector<Entry> &level, std::size_t entries,
                   Addr start);

    /** Victim way for @p start in a level (invalid first, then LRU). */
    Entry &victimWay(std::vector<Entry> &level, std::size_t entries,
                     Addr start);

    /**
     * Locate (or allocate) the entry for @p start, handling the
     * two-level swap.  @p delay receives the access latency.
     * @param allocate create an entry on a total miss.
     * @return pointer to the entry (possibly freshly allocated), or
     *         nullptr when missing and @p allocate is false.
     */
    Entry *lookup(Addr start, bool allocate, Cycle &delay, bool &hit);

    CghcConfig config_;
    std::size_t l1Entries_;
    std::size_t l2Entries_;
    bool warming_ = false;
    std::uint64_t tick_ = 0;
    std::vector<Entry> l1_;
    std::vector<Entry> l2_;
    std::unordered_map<Addr, InfEntry> inf_;

    Counter accesses_;
    Counter hits_;
    Counter l2Hits_;
    Counter allocs_;
    Counter prefetchHints_;
    StatGroup stats_;
};

} // namespace cgp

#endif // CGP_PREFETCH_CGHC_HH
