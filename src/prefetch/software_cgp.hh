/**
 * @file
 * Software CGP — the paper's §6 future-work variant: "CGP can be
 * implemented entirely in software by having a compiler insert
 * prefetch instructions into the code based on call graph
 * information generated from profile executions."
 *
 * Instead of a hardware CGHC learning call sequences online, the
 * compiler consults a *profile-derived, static* call graph: for each
 * function it emits prefetch instructions at the entry and after each
 * call site, targeting the statically most likely next callee.  This
 * class models those inserted instructions: the per-function callee
 * table is frozen at construction (built from an ExecutionProfile);
 * the per-activation position counter corresponds to the different
 * static code sites the prefetches are inserted at.
 *
 * Strengths and weaknesses relative to hardware CGP fall out
 * naturally: no hardware table (no capacity misses, no warmup), but
 * the predictions cannot adapt when runtime behaviour diverges from
 * the profile, and profile-absent functions get no prefetching at
 * all.  bench/ablation_software_cgp.cc measures both effects.
 */

#ifndef CGP_PREFETCH_SOFTWARE_CGP_HH
#define CGP_PREFETCH_SOFTWARE_CGP_HH

#include <unordered_map>
#include <vector>

#include "codegen/layout.hh"
#include "codegen/profile.hh"
#include "codegen/registry.hh"
#include "prefetch/nextline.hh"
#include "prefetch/prefetcher.hh"

namespace cgp
{

class SoftwareCgpPrefetcher : public InstrPrefetcher
{
  public:
    /**
     * @param l1i Instruction cache prefetches land in.
     * @param registry The program whose call graph was profiled.
     * @param image The layout the program runs under (start addrs).
     * @param profile Profile feedback the "compiler" consumed.
     * @param depth N: lines prefetched per target (as in CGP_N).
     * @param maxCallees Callee slots the compiler materializes per
     *        function (mirrors the hardware's 8-slot entries).
     */
    SoftwareCgpPrefetcher(Cache &l1i, const FunctionRegistry &registry,
                          const CodeImage &image,
                          const ExecutionProfile &profile,
                          unsigned depth, unsigned maxCallees = 8);

    void onFetchLine(Addr line_addr, Cycle now) override;
    void onCall(Addr callee_start, Addr caller_start,
                Cycle now) override;
    void onReturn(Addr returnee_start, Addr returning_start,
                  Cycle now) override;

    const char *name() const override { return "software-cgp"; }

    /** Functions the compiler emitted prefetch code for. */
    std::size_t coveredFunctions() const { return table_.size(); }

  private:
    void prefetchFunction(Addr func_start, Cycle now);

    /** Static per-function callee sequence (profile order). */
    struct FuncInfo
    {
        std::vector<Addr> callees;
        std::uint32_t cursor = 0; ///< next static prefetch site
    };

    Cache &l1i_;
    NextNLinePrefetcher nl_;
    unsigned depth_;
    std::unordered_map<Addr, FuncInfo> table_;
};

} // namespace cgp

#endif // CGP_PREFETCH_SOFTWARE_CGP_HH
