/**
 * @file
 * Instruction prefetcher interface.
 *
 * The fetch unit notifies the active prefetcher of three events:
 * a demand fetch touching a new I-cache line (the next-N-line
 * trigger), a predicted call (with the branch predictor's target and
 * the current function's start), and a predicted return (with the
 * returnee start recovered from the modified RAS).  Prefetchers
 * respond by issuing line prefetches into the L1 I-cache.
 *
 * Downstream users can implement this interface to plug their own
 * instruction prefetcher into the simulator (see
 * examples/custom_prefetcher.cpp).
 */

#ifndef CGP_PREFETCH_PREFETCHER_HH
#define CGP_PREFETCH_PREFETCHER_HH

#include "mem/cache.hh"
#include "util/types.hh"

namespace cgp
{

class InstrPrefetcher
{
  public:
    virtual ~InstrPrefetcher() = default;

    /** Demand fetch moved to a new I-cache line. */
    virtual void onFetchLine(Addr line_addr, Cycle now)
    {
        (void)line_addr;
        (void)now;
    }

    /**
     * A call was fetched and its target predicted.
     * @param callee_start predicted target (function start address)
     * @param caller_start start address of the calling function, or
     *        invalidAddr when executing untraced root code
     */
    virtual void onCall(Addr callee_start, Addr caller_start, Cycle now)
    {
        (void)callee_start;
        (void)caller_start;
        (void)now;
    }

    /**
     * A return was fetched and predicted via the modified RAS.
     * @param returnee_start start address of the function being
     *        returned into (from the RAS), or invalidAddr
     * @param returning_start start address of the returning function
     */
    virtual void onReturn(Addr returnee_start, Addr returning_start,
                          Cycle now)
    {
        (void)returnee_start;
        (void)returning_start;
        (void)now;
    }

    /**
     * Functional-warming notification (SMARTS fast-forward): the
     * engine's internal statistics counters should freeze while its
     * predictive state keeps training.  Issued prefetches are
     * already suppressed at the cache, so most engines ignore this.
     */
    virtual void setWarming(bool warming) { (void)warming; }

    virtual const char *name() const = 0;
};

/** Baseline: no prefetching. */
class NullPrefetcher : public InstrPrefetcher
{
  public:
    const char *name() const override { return "none"; }
};

} // namespace cgp

#endif // CGP_PREFETCH_PREFETCHER_HH
