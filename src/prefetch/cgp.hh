/**
 * @file
 * Call Graph Prefetching (the paper's primary contribution).
 *
 * CGP_N = CGHC-driven prefetching across function boundaries plus
 * plain next-N-line prefetching within a function (§3.2).  On each
 * CGHC prefetch hint, only the first N cache lines of the target
 * function are prefetched; the rest of the function is covered by
 * the NL part once control enters it.
 */

#ifndef CGP_PREFETCH_CGP_HH
#define CGP_PREFETCH_CGP_HH

#include "prefetch/cghc.hh"
#include "prefetch/nextline.hh"
#include "prefetch/prefetcher.hh"

namespace cgp
{

class CgpPrefetcher : public InstrPrefetcher
{
  public:
    /**
     * @param l1i Instruction cache prefetches land in.
     * @param cghc_config CGHC geometry (Figure 5 variants).
     * @param depth N: lines prefetched per target function, also the
     *        depth of the embedded NL prefetcher (the paper evaluates
     *        CGP_2 and CGP_4).
     */
    CgpPrefetcher(Cache &l1i, const CghcConfig &cghc_config,
                  unsigned depth);

    void onFetchLine(Addr line_addr, Cycle now) override;
    void onCall(Addr callee_start, Addr caller_start,
                Cycle now) override;
    void onReturn(Addr returnee_start, Addr returning_start,
                  Cycle now) override;

    const char *name() const override { return "cgp"; }

    /** Forwarded to the CGHC: its counters freeze while warming. */
    void setWarming(bool warming) override
    {
        cghc_.setWarming(warming);
    }

    const Cghc &cghc() const { return cghc_; }
    /** Mutable access for checkpoint restore. */
    Cghc &cghc() { return cghc_; }
    unsigned depth() const { return depth_; }

  private:
    /** Prefetch the first N lines of a function. */
    void prefetchFunction(Addr func_start, Cycle when);

    Cache &l1i_;
    Cghc cghc_;
    NextNLinePrefetcher nl_;
    unsigned depth_;
};

} // namespace cgp

#endif // CGP_PREFETCH_CGP_HH
