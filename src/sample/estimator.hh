/**
 * @file
 * Per-window statistical estimators for sampled simulation
 * (DESIGN.md §11).  Every detailed window contributes one
 * observation per metric; the estimator reports the sample mean, the
 * standard error of the mean, and a conservative 95% band that is
 * the union of the normal-approximation interval (mean ± 1.96·SEM)
 * and the nearest-rank [2.5th, 97.5th] percentile envelope — wide
 * enough to be honest at the small window counts short runs produce.
 */

#ifndef CGP_SAMPLE_ESTIMATOR_HH
#define CGP_SAMPLE_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace cgp::sample
{

/** One metric's sampled estimate with its 95% confidence band. */
struct SampledEstimate
{
    std::uint64_t samples = 0;
    double mean = 0.0;
    double sem = 0.0; ///< standard error of the mean
    double ciLow = 0.0;
    double ciHigh = 0.0;

    /** Does the 95% band contain @p value? */
    bool
    contains(double value) const
    {
        return samples > 0 && value >= ciLow && value <= ciHigh;
    }

    friend bool
    operator==(const SampledEstimate &a, const SampledEstimate &b)
    {
        return a.samples == b.samples && a.mean == b.mean &&
            a.sem == b.sem && a.ciLow == b.ciLow &&
            a.ciHigh == b.ciHigh;
    }
};

/** Accumulates per-window observations of one metric. */
class WindowEstimator
{
  public:
    void add(double observation);

    std::uint64_t samples() const { return samples_.size(); }

    /** Summarize (zeroed estimate when no samples arrived). */
    SampledEstimate estimate() const;

  private:
    std::vector<double> samples_;
};

/**
 * Nearest-rank percentile of an unsorted sample set; @p q is clamped
 * to [0, 100] and non-finite values are treated as 50.  Returns 0
 * for an empty sample (same convention as server/stats.hh).
 */
double nearestRankPercentile(std::vector<double> samples, double q);

/** The sampled-run block of SimResult. */
struct SampledStats
{
    std::uint64_t windows = 0;
    Cycle detailedCycles = 0; ///< cycles actually simulated in detail
    std::uint64_t detailedInstrs = 0;
    std::uint64_t warmedInstrs = 0; ///< fast-forwarded (incl. warmup)
    Cycle skippedCycles = 0; ///< clock advanced over warmed regions
    bool checkpointUsed = false;
    bool checkpointSaved = false;

    SampledEstimate cpi;
    SampledEstimate l1iMissRate;
    SampledEstimate l1dMissRate;
    SampledEstimate fetchStallPerInstr;

    friend bool
    operator==(const SampledStats &a, const SampledStats &b)
    {
        return a.windows == b.windows &&
            a.detailedCycles == b.detailedCycles &&
            a.detailedInstrs == b.detailedInstrs &&
            a.warmedInstrs == b.warmedInstrs &&
            a.skippedCycles == b.skippedCycles &&
            a.checkpointUsed == b.checkpointUsed &&
            a.checkpointSaved == b.checkpointSaved &&
            a.cpi == b.cpi && a.l1iMissRate == b.l1iMissRate &&
            a.l1dMissRate == b.l1dMissRate &&
            a.fetchStallPerInstr == b.fetchStallPerInstr;
    }
};

} // namespace cgp::sample

#endif // CGP_SAMPLE_ESTIMATOR_HH
