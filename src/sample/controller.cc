#include "sample/controller.hh"

#include <algorithm>
#include <stdexcept>

#include "cpu/core.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "trace/expand.hh"

namespace cgp::sample
{

namespace
{

/**
 * Warm the machine for the configured prefix: restore a checkpoint
 * when the store has one, functionally fast-forward otherwise, and
 * offer freshly cut warm state back to the store.
 * @return instructions the prefix consumed outside the core's own
 *         fastForward accounting (i.e. via checkpoint replay).
 */
std::uint64_t
warmPrefix(Core &core, InstructionExpander &stream,
           const SampleConfig &config, const CheckpointParts &parts,
           const std::string &workload,
           const std::string &configLabel, SampledStats &stats)
{
    if (config.warmupInstrs == 0)
        return 0;

    const bool store = config.useCheckpoints &&
        config.functionalWarming && config.checkpoints.any();
    const std::string key = store
        ? checkpointKey(workload, configLabel, config.warmupInstrs)
        : std::string();

    if (store && config.checkpoints.load) {
        if (auto doc = config.checkpoints.load(key)) {
            try {
                const std::uint64_t consumed = applyCheckpoint(
                    *doc, parts, workload, configLabel,
                    config.warmupInstrs);
                if (stream.advance(consumed) != consumed)
                    throw std::runtime_error(
                        "trace shorter than checkpoint replay");
                stats.checkpointUsed = true;
                return consumed;
            } catch (const std::exception &) {
                // Identity metadata is validated before any state
                // is touched, so a rejected checkpoint leaves the
                // machine in its reset state: re-warm from scratch.
            }
        }
    }

    const std::uint64_t consumed =
        core.fastForward(config.warmupInstrs,
                         config.functionalWarming);
    if (store && config.checkpoints.save && consumed > 0) {
        config.checkpoints.save(
            key, buildCheckpoint(parts, workload, configLabel,
                                 config.warmupInstrs, consumed));
        stats.checkpointSaved = true;
    }
    // The core's own fastForward accounting already covers this
    // prefix — only checkpoint replay is external.
    return 0;
}

} // namespace

SampledStats
runSampled(Core &core, MemoryHierarchy &mem,
           InstructionExpander &stream, const SampleConfig &config,
           const CheckpointParts &parts, const std::string &workload,
           const std::string &configLabel)
{
    SampledStats stats;
    WindowEstimator cpiE, l1iE, l1dE, stallE;

    core.beginRun();
    const std::uint64_t replayed = warmPrefix(
        core, stream, config, parts, workload, configLabel, stats);

    Cycle totalSkip = 0;
    const Cycle ffCycles =
        config.periodCycles > config.windowCycles
        ? config.periodCycles - config.windowCycles
        : 0;

    while (!core.finished()) {
        // 1. Detailed window: cycle-accurate, counters live.
        const Cycle winStart = core.cycles();
        const std::uint64_t i0 = core.committedInstrs();
        const std::uint64_t iAcc0 = mem.l1i().demandAccesses();
        const std::uint64_t iMiss0 = mem.l1i().demandMisses();
        const std::uint64_t dAcc0 = mem.l1d().demandAccesses();
        const std::uint64_t dMiss0 = mem.l1d().demandMisses();
        const std::uint64_t stall0 = core.fetchIcacheStallCycles();

        while (!core.finished() &&
               core.cycles() - winStart < config.windowCycles)
            core.stepCycle();

        const Cycle winCycles = core.cycles() - winStart;
        const std::uint64_t winInstrs =
            core.committedInstrs() - i0;
        if (winCycles > 0 && winInstrs > 0) {
            ++stats.windows;
            cpiE.add(static_cast<double>(winCycles) /
                     static_cast<double>(winInstrs));
            const std::uint64_t iAcc =
                mem.l1i().demandAccesses() - iAcc0;
            if (iAcc > 0)
                l1iE.add(static_cast<double>(
                             mem.l1i().demandMisses() - iMiss0) /
                         static_cast<double>(iAcc));
            const std::uint64_t dAcc =
                mem.l1d().demandAccesses() - dAcc0;
            if (dAcc > 0)
                l1dE.add(static_cast<double>(
                             mem.l1d().demandMisses() - dMiss0) /
                         static_cast<double>(dAcc));
            stallE.add(
                static_cast<double>(
                    core.fetchIcacheStallCycles() - stall0) /
                static_cast<double>(winInstrs));
        }
        if (core.finished())
            break;

        // 2. Drain: no in-flight instruction may straddle the jump.
        core.suspendFetch(true);
        while (!core.finished() && !core.drained())
            core.stepCycle();
        core.suspendFetch(false);
        if (core.finished())
            break;

        // 3 + 4. Fast-forward the rest of the period at the
        // window's measured IPC, then jump the clock by the cycles
        // the warmed instructions would have taken.  max(·,1)
        // guards keep a fully stalled window (zero commits) from
        // dividing by zero while still making forward progress.
        const std::uint64_t budget = ffCycles *
            std::max<std::uint64_t>(winInstrs, 1) /
            std::max<Cycle>(winCycles, 1);
        if (budget == 0)
            continue;
        const std::uint64_t consumed =
            core.fastForward(budget, config.functionalWarming);
        const Cycle skip = consumed *
            std::max<Cycle>(winCycles, 1) /
            std::max<std::uint64_t>(winInstrs, 1);
        core.advanceClock(skip);
        totalSkip += skip;
    }

    mem.finalize();

    stats.detailedCycles = core.cycles() - totalSkip;
    stats.detailedInstrs = core.committedInstrs();
    stats.warmedInstrs = replayed + core.warmedInstrs();
    stats.skippedCycles = totalSkip;
    stats.cpi = cpiE.estimate();
    stats.l1iMissRate = l1iE.estimate();
    stats.l1dMissRate = l1dE.estimate();
    stats.fetchStallPerInstr = stallE.estimate();
    return stats;
}

} // namespace cgp::sample
