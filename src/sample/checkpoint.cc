#include "sample/checkpoint.hh"

#include <stdexcept>

#include "branch/predictor.hh"
#include "cpu/core.hh"
#include "dprefetch/correlation.hh"
#include "dprefetch/semantic.hh"
#include "dprefetch/stride.hh"
#include "mem/cache.hh"
#include "prefetch/cghc.hh"

namespace cgp::sample
{

namespace
{

constexpr int checkpointFormat = 1;

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
toHex(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return out;
}

/** Restore one optional section, demanding shape agreement. */
template <typename T>
void
applySection(const Json &state, const char *key, T *part)
{
    const Json &section = state.at(key);
    if (section.isNull() != (part == nullptr))
        throw std::runtime_error(
            std::string("checkpoint section '") + key +
            "' presence does not match the machine configuration");
    if (part != nullptr)
        part->loadState(section);
}

} // namespace

std::string
checkpointKey(const std::string &workload,
              const std::string &configLabel,
              std::uint64_t warmup_instrs)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, workload);
    h = fnv1a(h, "|");
    h = fnv1a(h, configLabel);
    h = fnv1a(h, "|");
    h = fnv1a(h, std::to_string(warmup_instrs));
    return "warm-" + toHex(h);
}

Json
buildCheckpoint(const CheckpointParts &parts,
                const std::string &workload,
                const std::string &configLabel,
                std::uint64_t warmup_instrs, std::uint64_t consumed)
{
    Json meta = Json::object();
    meta.set("format", checkpointFormat);
    meta.set("workload", workload);
    meta.set("config", configLabel);
    meta.set("warmup_instrs", warmup_instrs);
    meta.set("consumed", consumed);

    Json state = Json::object();
    state.set("l1i",
              parts.l1i ? parts.l1i->saveState() : Json(nullptr));
    state.set("l1d",
              parts.l1d ? parts.l1d->saveState() : Json(nullptr));
    state.set("l2",
              parts.l2 ? parts.l2->saveState() : Json(nullptr));
    state.set("branch",
              parts.branch ? parts.branch->saveState()
                           : Json(nullptr));
    state.set("cghc",
              parts.cghc ? parts.cghc->saveState() : Json(nullptr));
    state.set("stride",
              parts.stride ? parts.stride->saveState()
                           : Json(nullptr));
    state.set("correlation",
              parts.correlation ? parts.correlation->saveState()
                                : Json(nullptr));
    state.set("semantic",
              parts.semantic ? parts.semantic->saveState()
                             : Json(nullptr));

    Json core = Json::object();
    core.set("last_fetch_line",
             parts.core ? parts.core->lastFetchLine()
                        : invalidAddr);
    state.set("core", std::move(core));

    Json doc = Json::object();
    doc.set("meta", std::move(meta));
    doc.set("state", std::move(state));
    return doc;
}

std::uint64_t
applyCheckpoint(const Json &doc, const CheckpointParts &parts,
                const std::string &workload,
                const std::string &configLabel,
                std::uint64_t warmup_instrs)
{
    const Json &meta = doc.at("meta");
    if (meta.at("format").asInt() != checkpointFormat)
        throw std::runtime_error("unknown checkpoint format");
    if (meta.at("workload").asString() != workload ||
        meta.at("config").asString() != configLabel ||
        meta.at("warmup_instrs").asUint() != warmup_instrs)
        throw std::runtime_error(
            "checkpoint identity mismatch (workload/config/warmup)");
    const std::uint64_t consumed = meta.at("consumed").asUint();
    if (consumed > warmup_instrs)
        throw std::runtime_error(
            "checkpoint consumed count exceeds warmup budget");

    const Json &state = doc.at("state");
    applySection(state, "l1i", parts.l1i);
    applySection(state, "l1d", parts.l1d);
    applySection(state, "l2", parts.l2);
    applySection(state, "branch", parts.branch);
    applySection(state, "cghc", parts.cghc);
    applySection(state, "stride", parts.stride);
    applySection(state, "correlation", parts.correlation);
    applySection(state, "semantic", parts.semantic);
    if (parts.core)
        parts.core->setLastFetchLine(
            state.at("core").at("last_fetch_line").asUint());
    return consumed;
}

} // namespace cgp::sample
