/**
 * @file
 * Warm-state checkpoints: everything functional warming touches,
 * serialized through util/json into one document (DESIGN.md §11.3).
 *
 * A checkpoint is cut only at the end of the *pure* warmup prefix —
 * the machine has never executed a detailed cycle, so every
 * statistics counter is still zero, no MSHR is in flight and the
 * cycle clock reads zero.  That choice keeps the format small
 * (counters need not be serialized) and makes restore trivially
 * exact: load the state arrays into freshly constructed structures,
 * then replay the trace expander forward by the recorded instruction
 * count (expansion is deterministic, so the expander's internal
 * state is reconstructed rather than serialized).
 */

#ifndef CGP_SAMPLE_CHECKPOINT_HH
#define CGP_SAMPLE_CHECKPOINT_HH

#include <cstdint>
#include <string>

#include "util/json.hh"

namespace cgp
{

class BranchUnit;
class Cache;
class Cghc;
class CorrelationDataPrefetcher;
class Core;
class SemanticDataPrefetcher;
class StrideDataPrefetcher;

namespace sample
{

/**
 * Borrowed pointers to every structure a checkpoint covers.  l2 may
 * be null when the L2 is shared and its owner checkpoints it
 * elsewhere; the engine pointers are null when the corresponding
 * prefetcher is not part of the configuration (the checkpoint
 * records which sections are present and restore demands the same
 * shape — guaranteed in practice because the configuration string
 * is part of the checkpoint key).
 */
struct CheckpointParts
{
    Cache *l1i = nullptr;
    Cache *l1d = nullptr;
    Cache *l2 = nullptr;
    BranchUnit *branch = nullptr;
    Cghc *cghc = nullptr;
    StrideDataPrefetcher *stride = nullptr;
    CorrelationDataPrefetcher *correlation = nullptr;
    SemanticDataPrefetcher *semantic = nullptr;
    Core *core = nullptr;
};

/**
 * Store key for a warmup checkpoint: FNV-1a hash (hex) of the
 * workload name, the full configuration label and the warmup length
 * — any of which changing must miss the store.
 */
std::string checkpointKey(const std::string &workload,
                          const std::string &configLabel,
                          std::uint64_t warmup_instrs);

/**
 * Serialize the warmed state plus identifying metadata.
 * @param consumed Instructions the warmup actually consumed (may be
 *        short of the requested warmup on a small trace); restore
 *        replays the expander by exactly this count.
 */
Json buildCheckpoint(const CheckpointParts &parts,
                     const std::string &workload,
                     const std::string &configLabel,
                     std::uint64_t warmup_instrs,
                     std::uint64_t consumed);

/**
 * Validate @p doc's metadata against the expected identity, then
 * load every state section into @p parts.  Metadata is checked
 * *before* any structure is mutated, so an identity mismatch leaves
 * the machine untouched.  Throws std::runtime_error on mismatch or
 * malformed state.
 * @return the recorded consumed-instruction count for the caller to
 *         replay through InstructionExpander::advance().
 */
std::uint64_t applyCheckpoint(const Json &doc,
                              const CheckpointParts &parts,
                              const std::string &workload,
                              const std::string &configLabel,
                              std::uint64_t warmup_instrs);

} // namespace sample
} // namespace cgp

#endif // CGP_SAMPLE_CHECKPOINT_HH
