#include "sample/config.hh"

namespace cgp::sample
{

std::string
SampleConfig::describe() const
{
    std::string s = "smp" + std::to_string(windowCycles) + "_" +
        std::to_string(periodCycles) + "_w" +
        std::to_string(warmupInstrs);
    if (!functionalWarming)
        s += "_cold";
    return s;
}

} // namespace cgp::sample
