#include "sample/estimator.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace cgp::sample
{

void
WindowEstimator::add(double observation)
{
    samples_.push_back(observation);
}

double
nearestRankPercentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    if (!std::isfinite(q))
        q = 50.0;
    q = std::clamp(q, 0.0, 100.0);
    std::sort(samples.begin(), samples.end());
    const double rank =
        std::ceil(q / 100.0 * static_cast<double>(samples.size()));
    const std::size_t idx =
        static_cast<std::size_t>(std::max(rank, 1.0)) - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

SampledEstimate
WindowEstimator::estimate() const
{
    SampledEstimate est;
    est.samples = samples_.size();
    if (samples_.empty())
        return est;

    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    est.mean = sum / static_cast<double>(samples_.size());

    if (samples_.size() > 1) {
        double ss = 0.0;
        for (double v : samples_) {
            const double d = v - est.mean;
            ss += d * d;
        }
        const double var =
            ss / static_cast<double>(samples_.size() - 1);
        est.sem = std::sqrt(
            var / static_cast<double>(samples_.size()));
    }

    // Conservative 95% band: the union of the normal-approximation
    // interval and the nearest-rank percentile envelope.  With few
    // windows the percentile envelope degenerates to [min, max],
    // which is exactly the honest answer.
    const double lo = nearestRankPercentile(samples_, 2.5);
    const double hi = nearestRankPercentile(samples_, 97.5);
    est.ciLow = std::min(lo, est.mean - 1.96 * est.sem);
    est.ciHigh = std::max(hi, est.mean + 1.96 * est.sem);
    return est;
}

} // namespace cgp::sample
