/**
 * @file
 * The sampling controller: drives a single core through the
 * SMARTS-style alternation of detailed windows and fast-forward
 * functional warming (DESIGN.md §11.2).
 *
 * One sampling period:
 *
 *   1. *Detailed window* — stepCycle() for windowCycles, recording
 *      counter deltas (CPI, L1-I/L1-D miss rate, fetch stall per
 *      instruction) as one observation per estimator.
 *   2. *Drain* — fetch suspends and the pipeline runs dry so no
 *      in-flight instruction straddles the clock jump.
 *   3. *Fast-forward* — Core::fastForward consumes the instructions
 *      the skipped portion of the period would have executed
 *      (budgeted from the window's measured IPC), functionally
 *      warming all predictive state.
 *   4. *Clock jump* — the cycle clock advances by the skipped
 *      cycles, scaled by the same IPC, so downstream cycle math
 *      (and the server model's timers) see a continuous clock.
 *
 * Before the first window the controller functionally warms
 * warmupInstrs instructions — or restores that prefix from a
 * checkpoint when the configured store has one (cut checkpoints are
 * offered back to the store for future runs).
 */

#ifndef CGP_SAMPLE_CONTROLLER_HH
#define CGP_SAMPLE_CONTROLLER_HH

#include <string>

#include "sample/checkpoint.hh"
#include "sample/config.hh"
#include "sample/estimator.hh"

namespace cgp
{

class Core;
class InstructionExpander;
class MemoryHierarchy;

namespace sample
{

/**
 * Run @p core to completion under sampling.  Replaces Core::run()
 * when sampling is enabled: like run() it calls beginRun() itself
 * and finalizes @p mem once the core finishes, so the caller treats
 * it as a drop-in substitute.
 *
 * @param stream The expander feeding @p core (checkpoint replay).
 * @param parts Checkpointable structures; ignored unless the config
 *        enables checkpoints and provides hooks.
 * @param workload / @p configLabel identify the run for checkpoint
 *        keying.
 */
SampledStats runSampled(Core &core, MemoryHierarchy &mem,
                        InstructionExpander &stream,
                        const SampleConfig &config,
                        const CheckpointParts &parts,
                        const std::string &workload,
                        const std::string &configLabel);

} // namespace sample
} // namespace cgp

#endif // CGP_SAMPLE_CONTROLLER_HH
