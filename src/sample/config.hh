/**
 * @file
 * SMARTS-style sampling configuration (DESIGN.md §11).
 *
 * A sampled run alternates short cycle-accurate *detailed windows*
 * with long *fast-forward* stretches in which trace expansion still
 * updates every piece of predictive micro-architectural state —
 * caches, branch structures, CGHC, D-prefetch tables — but skips
 * cycle-accurate timing entirely (functional warming).  Each
 * detailed window contributes one observation per metric to the
 * estimators in estimator.hh.
 *
 * Warm-state checkpoints are plumbed through CheckpointHooks, a pair
 * of key-value callbacks, so this library stays free of any artifact
 * or run-dir dependency: src/exp installs a sealed, atomically
 * written store (exp/checkpoint.hh); tests install plain lambdas.
 */

#ifndef CGP_SAMPLE_CONFIG_HH
#define CGP_SAMPLE_CONFIG_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/json.hh"
#include "util/types.hh"

namespace cgp::sample
{

/**
 * Key-value checkpoint store interface.  `load` returns the
 * checkpoint document for a key, or nullopt when absent or damaged
 * (a damaged artifact is the *store's* problem — quarantine it and
 * return nullopt; the sampler transparently re-warms).  `save`
 * persists a freshly built checkpoint.  Either hook may be empty.
 */
struct CheckpointHooks
{
    std::function<std::optional<Json>(const std::string &key)> load;
    std::function<void(const std::string &key, Json &&checkpoint)>
        save;

    bool
    any() const
    {
        return static_cast<bool>(load) || static_cast<bool>(save);
    }
};

struct SampleConfig
{
    bool enabled = false;

    /** Cycle-accurate measurement window length. */
    Cycle windowCycles = 50000;

    /**
     * Sampling period: one detailed window every this many cycles;
     * the remainder is covered by fast-forward functional warming.
     * Must exceed windowCycles.
     */
    Cycle periodCycles = 500000;

    /** Instructions functionally warmed before the first window
     *  (the checkpointable prefix). */
    std::uint64_t warmupInstrs = 200000;

    /**
     * Functional warming during fast-forward (the default).  When
     * false, fast-forward merely advances the trace without updating
     * any micro-architectural state — the deliberately-unwarmed
     * perturbation mode whose estimates the validation suite asserts
     * fall *outside* the confidence interval.
     */
    bool functionalWarming = true;

    /** Consult/populate the checkpoint hooks for warmup reuse. */
    bool useCheckpoints = true;

    /** Checkpoint store (not part of the configuration identity —
     *  describe() ignores it). */
    CheckpointHooks checkpoints;

    /** Label fragment ("smp50k_500k"), stable across hook changes. */
    std::string describe() const;
};

} // namespace cgp::sample

#endif // CGP_SAMPLE_CONFIG_HH
