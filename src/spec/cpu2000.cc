#include "spec/cpu2000.hh"

#include <algorithm>

#include "trace/recorder.hh"
#include "util/logging.hh"

namespace cgp::spec
{

std::vector<SpecProgramSpec>
cpu2000Suite()
{
    std::vector<SpecProgramSpec> suite;

    // gzip: a handful of tight compression loops; calls are rare and
    // the hot code fits easily in L1-I.
    {
        SpecProgramSpec s;
        s.name = "gzip";
        s.functions = 60;
        s.hotFunctions = 8;
        s.workPerCall = 900.0;
        s.fanout = 3;
        s.branchRate = 0.2;
        s.body = FunctionTraits::large();
        s.body.hotInstrs = 320;
        suite.push_back(s);
    }

    // gcc: the big one — hundreds of pass/utility functions touched
    // per run, the only CPU2000 benchmark with a real I-cache
    // problem (paper: 0.5% miss ratio, 17% perfect-I$ gap).
    {
        SpecProgramSpec s;
        s.name = "gcc";
        s.functions = 420;
        s.hotFunctions = 58;
        s.workPerCall = 70.0;
        s.fanout = 6;
        s.callBias = 0.52;
        s.branchRate = 0.2;
        s.branchTakenRate = 0.4;
        s.body = FunctionTraits::small();
        suite.push_back(s);
    }

    // crafty: chess search — moderate code footprint, deep
    // recursion (paper: 0.3% miss ratio, 9% perfect-I$ gap).
    {
        SpecProgramSpec s;
        s.name = "crafty";
        s.functions = 160;
        s.hotFunctions = 52;
        s.workPerCall = 110.0;
        s.fanout = 5;
        s.callBias = 0.55;
        s.body = FunctionTraits::small();
        suite.push_back(s);
    }

    // parser: link-grammar parser, modest footprint.
    {
        SpecProgramSpec s;
        s.name = "parser";
        s.functions = 120;
        s.hotFunctions = 24;
        s.workPerCall = 220.0;
        s.fanout = 4;
        s.body = FunctionTraits::small();
        suite.push_back(s);
    }

    // gap: group theory interpreter; small-ish hot loop set (paper:
    // 2% perfect-I$ gap).
    {
        SpecProgramSpec s;
        s.name = "gap";
        s.functions = 160;
        s.hotFunctions = 30;
        s.workPerCall = 140.0;
        s.fanout = 4;
        s.body = FunctionTraits::small();
        suite.push_back(s);
    }

    // bzip2: like gzip, tiny hot loops.
    {
        SpecProgramSpec s;
        s.name = "bzip2";
        s.functions = 40;
        s.hotFunctions = 6;
        s.workPerCall = 1100.0;
        s.fanout = 3;
        s.body = FunctionTraits::large();
        s.body.hotInstrs = 288;
        suite.push_back(s);
    }

    // twolf: place-and-route, small numeric kernels.
    {
        SpecProgramSpec s;
        s.name = "twolf";
        s.functions = 90;
        s.hotFunctions = 16;
        s.workPerCall = 260.0;
        s.fanout = 4;
        s.body = FunctionTraits::small();
        suite.push_back(s);
    }

    return suite;
}

SpecProgram::SpecProgram(FunctionRegistry &registry,
                         const SpecProgramSpec &spec)
    : spec_(spec)
{
    cgp_assert(spec_.hotFunctions >= 2, "need at least two functions");
    cgp_assert(spec_.hotFunctions <= spec_.functions,
               "hot set larger than the program");

    funcs_.reserve(spec_.functions);
    for (unsigned i = 0; i < spec_.functions; ++i) {
        funcs_.push_back(registry.declare(
            spec_.name + "::fn" + std::to_string(i), spec_.body));
    }

    // Static call graph: function i calls a deterministic window of
    // nearby hot functions (call locality like real programs).
    Rng rng(0xabcd0000 + std::hash<std::string>{}(spec_.name));
    callees_.resize(spec_.functions);
    for (unsigned i = 0; i < spec_.hotFunctions; ++i) {
        for (unsigned k = 0; k < spec_.fanout; ++k) {
            const unsigned off =
                1 + static_cast<unsigned>(
                        rng.nextBelow(spec_.hotFunctions - 1));
            callees_[i].push_back(
                funcs_[(i + off) % spec_.hotFunctions]);
        }
    }
}

void
SpecProgram::emit(TraceBuffer &out, std::uint64_t instrs,
                  std::uint64_t seed) const
{
    TraceRecorder rec(out);
    Rng rng(seed);

    constexpr unsigned maxDepth = 24;
    std::vector<unsigned> stack; // indices into funcs_/callees_

    stack.push_back(0);
    rec.call(funcs_[0]);

    std::uint64_t emitted = 0;
    while (emitted < instrs) {
        const unsigned cur = stack.back();

        // A work burst, with data-dependent branches sprinkled in.
        const auto burst = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(
                1, rng.nextGeometric(spec_.workPerCall)));
        std::uint32_t left = burst;
        while (left > 0) {
            const std::uint32_t chunk = std::min<std::uint32_t>(
                left, 40 + static_cast<std::uint32_t>(
                          rng.nextBelow(60)));
            rec.work(chunk);
            left -= chunk;
            if (rng.nextBool(spec_.branchRate))
                rec.branch(rng.nextBool(spec_.branchTakenRate));
        }
        emitted += burst;

        // Descend or return.
        const bool can_call = !callees_[cur].empty() &&
            stack.size() < maxDepth;
        const bool do_call = can_call &&
            (stack.size() <= 1 || rng.nextBool(spec_.callBias));
        if (do_call) {
            const auto &cands = callees_[cur];
            const FunctionId callee = cands[static_cast<std::size_t>(
                rng.nextBelow(cands.size()))];
            // Map back to the walk index (hot functions only).
            unsigned idx = 0;
            for (unsigned i = 0; i < spec_.hotFunctions; ++i) {
                if (funcs_[i] == callee) {
                    idx = i;
                    break;
                }
            }
            rec.call(callee);
            stack.push_back(idx);
            ++emitted;
        } else if (stack.size() > 1) {
            rec.ret();
            stack.pop_back();
            ++emitted;
        }
    }

    while (!stack.empty()) {
        rec.ret();
        stack.pop_back();
    }
}

void
SpecProgram::emitTest(TraceBuffer &out) const
{
    emit(out, spec_.testInstrs, 0x7e57 + funcs_.front());
}

void
SpecProgram::emitTrain(TraceBuffer &out) const
{
    emit(out, spec_.trainInstrs, 0x7 + funcs_.front() * 131);
}

} // namespace cgp::spec
