/**
 * @file
 * Synthetic stand-ins for the seven SPEC CPU2000 integer benchmarks
 * of paper §5.7 (gzip, gcc, crafty, parser, gap, bzip2, twolf).
 *
 * Licensed SPEC sources/inputs are unavailable, so each benchmark is
 * modeled as a parameterized program whose *instruction-supply
 * behaviour* matches what drives Figure 10: the size of the hot code
 * working set, the call density, and the loop structure.  The
 * parameters are calibrated so that, like the paper's measurements,
 * the proxies have near-zero I-cache miss ratios except gcc (~0.5%)
 * and crafty (~0.3%).  Everything downstream (how much NL and CGP
 * help) is measured, not scripted.
 *
 * Each proxy has a "test" input (used to generate OM profiles, as
 * the paper does) and a "train" input (measured).
 */

#ifndef CGP_SPEC_CPU2000_HH
#define CGP_SPEC_CPU2000_HH

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/registry.hh"
#include "trace/events.hh"
#include "util/rng.hh"

namespace cgp::spec
{

struct SpecProgramSpec
{
    std::string name;

    /** Total functions (hot working set + cold tail). */
    unsigned functions = 40;

    /** Functions the random walk actually visits. */
    unsigned hotFunctions = 10;

    /** Mean straight-line instructions between calls. */
    double workPerCall = 300.0;

    /** Static callees per function. */
    unsigned fanout = 4;

    /** Probability a step calls deeper (vs returning). */
    double callBias = 0.5;

    /** Data-dependent branch events per work block. */
    double branchRate = 0.15;

    /** Taken probability of those branches. */
    double branchTakenRate = 0.3;

    /** Traced function body size class. */
    FunctionTraits body = FunctionTraits::medium();

    /** Instructions emitted for the train (measured) input. */
    std::uint64_t trainInstrs = 6'000'000;

    /** Instructions emitted for the test (profile) input. */
    std::uint64_t testInstrs = 800'000;
};

/** The seven benchmarks of Figure 10, in paper order. */
std::vector<SpecProgramSpec> cpu2000Suite();

/**
 * A generated proxy program: declares its functions in a registry
 * and emits traces for either input set.
 */
class SpecProgram
{
  public:
    SpecProgram(FunctionRegistry &registry,
                const SpecProgramSpec &spec);

    /** Emit a trace of ~@p instrs instructions with @p seed. */
    void emit(TraceBuffer &out, std::uint64_t instrs,
              std::uint64_t seed) const;

    /** Test input (profile generation). */
    void emitTest(TraceBuffer &out) const;

    /** Train input (measurement). */
    void emitTrain(TraceBuffer &out) const;

    const SpecProgramSpec &spec() const { return spec_; }

  private:
    SpecProgramSpec spec_;
    std::vector<FunctionId> funcs_;
    std::vector<std::vector<FunctionId>> callees_;
};

} // namespace cgp::spec

#endif // CGP_SPEC_CPU2000_HH
