/**
 * @file
 * Resumable run directory for a campaign, hardened against crashes
 * and on-disk corruption.
 *
 * Layout:
 *
 *     <dir>/manifest.json   campaign identity + per-job status (sealed)
 *     <dir>/job-0000.json   one completed job: spec echo + SimResult
 *     <dir>/quarantine/     artifacts that failed integrity checks
 *     <dir>/.lock           pid of the process that owns the dir
 *
 * The per-job files are the source of truth for completion — a job
 * counts as done iff its file exists, parses, passes its CRC32 seal
 * (exp/integrity), and carries the campaign fingerprint and matching
 * job key.  The manifest is a human- and tool-friendly summary that
 * is rewritten (durable tmp+rename, see writeFileAtomicDurable)
 * after every completion; a crash between a job file and its
 * manifest update therefore loses nothing, because resume rescans
 * the job files and rebuilds the statuses.
 *
 * Integrity: every artifact is sealed with a "crc32" member.  On
 * open, orphaned *.tmp files from a killed writer are swept, and any
 * artifact that is truncated, bit-flipped, unparsable, or from a
 * different spec is moved to <dir>/quarantine/ — never deleted, so a
 * human can autopsy it — and its job transparently re-runs.  A
 * manifest that fails its integrity check is quarantined and rebuilt
 * from the job files; a *valid* manifest with a different
 * fingerprint still throws, because that is a user error (two
 * campaigns sharing a directory), not corruption.
 *
 * Locking: prepare() takes <dir>/.lock.  A live foreign owner makes
 * prepare() throw; a lock left by a dead process is stolen with a
 * warning.  The lock is released by the destructor.
 *
 * Everything written here is deterministic: no timestamps, no thread
 * counts, fixed member order.  Running the same spec at any
 * parallelism yields byte-identical manifests and job files — the
 * property the determinism tests pin down.
 *
 * Crash points "exp.pre_record" (before the job file: the job is
 * lost), "exp.mid_record" (job file durable, manifest stale: resume
 * rebuilds), and "exp.record" (after job file + manifest: the job
 * survives) let the fault injector simulate a kill on every side of
 * the durability boundary; "exp.artifact_write" (inside the write
 * path) can additionally tear the artifact being written.
 *
 * Not internally synchronized: the engine serializes record calls.
 */

#ifndef CGP_EXP_RUNDIR_HH
#define CGP_EXP_RUNDIR_HH

#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "exp/scheduler.hh"
#include "harness/simulator.hh"

namespace cgp::exp
{

class RunDir
{
  public:
    /** @p path empty disables persistence (all calls no-op). */
    explicit RunDir(std::string path);
    ~RunDir();

    RunDir(const RunDir &) = delete;
    RunDir &operator=(const RunDir &) = delete;

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /**
     * Create the directory, take its lock, sweep orphaned *.tmp
     * files, quarantine a corrupt manifest, and install the job
     * list.  An existing *valid* manifest must carry the same
     * fingerprint.
     * @throws std::runtime_error if the directory already holds a
     * different campaign (fingerprint mismatch) or is locked by a
     * live process.
     */
    void prepare(const CampaignSpec &spec,
                 const std::vector<JobSpec> &jobs,
                 const std::string &fingerprint);

    /**
     * Scan job files and return results of every validly completed
     * job, keyed by job index.  Files that are unparsable, fail
     * their CRC seal, or belong to a different spec are quarantined
     * (their jobs re-run); missing files are simply pending.
     */
    std::map<std::size_t, SimResult>
    loadCompleted(const std::vector<JobSpec> &jobs);

    /**
     * Persist one completed job: write its sealed file (durable
     * atomic rename), then rewrite the manifest with the job marked
     * "done".
     */
    void recordResult(const JobSpec &job, const SimResult &result);

    /** Mark @p index done without rewriting its file (resume). */
    void markDone(std::size_t index);

    /** Record a terminal failure; the manifest entry becomes
     *  status "failed" with the kind/message/attempts attached. */
    void markFailed(const JobFailure &failure);

    /** Rewrite the manifest to match the in-memory statuses. */
    void flushManifest() const;

    /** Artifacts quarantined so far by this RunDir. */
    std::size_t quarantined() const { return quarantined_; }

    /** Orphaned *.tmp files swept by prepare(). */
    std::size_t sweptTmp() const { return sweptTmp_; }

    static std::string jobFileName(std::size_t index);

    std::string manifestPath() const;
    std::string jobFilePath(std::size_t index) const;
    std::string quarantineDir() const;

  private:
    void writeManifest() const;
    void acquireLock();
    void releaseLock();
    void sweepTmpFiles();
    /** Move @p file into quarantine/ (never deletes data). */
    void quarantineFile(const std::string &file,
                        const std::string &why);

    std::string path_;
    std::string fingerprint_;
    std::string campaign_;
    std::string title_;
    std::uint64_t seed_ = 0;
    std::vector<JobSpec> jobs_;
    std::vector<bool> done_;
    std::map<std::size_t, JobFailure> failed_;
    std::size_t quarantined_ = 0;
    std::size_t sweptTmp_ = 0;
    bool holdsLock_ = false;
};

/** A run directory read back without re-running anything. */
struct LoadedRun
{
    std::string campaign;
    std::string title;
    std::string fingerprint;
    std::uint64_t seed = 0;
    /** Jobs in manifest order (index, workload, label, seed). */
    std::vector<JobSpec> jobs;
    /** Results by job index; missing entries were never completed. */
    std::map<std::size_t, SimResult> results;
    /** Jobs the manifest records as terminally failed. */
    std::map<std::size_t, JobFailure> failures;
};

/**
 * Read a run directory for reporting (`cgpbench report`).
 * @throws std::runtime_error if the manifest is missing/corrupt.
 */
LoadedRun loadRunDir(const std::string &path);

/** One problem found by verifyRunDir. */
struct VerifyIssue
{
    std::string file;    ///< artifact (relative to the run dir)
    std::string problem; ///< what is wrong with it
};

/** Non-destructive integrity audit of a run directory. */
struct VerifyReport
{
    bool manifestOk = false;
    std::string campaign;
    std::string fingerprint;
    std::size_t jobsTotal = 0;
    std::size_t jobsDone = 0;    ///< manifest status "done"
    std::size_t jobsFailed = 0;  ///< manifest status "failed"
    std::size_t jobsPending = 0; ///< manifest status "pending"
    std::size_t jobFilesOk = 0;  ///< job files passing all checks
    std::vector<VerifyIssue> issues;
    std::vector<std::string> quarantineEntries;

    bool ok() const { return manifestOk && issues.empty(); }
};

/**
 * Audit @p path without modifying it: manifest parse + seal, every
 * done job's file parse + seal + fingerprint, orphaned tmp files,
 * quarantine inventory.  Backs `cgpbench verify`.
 */
VerifyReport verifyRunDir(const std::string &path);

} // namespace cgp::exp

#endif // CGP_EXP_RUNDIR_HH
