/**
 * @file
 * Resumable run directory for a campaign.
 *
 * Layout:
 *
 *     <dir>/manifest.json   campaign identity + per-job status
 *     <dir>/job-0000.json   one completed job: spec echo + SimResult
 *
 * The per-job files are the source of truth for completion — a job
 * counts as done iff its file exists, parses, and carries the
 * campaign fingerprint and matching job key.  The manifest is a
 * human- and tool-friendly summary that is rewritten (atomically,
 * via tmp+rename) after every completion; a crash between a job file
 * and its manifest update therefore loses nothing, because resume
 * rescans the job files and rebuilds the statuses.
 *
 * Everything written here is deterministic: no timestamps, no thread
 * counts, fixed member order.  Running the same spec at any
 * parallelism yields byte-identical manifests and job files — the
 * property the determinism tests pin down.
 *
 * Crash points "exp.pre_record" (before the job file: the job is
 * lost) and "exp.record" (after job file + manifest: the job
 * survives) let the fault injector simulate a kill at either side of
 * the durability boundary.
 *
 * Not internally synchronized: the engine serializes record calls.
 */

#ifndef CGP_EXP_RUNDIR_HH
#define CGP_EXP_RUNDIR_HH

#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "harness/simulator.hh"

namespace cgp::exp
{

class RunDir
{
  public:
    /** @p path empty disables persistence (all calls no-op). */
    explicit RunDir(std::string path);

    bool enabled() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /**
     * Create the directory and install the job list.  An existing
     * manifest must carry the same fingerprint.
     * @throws std::runtime_error if the directory already holds a
     * different campaign (fingerprint mismatch).
     */
    void prepare(const CampaignSpec &spec,
                 const std::vector<JobSpec> &jobs,
                 const std::string &fingerprint);

    /**
     * Scan job files and return results of every validly completed
     * job, keyed by job index.  Files that are missing, unparsable,
     * or from a different spec are ignored (their jobs re-run).
     */
    std::map<std::size_t, SimResult>
    loadCompleted(const std::vector<JobSpec> &jobs) const;

    /**
     * Persist one completed job: write its file (atomic rename),
     * then rewrite the manifest with the job marked "done".
     */
    void recordResult(const JobSpec &job, const SimResult &result);

    /** Mark @p index done without rewriting its file (resume). */
    void markDone(std::size_t index);

    /** Rewrite the manifest to match the in-memory statuses. */
    void flushManifest() const;

    static std::string jobFileName(std::size_t index);

    std::string manifestPath() const;
    std::string jobFilePath(std::size_t index) const;

  private:
    void writeManifest() const;
    void writeFileAtomic(const std::string &path,
                         const std::string &contents) const;

    std::string path_;
    std::string fingerprint_;
    std::string campaign_;
    std::string title_;
    std::uint64_t seed_ = 0;
    std::vector<JobSpec> jobs_;
    std::vector<bool> done_;
};

/** A run directory read back without re-running anything. */
struct LoadedRun
{
    std::string campaign;
    std::string title;
    std::string fingerprint;
    std::uint64_t seed = 0;
    /** Jobs in manifest order (index, workload, label, seed). */
    std::vector<JobSpec> jobs;
    /** Results by job index; missing entries were never completed. */
    std::map<std::size_t, SimResult> results;
};

/**
 * Read a run directory for reporting (`cgpbench report`).
 * @throws std::runtime_error if the manifest is missing/corrupt.
 */
LoadedRun loadRunDir(const std::string &path);

} // namespace cgp::exp

#endif // CGP_EXP_RUNDIR_HH
