/**
 * @file
 * Artifact integrity for the experiment engine.
 *
 * Every JSON artifact the engine persists — per-job result files,
 * the run-directory manifest, BENCH_*.json — is *sealed*: a "crc32"
 * member carries the CRC32 of the pretty-printed document with the
 * seal itself removed.  A torn write, bit flip, or truncation is
 * detected by verifySealedJson() on resume; the corrupt file is
 * quarantined and its job re-run instead of poisoning results.
 *
 * writeFileAtomicDurable() is the one write path for all sealed
 * artifacts: tmp file -> flush -> fsync -> rename -> fsync(dir), so
 * a crash at any instant leaves either the old file, the new file,
 * or a sweepable *.tmp — never a half-visible artifact under the
 * final name.  The "exp.artifact_write" crash point lives inside it:
 * a TornWrite fault publishes a truncated file under the *final*
 * name and then simulates process death, which is exactly the state
 * quarantine exists to catch.
 */

#ifndef CGP_EXP_INTEGRITY_HH
#define CGP_EXP_INTEGRITY_HH

#include <string>

#include "util/json.hh"

namespace cgp::exp
{

/**
 * Stamp @p obj (a JSON object) with its "crc32" seal.  Any existing
 * seal is replaced; the CRC covers obj.dump(2) without the seal.
 */
void sealJson(Json &obj);

/** True iff @p obj carries a seal matching its other members. */
bool verifySealedJson(const Json &obj);

/**
 * The resume-stable portion of a BENCH document: the document with
 * the volatile "execution" section (threads, wall time, executed vs
 * skipped counts) and the seal stripped.  Two runs of the same
 * campaign — interrupted any number of times or not at all — must
 * produce byte-identical deterministic text; the chaos audit
 * byte-compares exactly this.
 */
std::string deterministicBenchText(const Json &bench);

/**
 * Durable atomic file write: write @p contents to @p path + ".tmp",
 * flush + fsync, rename over @p path, then fsync the parent
 * directory.  Contains the "exp.artifact_write" crash point (Crash
 * and TornWrite kinds).
 * @throws std::runtime_error on I/O failure.
 */
void writeFileAtomicDurable(const std::string &path,
                            const std::string &contents);

/** Read a whole file; @throws std::runtime_error if unreadable. */
std::string readFileOrThrow(const std::string &path);

} // namespace cgp::exp

#endif // CGP_EXP_INTEGRITY_HH
