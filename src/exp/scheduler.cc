#include "exp/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/watchdog.hh"

namespace cgp::exp
{

namespace
{

constexpr std::size_t noJob = static_cast<std::size_t>(-1);

/** One worker's job deque (own pops at front, thieves at back). */
struct WorkerQueue
{
    std::mutex mu;
    std::deque<std::size_t> jobs;

    std::optional<std::size_t>
    popFront()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t j = jobs.front();
        jobs.pop_front();
        return j;
    }

    std::optional<std::size_t>
    stealBack()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t j = jobs.back();
        jobs.pop_back();
        return j;
    }
};

/**
 * Per-worker state the hung-job monitor inspects.  The mutex makes
 * the (job, start, token) triple atomic against the monitor, so a
 * cancel can never land on the *next* job after the hung one
 * finished at the wrong moment.
 */
struct WorkerSlot
{
    std::mutex mu;
    std::size_t job = noJob;
    std::chrono::steady_clock::time_point start{};
    CancelToken token;
};

const char *
classifyKind(const std::exception &e)
{
    if (dynamic_cast<const TimeoutError *>(&e) != nullptr ||
        dynamic_cast<const CancelledError *>(&e) != nullptr) {
        return "timeout";
    }
    if (dynamic_cast<const fault::TransientIoError *>(&e) != nullptr)
        return "transient-io";
    return "error";
}

} // anonymous namespace

const char *
toString(FailurePolicy policy)
{
    return policy == FailurePolicy::Strict ? "strict" : "degrade";
}

FailurePolicy
failurePolicyFromString(const std::string &s)
{
    if (s == "strict")
        return FailurePolicy::Strict;
    if (s == "degrade")
        return FailurePolicy::Degrade;
    throw std::invalid_argument("unknown failure policy '" + s +
                                "' (want strict|degrade)");
}

ScheduleStats
runJobs(std::size_t n, const SchedulerOptions &options,
        const std::function<void(std::size_t)> &fn)
{
    ScheduleStats stats;
    if (n == 0)
        return stats;

    unsigned workers = options.threads != 0
        ? options.threads
        : std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(workers) > n)
        workers = static_cast<unsigned>(n);
    stats.threads = workers;

    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % workers].jobs.push_back(i);

    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> crashes{0};
    std::mutex fail_mu;
    std::vector<JobFailure> failures;
    std::exception_ptr crash;

    std::vector<WorkerSlot> slots(workers);

    const auto runOne = [&](unsigned self, std::size_t j) {
        WorkerSlot &slot = slots[self];
        {
            std::lock_guard<std::mutex> lock(slot.mu);
            slot.job = j;
            slot.start = std::chrono::steady_clock::now();
            slot.token.reset();
        }
        ScopedCancelToken scoped(slot.token);
        try {
            fn(j);
            completed.fetch_add(1, std::memory_order_relaxed);
        } catch (const fault::CrashInjected &) {
            // Simulated process death: both policies stop the world
            // and rethrow with the type intact (the chaos harness
            // catches CrashInjected specifically).
            crashes.fetch_add(1, std::memory_order_relaxed);
            {
                std::lock_guard<std::mutex> lock(fail_mu);
                if (!crash)
                    crash = std::current_exception();
            }
            cancelled.store(true, std::memory_order_relaxed);
        } catch (const std::exception &e) {
            JobFailure f;
            f.index = j;
            f.kind = classifyKind(e);
            f.message = e.what();
            {
                std::lock_guard<std::mutex> lock(fail_mu);
                failures.push_back(std::move(f));
            }
            if (options.policy == FailurePolicy::Strict)
                cancelled.store(true, std::memory_order_relaxed);
        } catch (...) {
            JobFailure f;
            f.index = j;
            f.kind = "error";
            f.message = "unknown exception";
            {
                std::lock_guard<std::mutex> lock(fail_mu);
                failures.push_back(std::move(f));
            }
            if (options.policy == FailurePolicy::Strict)
                cancelled.store(true, std::memory_order_relaxed);
        }
        {
            std::lock_guard<std::mutex> lock(slot.mu);
            slot.job = noJob;
        }
    };

    const auto workerLoop = [&](unsigned self) {
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            std::optional<std::size_t> job =
                queues[self].popFront();
            if (!job) {
                // Own queue dry: sweep the other queues once; if
                // every one is empty the pool is done.
                for (unsigned v = 1; v < workers && !job; ++v) {
                    job = queues[(self + v) % workers].stealBack();
                }
                if (!job)
                    return;
                steals.fetch_add(1, std::memory_order_relaxed);
            }
            runOne(self, *job);
        }
    };

    // Hung-shard monitor: flips the CancelToken of any worker that
    // has sat on one job longer than the budget.  The simulation
    // loop polls the token and unwinds with CancelledError, which
    // classifies as a "timeout" failure above.
    std::thread monitor;
    std::mutex mon_mu;
    std::condition_variable mon_cv;
    bool mon_stop = false;
    if (options.hangTimeoutSeconds > 0.0) {
        monitor = std::thread([&] {
            const std::chrono::duration<double> budget(
                options.hangTimeoutSeconds);
            const auto poll = std::chrono::milliseconds(std::max<long>(
                5,
                static_cast<long>(options.hangTimeoutSeconds * 250)));
            std::unique_lock<std::mutex> lock(mon_mu);
            while (!mon_cv.wait_for(lock, poll,
                                    [&] { return mon_stop; })) {
                for (WorkerSlot &slot : slots) {
                    std::lock_guard<std::mutex> slock(slot.mu);
                    if (slot.job == noJob || slot.token.cancelled())
                        continue;
                    if (std::chrono::steady_clock::now() - slot.start >
                        budget) {
                        cgp_warn("hung-job watchdog: cancelling job ",
                                 slot.job, " after ",
                                 options.hangTimeoutSeconds, "s");
                        slot.token.cancel();
                    }
                }
            }
        });
    }

    if (workers <= 1) {
        workerLoop(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop, w);
        for (std::thread &t : pool)
            t.join();
    }

    if (monitor.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mon_mu);
            mon_stop = true;
        }
        mon_cv.notify_all();
        monitor.join();
    }

    stats.steals = steals.load();
    std::sort(failures.begin(), failures.end(),
              [](const JobFailure &a, const JobFailure &b) {
                  return a.index < b.index;
              });
    stats.failures = failures;
    const std::size_t ended = completed.load() + failures.size() +
        crashes.load();
    stats.cancelledJobs = n > ended ? n - ended : 0;

    if (crash)
        std::rethrow_exception(crash);
    if (options.policy == FailurePolicy::Strict &&
        !failures.empty()) {
        std::string msg = "campaign aborted (strict policy): " +
            std::to_string(failures.size()) + " job(s) failed";
        for (const JobFailure &f : failures) {
            msg += "\n  job " + std::to_string(f.index) + " [" +
                f.kind + "]: " + f.message;
        }
        throw CampaignAborted(msg, std::move(failures));
    }
    return stats;
}

ScheduleStats
runJobs(std::size_t n, unsigned threads,
        const std::function<void(std::size_t)> &fn)
{
    SchedulerOptions options;
    options.threads = threads;
    return runJobs(n, options, fn);
}

} // namespace cgp::exp
