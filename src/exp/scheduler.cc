#include "exp/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace cgp::exp
{

namespace
{

/** One worker's job deque (own pops at front, thieves at back). */
struct WorkerQueue
{
    std::mutex mu;
    std::deque<std::size_t> jobs;

    std::optional<std::size_t>
    popFront()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t j = jobs.front();
        jobs.pop_front();
        return j;
    }

    std::optional<std::size_t>
    stealBack()
    {
        std::lock_guard<std::mutex> lock(mu);
        if (jobs.empty())
            return std::nullopt;
        const std::size_t j = jobs.back();
        jobs.pop_back();
        return j;
    }
};

} // anonymous namespace

ScheduleStats
runJobs(std::size_t n, unsigned threads,
        const std::function<void(std::size_t)> &fn)
{
    ScheduleStats stats;
    if (n == 0)
        return stats;

    unsigned workers = threads != 0
        ? threads
        : std::max(1u, std::thread::hardware_concurrency());
    if (static_cast<std::size_t>(workers) > n)
        workers = static_cast<unsigned>(n);
    stats.threads = workers;

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return stats;
    }

    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % workers].jobs.push_back(i);

    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> steals{0};
    std::mutex error_mu;
    std::exception_ptr error;

    const auto worker = [&](unsigned self) {
        for (;;) {
            if (cancelled.load(std::memory_order_relaxed))
                return;
            std::optional<std::size_t> job =
                queues[self].popFront();
            if (!job) {
                // Own queue dry: sweep the other queues once; if
                // every one is empty the pool is done.
                for (unsigned v = 1; v < workers && !job; ++v) {
                    job = queues[(self + v) % workers].stealBack();
                }
                if (!job)
                    return;
                steals.fetch_add(1, std::memory_order_relaxed);
            }
            try {
                fn(*job);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mu);
                    if (!error)
                        error = std::current_exception();
                }
                cancelled.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker, w);
    for (std::thread &t : pool)
        t.join();

    stats.steals = steals.load();
    if (error)
        std::rethrow_exception(error);
    return stats;
}

} // namespace cgp::exp
