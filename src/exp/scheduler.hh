/**
 * @file
 * Work-stealing job scheduler for independent experiment jobs.
 *
 * runJobs() executes fn(0..n-1) on a pool of worker threads.  Jobs
 * are dealt round-robin into per-worker deques; a worker drains its
 * own deque from the front and, when empty, steals from the back of
 * a victim's, so long-running jobs (the big DB workloads) do not
 * strand short ones behind them.  Completion *order* is therefore
 * nondeterministic — callers must key results by job index, never by
 * completion sequence; the campaign engine writes into a
 * pre-allocated results vector for exactly this reason.
 *
 * Failure handling is governed by a policy:
 *
 *  - Strict: the first job failure cancels all not-yet-started jobs;
 *    after the pool joins, every failure that occurred (in-flight
 *    jobs on other workers may fail concurrently) is aggregated —
 *    nothing is silently dropped — and runJobs throws
 *    CampaignAborted listing all of them.
 *  - Degrade: failed jobs are recorded in ScheduleStats::failures
 *    (job index, classified kind, message) and every healthy job
 *    still runs to completion.
 *
 * Two exceptions bypass the policy: fault::CrashInjected models
 * whole-process death (the chaos harness depends on it unwinding the
 * entire campaign), so it always cancels everything and is rethrown
 * with its type intact.  Everything else is classified: TimeoutError
 * / CancelledError -> "timeout", fault::TransientIoError ->
 * "transient-io", any other exception -> "error".
 *
 * Hung-shard watchdog: with hangTimeoutSeconds > 0 a monitor thread
 * watches every worker; a worker that has sat on one job longer than
 * the budget gets its CancelToken flipped.  The simulation loop
 * polls the token cooperatively (util/watchdog) and unwinds with
 * CancelledError, so a livelocked config becomes a recorded
 * "timeout" failure instead of wedging the campaign.
 */

#ifndef CGP_EXP_SCHEDULER_HH
#define CGP_EXP_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cgp::exp
{

/** What the campaign does when a job fails. */
enum class FailurePolicy
{
    Strict, ///< abort the campaign on the first failure
    Degrade ///< record the failure, finish every healthy job
};

const char *toString(FailurePolicy policy);

/**
 * Parse "strict"/"degrade".
 * @throws std::invalid_argument on anything else.
 */
FailurePolicy failurePolicyFromString(const std::string &s);

/** One job that ultimately failed (after any retries). */
struct JobFailure
{
    std::size_t index = 0;  ///< scheduler job index
    std::string kind;       ///< "timeout" | "transient-io" | "error"
    std::string message;    ///< the exception's what()
    unsigned attempts = 1;  ///< filled in by the engine (retries)
};

/** Thrown by runJobs under Strict when any job failed. */
class CampaignAborted : public std::runtime_error
{
  public:
    CampaignAborted(const std::string &what,
                    std::vector<JobFailure> failures)
        : std::runtime_error(what), failures_(std::move(failures))
    {
    }

    /** Every failure observed before the pool stopped. */
    const std::vector<JobFailure> &failures() const
    {
        return failures_;
    }

  private:
    std::vector<JobFailure> failures_;
};

struct SchedulerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;

    FailurePolicy policy = FailurePolicy::Strict;

    /** Wall-clock seconds one job may run before the hung-shard
     *  monitor cancels it (0 = no monitor). */
    double hangTimeoutSeconds = 0.0;
};

struct ScheduleStats
{
    unsigned threads = 1;     ///< workers actually spawned
    std::uint64_t steals = 0; ///< jobs taken from another worker

    /** Failures in job-index order (Degrade; also carried by the
     *  CampaignAborted thrown under Strict). */
    std::vector<JobFailure> failures;

    /** Jobs never started because a strict failure (or crash)
     *  cancelled the pool. */
    std::size_t cancelledJobs = 0;
};

/**
 * Run @p fn for every index in [0, n) under @p options.  With one
 * worker (or n <= 1) jobs run inline on the calling thread in index
 * order.
 * @throws CampaignAborted under Strict when any job failed.
 * @throws fault::CrashInjected (rethrown, both policies) when a job
 * died at an injected crash point — the in-process stand-in for
 * SIGKILL.
 */
ScheduleStats runJobs(std::size_t n, const SchedulerOptions &options,
                      const std::function<void(std::size_t)> &fn);

/** Back-compat form: strict policy at @p threads workers. */
ScheduleStats runJobs(std::size_t n, unsigned threads,
                      const std::function<void(std::size_t)> &fn);

} // namespace cgp::exp

#endif // CGP_EXP_SCHEDULER_HH
