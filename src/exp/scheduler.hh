/**
 * @file
 * Work-stealing job scheduler for independent experiment jobs.
 *
 * runJobs() executes fn(0..n-1) on a pool of worker threads.  Jobs
 * are dealt round-robin into per-worker deques; a worker drains its
 * own deque from the front and, when empty, steals from the back of
 * a victim's, so long-running jobs (the big DB workloads) do not
 * strand short ones behind them.  Completion *order* is therefore
 * nondeterministic — callers must key results by job index, never by
 * completion sequence; the campaign engine writes into a
 * pre-allocated results vector for exactly this reason.
 *
 * The first exception thrown by any job cancels all not-yet-started
 * jobs and is rethrown on the calling thread once the pool has
 * joined, so an injected CrashInjected behaves like a process kill:
 * in-flight work stops, and whatever was already recorded stays
 * recorded.
 */

#ifndef CGP_EXP_SCHEDULER_HH
#define CGP_EXP_SCHEDULER_HH

#include <cstdint>
#include <functional>

namespace cgp::exp
{

struct ScheduleStats
{
    unsigned threads = 1;      ///< workers actually spawned
    std::uint64_t steals = 0;  ///< jobs taken from another worker
};

/**
 * Run @p fn for every index in [0, n).  @p threads == 0 selects
 * hardware concurrency; the pool never exceeds @p n workers.  With
 * one worker (or n <= 1) jobs run inline on the calling thread in
 * index order.
 */
ScheduleStats runJobs(std::size_t n, unsigned threads,
                      const std::function<void(std::size_t)> &fn);

} // namespace cgp::exp

#endif // CGP_EXP_SCHEDULER_HH
