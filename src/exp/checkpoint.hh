/**
 * @file
 * Sealed warm-state checkpoint store for campaign run directories.
 *
 * Sampling's checkpoint interface (sample::CheckpointHooks) is a
 * pair of key-value callbacks; this module binds them to the same
 * integrity machinery the per-job artifacts use: every checkpoint
 * is a CRC32-sealed JSON document written with the durable
 * tmp-rename path (exp/integrity), and a damaged artifact — torn
 * write, bit flip, truncation, unparsable text — is moved to the
 * store's quarantine/ directory (never deleted) and reported as a
 * miss, so the sampler transparently re-warms.
 *
 * Layout, under the run directory:
 *
 *     <dir>/checkpoints/<key>.json   one sealed warm checkpoint
 *     <dir>/checkpoints/quarantine/  artifacts that failed checks
 *
 * Keys come from sample::checkpointKey (workload + config + warmup
 * fingerprint), so repeated campaign jobs over the same workload
 * prefix skip warming while any change to the configuration misses.
 */

#ifndef CGP_EXP_CHECKPOINT_HH
#define CGP_EXP_CHECKPOINT_HH

#include <string>

#include "sample/config.hh"

namespace cgp::exp
{

/**
 * Hooks backed by `<runDir>/checkpoints/`.  The directory is created
 * lazily on first save; load treats a missing directory as a miss.
 * I/O failures on save are logged and swallowed — a checkpoint is an
 * optimization, never worth failing the job over.
 */
sample::CheckpointHooks
makeSealedCheckpointStore(const std::string &runDir);

/** The store's directory for @p runDir (test introspection). */
std::string checkpointStoreDir(const std::string &runDir);

} // namespace cgp::exp

#endif // CGP_EXP_CHECKPOINT_HH
