/**
 * @file
 * Chaos-loop harness: the campaign engine's torture loop, the
 * experiment-layer sibling of db/crashloop.
 *
 * One run() first executes the campaign uninterrupted, in memory, to
 * obtain the reference BENCH document.  It then loops: arm a random
 * fault (point, kind, hit number — all drawn from a seeded Rng, so a
 * failing triple replays exactly) at one of the engine's "exp.*"
 * crash points, run the campaign against a persistent run directory,
 * and let the injected crash kill it mid-flight.  Between cycles it
 * optionally corrupts a surviving artifact — a bit flip or a
 * truncation of a job file or the manifest — exactly the damage a
 * torn sector or a buggy copy leaves behind.  After all cycles a
 * clean resume must finish the campaign with zero manual
 * intervention (quarantine absorbs the corruption) and its BENCH
 * document, with the volatile execution section stripped
 * (deterministicBenchText), must be byte-identical to the reference.
 *
 * That byte-compare is the whole point: no matter where the kills
 * land or what got corrupted, resume + quarantine must converge on
 * exactly the result an undisturbed run produces.
 */

#ifndef CGP_EXP_CHAOSLOOP_HH
#define CGP_EXP_CHAOSLOOP_HH

#include <cstdint>
#include <string>

#include "exp/campaign.hh"
#include "exp/engine.hh"

namespace cgp::exp
{

struct ChaosLoopConfig
{
    /** Kill/resume cycles before the final clean resume. */
    unsigned cycles = 25;

    std::uint64_t seed = 0xc6a0'05ull;

    /** Worker threads for every campaign invocation. */
    unsigned threads = 2;

    /** Run directory the kills land on (wiped by run()). */
    std::string dir;

    /** Transient-failure retries per job. */
    unsigned retries = 2;

    /** Chance per cycle of corrupting a surviving artifact.  Also
     *  what keeps later cycles honest: corruption forces jobs back
     *  to pending, so resumes keep exercising the crash points. */
    double corruptProbability = 0.5;

    bool verbose = false;
};

struct ChaosLoopResult
{
    unsigned cycles = 0;      ///< kill/resume cycles performed
    unsigned crashes = 0;     ///< injected crashes that unwound a run
    unsigned cleanRuns = 0;   ///< cycles whose fault never fired
    unsigned corruptions = 0; ///< artifacts deliberately damaged
    std::size_t quarantined = 0; ///< artifacts quarantined on resume
    std::size_t executedJobs = 0; ///< simulations run across cycles

    /** Final BENCH (deterministic text) matches the reference. */
    bool identical = false;

    /** First point of divergence when !identical (for triage). */
    std::string mismatch;

    bool ok() const { return identical; }
};

class ChaosLoopHarness
{
  public:
    ChaosLoopHarness(CampaignSpec spec, WorkloadProvider &provider,
                     const ChaosLoopConfig &config)
        : spec_(std::move(spec)), provider_(provider),
          config_(config)
    {
    }

    /** @throws std::invalid_argument when config.dir is empty. */
    ChaosLoopResult run();

  private:
    CampaignSpec spec_;
    WorkloadProvider &provider_;
    ChaosLoopConfig config_;
};

} // namespace cgp::exp

#endif // CGP_EXP_CHAOSLOOP_HH
