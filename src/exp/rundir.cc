#include "exp/rundir.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <stdexcept>

#include <cerrno>
#include <csignal>
#include <unistd.h>

#include "exp/integrity.hh"
#include "fault/fault.hh"
#include "harness/report.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp::exp
{

namespace
{

constexpr int manifestSchema = 2;

/**
 * Lock paths held by *this* process.  The pid in the lock file only
 * distinguishes foreign processes; two RunDirs in one process (e.g.
 * a test opening the dir it is already running) share a pid, so
 * in-process exclusion needs its own registry.
 */
std::mutex heldLocksMu;
std::set<std::string> heldLocks; // NOLINT: process lifetime

std::string
lockKey(const std::string &path)
{
    std::error_code ec;
    const auto abs = std::filesystem::absolute(path, ec);
    return ec ? path : abs.lexically_normal().string();
}

bool
processAlive(long pid)
{
    if (pid <= 0)
        return false;
    if (::kill(static_cast<pid_t>(pid), 0) == 0)
        return true;
    return errno == EPERM; // exists, owned by someone else
}

} // anonymous namespace

RunDir::RunDir(std::string path) : path_(std::move(path)) {}

RunDir::~RunDir()
{
    releaseLock();
}

std::string
RunDir::jobFileName(std::size_t index)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "job-%04zu.json", index);
    return buf;
}

std::string
RunDir::manifestPath() const
{
    return path_ + "/manifest.json";
}

std::string
RunDir::jobFilePath(std::size_t index) const
{
    return path_ + "/" + jobFileName(index);
}

std::string
RunDir::quarantineDir() const
{
    return path_ + "/quarantine";
}

void
RunDir::acquireLock()
{
    const std::string lockPath = path_ + "/.lock";
    const std::string key = lockKey(path_);
    {
        std::lock_guard<std::mutex> lock(heldLocksMu);
        if (heldLocks.count(key) != 0) {
            throw std::runtime_error(
                "run directory " + path_ +
                " is already locked by this process");
        }
    }
    if (std::filesystem::exists(lockPath)) {
        long pid = 0;
        try {
            pid = std::stol(readFileOrThrow(lockPath));
        } catch (const std::exception &) {
            pid = 0; // unreadable lock: treat as stale
        }
        if (pid == static_cast<long>(::getpid()) ||
            !processAlive(pid)) {
            cgp_warn("stealing stale lock on ", path_,
                     " (owner pid ", pid, " is gone)");
        } else {
            throw std::runtime_error(
                "run directory " + path_ +
                " is locked by live process " +
                std::to_string(pid) +
                "; remove " + lockPath + " if that is wrong");
        }
    }
    writeFileAtomicDurable(lockPath,
                           std::to_string(::getpid()) + "\n");
    {
        std::lock_guard<std::mutex> lock(heldLocksMu);
        heldLocks.insert(key);
    }
    holdsLock_ = true;
}

void
RunDir::releaseLock()
{
    if (!holdsLock_)
        return;
    holdsLock_ = false;
    {
        std::lock_guard<std::mutex> lock(heldLocksMu);
        heldLocks.erase(lockKey(path_));
    }
    std::error_code ec;
    std::filesystem::remove(path_ + "/.lock", ec);
}

void
RunDir::sweepTmpFiles()
{
    for (const auto &entry :
         std::filesystem::directory_iterator(path_)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            std::error_code ec;
            std::filesystem::remove(entry.path(), ec);
            if (!ec)
                ++sweptTmp_;
        }
    }
    if (sweptTmp_ != 0) {
        cgp_warn("swept ", sweptTmp_, " orphaned tmp file(s) in ",
                 path_, " (previous writer died mid-write)");
    }
}

void
RunDir::quarantineFile(const std::string &file,
                       const std::string &why)
{
    std::filesystem::create_directories(quarantineDir());
    const std::string base =
        std::filesystem::path(file).filename().string();
    std::string dest = quarantineDir() + "/" + base;
    for (int n = 1; std::filesystem::exists(dest); ++n)
        dest = quarantineDir() + "/" + base + "." + std::to_string(n);
    std::error_code ec;
    std::filesystem::rename(file, dest, ec);
    if (ec) {
        // Cross-device or permission trouble: fall back to delete so
        // the corrupt artifact at least cannot poison the run.
        std::filesystem::remove(file, ec);
    }
    ++quarantined_;
    cgp_warn("quarantined ", base, ": ", why);
}

void
RunDir::prepare(const CampaignSpec &spec,
                const std::vector<JobSpec> &jobs,
                const std::string &fingerprint)
{
    if (!enabled())
        return;
    campaign_ = spec.name;
    title_ = spec.title;
    seed_ = spec.seed;
    fingerprint_ = fingerprint;
    jobs_ = jobs;
    done_.assign(jobs.size(), false);
    failed_.clear();

    std::filesystem::create_directories(path_);
    acquireLock();
    sweepTmpFiles();

    if (std::filesystem::exists(manifestPath())) {
        bool valid = false;
        std::string existing;
        std::string why;
        try {
            const Json m =
                Json::parse(readFileOrThrow(manifestPath()));
            if (!verifySealedJson(m)) {
                why = "manifest CRC seal mismatch";
            } else {
                existing = m.at("fingerprint").asString();
                valid = true;
            }
        } catch (const std::exception &e) {
            why = std::string("manifest unreadable: ") + e.what();
        }
        if (!valid) {
            // Corruption, not a user error: quarantine and rebuild
            // the manifest from the job files.
            quarantineFile(manifestPath(), why);
        } else if (existing != fingerprint_) {
            throw std::runtime_error(
                "run directory " + path_ +
                " holds a different campaign/spec (fingerprint " +
                existing + " != " + fingerprint_ + ")");
        }
    }
    writeManifest();
}

void
RunDir::writeManifest() const
{
    Json m = Json::object();
    m.set("schema", manifestSchema);
    m.set("campaign", campaign_);
    m.set("title", title_);
    m.set("seed", seed_);
    m.set("fingerprint", fingerprint_);
    Json jobs = Json::array();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobSpec &j = jobs_[i];
        Json e = Json::object();
        e.set("index", j.index);
        e.set("workload", j.workload);
        e.set("config", j.label);
        e.set("seed", j.seed);
        e.set("file", jobFileName(j.index));
        const auto fit = failed_.find(i);
        if (done_[i]) {
            e.set("status", "done");
        } else if (fit != failed_.end()) {
            e.set("status", "failed");
            Json err = Json::object();
            err.set("kind", fit->second.kind);
            err.set("message", fit->second.message);
            err.set("attempts", fit->second.attempts);
            e.set("error", std::move(err));
        } else {
            e.set("status", "pending");
        }
        jobs.push(std::move(e));
    }
    m.set("jobs", std::move(jobs));
    sealJson(m);
    writeFileAtomicDurable(manifestPath(), m.dump(2) + "\n");
}

void
RunDir::flushManifest() const
{
    if (enabled())
        writeManifest();
}

std::map<std::size_t, SimResult>
RunDir::loadCompleted(const std::vector<JobSpec> &jobs)
{
    std::map<std::size_t, SimResult> out;
    if (!enabled())
        return out;
    for (const JobSpec &j : jobs) {
        const std::string path = jobFilePath(j.index);
        if (!std::filesystem::exists(path))
            continue;
        std::string why;
        try {
            const Json f = Json::parse(readFileOrThrow(path));
            if (!verifySealedJson(f)) {
                why = "CRC seal mismatch (torn write or bit flip)";
            } else if (f.at("fingerprint").asString() !=
                       fingerprint_) {
                why = "foreign fingerprint";
            } else if (f.at("index").asUint() != j.index ||
                       f.at("workload").asString() != j.workload ||
                       f.at("config").asString() != j.label ||
                       f.at("seed").asUint() != j.seed) {
                why = "job identity mismatch";
            } else {
                out.emplace(j.index,
                            simResultFromJson(f.at("result")));
                continue;
            }
        } catch (const std::exception &e) {
            why = std::string("unreadable: ") + e.what();
        }
        // Invalid artifact: quarantine it and let the job re-run.
        quarantineFile(path, why);
    }
    return out;
}

void
RunDir::recordResult(const JobSpec &job, const SimResult &result)
{
    if (!enabled())
        return;
    // Crash here = the job dies before its result is durable; a
    // resumed campaign runs it again.
    fault::hit("exp.pre_record");

    Json f = Json::object();
    f.set("schema", manifestSchema);
    f.set("fingerprint", fingerprint_);
    f.set("index", job.index);
    f.set("workload", job.workload);
    f.set("config", job.label);
    f.set("seed", job.seed);
    f.set("result", toJson(result));
    sealJson(f);
    writeFileAtomicDurable(jobFilePath(job.index), f.dump(2) + "\n");

    // Crash here = the job file is durable but the manifest still
    // says "pending"; resume rebuilds statuses from the job files.
    fault::hit("exp.mid_record");

    done_[job.index] = true;
    failed_.erase(job.index);
    writeManifest();

    // Crash here = the process dies with the job fully recorded; a
    // resumed campaign must skip it.
    fault::hit("exp.record");
}

void
RunDir::markDone(std::size_t index)
{
    if (!enabled())
        return;
    done_[index] = true;
    failed_.erase(index);
}

void
RunDir::markFailed(const JobFailure &failure)
{
    if (!enabled())
        return;
    if (failure.index < done_.size() && !done_[failure.index])
        failed_[failure.index] = failure;
}

LoadedRun
loadRunDir(const std::string &path)
{
    LoadedRun run;
    const Json m =
        Json::parse(readFileOrThrow(path + "/manifest.json"));
    run.campaign = m.at("campaign").asString();
    run.title = m.at("title").asString();
    run.fingerprint = m.at("fingerprint").asString();
    run.seed = m.at("seed").asUint();
    for (const Json &e : m.at("jobs").items()) {
        JobSpec j;
        j.index = e.at("index").asUint();
        j.workload = e.at("workload").asString();
        j.label = e.at("config").asString();
        j.seed = e.at("seed").asUint();
        if (const Json *err = e.find("error"); err != nullptr) {
            JobFailure f;
            f.index = j.index;
            f.kind = err->at("kind").asString();
            f.message = err->at("message").asString();
            f.attempts =
                static_cast<unsigned>(err->at("attempts").asUint());
            run.failures.emplace(j.index, std::move(f));
        }
        const std::string file =
            path + "/" + e.at("file").asString();
        try {
            const Json f = Json::parse(readFileOrThrow(file));
            if (verifySealedJson(f) &&
                f.at("fingerprint").asString() == run.fingerprint) {
                run.results.emplace(
                    j.index, simResultFromJson(f.at("result")));
            }
        } catch (const std::exception &) {
            // Incomplete job: reported as missing.
        }
        run.jobs.push_back(std::move(j));
    }
    return run;
}

VerifyReport
verifyRunDir(const std::string &path)
{
    VerifyReport report;

    // Quarantine inventory (informational, not an issue by itself).
    const std::string qdir = path + "/quarantine";
    if (std::filesystem::is_directory(qdir)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(qdir)) {
            report.quarantineEntries.push_back(
                entry.path().filename().string());
        }
        std::sort(report.quarantineEntries.begin(),
                  report.quarantineEntries.end());
    }

    // Orphaned tmp files mean a writer died and nothing swept yet.
    if (std::filesystem::is_directory(path)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(path)) {
            if (!entry.is_regular_file())
                continue;
            const std::string name =
                entry.path().filename().string();
            if (name.size() > 4 &&
                name.compare(name.size() - 4, 4, ".tmp") == 0) {
                report.issues.push_back(
                    {name, "orphaned tmp file (torn write)"});
            }
        }
    }

    Json m;
    try {
        m = Json::parse(readFileOrThrow(path + "/manifest.json"));
    } catch (const std::exception &e) {
        report.issues.push_back(
            {"manifest.json",
             std::string("unreadable: ") + e.what()});
        return report;
    }
    if (!verifySealedJson(m)) {
        report.issues.push_back(
            {"manifest.json", "CRC seal mismatch"});
        return report;
    }
    report.manifestOk = true;
    report.campaign = m.at("campaign").asString();
    report.fingerprint = m.at("fingerprint").asString();

    for (const Json &e : m.at("jobs").items()) {
        ++report.jobsTotal;
        const std::string status = e.at("status").asString();
        const std::string file = e.at("file").asString();
        if (status == "failed")
            ++report.jobsFailed;
        else if (status == "pending")
            ++report.jobsPending;
        else
            ++report.jobsDone;
        if (status != "done") {
            // A pending/failed job may legitimately have no file.
            continue;
        }
        try {
            const Json f =
                Json::parse(readFileOrThrow(path + "/" + file));
            if (!verifySealedJson(f)) {
                report.issues.push_back(
                    {file, "CRC seal mismatch"});
            } else if (f.at("fingerprint").asString() !=
                       report.fingerprint) {
                report.issues.push_back(
                    {file, "foreign fingerprint"});
            } else {
                ++report.jobFilesOk;
            }
        } catch (const std::exception &ex) {
            report.issues.push_back(
                {file, std::string("unreadable: ") + ex.what()});
        }
    }
    return report;
}

} // namespace cgp::exp
