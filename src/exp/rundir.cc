#include "exp/rundir.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "fault/fault.hh"
#include "harness/report.hh"
#include "util/json.hh"

namespace cgp::exp
{

namespace
{

constexpr int manifestSchema = 1;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

RunDir::RunDir(std::string path) : path_(std::move(path)) {}

std::string
RunDir::jobFileName(std::size_t index)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "job-%04zu.json", index);
    return buf;
}

std::string
RunDir::manifestPath() const
{
    return path_ + "/manifest.json";
}

std::string
RunDir::jobFilePath(std::size_t index) const
{
    return path_ + "/" + jobFileName(index);
}

void
RunDir::prepare(const CampaignSpec &spec,
                const std::vector<JobSpec> &jobs,
                const std::string &fingerprint)
{
    if (!enabled())
        return;
    campaign_ = spec.name;
    title_ = spec.title;
    seed_ = spec.seed;
    fingerprint_ = fingerprint;
    jobs_ = jobs;
    done_.assign(jobs.size(), false);

    std::filesystem::create_directories(path_);
    if (std::filesystem::exists(manifestPath())) {
        const Json m = Json::parse(readFile(manifestPath()));
        const std::string existing =
            m.at("fingerprint").asString();
        if (existing != fingerprint_) {
            throw std::runtime_error(
                "run directory " + path_ +
                " holds a different campaign/spec (fingerprint " +
                existing + " != " + fingerprint_ + ")");
        }
    }
    writeManifest();
}

void
RunDir::writeFileAtomic(const std::string &path,
                        const std::string &contents) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot write " + tmp);
        out << contents;
        out.flush();
        if (!out)
            throw std::runtime_error("short write to " + tmp);
    }
    std::filesystem::rename(tmp, path);
}

void
RunDir::writeManifest() const
{
    Json m = Json::object();
    m.set("schema", manifestSchema);
    m.set("campaign", campaign_);
    m.set("title", title_);
    m.set("seed", seed_);
    m.set("fingerprint", fingerprint_);
    Json jobs = Json::array();
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
        const JobSpec &j = jobs_[i];
        Json e = Json::object();
        e.set("index", j.index);
        e.set("workload", j.workload);
        e.set("config", j.label);
        e.set("seed", j.seed);
        e.set("file", jobFileName(j.index));
        e.set("status", done_[i] ? "done" : "pending");
        jobs.push(std::move(e));
    }
    m.set("jobs", std::move(jobs));
    writeFileAtomic(manifestPath(), m.dump(2) + "\n");
}

void
RunDir::flushManifest() const
{
    if (enabled())
        writeManifest();
}

std::map<std::size_t, SimResult>
RunDir::loadCompleted(const std::vector<JobSpec> &jobs) const
{
    std::map<std::size_t, SimResult> out;
    if (!enabled())
        return out;
    for (const JobSpec &j : jobs) {
        const std::string path = jobFilePath(j.index);
        if (!std::filesystem::exists(path))
            continue;
        try {
            const Json f = Json::parse(readFile(path));
            if (f.at("fingerprint").asString() != fingerprint_ ||
                f.at("index").asUint() != j.index ||
                f.at("workload").asString() != j.workload ||
                f.at("config").asString() != j.label ||
                f.at("seed").asUint() != j.seed) {
                continue;
            }
            out.emplace(j.index,
                        simResultFromJson(f.at("result")));
        } catch (const std::exception &) {
            // Torn or foreign file: treat the job as not completed.
        }
    }
    return out;
}

void
RunDir::recordResult(const JobSpec &job, const SimResult &result)
{
    if (!enabled())
        return;
    // Crash here = the job dies before its result is durable; a
    // resumed campaign runs it again.
    fault::hit("exp.pre_record");

    Json f = Json::object();
    f.set("schema", manifestSchema);
    f.set("fingerprint", fingerprint_);
    f.set("index", job.index);
    f.set("workload", job.workload);
    f.set("config", job.label);
    f.set("seed", job.seed);
    f.set("result", toJson(result));
    writeFileAtomic(jobFilePath(job.index), f.dump(2) + "\n");

    done_[job.index] = true;
    writeManifest();

    // Crash here = the process dies with the job fully recorded; a
    // resumed campaign must skip it.
    fault::hit("exp.record");
}

void
RunDir::markDone(std::size_t index)
{
    if (!enabled())
        return;
    done_[index] = true;
}

LoadedRun
loadRunDir(const std::string &path)
{
    LoadedRun run;
    const Json m = Json::parse(readFile(path + "/manifest.json"));
    run.campaign = m.at("campaign").asString();
    run.title = m.at("title").asString();
    run.fingerprint = m.at("fingerprint").asString();
    run.seed = m.at("seed").asUint();
    for (const Json &e : m.at("jobs").items()) {
        JobSpec j;
        j.index = e.at("index").asUint();
        j.workload = e.at("workload").asString();
        j.label = e.at("config").asString();
        j.seed = e.at("seed").asUint();
        const std::string file =
            path + "/" + e.at("file").asString();
        try {
            const Json f = Json::parse(readFile(file));
            if (f.at("fingerprint").asString() == run.fingerprint) {
                run.results.emplace(
                    j.index, simResultFromJson(f.at("result")));
            }
        } catch (const std::exception &) {
            // Incomplete job: reported as missing.
        }
        run.jobs.push_back(std::move(j));
    }
    return run;
}

} // namespace cgp::exp
