/**
 * @file
 * Declarative experiment campaigns.
 *
 * A CampaignSpec turns the ad-hoc (workload x config) loops of the
 * bench binaries into data: a list of workload names, a base
 * SimConfig, and named *axes* whose labeled points mutate the base
 * config.  Axes combine cartesian (every combination, first axis
 * slowest-varying) or zipped (element-wise, all axes equal length).
 * Expansion yields a flat, stable job list — workload-major, config
 * order as swept — where every job carries its own derived seed, so
 * a campaign's job list is a pure function of its spec regardless of
 * how many threads later execute it.
 */

#ifndef CGP_EXP_CAMPAIGN_HH
#define CGP_EXP_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/scheduler.hh"
#include "harness/simconfig.hh"

namespace cgp::exp
{

/** One labeled point on an axis: a named mutation of a SimConfig. */
struct AxisPoint
{
    /**
     * Display label.  Labels of the chosen points are joined with
     * '+' to form the job's config label; when every chosen label is
     * empty the label falls back to SimConfig::describe() — which is
     * ambiguous for sweeps the describe() string does not cover
     * (e.g. CGHC geometry), hence explicit labels.
     */
    std::string label;
    std::function<void(SimConfig &)> apply;
};

/** A named sweep dimension. */
struct ConfigAxis
{
    std::string name;
    std::vector<AxisPoint> points;
};

enum class SweepMode
{
    Cartesian, ///< every combination; first axis varies slowest
    Zip        ///< element-wise; all axes must have equal length
};

/** A config produced by expansion, with its display label. */
struct ExpandedConfig
{
    SimConfig config;
    std::string label;
};

struct CampaignSpec
{
    /** Key for run directories and BENCH_<name>.json artifacts. */
    std::string name;

    /** Human-readable heading for tables and reports. */
    std::string title;

    /** Workload names, resolved by a WorkloadProvider at run time. */
    std::vector<std::string> workloads;

    /** Start point every axis point mutates. */
    SimConfig base;

    /** Sweep dimensions; empty means use explicitConfigs. */
    std::vector<ConfigAxis> axes;

    SweepMode mode = SweepMode::Cartesian;

    /** Alternative to axes: configs listed out by hand. */
    std::vector<SimConfig> explicitConfigs;

    /** Labels for explicitConfigs (optional; describe() otherwise). */
    std::vector<std::string> explicitLabels;

    /** Campaign seed; every job derives its own seed from it. */
    std::uint64_t seed = 0;

    /**
     * What a job failure does to the rest of the campaign.  Not part
     * of the fingerprint: the job list is identical either way, so a
     * run directory can be resumed under a different policy.
     */
    FailurePolicy policy = FailurePolicy::Strict;
};

/** One schedulable unit: a single runSimulation() point. */
struct JobSpec
{
    std::size_t index = 0; ///< position in expansion order
    std::string workload;
    SimConfig config;
    std::string label; ///< config label (result's `config` field)
    std::uint64_t seed = 0;

    /** Identity within a campaign (resume matching, matrices). */
    std::string
    key() const
    {
        return workload + "|" + label;
    }
};

/**
 * Expand the config dimension of a spec.
 * @throws std::invalid_argument on an ill-formed spec (no configs,
 * zip axes of unequal length).
 */
std::vector<ExpandedConfig> expandConfigs(const CampaignSpec &spec);

/** Expand the full job list, workload-major. */
std::vector<JobSpec> expandJobs(const CampaignSpec &spec);

/** Deterministic per-job seed: mixes the campaign seed and index. */
std::uint64_t jobSeed(std::uint64_t campaignSeed, std::uint64_t index);

/**
 * Spec fingerprint over the expanded job identities (16 hex chars).
 * Two specs that expand to the same jobs are interchangeable for
 * resume purposes; anything else must not share a run directory.
 */
std::string fingerprint(const CampaignSpec &spec,
                        const std::vector<JobSpec> &jobs);

} // namespace cgp::exp

#endif // CGP_EXP_CAMPAIGN_HH
