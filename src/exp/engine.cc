#include "exp/engine.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exp/checkpoint.hh"
#include "exp/rundir.hh"
#include "exp/scheduler.hh"
#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp::exp
{

unsigned
retryBackoffMs(std::uint64_t seed, unsigned attempt, unsigned baseMs)
{
    if (baseMs == 0)
        baseMs = 1;
    const unsigned shift = attempt < 6 ? attempt : 6;
    const unsigned jitter = static_cast<unsigned>(
        jobSeed(seed, attempt) % baseMs);
    return (baseMs << shift) + jitter;
}

Workload
InMemoryProvider::resolve(const std::string &name)
{
    for (const Workload &w : workloads_) {
        if (w.name == name)
            return w;
    }
    throw std::invalid_argument("unknown workload '" + name + "'");
}

std::vector<std::string>
CampaignRun::workloadNames() const
{
    std::vector<std::string> out;
    for (const JobSpec &j : jobs) {
        if (std::find(out.begin(), out.end(), j.workload) ==
            out.end())
            out.push_back(j.workload);
    }
    return out;
}

std::vector<std::string>
CampaignRun::configLabels() const
{
    std::vector<std::string> out;
    for (const JobSpec &j : jobs) {
        if (std::find(out.begin(), out.end(), j.label) == out.end())
            out.push_back(j.label);
    }
    return out;
}

const SimResult *
CampaignRun::find(const std::string &workload,
                  const std::string &label) const
{
    for (const JobSpec &j : jobs) {
        if (j.workload == workload && j.label == label)
            return &results[j.index];
    }
    return nullptr;
}

const SimResult &
CampaignRun::at(const std::string &workload,
                const std::string &label) const
{
    const SimResult *r = find(workload, label);
    if (r == nullptr) {
        throw std::out_of_range("no result for " + workload + "|" +
                                label);
    }
    return *r;
}

CampaignRun
runCampaign(const CampaignSpec &spec, WorkloadProvider &provider,
            const EngineOptions &options)
{
    const auto t0 = std::chrono::steady_clock::now();

    CampaignRun run;
    run.name = spec.name;
    run.title = spec.title;
    run.seed = spec.seed;
    run.jobs = expandJobs(spec);
    run.fingerprint = fingerprint(spec, run.jobs);
    run.results.resize(run.jobs.size());

    RunDir dir(options.runDir);
    dir.prepare(spec, run.jobs, run.fingerprint);

    // Jobs whose result files survived a previous invocation are
    // loaded, not re-run.
    std::vector<std::size_t> pending;
    if (options.resume && dir.enabled()) {
        std::map<std::size_t, SimResult> done =
            dir.loadCompleted(run.jobs);
        for (auto &[index, result] : done) {
            run.results[index] = std::move(result);
            dir.markDone(index);
        }
        dir.flushManifest();
        run.skipped = done.size();
        for (const JobSpec &j : run.jobs) {
            if (done.find(j.index) == done.end())
                pending.push_back(j.index);
        }
    } else {
        for (const JobSpec &j : run.jobs)
            pending.push_back(j.index);
    }

    if (options.verbose && run.skipped > 0) {
        cgp_inform("[", spec.name, "] resume: ", run.skipped,
                   " of ", run.jobs.size(),
                   " jobs already completed");
    }

    // Resolve each distinct workload once, up front, on this thread;
    // jobs share the built instances read-only.
    std::map<std::string, Workload> workloads;
    for (const std::size_t index : pending) {
        const std::string &name = run.jobs[index].workload;
        if (workloads.find(name) == workloads.end())
            workloads.emplace(name, provider.resolve(name));
    }

    std::mutex record_mu;
    std::vector<unsigned> attempts(pending.size(), 1);

    const auto runOneJob = [&](std::size_t k) {
        const JobSpec &job = run.jobs[pending[k]];
        if (options.verbose) {
            cgp_inform("[", spec.name, ":", job.index, " ",
                       job.workload, "/", job.label, "] running");
        }

        // Watchdog budgets ride the per-job config copy so the
        // simulation itself enforces them cooperatively.
        SimConfig cfg = job.config;
        if (options.watchdogCycles != 0 &&
            (cfg.core.maxCycles == 0 ||
             cfg.core.maxCycles > options.watchdogCycles)) {
            cfg.core.maxCycles = options.watchdogCycles;
        }
        if (options.watchdogWallSeconds > 0.0)
            cfg.core.maxWallSeconds = options.watchdogWallSeconds;

        // Sampled jobs with a run directory share its sealed
        // checkpoint store, so repeated invocations over the same
        // workload prefix skip functional warming.
        if (cfg.sample.enabled && cfg.sample.useCheckpoints &&
            dir.enabled()) {
            cfg.sample.checkpoints =
                makeSealedCheckpointStore(options.runDir);
        }

        SimResult r;
        for (unsigned attempt = 1;; ++attempt) {
            attempts[k] = attempt;
            try {
                // Transient-failure injection for the retry path.
                if (fault::hit("exp.job") ==
                    fault::FaultKind::TransientIo) {
                    throw fault::TransientIoError(
                        "injected transient failure in job " +
                        std::to_string(job.index));
                }
                r = runSimulation(workloads.at(job.workload), cfg);
                break;
            } catch (const fault::TransientIoError &e) {
                if (attempt > options.retries)
                    throw;
                const unsigned delay =
                    retryBackoffMs(job.seed, attempt);
                if (options.verbose) {
                    cgp_warn("[", spec.name, ":", job.index,
                             "] transient failure (", e.what(),
                             "); retry ", attempt, "/",
                             options.retries, " after ", delay,
                             "ms");
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            }
        }
        // Sweeps can distinguish configs describe() cannot
        // (CGHC geometry): the label is the result identity.
        r.config = job.label;

        std::lock_guard<std::mutex> lock(record_mu);
        dir.recordResult(job, r);
        run.results[job.index] = std::move(r);
        ++run.executed;
        if (options.verbose) {
            cgp_inform("[", spec.name, ":", job.index, " ",
                       job.workload, "/", job.label,
                       "] done: cycles=",
                       run.results[job.index].cycles);
        }
    };

    SchedulerOptions sched;
    sched.threads = options.threads;
    sched.policy = options.onFail.value_or(spec.policy);
    sched.hangTimeoutSeconds = options.hangTimeoutSeconds;

    // Remap scheduler job indices (positions in `pending`) back to
    // campaign job indices and attach the attempt counts.
    const auto remap = [&](std::vector<JobFailure> failures) {
        for (JobFailure &f : failures) {
            f.attempts = attempts[f.index];
            f.index = run.jobs[pending[f.index]].index;
        }
        std::sort(failures.begin(), failures.end(),
                  [](const JobFailure &a, const JobFailure &b) {
                      return a.index < b.index;
                  });
        return failures;
    };

    ScheduleStats stats;
    try {
        stats = runJobs(pending.size(), sched, runOneJob);
    } catch (const CampaignAborted &e) {
        // Record every failure durably before aborting, then rethrow
        // with campaign job indices so callers see stable identities.
        std::vector<JobFailure> failures = remap(e.failures());
        std::string msg = "campaign '" + spec.name +
            "' aborted (strict policy): " +
            std::to_string(failures.size()) + " job(s) failed";
        for (const JobFailure &f : failures) {
            dir.markFailed(f);
            msg += "\n  job " + std::to_string(f.index) + " [" +
                f.kind + "]: " + f.message;
        }
        dir.flushManifest();
        throw CampaignAborted(msg, std::move(failures));
    }

    run.failures = remap(stats.failures);
    for (const JobFailure &f : run.failures) {
        dir.markFailed(f);
        if (options.verbose) {
            cgp_warn("[", spec.name, ":", f.index, "] failed (",
                     f.kind, "): ", f.message);
        }
    }
    if (!run.failures.empty())
        dir.flushManifest();

    run.quarantined = dir.quarantined();
    run.threadsUsed = stats.threads;
    run.steals = stats.steals;
    run.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return run;
}

} // namespace cgp::exp
