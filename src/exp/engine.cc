#include "exp/engine.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "exp/rundir.hh"
#include "exp/scheduler.hh"
#include "util/logging.hh"

namespace cgp::exp
{

Workload
InMemoryProvider::resolve(const std::string &name)
{
    for (const Workload &w : workloads_) {
        if (w.name == name)
            return w;
    }
    throw std::invalid_argument("unknown workload '" + name + "'");
}

std::vector<std::string>
CampaignRun::workloadNames() const
{
    std::vector<std::string> out;
    for (const JobSpec &j : jobs) {
        if (std::find(out.begin(), out.end(), j.workload) ==
            out.end())
            out.push_back(j.workload);
    }
    return out;
}

std::vector<std::string>
CampaignRun::configLabels() const
{
    std::vector<std::string> out;
    for (const JobSpec &j : jobs) {
        if (std::find(out.begin(), out.end(), j.label) == out.end())
            out.push_back(j.label);
    }
    return out;
}

const SimResult *
CampaignRun::find(const std::string &workload,
                  const std::string &label) const
{
    for (const JobSpec &j : jobs) {
        if (j.workload == workload && j.label == label)
            return &results[j.index];
    }
    return nullptr;
}

const SimResult &
CampaignRun::at(const std::string &workload,
                const std::string &label) const
{
    const SimResult *r = find(workload, label);
    if (r == nullptr) {
        throw std::out_of_range("no result for " + workload + "|" +
                                label);
    }
    return *r;
}

CampaignRun
runCampaign(const CampaignSpec &spec, WorkloadProvider &provider,
            const EngineOptions &options)
{
    const auto t0 = std::chrono::steady_clock::now();

    CampaignRun run;
    run.name = spec.name;
    run.title = spec.title;
    run.seed = spec.seed;
    run.jobs = expandJobs(spec);
    run.fingerprint = fingerprint(spec, run.jobs);
    run.results.resize(run.jobs.size());

    RunDir dir(options.runDir);
    dir.prepare(spec, run.jobs, run.fingerprint);

    // Jobs whose result files survived a previous invocation are
    // loaded, not re-run.
    std::vector<std::size_t> pending;
    if (options.resume && dir.enabled()) {
        std::map<std::size_t, SimResult> done =
            dir.loadCompleted(run.jobs);
        for (auto &[index, result] : done) {
            run.results[index] = std::move(result);
            dir.markDone(index);
        }
        dir.flushManifest();
        run.skipped = done.size();
        for (const JobSpec &j : run.jobs) {
            if (done.find(j.index) == done.end())
                pending.push_back(j.index);
        }
    } else {
        for (const JobSpec &j : run.jobs)
            pending.push_back(j.index);
    }

    if (options.verbose && run.skipped > 0) {
        cgp_inform("[", spec.name, "] resume: ", run.skipped,
                   " of ", run.jobs.size(),
                   " jobs already completed");
    }

    // Resolve each distinct workload once, up front, on this thread;
    // jobs share the built instances read-only.
    std::map<std::string, Workload> workloads;
    for (const std::size_t index : pending) {
        const std::string &name = run.jobs[index].workload;
        if (workloads.find(name) == workloads.end())
            workloads.emplace(name, provider.resolve(name));
    }

    std::mutex record_mu;
    const ScheduleStats stats = runJobs(
        pending.size(), options.threads, [&](std::size_t k) {
            const JobSpec &job = run.jobs[pending[k]];
            if (options.verbose) {
                cgp_inform("[", spec.name, ":", job.index, " ",
                           job.workload, "/", job.label,
                           "] running");
            }
            SimResult r =
                runSimulation(workloads.at(job.workload),
                              job.config);
            // Sweeps can distinguish configs describe() cannot
            // (CGHC geometry): the label is the result identity.
            r.config = job.label;

            std::lock_guard<std::mutex> lock(record_mu);
            dir.recordResult(job, r);
            run.results[job.index] = std::move(r);
            ++run.executed;
            if (options.verbose) {
                cgp_inform("[", spec.name, ":", job.index, " ",
                           job.workload, "/", job.label,
                           "] done: cycles=",
                           run.results[job.index].cycles);
            }
        });

    run.threadsUsed = stats.threads;
    run.steals = stats.steals;
    run.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    return run;
}

} // namespace cgp::exp
