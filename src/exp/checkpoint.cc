#include "exp/checkpoint.hh"

#include <filesystem>
#include <system_error>

#include "exp/integrity.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp::exp
{

namespace
{

std::string
checkpointPath(const std::string &dir, const std::string &key)
{
    return dir + "/" + key + ".json";
}

/** Move a damaged artifact aside (never delete) and report it. */
void
quarantineCheckpoint(const std::string &dir, const std::string &file,
                     const std::string &why)
{
    std::error_code ec;
    const std::string qdir = dir + "/quarantine";
    std::filesystem::create_directories(qdir, ec);
    std::string dest =
        qdir + "/" + std::filesystem::path(file).filename().string();
    for (int n = 1; std::filesystem::exists(dest, ec); ++n) {
        dest = qdir + "/" +
            std::filesystem::path(file).filename().string() + "." +
            std::to_string(n);
    }
    std::filesystem::rename(file, dest, ec);
    if (ec) {
        cgp_warn("could not quarantine checkpoint ", file, ": ",
                 ec.message());
        return;
    }
    cgp_warn("quarantined checkpoint ", file, " (", why,
             "); re-warming");
}

} // namespace

std::string
checkpointStoreDir(const std::string &runDir)
{
    return runDir + "/checkpoints";
}

sample::CheckpointHooks
makeSealedCheckpointStore(const std::string &runDir)
{
    const std::string dir = checkpointStoreDir(runDir);

    sample::CheckpointHooks hooks;
    hooks.load =
        [dir](const std::string &key) -> std::optional<Json> {
        const std::string path = checkpointPath(dir, key);
        std::error_code ec;
        if (!std::filesystem::exists(path, ec))
            return std::nullopt;
        std::string text;
        try {
            text = readFileOrThrow(path);
        } catch (const std::exception &e) {
            cgp_warn("unreadable checkpoint ", path, ": ", e.what());
            return std::nullopt;
        }
        Json doc;
        try {
            doc = Json::parse(text);
        } catch (const std::exception &e) {
            quarantineCheckpoint(dir, path, e.what());
            return std::nullopt;
        }
        if (!verifySealedJson(doc)) {
            quarantineCheckpoint(dir, path, "seal mismatch");
            return std::nullopt;
        }
        return doc;
    };
    hooks.save = [dir](const std::string &key, Json &&doc) {
        try {
            std::filesystem::create_directories(dir);
            sealJson(doc);
            writeFileAtomicDurable(checkpointPath(dir, key),
                                   doc.dump(2) + "\n");
        } catch (const std::exception &e) {
            cgp_warn("could not save checkpoint ", key, ": ",
                     e.what());
        }
    };
    return hooks;
}

} // namespace cgp::exp
