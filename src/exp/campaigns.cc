#include "exp/campaigns.hh"

#include <algorithm>
#include <stdexcept>

#include "harness/workload.hh"
#include "spec/cpu2000.hh"

namespace cgp::exp
{

namespace
{

/** The smoke campaign's tiny synthetic programs (~100K instrs). */
spec::SpecProgramSpec
smokeProgram(const std::string &name, unsigned functions,
             double workPerCall)
{
    spec::SpecProgramSpec s;
    s.name = name;
    s.functions = functions;
    s.hotFunctions = functions / 2;
    s.workPerCall = workPerCall;
    s.trainInstrs = 120'000;
    s.testInstrs = 30'000;
    return s;
}

SimConfig
cgp4om()
{
    return SimConfig::withCgp(LayoutKind::PettisHansen, 4);
}

/** An axis point that swaps in a whole named configuration. */
AxisPoint
configPoint(std::string label, SimConfig config)
{
    return AxisPoint{std::move(label),
                     [config](SimConfig &c) { c = config; }};
}

} // anonymous namespace

const std::vector<std::string> &
dbWorkloadNames()
{
    static const std::vector<std::string> names = {
        "wisc-prof", "wisc-large-1", "wisc-large-2", "wisc+tpch"};
    return names;
}

std::vector<std::string>
cpu2000WorkloadNames()
{
    std::vector<std::string> names;
    for (const spec::SpecProgramSpec &s : spec::cpu2000Suite())
        names.push_back(s.name);
    return names;
}

const std::vector<std::string> &
smokeWorkloadNames()
{
    static const std::vector<std::string> names = {"smoke-a",
                                                   "smoke-b"};
    return names;
}

Workload
PaperWorkloadBank::resolve(const std::string &name)
{
    auto it = cache_.find(name);
    if (it != cache_.end())
        return it->second;

    const auto &db = dbWorkloadNames();
    if (!dbBuilt_ &&
        std::find(db.begin(), db.end(), name) != db.end()) {
        DbWorkloadSet set = WorkloadFactory::buildDbSet();
        for (Workload &w : set.workloads)
            cache_.emplace(w.name, std::move(w));
        dbBuilt_ = true;
        return cache_.at(name);
    }

    if (!cpuBuilt_) {
        const std::vector<std::string> cpu = cpu2000WorkloadNames();
        if (std::find(cpu.begin(), cpu.end(), name) != cpu.end()) {
            for (Workload &w :
                 WorkloadFactory::buildCpu2000Suite())
                cache_.emplace(w.name, std::move(w));
            cpuBuilt_ = true;
            return cache_.at(name);
        }
    }

    if (name == "smoke-a" || name == "smoke-b") {
        const auto program = name == "smoke-a"
            ? smokeProgram("smoke-a", 60, 50.0)
            : smokeProgram("smoke-b", 90, 70.0);
        Workload w = WorkloadFactory::buildSpec(program);
        cache_.emplace(name, w);
        return w;
    }

    throw std::invalid_argument("unknown workload '" + name + "'");
}

namespace
{

CampaignSpec
makeFig4()
{
    CampaignSpec s;
    s.name = "fig4";
    s.title = "Figure 4 — O5 vs OM vs CGP";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5(),
        SimConfig::o5Om(),
        SimConfig::withCgp(LayoutKind::Original, 2),
        SimConfig::withCgp(LayoutKind::Original, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
    };
    return s;
}

CampaignSpec
makeFig5()
{
    CampaignSpec s;
    s.name = "fig5";
    s.title = "Figure 5 — CGP_4 by CGHC size";
    s.workloads = dbWorkloadNames();
    s.base = cgp4om();
    ConfigAxis geom{"cghc", {}};
    const std::vector<std::pair<std::string, CghcConfig>> geoms = {
        {"CGHC-1K", CghcConfig::oneLevel1K()},
        {"CGHC-32K", CghcConfig::oneLevel32K()},
        {"CGHC-1K+16K", CghcConfig::twoLevel1K16K()},
        {"CGHC-2K+32K", CghcConfig::twoLevel2K32K()},
        {"CGHC-Inf", CghcConfig::infiniteSize()},
    };
    for (const auto &[label, g] : geoms) {
        CghcConfig geom_copy = g;
        geom.points.push_back(
            {label, [geom_copy](SimConfig &c) {
                 c.cghc = geom_copy;
             }});
    }
    s.axes.push_back(std::move(geom));
    return s;
}

CampaignSpec
makeFig6()
{
    CampaignSpec s;
    s.name = "fig6";
    s.title = "Figure 6 — NL vs CGP vs perfect I-cache";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5(),
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 2),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
        SimConfig::perfectICacheOn(LayoutKind::PettisHansen),
    };
    return s;
}

CampaignSpec
makeFig7()
{
    CampaignSpec s;
    s.name = "fig7";
    s.title = "Figure 7 — I-cache misses";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5(),
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        cgp4om(),
    };
    return s;
}

CampaignSpec
makeFig8()
{
    CampaignSpec s;
    s.name = "fig8";
    s.title = "Figure 8 — prefetch breakdown";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::withNL(LayoutKind::PettisHansen, 2),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withCgp(LayoutKind::PettisHansen, 2),
        cgp4om(),
    };
    return s;
}

CampaignSpec
makeFig9()
{
    CampaignSpec s;
    s.name = "fig9";
    s.title = "Figure 9 — CGP prefetches by source";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {cgp4om()};
    return s;
}

CampaignSpec
makeFig10()
{
    CampaignSpec s;
    s.name = "fig10";
    s.title = "Figure 10 — CPU2000";
    s.workloads = cpu2000WorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        cgp4om(),
        SimConfig::perfectICacheOn(LayoutKind::PettisHansen),
    };
    return s;
}

CampaignSpec
makeAblationRanl()
{
    CampaignSpec s;
    s.name = "ablation-ranl";
    s.title = "Run-ahead NL ablation (§5.6)";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 2),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 4),
        SimConfig::withRunAheadNL(LayoutKind::PettisHansen, 4, 8),
    };
    return s;
}

CampaignSpec
makeAblationDepth()
{
    CampaignSpec s;
    s.name = "ablation-design-depth";
    s.title = "CGP_N depth sweep (OM binary)";
    s.workloads = dbWorkloadNames();
    ConfigAxis depth{"depth", {}};
    for (const unsigned n : {1u, 2u, 4u, 6u, 8u}) {
        depth.points.push_back(configPoint(
            "", SimConfig::withCgp(LayoutKind::PettisHansen, n)));
    }
    s.axes.push_back(std::move(depth));
    return s;
}

CampaignSpec
makeAblationLayout()
{
    CampaignSpec s;
    s.name = "ablation-design-layout";
    s.title = "CGP without OM (legacy binaries, §5.2)";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5(),
        SimConfig::withCgp(LayoutKind::Original, 4),
        cgp4om(),
    };
    return s;
}

CampaignSpec
makeAblationSwCgp()
{
    CampaignSpec s;
    s.name = "ablation-swcgp";
    s.title = "Software CGP vs hardware CGP (§6)";
    s.workloads = dbWorkloadNames();
    s.explicitConfigs = {
        SimConfig::o5Om(),
        SimConfig::withNL(LayoutKind::PettisHansen, 4),
        SimConfig::withSoftwareCgp(LayoutKind::PettisHansen, 4),
        cgp4om(),
    };
    return s;
}

CampaignSpec
makeAblationAssoc()
{
    CampaignSpec s;
    s.name = "ablation-swcgp-assoc";
    s.title = "CGHC associativity (§3.2)";
    s.workloads = dbWorkloadNames();
    ConfigAxis assoc{"assoc", {}};
    for (const unsigned a : {1u, 2u, 4u}) {
        CghcConfig geom = CghcConfig::twoLevel2K32K();
        geom.assoc = a;
        assoc.points.push_back(configPoint(
            geom.describe(),
            SimConfig::withCgpGeometry(LayoutKind::PettisHansen, 4,
                                       geom)));
    }
    s.axes.push_back(std::move(assoc));
    return s;
}

CampaignSpec
makeFigDDstall()
{
    CampaignSpec s;
    s.name = "figD_dstall";
    s.title = "Figure D — D-side prefetching (beyond the paper)";
    // One pure-Wisconsin mix and the Wisconsin+TPC-H mix: the
    // acceptance bar is a demand-miss reduction on both.
    s.workloads = {"wisc-large-1", "wisc+tpch"};
    s.explicitConfigs = {
        SimConfig::o5(),
        SimConfig::withDPrefetch(DataPrefetchKind::Stride),
        SimConfig::withDPrefetch(DataPrefetchKind::Correlation),
        SimConfig::withDPrefetch(DataPrefetchKind::Semantic),
        SimConfig::withDPrefetch(DataPrefetchKind::Combined),
    };
    return s;
}

CampaignSpec
makeFigIDInteraction()
{
    CampaignSpec s;
    s.name = "figID_interaction";
    s.title =
        "Figure ID — I+D prefetch interaction on the shared L2 port";
    // Same two mixes as figD_dstall.  Four points: each side alone,
    // both un-throttled (they fight for the port), both behind the
    // accuracy-gated arbiter.
    s.workloads = {"wisc-large-1", "wisc+tpch"};
    s.explicitConfigs = {
        cgp4om(),
        SimConfig::withDPrefetch(DataPrefetchKind::Combined),
        SimConfig::withIPlusD(DataPrefetchKind::Combined, false),
        SimConfig::withIPlusD(DataPrefetchKind::Combined, true),
    };
    return s;
}

CampaignSpec
makeArbiterSweep()
{
    CampaignSpec s;
    s.name = "arbiter-sweep";
    s.title = "Shared-arbiter knob sweep (accuracy gate, probe "
              "period, duplicate filter)";
    // The interaction mixes: one pure-Wisconsin, one with TPC-H —
    // the workloads the arbiter was built for.
    s.workloads = {"wisc-large-1", "wisc+tpch"};
    s.base = SimConfig::withIPlusD(DataPrefetchKind::Combined, true);

    ConfigAxis gate{"lowAccuracy", {}};
    for (const double acc : {0.10, 0.20, 0.40}) {
        gate.points.push_back(
            {"acc" + std::to_string(static_cast<int>(acc * 100 + 0.5)),
             [acc](SimConfig &c) {
                 c.mem.arbiter.lowAccuracy = acc;
             }});
    }
    ConfigAxis probe{"probePeriod", {}};
    for (const unsigned p : {4u, 8u, 16u}) {
        probe.points.push_back(
            {"probe" + std::to_string(p), [p](SimConfig &c) {
                 c.mem.arbiter.probePeriod = p;
             }});
    }
    ConfigAxis filter{"filterWindow", {}};
    for (const unsigned w : {64u, 128u, 256u}) {
        filter.points.push_back(
            {"filt" + std::to_string(w), [w](SimConfig &c) {
                 c.mem.arbiter.filterWindow = w;
             }});
    }
    s.axes.push_back(std::move(gate));
    s.axes.push_back(std::move(probe));
    s.axes.push_back(std::move(filter));
    return s;
}

CampaignSpec
makeServerScale()
{
    CampaignSpec s;
    s.name = "server-scale";
    s.title = "Server scaling — cores x sessions on one shared L2";
    // The two concurrent mixes, served by the multi-core model:
    // every point runs the same closed-loop query population, so
    // cycles-to-serve and the latency percentiles compare directly
    // across core counts and prefetch configurations.
    s.workloads = {"wisc-large-1", "wisc+tpch"};
    for (const unsigned cores : {1u, 2u, 4u}) {
        for (const unsigned sessions : {16u, 256u}) {
            s.explicitConfigs.push_back(SimConfig::withServer(
                SimConfig::o5(), cores, sessions, 12));
            s.explicitConfigs.push_back(SimConfig::withServer(
                SimConfig::withIPlusD(DataPrefetchKind::Combined,
                                      true),
                cores, sessions, 12));
        }
    }
    return s;
}

CampaignSpec
makeServerSmoke()
{
    CampaignSpec s;
    s.name = "server-smoke";
    s.title = "Server smoke (2 cores x 8 sessions)";
    s.workloads = smokeWorkloadNames();
    s.explicitConfigs = {
        SimConfig::withServer(SimConfig::o5Om(), 2, 8, 4),
        SimConfig::withServer(cgp4om(), 2, 8, 4),
    };
    return s;
}

CampaignSpec
makeFigSampled()
{
    CampaignSpec s;
    s.name = "fig_sampled";
    s.title = "Figure S — sampled vs full-detail "
              "(accuracy x speedup)";
    // The two largest bundled mixes: the workloads where sampling
    // pays.  Each sampled point is compared against the full-detail
    // baseline of the same prefetch configuration — the CI must
    // contain the ground truth while the cycle loop runs >= 5x less.
    s.workloads = {"wisc-large-2", "wisc+tpch"};
    s.explicitConfigs = {
        SimConfig::o5Om(),
        cgp4om(),
        SimConfig::withSampling(SimConfig::o5Om(), 20000, 200000,
                                100000),
        SimConfig::withSampling(cgp4om(), 20000, 200000, 100000),
        SimConfig::withSampling(cgp4om(), 50000, 500000, 100000),
        SimConfig::withSampling(cgp4om(), 10000, 50000, 100000),
    };
    return s;
}

CampaignSpec
makeSampledSmoke()
{
    CampaignSpec s;
    s.name = "sampled-smoke";
    s.title = "Sampled smoke (2K windows / 10K periods)";
    // The smoke traces run ~120K instructions, so the windows must
    // be small for several periods to fit after warmup.
    s.workloads = smokeWorkloadNames();
    s.explicitConfigs = {
        SimConfig::withSampling(SimConfig::o5Om(), 2000, 10000,
                                10000),
        SimConfig::withSampling(cgp4om(), 2000, 10000, 10000),
    };
    return s;
}

CampaignSpec
makeSmoke()
{
    CampaignSpec s;
    s.name = "smoke";
    s.title = "Campaign smoke (2x2)";
    s.workloads = smokeWorkloadNames();
    ConfigAxis cfg{"config", {}};
    cfg.points.push_back(configPoint("", SimConfig::o5Om()));
    cfg.points.push_back(configPoint("", cgp4om()));
    s.axes.push_back(std::move(cfg));
    return s;
}

const std::vector<std::string> figureNames = {
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "figD_dstall", "figID_interaction", "server-scale",
    "fig_sampled"};

const std::vector<std::string> ablationNames = {
    "ablation-ranl", "ablation-design-depth",
    "ablation-design-layout", "ablation-swcgp",
    "ablation-swcgp-assoc", "arbiter-sweep"};

} // anonymous namespace

std::vector<std::string>
campaignNames()
{
    std::vector<std::string> names = figureNames;
    names.insert(names.end(), ablationNames.begin(),
                 ablationNames.end());
    names.push_back("smoke");
    names.push_back("server-smoke");
    names.push_back("sampled-smoke");
    return names;
}

CampaignSpec
paperCampaign(const std::string &name)
{
    if (name == "fig4")
        return makeFig4();
    if (name == "fig5")
        return makeFig5();
    if (name == "fig6")
        return makeFig6();
    if (name == "fig7")
        return makeFig7();
    if (name == "fig8")
        return makeFig8();
    if (name == "fig9")
        return makeFig9();
    if (name == "fig10")
        return makeFig10();
    if (name == "figD_dstall")
        return makeFigDDstall();
    if (name == "figID_interaction")
        return makeFigIDInteraction();
    if (name == "ablation-ranl")
        return makeAblationRanl();
    if (name == "ablation-design-depth")
        return makeAblationDepth();
    if (name == "ablation-design-layout")
        return makeAblationLayout();
    if (name == "ablation-swcgp")
        return makeAblationSwCgp();
    if (name == "ablation-swcgp-assoc")
        return makeAblationAssoc();
    if (name == "arbiter-sweep")
        return makeArbiterSweep();
    if (name == "server-scale")
        return makeServerScale();
    if (name == "smoke")
        return makeSmoke();
    if (name == "server-smoke")
        return makeServerSmoke();
    if (name == "fig_sampled")
        return makeFigSampled();
    if (name == "sampled-smoke")
        return makeSampledSmoke();
    throw std::invalid_argument("unknown campaign '" + name + "'");
}

std::vector<std::string>
campaignGroup(const std::string &name)
{
    if (name == "figures")
        return figureNames;
    if (name == "ablations")
        return ablationNames;
    if (name == "all") {
        std::vector<std::string> all = figureNames;
        all.insert(all.end(), ablationNames.begin(),
                   ablationNames.end());
        return all;
    }
    paperCampaign(name); // validates
    return {name};
}

} // namespace cgp::exp
