#include "exp/integrity.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "fault/fault.hh"
#include "util/crc.hh"

namespace cgp::exp
{

namespace
{

constexpr const char *sealKey = "crc32";

std::uint32_t
payloadCrc(const Json &obj)
{
    Json copy = obj;
    copy.remove(sealKey);
    return crc32(copy.dump(2));
}

/** fsync a path (file or directory); best-effort for directories
 *  (some filesystems refuse O_RDONLY fsync on dirs). */
void
syncPath(const std::string &path, bool required)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (required)
            throw std::runtime_error("cannot open for fsync: " + path);
        return;
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0 && required)
        throw std::runtime_error("fsync failed: " + path);
}

} // anonymous namespace

void
sealJson(Json &obj)
{
    obj.set(sealKey, static_cast<unsigned long>(payloadCrc(obj)));
}

bool
verifySealedJson(const Json &obj)
{
    if (!obj.isObject())
        return false;
    const Json *seal = obj.find(sealKey);
    if (seal == nullptr || !seal->isNumber())
        return false;
    return seal->asUint() == payloadCrc(obj);
}

std::string
deterministicBenchText(const Json &bench)
{
    Json copy = bench;
    copy.remove("execution");
    copy.remove(sealKey);
    return copy.dump(2) + "\n";
}

void
writeFileAtomicDurable(const std::string &path,
                       const std::string &contents)
{
    // A TornWrite fault truncates the payload and then simulates
    // process death *after* the rename: the torn bytes become
    // visible under the final name, as a real torn sector would.
    bool torn = false;
    if (const auto kind = fault::hit("exp.artifact_write");
        kind == fault::FaultKind::TornWrite) {
        torn = true;
    }
    const std::string payload =
        torn ? contents.substr(0, contents.size() / 2) : contents;

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot write " + tmp);
        out << payload;
        out.flush();
        if (!out)
            throw std::runtime_error("short write to " + tmp);
    }
    syncPath(tmp, true);
    std::filesystem::rename(tmp, path);
    syncPath(std::filesystem::path(path).parent_path().string(),
             false);
    if (torn)
        throw fault::CrashInjected("exp.artifact_write");
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace cgp::exp
