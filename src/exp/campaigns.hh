/**
 * @file
 * The paper's experiment campaigns as a registry: every figure and
 * ablation of the reproduction, expressed as CampaignSpecs over the
 * shared workload bank, so `cgpbench run figures` (or any bench
 * binary) reproduces the paper through one engine.
 */

#ifndef CGP_EXP_CAMPAIGNS_HH
#define CGP_EXP_CAMPAIGNS_HH

#include <map>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "exp/engine.hh"

namespace cgp::exp
{

/**
 * Lazily builds and caches the paper's workload suites: the four DB
 * workloads (built together, sharing one binary and OM profile), the
 * seven CPU2000 proxies, and two tiny synthetic programs for the
 * smoke campaign.  Build once, share across campaigns — the
 * dominant cost of a figure run is workload construction, not
 * lookup.
 */
class PaperWorkloadBank final : public WorkloadProvider
{
  public:
    Workload resolve(const std::string &name) override;

  private:
    std::map<std::string, Workload> cache_;
    bool dbBuilt_ = false;
    bool cpuBuilt_ = false;
};

/** The four DB workload names (§4.1), in paper order. */
const std::vector<std::string> &dbWorkloadNames();

/** The seven CPU2000 proxy names (no traces are built). */
std::vector<std::string> cpu2000WorkloadNames();

/** The two tiny smoke-campaign workload names. */
const std::vector<std::string> &smokeWorkloadNames();

/** Every registered campaign name, in presentation order. */
std::vector<std::string> campaignNames();

/**
 * Look up a campaign spec by name.
 * @throws std::invalid_argument for an unknown name.
 */
CampaignSpec paperCampaign(const std::string &name);

/**
 * Expand a campaign or group name: "figures" (fig4..fig10),
 * "ablations", "all" (both), or a single campaign's name.
 * @throws std::invalid_argument for an unknown name.
 */
std::vector<std::string> campaignGroup(const std::string &name);

} // namespace cgp::exp

#endif // CGP_EXP_CAMPAIGNS_HH
