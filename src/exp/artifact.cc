#include "exp/artifact.hh"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "exp/integrity.hh"
#include "fault/fault.hh"
#include "harness/report.hh"
#include "util/table.hh"

namespace cgp::exp
{

namespace
{

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0
        ? 0.0
        : static_cast<double>(num) / static_cast<double>(den);
}

} // anonymous namespace

Json
benchJson(const CampaignRun &run)
{
    Json j = Json::object();
    j.set("schema", 2);
    j.set("bench", run.name);
    j.set("title", run.title);
    j.set("seed", run.seed);
    j.set("fingerprint", run.fingerprint);

    Json exec = Json::object();
    exec.set("jobs", run.jobs.size());
    exec.set("executed", run.executed);
    exec.set("skipped", run.skipped);
    exec.set("threads", run.threadsUsed);
    exec.set("steals", run.steals);
    exec.set("wall_seconds", run.wallSeconds);
    exec.set("quarantined", run.quarantined);
    j.set("execution", std::move(exec));

    // Always present so downstream tooling can key on it; empty on a
    // fully healthy campaign.
    Json failures = Json::array();
    for (const JobFailure &f : run.failures) {
        Json e = Json::object();
        e.set("index", f.index);
        e.set("workload", run.jobs[f.index].workload);
        e.set("config", run.jobs[f.index].label);
        e.set("kind", f.kind);
        e.set("message", f.message);
        e.set("attempts", f.attempts);
        failures.push(std::move(e));
    }
    j.set("failures", std::move(failures));

    Json jobs = Json::array();
    for (const JobSpec &job : run.jobs) {
        Json e = Json::object();
        e.set("index", job.index);
        e.set("workload", job.workload);
        e.set("config", job.label);
        e.set("seed", job.seed);

        const bool failed = std::any_of(
            run.failures.begin(), run.failures.end(),
            [&](const JobFailure &f) {
                return f.index == job.index;
            });
        if (failed) {
            // A failed job has no result; its default-constructed
            // SimResult would read as "everything was zero cycles".
            e.set("status", "failed");
            jobs.push(std::move(e));
            continue;
        }
        e.set("status", "ok");
        const SimResult &r = run.results[job.index];
        e.set("result", toJson(r));

        // Derived metrics, precomputed for plotting pipelines.
        Json d = Json::object();
        d.set("ipc", r.ipc());
        d.set("cpi", r.instrs == 0
                  ? 0.0
                  : static_cast<double>(r.cycles) /
                      static_cast<double>(r.instrs));
        d.set("icache_miss_rate",
              ratio(r.icacheMisses, r.icacheAccesses));
        d.set("dcache_miss_rate",
              ratio(r.dcacheMisses, r.instrs));
        d.set("l2_miss_rate", ratio(r.l2Misses, r.instrs));
        const PrefetchBreakdown total = r.totalPrefetch();
        d.set("prefetch_useful_fraction", total.usefulFraction());
        e.set("derived", std::move(d));
        jobs.push(std::move(e));
    }
    j.set("jobs", std::move(jobs));
    sealJson(j);
    return j;
}

void
writeBenchJson(const std::string &path, const CampaignRun &run)
{
    // Crash here = the campaign completed but the report did not; a
    // resume re-reads the run dir and rewrites the BENCH cheaply.
    fault::hit("exp.pre_bench");
    writeFileAtomicDurable(path, benchJson(run).dump(2) + "\n");
}

void
printCycleTables(const CampaignRun &run, std::ostream &os,
                 std::size_t normIndex)
{
    const std::vector<std::string> workloads = run.workloadNames();
    const std::vector<std::string> labels = run.configLabels();
    if (workloads.empty() || labels.empty())
        return;
    if (normIndex >= labels.size())
        normIndex = 0;

    TablePrinter abs(run.title + " — execution cycles");
    TablePrinter norm(run.title + " — normalized to " +
                      labels[normIndex] + " (lower is faster)");
    std::vector<std::string> header{"workload"};
    header.insert(header.end(), labels.begin(), labels.end());
    abs.setHeader(header);
    norm.setHeader(header);

    // Failed jobs (degrade policy) have no result; their cells show
    // "-" instead of a bogus zero.
    std::set<std::size_t> failed;
    for (const JobFailure &f : run.failures)
        failed.insert(f.index);
    const auto cellResult =
        [&](const std::string &w,
            const std::string &l) -> const SimResult * {
        for (const JobSpec &j : run.jobs) {
            if (j.workload == w && j.label == l)
                return failed.count(j.index) != 0
                    ? nullptr
                    : &run.results[j.index];
        }
        return nullptr;
    };

    for (const std::string &w : workloads) {
        std::vector<std::string> arow{w};
        std::vector<std::string> nrow{w};
        const SimResult *baseRes =
            cellResult(w, labels[normIndex]);
        const double base = baseRes == nullptr
            ? 0.0
            : static_cast<double>(baseRes->cycles);
        for (const std::string &l : labels) {
            const SimResult *r = cellResult(w, l);
            if (r == nullptr) {
                arow.push_back("-");
                nrow.push_back("-");
                continue;
            }
            arow.push_back(TablePrinter::num(r->cycles));
            nrow.push_back(base == 0.0
                               ? std::string("-")
                               : TablePrinter::fixed(
                                     static_cast<double>(r->cycles) /
                                         base,
                                     3));
        }
        abs.addRow(arow);
        norm.addRow(nrow);
    }
    abs.print(os);
    os << "\n";
    norm.print(os);
}

double
geomeanSpeedup(const CampaignRun &run, const std::string &labelA,
               const std::string &labelB)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const std::string &w : run.workloadNames()) {
        const double ca =
            static_cast<double>(run.at(w, labelA).cycles);
        const double cb =
            static_cast<double>(run.at(w, labelB).cycles);
        log_sum += std::log(ca / cb);
        ++n;
    }
    return n == 0 ? 1.0
                  : std::exp(log_sum / static_cast<double>(n));
}

} // namespace cgp::exp
