#include "exp/artifact.hh"

#include <cmath>
#include <stdexcept>

#include "harness/report.hh"
#include "util/table.hh"

namespace cgp::exp
{

namespace
{

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0
        ? 0.0
        : static_cast<double>(num) / static_cast<double>(den);
}

} // anonymous namespace

Json
benchJson(const CampaignRun &run)
{
    Json j = Json::object();
    j.set("schema", 1);
    j.set("bench", run.name);
    j.set("title", run.title);
    j.set("seed", run.seed);
    j.set("fingerprint", run.fingerprint);

    Json exec = Json::object();
    exec.set("jobs", run.jobs.size());
    exec.set("executed", run.executed);
    exec.set("skipped", run.skipped);
    exec.set("threads", run.threadsUsed);
    exec.set("steals", run.steals);
    exec.set("wall_seconds", run.wallSeconds);
    j.set("execution", std::move(exec));

    Json jobs = Json::array();
    for (const JobSpec &job : run.jobs) {
        const SimResult &r = run.results[job.index];
        Json e = Json::object();
        e.set("index", job.index);
        e.set("workload", job.workload);
        e.set("config", job.label);
        e.set("seed", job.seed);
        e.set("result", toJson(r));

        // Derived metrics, precomputed for plotting pipelines.
        Json d = Json::object();
        d.set("ipc", r.ipc());
        d.set("cpi", r.instrs == 0
                  ? 0.0
                  : static_cast<double>(r.cycles) /
                      static_cast<double>(r.instrs));
        d.set("icache_miss_rate",
              ratio(r.icacheMisses, r.icacheAccesses));
        d.set("dcache_miss_rate",
              ratio(r.dcacheMisses, r.instrs));
        d.set("l2_miss_rate", ratio(r.l2Misses, r.instrs));
        const PrefetchBreakdown total = r.totalPrefetch();
        d.set("prefetch_useful_fraction", total.usefulFraction());
        e.set("derived", std::move(d));
        jobs.push(std::move(e));
    }
    j.set("jobs", std::move(jobs));
    return j;
}

void
writeBenchJson(const std::string &path, const CampaignRun &run)
{
    const std::string text = benchJson(run).dump(2) + "\n";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        throw std::runtime_error("cannot write " + path);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

void
printCycleTables(const CampaignRun &run, std::ostream &os,
                 std::size_t normIndex)
{
    const std::vector<std::string> workloads = run.workloadNames();
    const std::vector<std::string> labels = run.configLabels();
    if (workloads.empty() || labels.empty())
        return;
    if (normIndex >= labels.size())
        normIndex = 0;

    TablePrinter abs(run.title + " — execution cycles");
    TablePrinter norm(run.title + " — normalized to " +
                      labels[normIndex] + " (lower is faster)");
    std::vector<std::string> header{"workload"};
    header.insert(header.end(), labels.begin(), labels.end());
    abs.setHeader(header);
    norm.setHeader(header);

    for (const std::string &w : workloads) {
        std::vector<std::string> arow{w};
        std::vector<std::string> nrow{w};
        const double base = static_cast<double>(
            run.at(w, labels[normIndex]).cycles);
        for (const std::string &l : labels) {
            const SimResult &r = run.at(w, l);
            arow.push_back(TablePrinter::num(r.cycles));
            nrow.push_back(TablePrinter::fixed(
                static_cast<double>(r.cycles) / base, 3));
        }
        abs.addRow(arow);
        norm.addRow(nrow);
    }
    abs.print(os);
    os << "\n";
    norm.print(os);
}

double
geomeanSpeedup(const CampaignRun &run, const std::string &labelA,
               const std::string &labelB)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const std::string &w : run.workloadNames()) {
        const double ca =
            static_cast<double>(run.at(w, labelA).cycles);
        const double cb =
            static_cast<double>(run.at(w, labelB).cycles);
        log_sum += std::log(ca / cb);
        ++n;
    }
    return n == 0 ? 1.0
                  : std::exp(log_sum / static_cast<double>(n));
}

} // namespace cgp::exp
