#include "exp/campaign.hh"

#include <cstdio>
#include <stdexcept>
#include <string_view>

namespace cgp::exp
{

namespace
{

/** Join the non-empty labels of the chosen points with '+'. */
std::string
joinLabels(const std::vector<std::string> &labels,
           const SimConfig &config)
{
    std::string out;
    for (const auto &l : labels) {
        if (l.empty())
            continue;
        if (!out.empty())
            out += '+';
        out += l;
    }
    return out.empty() ? config.describe() : out;
}

} // anonymous namespace

std::vector<ExpandedConfig>
expandConfigs(const CampaignSpec &spec)
{
    std::vector<ExpandedConfig> out;

    if (spec.axes.empty()) {
        if (spec.explicitConfigs.empty()) {
            throw std::invalid_argument(
                "campaign '" + spec.name +
                "' has neither axes nor explicit configs");
        }
        if (!spec.explicitLabels.empty() &&
            spec.explicitLabels.size() !=
                spec.explicitConfigs.size()) {
            throw std::invalid_argument(
                "campaign '" + spec.name +
                "': explicitLabels/explicitConfigs length mismatch");
        }
        for (std::size_t i = 0; i < spec.explicitConfigs.size();
             ++i) {
            const SimConfig &c = spec.explicitConfigs[i];
            std::string label = spec.explicitLabels.empty()
                ? c.describe()
                : spec.explicitLabels[i];
            if (label.empty())
                label = c.describe();
            out.push_back({c, std::move(label)});
        }
        return out;
    }

    for (const ConfigAxis &axis : spec.axes) {
        if (axis.points.empty()) {
            throw std::invalid_argument("campaign '" + spec.name +
                                        "': axis '" + axis.name +
                                        "' has no points");
        }
    }

    if (spec.mode == SweepMode::Zip) {
        const std::size_t len = spec.axes.front().points.size();
        for (const ConfigAxis &axis : spec.axes) {
            if (axis.points.size() != len) {
                throw std::invalid_argument(
                    "campaign '" + spec.name +
                    "': zip axes must have equal length (axis '" +
                    axis.name + "')");
            }
        }
        for (std::size_t i = 0; i < len; ++i) {
            SimConfig c = spec.base;
            std::vector<std::string> labels;
            for (const ConfigAxis &axis : spec.axes) {
                const AxisPoint &p = axis.points[i];
                if (p.apply)
                    p.apply(c);
                labels.push_back(p.label);
            }
            out.push_back({c, joinLabels(labels, c)});
        }
        return out;
    }

    // Cartesian: odometer with the first axis varying slowest.
    std::vector<std::size_t> idx(spec.axes.size(), 0);
    for (;;) {
        SimConfig c = spec.base;
        std::vector<std::string> labels;
        for (std::size_t a = 0; a < spec.axes.size(); ++a) {
            const AxisPoint &p = spec.axes[a].points[idx[a]];
            if (p.apply)
                p.apply(c);
            labels.push_back(p.label);
        }
        out.push_back({c, joinLabels(labels, c)});

        std::size_t a = spec.axes.size();
        while (a > 0) {
            --a;
            if (++idx[a] < spec.axes[a].points.size())
                break;
            idx[a] = 0;
            if (a == 0)
                return out;
        }
    }
}

std::uint64_t
jobSeed(std::uint64_t campaignSeed, std::uint64_t index)
{
    // splitmix64 over (seed ^ golden-ratio-spaced index).
    std::uint64_t z =
        campaignSeed ^ (index * 0x9e3779b97f4a7c15ull);
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<JobSpec>
expandJobs(const CampaignSpec &spec)
{
    if (spec.workloads.empty()) {
        throw std::invalid_argument("campaign '" + spec.name +
                                    "' has no workloads");
    }
    const std::vector<ExpandedConfig> configs = expandConfigs(spec);
    std::vector<JobSpec> jobs;
    jobs.reserve(spec.workloads.size() * configs.size());
    for (const std::string &w : spec.workloads) {
        for (const ExpandedConfig &c : configs) {
            JobSpec j;
            j.index = jobs.size();
            j.workload = w;
            j.config = c.config;
            j.label = c.label;
            j.seed = jobSeed(spec.seed, j.index);
            jobs.push_back(std::move(j));
        }
    }
    return jobs;
}

std::string
fingerprint(const CampaignSpec &spec,
            const std::vector<JobSpec> &jobs)
{
    // FNV-1a over the campaign identity and every job identity.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::string_view s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ull;
        }
        h ^= 0xff; // field separator
        h *= 0x100000001b3ull;
    };
    mix(spec.name);
    mix(std::to_string(spec.seed));
    for (const JobSpec &j : jobs) {
        mix(j.key());
        mix(std::to_string(j.seed));
    }
    char buf[20];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace cgp::exp
