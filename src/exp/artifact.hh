/**
 * @file
 * Artifact layer: machine-readable BENCH_*.json files and the
 * paper-style cycle tables, both derived from a CampaignRun.
 *
 * The BENCH json carries the canonical SimResult serialization plus
 * derived metrics (CPI, miss rates, prefetch usefulness) and this
 * invocation's execution stats (threads, wall time, executed vs
 * skipped) — a perf trajectory a CI run can track over time.  Unlike
 * the run directory, it is a report, not a resume source, so timing
 * belongs here.
 */

#ifndef CGP_EXP_ARTIFACT_HH
#define CGP_EXP_ARTIFACT_HH

#include <ostream>
#include <string>

#include "exp/engine.hh"
#include "util/json.hh"

namespace cgp::exp
{

/** Full machine-readable form of a finished campaign. */
Json benchJson(const CampaignRun &run);

/** Write benchJson() to @p path (pretty-printed). */
void writeBenchJson(const std::string &path,
                    const CampaignRun &run);

/**
 * Print the campaign's absolute-cycles table and the normalized view
 * (config @p normIndex = 1.00, smaller is faster) the paper's bar
 * charts use.
 */
void printCycleTables(const CampaignRun &run, std::ostream &os,
                      std::size_t normIndex = 0);

/**
 * Geometric-mean speedup of config @p labelB over @p labelA across
 * the campaign's workloads.
 */
double geomeanSpeedup(const CampaignRun &run,
                      const std::string &labelA,
                      const std::string &labelB);

} // namespace cgp::exp

#endif // CGP_EXP_ARTIFACT_HH
