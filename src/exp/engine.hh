/**
 * @file
 * The campaign engine: expand a CampaignSpec into jobs, resolve the
 * workloads once, run the pending jobs on the work-stealing pool,
 * and persist every completion into the run directory.
 *
 * Determinism contract: results are keyed by job index, every
 * simulation is a pure function of (workload, config), and the run
 * directory stores no timing — so the same spec produces
 * byte-identical manifests and job files at any thread count, and a
 * resumed campaign continues exactly where the crash left it,
 * skipping every job whose result file survived.
 */

#ifndef CGP_EXP_ENGINE_HH
#define CGP_EXP_ENGINE_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/campaign.hh"
#include "exp/scheduler.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"

namespace cgp::exp
{

/**
 * Resolves workload names to built workloads.  resolve() is called
 * once per distinct name, from the coordinating thread, before any
 * job runs; the returned Workload's shared parts (registry, trace,
 * profile) are only read during simulation, so one instance may be
 * shared by many concurrent jobs.
 */
class WorkloadProvider
{
  public:
    virtual ~WorkloadProvider() = default;

    /** @throws std::invalid_argument for an unknown name. */
    virtual Workload resolve(const std::string &name) = 0;
};

/** Provider over a fixed list of already-built workloads. */
class InMemoryProvider : public WorkloadProvider
{
  public:
    explicit InMemoryProvider(std::vector<Workload> workloads)
        : workloads_(std::move(workloads))
    {
    }

    Workload resolve(const std::string &name) override;

  private:
    std::vector<Workload> workloads_;
};

struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;

    /** Run directory; empty = in-memory only (no resume). */
    std::string runDir;

    /** Skip jobs already completed in runDir. */
    bool resume = true;

    /** Per-job progress through util/logging (cgp_inform). */
    bool verbose = true;

    /** Transient-failure retries per job (0 = fail on first). */
    unsigned retries = 0;

    /** Override the spec's failure policy (CLI --on-fail). */
    std::optional<FailurePolicy> onFail;

    /** Deterministic per-job cycle budget (0 = none); a job that
     *  exceeds it fails as a "timeout". */
    std::uint64_t watchdogCycles = 0;

    /** Per-job wall-clock budget in seconds (0 = none). */
    double watchdogWallSeconds = 0.0;

    /** Hung-shard monitor budget in seconds (0 = no monitor);
     *  see SchedulerOptions::hangTimeoutSeconds. */
    double hangTimeoutSeconds = 0.0;
};

/** A finished (or resumed-and-finished) campaign. */
struct CampaignRun
{
    std::string name;
    std::string title;
    std::string fingerprint;
    std::uint64_t seed = 0;

    std::vector<JobSpec> jobs;      ///< expansion order
    std::vector<SimResult> results; ///< by job index

    std::size_t executed = 0; ///< simulated in this invocation
    std::size_t skipped = 0;  ///< loaded from the run directory
    unsigned threadsUsed = 1;
    std::uint64_t steals = 0;
    double wallSeconds = 0.0; ///< this invocation only

    /** Jobs that terminally failed (Degrade policy), by campaign
     *  job index, in index order. */
    std::vector<JobFailure> failures;

    /** Corrupt artifacts quarantined while opening/resuming. */
    std::size_t quarantined = 0;

    /** Distinct workload names in first-appearance order. */
    std::vector<std::string> workloadNames() const;

    /** Distinct config labels in first-appearance order. */
    std::vector<std::string> configLabels() const;

    /** Result for (workload, label); null if absent. */
    const SimResult *find(const std::string &workload,
                          const std::string &label) const;

    /** find() or throw std::out_of_range. */
    const SimResult &at(const std::string &workload,
                        const std::string &label) const;
};

/**
 * Deterministic exponential backoff before retry @p attempt
 * (1-based) of the job with seed @p jobSeed: base * 2^min(attempt,6)
 * milliseconds plus a seed-derived jitter below @p baseMs.  Pure
 * function of its arguments — the same job backs off identically at
 * any thread count.
 */
unsigned retryBackoffMs(std::uint64_t jobSeed, unsigned attempt,
                        unsigned baseMs = 10);

/**
 * Run @p spec to completion.  Under the Strict policy (the default)
 * job failures abort the campaign via CampaignAborted after the pool
 * joins, every failure aggregated; under Degrade they are recorded
 * in CampaignRun::failures (and the run directory's manifest) and
 * every healthy job still completes.  Injected crashes
 * (fault::CrashInjected) always propagate type-intact; completed
 * jobs stay recorded in the run directory, so rerunning the same
 * call resumes.
 */
CampaignRun runCampaign(const CampaignSpec &spec,
                        WorkloadProvider &provider,
                        const EngineOptions &options = {});

} // namespace cgp::exp

#endif // CGP_EXP_ENGINE_HH
