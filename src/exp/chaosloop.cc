#include "exp/chaosloop.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "exp/artifact.hh"
#include "exp/integrity.hh"
#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cgp::exp
{

namespace
{

/** The crash points a campaign run can die at, and the kinds that
 *  make sense there. */
struct ChaosPoint
{
    const char *point;
    fault::FaultKind kind;
};

const std::vector<ChaosPoint> &
chaosPoints()
{
    static const std::vector<ChaosPoint> points = {
        {"exp.job", fault::FaultKind::Crash},
        {"exp.job", fault::FaultKind::TransientIo},
        {"exp.pre_record", fault::FaultKind::Crash},
        {"exp.mid_record", fault::FaultKind::Crash},
        {"exp.record", fault::FaultKind::Crash},
        {"exp.artifact_write", fault::FaultKind::Crash},
        {"exp.artifact_write", fault::FaultKind::TornWrite},
    };
    return points;
}

/** Artifacts worth corrupting: job files and the manifest. */
std::vector<std::string>
corruptibleFiles(const std::string &dir)
{
    std::vector<std::string> out;
    if (!std::filesystem::is_directory(dir))
        return out;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name == "manifest.json" ||
            (name.rfind("job-", 0) == 0 &&
             name.size() > 5 &&
             name.compare(name.size() - 5, 5, ".json") == 0)) {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end()); // deterministic pick order
    return out;
}

/** Damage @p path the way real corruption does: flip one byte or
 *  truncate the tail. */
void
corruptFile(const std::string &path, Rng &rng)
{
    std::string bytes = readFileOrThrow(path);
    if (bytes.empty())
        return;
    if (rng.nextBool(0.5)) {
        const std::size_t pos = static_cast<std::size_t>(
            rng.nextBelow(bytes.size()));
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0x40);
    } else {
        bytes.resize(static_cast<std::size_t>(
            rng.nextBelow(bytes.size())));
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

} // anonymous namespace

ChaosLoopResult
ChaosLoopHarness::run()
{
    if (config_.dir.empty()) {
        throw std::invalid_argument(
            "chaos loop needs a run directory");
    }

    ChaosLoopResult result;

    // Reference: the same campaign, uninterrupted and in memory.
    EngineOptions refOpts;
    refOpts.threads = config_.threads;
    refOpts.verbose = false;
    refOpts.retries = config_.retries;
    const CampaignRun reference =
        runCampaign(spec_, provider_, refOpts);
    const std::string refText =
        deterministicBenchText(benchJson(reference));

    std::filesystem::remove_all(config_.dir);

    EngineOptions opts;
    opts.threads = config_.threads;
    opts.runDir = config_.dir;
    opts.resume = true;
    opts.verbose = false;
    opts.retries = config_.retries;

    // The hit budget a fault can be delayed by.  Deliberately small:
    // once the campaign has completed, a resumed cycle only touches
    // its crash points a handful of times (manifest rewrite plus
    // whatever corruption forced back to pending), so a fault
    // scheduled deep into the run would never fire and the cycle
    // would audit nothing.
    const std::uint64_t maxHits = reference.jobs.size() + 4;

    Rng rng(config_.seed);
    for (unsigned cycle = 0; cycle < config_.cycles; ++cycle) {
        const ChaosPoint &cp = chaosPoints()[static_cast<std::size_t>(
            rng.nextBelow(chaosPoints().size()))];
        fault::FaultSpec spec;
        spec.kind = cp.kind;
        spec.afterHits = rng.nextBelow(maxHits);
        // One firing per cycle: a transient fault that kept firing
        // would exhaust the retry budget and become a terminal
        // failure every time, which is the degrade tests' job.
        spec.count = 1;

        fault::FaultInjector injector;
        injector.arm(cp.point, spec);

        bool crashed = false;
        try {
            fault::ScopedGlobalInjector scoped(injector);
            const CampaignRun run =
                runCampaign(spec_, provider_, opts);
            result.executedJobs += run.executed;
            result.quarantined += run.quarantined;
        } catch (const fault::CrashInjected &e) {
            crashed = true;
            if (config_.verbose) {
                cgp_inform("chaos cycle ", cycle, ": died at ",
                           e.point(), " (afterHits=",
                           spec.afterHits, ")");
            }
        }
        ++result.cycles;
        if (crashed)
            ++result.crashes;
        else
            ++result.cleanRuns;

        // Occasionally damage what survived, like a torn sector.
        if (rng.nextBool(config_.corruptProbability)) {
            const std::vector<std::string> files =
                corruptibleFiles(config_.dir);
            if (!files.empty()) {
                const std::string &victim =
                    files[static_cast<std::size_t>(
                        rng.nextBelow(files.size()))];
                corruptFile(victim, rng);
                ++result.corruptions;
                if (config_.verbose) {
                    cgp_inform("chaos cycle ", cycle,
                               ": corrupted ",
                               std::filesystem::path(victim)
                                   .filename()
                                   .string());
                }
            }
        }
    }

    // Final clean resume: no faults armed, no manual repair.  This
    // must complete and converge on the reference result.
    const CampaignRun finalRun =
        runCampaign(spec_, provider_, opts);
    result.executedJobs += finalRun.executed;
    result.quarantined += finalRun.quarantined;

    const std::string finalText =
        deterministicBenchText(benchJson(finalRun));
    result.identical = finalText == refText;
    if (!result.identical) {
        std::size_t pos = 0;
        const std::size_t n =
            std::min(refText.size(), finalText.size());
        while (pos < n && refText[pos] == finalText[pos])
            ++pos;
        const std::size_t from = pos > 40 ? pos - 40 : 0;
        result.mismatch = "diverges at byte " +
            std::to_string(pos) + ": ref \"" +
            refText.substr(from, 80) + "\" vs final \"" +
            finalText.substr(from, 80) + "\"";
    }
    return result;
}

} // namespace cgp::exp
