/**
 * @file
 * Deterministic fault injection.
 *
 * Storage and prefetch code is instrumented with named *crash points*
 * (e.g. "wal.pre_force", "volume.write").  A FaultInjector arms a
 * fault at a point — fire on the Nth hit, optionally several times —
 * and the instrumented call site interprets the fired FaultKind:
 * a Crash unwinds the engine via CrashInjected (the crash-loop
 * harness catches it and runs recovery), a TornWrite leaves a
 * half-written page or log record behind, a PartialForce makes only a
 * prefix of a log force durable, and a TransientIo makes the volume
 * throw a retryable error.
 *
 * Injection is deterministic: firing depends only on the armed
 * schedule and the hit sequence, never on wall-clock or an unseeded
 * RNG, so every failure found by the fuzz sweep replays exactly.
 * When nothing is armed the hit() fast path is a pointer test.
 */

#ifndef CGP_FAULT_FAULT_HH
#define CGP_FAULT_FAULT_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cgp::fault
{

enum class FaultKind : std::uint8_t
{
    Crash,        ///< process dies at the point (CrashInjected)
    TornWrite,    ///< a page/log write is left half-done, then crash
    PartialForce, ///< only a prefix of the force becomes durable
    TransientIo   ///< the device errors once; retryable
};

const char *toString(FaultKind kind);

/** Thrown by a crash point to simulate process death. */
class CrashInjected : public std::runtime_error
{
  public:
    explicit CrashInjected(std::string point)
        : std::runtime_error("injected crash at " + point),
          point_(std::move(point))
    {
    }

    const std::string &point() const { return point_; }

  private:
    std::string point_;
};

/** Thrown by the volume on an injected transient device error. */
class TransientIoError : public std::runtime_error
{
  public:
    explicit TransientIoError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One armed fault: fire @p count times starting at hit afterHits+1. */
struct FaultSpec
{
    FaultKind kind = FaultKind::Crash;
    /** Hits of the point to let pass before firing. */
    std::uint64_t afterHits = 0;
    /** Consecutive firings (transient errors may repeat). */
    std::uint32_t count = 1;
};

/** A fault that actually fired (post-mortem inspection). */
struct FaultEvent
{
    std::string point;
    FaultKind kind;
    std::uint64_t hitNo; ///< 1-based hit number that fired
};

class FaultInjector
{
  public:
    /** Names of every crash point compiled into the engine. */
    static const std::vector<std::string> &crashPoints();

    static bool isRegistered(std::string_view point);

    /** Arm @p spec at @p point (replaces any previous arming). */
    void arm(std::string_view point, const FaultSpec &spec);

    void disarm(std::string_view point);
    void disarmAll();

    /**
     * Called by an instrumented call site.  Counts the hit; when the
     * armed schedule fires, records the event and returns the kind —
     * except Crash, which throws CrashInjected directly so call
     * sites need no crash handling of their own.
     */
    std::optional<FaultKind> hit(std::string_view point);

    /** Total times @p point was reached (fired or not). */
    std::uint64_t hitCount(std::string_view point) const;

    /** Every fault that fired, in order. */
    const std::vector<FaultEvent> &fired() const { return fired_; }

    /** Reset hit counters and the fired list; armings survive. */
    void resetCounters();

  private:
    struct Armed
    {
        FaultSpec spec;
        std::uint32_t firedCount = 0;
    };

    /**
     * hit()/arm()/counters are serialized so one injector can stay
     * installed while the experiment engine runs simulations on
     * worker threads.  fired() still returns a reference: read it
     * only once the run under test has quiesced.
     */
    mutable std::mutex mu_;
    std::unordered_map<std::string, Armed> armed_;
    std::unordered_map<std::string, std::uint64_t> hits_;
    std::vector<FaultEvent> fired_;
};

/// @{ Process-global injector (tests install one; nullptr = off).
FaultInjector *global();
void setGlobal(FaultInjector *injector);
/// @}

/**
 * Crash-point entry hook.  @p preferred (usually a DbContext-scoped
 * injector) wins over the global one; both null is the common case
 * and costs two pointer tests.
 */
inline std::optional<FaultKind>
hit(FaultInjector *preferred, std::string_view point)
{
    FaultInjector *inj = preferred != nullptr ? preferred : global();
    if (inj == nullptr)
        return std::nullopt;
    return inj->hit(point);
}

/** Global-only convenience for layers with no context plumbing. */
inline std::optional<FaultKind>
hit(std::string_view point)
{
    return hit(nullptr, point);
}

/** RAII: install an injector as the global one for a scope. */
class ScopedGlobalInjector
{
  public:
    explicit ScopedGlobalInjector(FaultInjector &injector)
        : prev_(global())
    {
        setGlobal(&injector);
    }

    ~ScopedGlobalInjector() { setGlobal(prev_); }

    ScopedGlobalInjector(const ScopedGlobalInjector &) = delete;
    ScopedGlobalInjector &
    operator=(const ScopedGlobalInjector &) = delete;

  private:
    FaultInjector *prev_;
};

} // namespace cgp::fault

#endif // CGP_FAULT_FAULT_HH
