#include "fault/fault.hh"

#include <algorithm>
#include <mutex>

#include "util/logging.hh"

namespace cgp::fault
{

const char *
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::TornWrite:
        return "torn-write";
      case FaultKind::PartialForce:
        return "partial-force";
      case FaultKind::TransientIo:
        return "transient-io";
    }
    return "unknown";
}

const std::vector<std::string> &
FaultInjector::crashPoints()
{
    static const std::vector<std::string> points = {
        "wal.pre_force",  ///< before any force block hits the device
        "wal.mid_force",  ///< between force blocks (partial/torn)
        "pool.flush",     ///< BufferPool::flushAll entry
        "pool.evict",     ///< dirty-victim write-back during eviction
        "volume.read",    ///< Volume::readPage device access
        "volume.write",   ///< Volume::writePage device access
        "prefetch.issue", ///< prefetcher line-issue path
        "prefetch.train", ///< prefetcher call/return trace observation
        "exp.pre_record", ///< campaign engine, before a job result is
                          ///< persisted (the job is lost on crash)
        "exp.record",     ///< campaign engine, after a job result and
                          ///< manifest are durable (job survives)
        "exp.job",            ///< inside a campaign job, before the
                              ///< simulation runs (retry/degrade path)
        "exp.mid_record",     ///< job file durable, manifest stale
        "exp.artifact_write", ///< inside the durable atomic write
                              ///< (TornWrite tears the artifact)
        "exp.pre_bench",      ///< before the BENCH_*.json is written
    };
    return points;
}

bool
FaultInjector::isRegistered(std::string_view point)
{
    const auto &points = crashPoints();
    return std::find(points.begin(), points.end(), point) !=
        points.end();
}

void
FaultInjector::arm(std::string_view point, const FaultSpec &spec)
{
    cgp_assert(isRegistered(point),
               "arming unregistered crash point ", point);
    cgp_assert(spec.count > 0, "armed fault must fire at least once");
    std::lock_guard<std::mutex> lock(mu_);
    armed_[std::string(point)] = Armed{spec, 0};
}

void
FaultInjector::disarm(std::string_view point)
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_.erase(std::string(point));
}

void
FaultInjector::disarmAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    armed_.clear();
}

std::optional<FaultKind>
FaultInjector::hit(std::string_view point)
{
    std::uint64_t n;
    FaultKind kind;
    {
        std::lock_guard<std::mutex> lock(mu_);
        n = ++hits_[std::string(point)];

        auto it = armed_.find(std::string(point));
        if (it == armed_.end())
            return std::nullopt;

        Armed &a = it->second;
        if (n <= a.spec.afterHits || a.firedCount >= a.spec.count)
            return std::nullopt;

        ++a.firedCount;
        kind = a.spec.kind;
        fired_.push_back(FaultEvent{std::string(point), kind, n});
    }
    cgp_warn("fault injected: ", point, " kind=", toString(kind),
             " hit#", n);
    if (kind == FaultKind::Crash)
        throw CrashInjected(std::string(point));
    return kind;
}

std::uint64_t
FaultInjector::hitCount(std::string_view point) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hits_.find(std::string(point));
    return it == hits_.end() ? 0 : it->second;
}

void
FaultInjector::resetCounters()
{
    std::lock_guard<std::mutex> lock(mu_);
    hits_.clear();
    fired_.clear();
    for (auto &[point, armed] : armed_)
        armed.firedCount = 0;
}

namespace
{

FaultInjector *globalInjector = nullptr;

} // anonymous namespace

FaultInjector *
global()
{
    return globalInjector;
}

void
setGlobal(FaultInjector *injector)
{
    globalInjector = injector;
}

} // namespace cgp::fault
