/**
 * @file
 * TraceSource: pull interface between trace storage and the
 * InstructionExpander.
 *
 * The legacy pipeline pre-merges every per-query trace into one big
 * TraceBuffer and expands that.  The server model instead streams
 * events one at a time — a per-core source multiplexes session
 * traces under a scheduling quantum, so the event sequence depends
 * on simulated time.  The expander only needs three answers from the
 * storage side: "here is the next event", "nothing right now, but
 * more may come" (a core idling between sessions), and "the stream
 * is over".
 */

#ifndef CGP_TRACE_SOURCE_HH
#define CGP_TRACE_SOURCE_HH

#include <cstddef>

#include "trace/events.hh"

namespace cgp
{

class TraceSource
{
  public:
    enum class Pull
    {
        Event, ///< @p out holds the next event
        Dry,   ///< no event this cycle; retry later
        End    ///< the stream is exhausted for good
    };

    virtual ~TraceSource() = default;

    /** Produce the next trace event, if any. */
    virtual Pull next(TraceEvent &out) = 0;
};

/** Adapts a pre-recorded TraceBuffer to the pull interface (the
 *  legacy single-stream path; never returns Dry). */
class BufferTraceSource final : public TraceSource
{
  public:
    explicit BufferTraceSource(const TraceBuffer &buffer)
        : buffer_(buffer)
    {
    }

    Pull
    next(TraceEvent &out) override
    {
        if (idx_ >= buffer_.size())
            return Pull::End;
        out = buffer_.at(idx_++);
        return Pull::Event;
    }

  private:
    const TraceBuffer &buffer_;
    std::size_t idx_ = 0;
};

} // namespace cgp

#endif // CGP_TRACE_SOURCE_HH
