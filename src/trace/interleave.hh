/**
 * @file
 * Concurrent-query modeling: the paper runs each query as a thread in
 * the database server.  We record each query's trace separately and
 * interleave them round-robin with an OS-scheduler stub at each
 * context switch, reproducing the instruction-cache interference that
 * concurrency causes (the paper's §2 cites frequent context switches
 * as a driver of DBMS I-cache misses).
 *
 * @deprecated New code should use the server model instead: the
 * offline merge is superseded by cgp::server — either the streaming
 * shim server::legacyMerge / server::LegacyInterleaveSource (which
 * reproduces this merger byte-for-byte and is what the workload
 * factory now routes through) or the full session-driven DbServer.
 * Kept only so existing callers and the shim's byte-compat test have
 * the reference implementation to compare against.
 */

#ifndef CGP_TRACE_INTERLEAVE_HH
#define CGP_TRACE_INTERLEAVE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/events.hh"
#include "trace/recorder.hh"

namespace cgp
{

struct InterleaveConfig
{
    /** Approximate instructions per scheduling quantum. */
    std::uint64_t quantumInstrs = 20000;

    /**
     * Called at every context switch to record the scheduler's own
     * execution (on the incoming thread's stack).  May be empty.
     */
    std::function<void(TraceRecorder &)> onSwitch;
};

/**
 * Merge per-thread traces into one schedule.  Thread i's events are
 * consumed in order; switches happen at event boundaries once the
 * quantum is exhausted.  A Switch event (payload = thread id) is
 * emitted before each thread's slice.
 */
TraceBuffer interleaveTraces(
    const std::vector<const TraceBuffer *> &threads,
    const InterleaveConfig &config);

} // namespace cgp

#endif // CGP_TRACE_INTERLEAVE_HH
