/**
 * @file
 * Recording interface used by workload code.
 *
 * Every traced function takes a TraceRecorder reference and opens a
 * TraceScope; bodies report straight-line work, data-dependent
 * branches and page/tuple accesses.  The recorder is deliberately
 * trivial — the point is that the *call sequence* comes from a real
 * executing system, which is the property CGP exploits.
 */

#ifndef CGP_TRACE_RECORDER_HH
#define CGP_TRACE_RECORDER_HH

#include <cstdint>

#include "trace/events.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace cgp
{

class TraceRecorder
{
  public:
    /**
     * @param work_scale Multiplier applied to work() amounts.  The
     * workload skeletons annotate *relative* straight-line costs;
     * this calibration constant maps them to realistic absolute
     * instruction counts (chosen so the DBMS traces match the
     * paper's ~43 instructions between successive calls, §5.4).
     */
    explicit TraceRecorder(TraceBuffer &buf, double work_scale = 1.0)
        : buf_(&buf), workScale_(work_scale)
    {
    }

    void
    call(FunctionId fid)
    {
        cgp_assert(fid != invalidFunctionId, "call to invalid function");
        buf_->append(TraceEvent::make(EventKind::Call, fid));
        ++depth_;
    }

    void
    ret()
    {
        cgp_assert(depth_ > 0, "return with empty call stack");
        buf_->append(TraceEvent::make(EventKind::Return, 0));
        --depth_;
    }

    /** @p instrs straight-line instructions of work (scaled). */
    void
    work(std::uint32_t instrs)
    {
        const auto scaled = static_cast<std::uint32_t>(
            static_cast<double>(instrs) * workScale_ + 0.5);
        if (scaled > 0)
            buf_->append(TraceEvent::make(EventKind::Work, scaled));
    }

    /** A data-dependent branch with recorded direction. */
    void
    branch(bool taken)
    {
        buf_->append(TraceEvent::make(EventKind::Branch,
                                      taken ? 1 : 0));
    }

    void
    loadAt(Addr addr)
    {
        buf_->append(TraceEvent::make(EventKind::Load,
                                      addr & TraceEvent::payloadMask));
    }

    void
    storeAt(Addr addr)
    {
        buf_->append(TraceEvent::make(EventKind::Store,
                                      addr & TraceEvent::payloadMask));
    }

    /**
     * Semantic data-prefetch hint: the workload announces an address
     * it is about to touch (B-tree child node, next scan slot, ...).
     * Hints for unknown addresses (invalidAddr, e.g. a page not yet
     * resident in the buffer pool) are silently dropped — a hint is
     * an optimisation, never an obligation.
     */
    void
    hint(DataHintKind kind, Addr addr)
    {
        if (addr == invalidAddr || (addr & ~hintAddrMask) != 0)
            return;
        buf_->append(makeHintEvent(kind, addr));
    }

    /** Current call nesting depth (0 at top level). */
    unsigned depth() const { return depth_; }

    double workScale() const { return workScale_; }

    TraceBuffer &buffer() { return *buf_; }

  private:
    TraceBuffer *buf_;
    double workScale_ = 1.0;
    unsigned depth_ = 0;
};

/**
 * RAII function-entry marker: emits Call on construction and Return
 * on destruction, guaranteeing balanced traces even with early
 * returns in the traced code.
 */
class TraceScope
{
  public:
    TraceScope(TraceRecorder &rec, FunctionId fid) : rec_(rec)
    {
        rec_.call(fid);
    }

    ~TraceScope() { rec_.ret(); }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Convenience passthroughs so bodies read naturally. */
    void work(std::uint32_t instrs) { rec_.work(instrs); }
    void branch(bool taken) { rec_.branch(taken); }
    void loadAt(Addr addr) { rec_.loadAt(addr); }
    void storeAt(Addr addr) { rec_.storeAt(addr); }
    void hint(DataHintKind k, Addr addr) { rec_.hint(k, addr); }

  private:
    TraceRecorder &rec_;
};

} // namespace cgp

#endif // CGP_TRACE_RECORDER_HH
