#include "trace/expand.hh"

#include <cmath>

#include "util/logging.hh"

namespace cgp
{

InstructionExpander::InstructionExpander(const FunctionRegistry &registry,
                                         const CodeImage &image,
                                         const TraceBuffer &trace,
                                         ExpanderConfig config)
    : registry_(registry), image_(image),
      ownedSource_(std::make_unique<BufferTraceSource>(trace)),
      source_(ownedSource_.get()), config_(config)
{
    cgp_assert(config_.instrScale > 0.0, "instrScale must be positive");
    threads_[0].stackBase = stackSegmentBase;
}

InstructionExpander::InstructionExpander(const FunctionRegistry &registry,
                                         const CodeImage &image,
                                         TraceSource &source,
                                         ExpanderConfig config)
    : registry_(registry), image_(image), source_(&source),
      config_(config)
{
    cgp_assert(config_.instrScale > 0.0, "instrScale must be positive");
    threads_[0].stackBase = stackSegmentBase;
}

InstructionExpander::Activation *
InstructionExpander::top()
{
    auto &st = thread().stack;
    return st.empty() ? nullptr : &st.back();
}

Addr
InstructionExpander::curPc(const Activation &act) const
{
    return image_.blockAddr(act.fid, act.block)
        + static_cast<Addr>(act.offset) * instrBytes;
}

DynInst
InstructionExpander::makeInst(const Activation &act, InstKind kind)
{
    DynInst inst;
    inst.pc = curPc(act);
    inst.kind = kind;
    inst.func = act.fid;
    inst.funcStart = image_.funcStart(act.fid);
    return inst;
}

void
InstructionExpander::push(const DynInst &inst)
{
    ready_.push_back(inst);
    ++emitted_;
    switch (inst.kind) {
      case InstKind::Call:
        ++calls_;
        break;
      case InstKind::CondBranch:
        ++branches_;
        break;
      case InstKind::Jump:
        ++jumps_;
        break;
      case InstKind::Load:
        ++loads_;
        break;
      case InstKind::Store:
        ++stores_;
        break;
      default:
        break;
    }
}

std::uint32_t
InstructionExpander::nextWalkIdx(const Activation &act) const
{
    const Function &f = registry_.function(act.fid);
    const std::size_t walk_len = f.hotWalk.size();
    const std::uint32_t cc = act.crossCount + 1u;
    if (act.pendingDispatch != ~0u && cc >= dispatchAfterBlocks) {
        std::size_t idx = act.pendingDispatch % walk_len;
        if (idx == 0)
            idx = 1 % walk_len;
        return static_cast<std::uint32_t>(idx);
    }
    if (act.pendingDispatch == ~0u && walk_len >= 6 &&
        cc % (5 + (act.pathMix & 3)) == 0) {
        // Mid-body control flow: the path occasionally jumps to
        // another region of the body (if/else ladders, switch
        // dispatch), bounding the sequential run lengths the NL
        // prefetcher can exploit (the paper's ~43-instruction runs).
        const std::uint32_t delta = 2 +
            ((act.pathMix >> 8) %
             static_cast<std::uint32_t>(walk_len - 2));
        return static_cast<std::uint32_t>(
            (act.walkIdx + delta) % walk_len);
    }
    return static_cast<std::uint32_t>((act.walkIdx + 1) % walk_len);
}

std::uint16_t
InstructionExpander::nextWalkBlock(const Activation &act) const
{
    const Function &f = registry_.function(act.fid);
    return f.hotWalk[nextWalkIdx(act)];
}

void
InstructionExpander::setupBlock(Activation &act)
{
    const Function &f = registry_.function(act.fid);
    const BasicBlock &b = f.blocks[act.block];
    act.offset = 0;

    // Where does the walk go after this block, and is that block the
    // fall-through neighbour in this layout?
    const std::uint16_t next = nextWalkBlock(act);
    const Addr end = image_.blockAddr(act.fid, act.block)
        + b.sizeBytes();
    const bool adjacent = image_.blockAddr(act.fid, next) == end;
    act.needJump = !adjacent;
    act.usable = adjacent
        ? b.instrs
        : static_cast<std::uint16_t>(b.instrs - 1);
}

void
InstructionExpander::advanceWalk(Activation &act)
{
    const Function &f = registry_.function(act.fid);
    const std::uint16_t from = act.block;
    act.walkIdx = nextWalkIdx(act);
    ++act.crossCount;
    if (act.crossCount >= dispatchAfterBlocks)
        act.pendingDispatch = ~0u;
    act.block = f.hotWalk[act.walkIdx];
    if (profile_ != nullptr)
        profile_->onBlockEdge(act.fid, from, act.block);
    setupBlock(act);
}

void
InstructionExpander::crossIfNeeded(Activation &act)
{
    if (act.offset < act.usable)
        return;

    if (act.needJump) {
        DynInst jmp = makeInst(act, InstKind::Jump);
        jmp.taken = true;
        jmp.target = image_.blockAddr(act.fid, nextWalkBlock(act));
        push(jmp);
    }
    advanceWalk(act);
}

void
InstructionExpander::emitWorkInstr()
{
    Activation *act = top();
    cgp_assert(act != nullptr, "work outside any function");
    crossIfNeeded(*act);

    auto &ts = thread();
    ++ts.workCounter;

    InstKind kind = InstKind::IntOp;
    Addr mem = invalidAddr;
    if (ts.workCounter % config_.stackLoadEvery == 0) {
        kind = InstKind::Load;
        mem = ts.stackBase
            + (thread().stack.size() * 128)
            + (ts.workCounter % 16) * 8;
    } else if (ts.workCounter % config_.stackStoreEvery == 0) {
        kind = InstKind::Store;
        mem = ts.stackBase
            + (thread().stack.size() * 128)
            + (ts.workCounter % 8) * 8;
    } else if (ts.workCounter % config_.mulEvery == 0) {
        kind = InstKind::MulOp;
    }

    DynInst inst = makeInst(*act, kind);
    inst.memAddr = mem;
    push(inst);
    ++act->offset;
    --workLeft_;
}

void
InstructionExpander::processCall(FunctionId callee)
{
    cgp_assert(callee < registry_.size(), "call to unknown function");

    auto &ts = thread();
    FunctionId caller = invalidFunctionId;
    if (Activation *act = top(); act != nullptr) {
        crossIfNeeded(*act);
        caller = act->fid;
        DynInst call = makeInst(*act, InstKind::Call);
        call.taken = true;
        call.target = image_.funcStart(callee);
        call.otherFunc = callee;
        call.otherFuncStart = call.target;
        push(call);
        ++act->offset;
    } else {
        // Root call: synthesize a per-thread call site outside the
        // text segment ("main" is untraced).
        DynInst call;
        call.pc = image_.textLimit() + 64 + curThread_ * 256;
        call.kind = InstKind::Call;
        call.taken = true;
        call.target = image_.funcStart(callee);
        call.func = invalidFunctionId;
        call.funcStart = invalidAddr;
        call.otherFunc = callee;
        call.otherFuncStart = call.target;
        push(call);
    }

    Activation act;
    act.fid = callee;
    act.walkIdx = 0;
    const Function &f = registry_.function(callee);
    cgp_assert(!f.hotWalk.empty(), "function with empty walk");
    act.block = f.hotWalk[0];
    act.decisionRR = 0;
    // Argument-dependent path diversity: after a short sequential
    // prologue (so entry-region prefetches are useful, as in real
    // code), invocations branch to a body region.  The region is
    // stable over a *phase* of invocations — consecutive iterations
    // of a query's tuple loop take the same path (and hit in the
    // I-cache once warm), while revisits after other work has run
    // take a different path, as data-dependent control flow does in
    // real code.  Short bodies always fall through.
    const std::uint32_t inv = invocations_[callee]++;
    // Mixed path volatility: some functions are argument-stable
    // (long phases), others flip paths often.
    const std::uint32_t phase = inv >> (2 + callee % 4);
    const std::uint32_t mix = (callee * 2654435761u) ^
        (phase * 0x9e3779b9u);
    act.pathMix = mix;
    act.crossCount = 0;
    act.pendingDispatch =
        f.hotWalk.size() >= 4 ? (mix >> 3) * 3 + 1 : ~0u;
    ts.stack.push_back(act);
    setupBlock(ts.stack.back());

    if (profile_ != nullptr) {
        if (caller != invalidFunctionId)
            profile_->onCall(caller, callee);
        profile_->onEntry(callee);
    }
}

void
InstructionExpander::processReturn()
{
    auto &ts = thread();
    cgp_assert(!ts.stack.empty(), "return with empty stack");

    Activation &act = ts.stack.back();
    crossIfNeeded(act);
    DynInst ret = makeInst(act, InstKind::Return);
    ret.taken = true;

    ts.stack.pop_back();
    if (!ts.stack.empty()) {
        const Activation &caller = ts.stack.back();
        ret.target = curPc(caller);
        ret.otherFunc = caller.fid;
        ret.otherFuncStart = image_.funcStart(caller.fid);
    } else {
        ret.target = image_.textLimit() + 64 + curThread_ * 256
            + instrBytes;
        ret.otherFunc = invalidFunctionId;
        ret.otherFuncStart = invalidAddr;
    }
    push(ret);
}

void
InstructionExpander::processBranch(bool taken)
{
    Activation *actp = top();
    cgp_assert(actp != nullptr, "branch outside any function");
    Activation &act = *actp;
    crossIfNeeded(act);

    const Function &f = registry_.function(act.fid);

    if (f.decisions.empty()) {
        // Function declared without decision sites: a plain biased
        // branch toward the next walk block.
        const std::size_t walk_len = f.hotWalk.size();
        const std::uint16_t next =
            f.hotWalk[(act.walkIdx + 1) % walk_len];
        DynInst br = makeInst(act, InstKind::CondBranch);
        br.taken = taken;
        br.target = image_.blockAddr(act.fid, next);
        push(br);
        if (taken)
            advanceWalk(act);
        else
            ++act.offset;
        return;
    }

    const std::uint16_t site_idx =
        static_cast<std::uint16_t>(act.decisionRR % f.decisions.size());
    act.decisionRR = static_cast<std::uint8_t>(act.decisionRR + 1);
    const DecisionSite &site = f.decisions[site_idx];

    DynInst br = makeInst(act, InstKind::CondBranch);
    br.taken = taken;
    br.target = image_.blockAddr(act.fid, site.arm);
    push(br);

    if (profile_ != nullptr)
        profile_->onDecision(act.fid, site_idx, taken);

    if (!taken) {
        ++act.offset;
        return;
    }

    // Execute the arm block, then rejoin the walk at the next hot
    // block (jumping back if the layout separates them).
    if (profile_ != nullptr)
        profile_->onBlockEdge(act.fid, act.block, site.arm);

    std::uint16_t resume_walk;
    if (act.pendingDispatch != ~0u) {
        std::size_t idx = act.pendingDispatch % f.hotWalk.size();
        if (idx == 0)
            idx = 1 % f.hotWalk.size();
        resume_walk = static_cast<std::uint16_t>(idx);
        act.pendingDispatch = ~0u;
    } else {
        resume_walk = static_cast<std::uint16_t>(
            (act.walkIdx + 1) % f.hotWalk.size());
    }
    const std::uint16_t resume = f.hotWalk[resume_walk];

    const BasicBlock &arm = f.blocks[site.arm];
    const Addr arm_base = image_.blockAddr(act.fid, site.arm);
    for (std::uint16_t i = 0; i + 1 < arm.instrs; ++i) {
        DynInst inst;
        inst.pc = arm_base + static_cast<Addr>(i) * instrBytes;
        inst.kind = InstKind::IntOp;
        inst.func = act.fid;
        inst.funcStart = image_.funcStart(act.fid);
        push(inst);
    }
    const Addr resume_addr = image_.blockAddr(act.fid, resume);
    const Addr arm_end = arm_base + arm.sizeBytes();
    DynInst tail;
    tail.pc = arm_end - instrBytes;
    tail.func = act.fid;
    tail.funcStart = image_.funcStart(act.fid);
    if (resume_addr == arm_end) {
        tail.kind = InstKind::IntOp;
    } else {
        tail.kind = InstKind::Jump;
        tail.taken = true;
        tail.target = resume_addr;
    }
    push(tail);

    if (profile_ != nullptr)
        profile_->onBlockEdge(act.fid, site.arm, resume);

    act.walkIdx = resume_walk;
    act.block = resume;
    setupBlock(act);
}

void
InstructionExpander::processMem(EventKind kind, Addr addr)
{
    Activation *actp = top();
    cgp_assert(actp != nullptr, "memory access outside any function");
    crossIfNeeded(*actp);

    DynInst inst = makeInst(
        *actp,
        kind == EventKind::Load ? InstKind::Load : InstKind::Store);
    inst.memAddr = addr;
    push(inst);
    ++actp->offset;
}

bool
InstructionExpander::refill()
{
    while (ready_.empty()) {
        if (workLeft_ > 0) {
            emitWorkInstr();
            continue;
        }
        if (ended_)
            return false;

        TraceEvent e = TraceEvent::make(EventKind::Work, 0);
        switch (source_->next(e)) {
          case TraceSource::Pull::End:
            ended_ = true;
            return false;
          case TraceSource::Pull::Dry:
            return false;
          case TraceSource::Pull::Event:
            break;
        }
        switch (e.kind()) {
          case EventKind::Call:
            processCall(static_cast<FunctionId>(e.payload()));
            break;
          case EventKind::Return:
            processReturn();
            break;
          case EventKind::Work: {
            const auto scaled = std::llround(
                static_cast<double>(e.payload()) *
                config_.instrScale);
            workLeft_ += static_cast<std::uint64_t>(
                std::max<long long>(scaled, 1));
            break;
          }
          case EventKind::Branch:
            processBranch(e.payload() != 0);
            break;
          case EventKind::Load:
          case EventKind::Store:
            processMem(e.kind(), e.payload());
            break;
          case EventKind::Switch:
            curThread_ = e.payload();
            if (threads_.find(curThread_) == threads_.end()) {
                threads_[curThread_].stackBase = stackSegmentBase
                    + curThread_ * stackSegmentStride;
            }
            break;
          case EventKind::Hint:
            // Hints cost no instruction slot: park the payload until
            // the next emitted instruction carries it to the core.
            pendingHints_.push_back(e.payload());
            break;
        }
    }
    return true;
}

bool
InstructionExpander::next(DynInst &out)
{
    if (ready_.empty() && !refill())
        return false;
    out = ready_.front();
    ready_.pop_front();
    if (!pendingHints_.empty()) {
        const std::uint64_t payload = pendingHints_.front();
        pendingHints_.pop_front();
        out.hintAddr = hintAddrOf(payload);
        out.hintKind =
            static_cast<std::uint8_t>(hintKindOf(payload));
    }
    return true;
}

} // namespace cgp
