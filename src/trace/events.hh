/**
 * @file
 * Compact dynamic trace representation.
 *
 * A trace is a flat sequence of 64-bit packed events recorded while
 * the workload (DBMS, SPEC proxy) executes natively.  Events are
 * layout independent: they name functions and work amounts, never
 * addresses of code.  Data addresses (buffer pool pages, tuples) are
 * synthetic data-segment addresses chosen by the workload.
 */

#ifndef CGP_TRACE_EVENTS_HH
#define CGP_TRACE_EVENTS_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace cgp
{

enum class EventKind : std::uint8_t
{
    Call = 1,   ///< enter function (payload: FunctionId)
    Return = 2, ///< leave current function
    Work = 3,   ///< straight-line work (payload: instruction count)
    Branch = 4, ///< data-dependent branch (payload: taken bit)
    Load = 5,   ///< explicit data read (payload: address)
    Store = 6,  ///< explicit data write (payload: address)
    Switch = 7, ///< context switch (payload: thread id)
    Hint = 8    ///< data-prefetch hint (payload: kind + address)
};

/**
 * What a semantic data-prefetch hint announces.  Emitted by the
 * storage manager while the workload records its trace (the code
 * *knows* which page/slot it will touch next) and consumed at
 * simulation time by the DB-semantic data prefetcher.
 */
enum class DataHintKind : std::uint8_t
{
    BtreeChild = 0,    ///< child node the descent will fix next
    BtreeNextLeaf = 1, ///< leaf-chain successor of a range scan
    HeapNextSlot = 2,  ///< next record of a sequential scan
    HeapNextPage = 3,  ///< next page of a sequential scan
    HeapRecord = 4,    ///< record about to be fetched by RID
    NumKinds = 5
};

const char *dataHintKindName(DataHintKind kind);

/** One packed event: kind in the top 4 bits, payload below. */
class TraceEvent
{
  public:
    static constexpr unsigned kindShift = 60;
    static constexpr std::uint64_t payloadMask =
        (1ull << kindShift) - 1;

    static TraceEvent
    make(EventKind kind, std::uint64_t payload)
    {
        cgp_assert(payload <= payloadMask, "event payload overflow");
        return TraceEvent(
            (static_cast<std::uint64_t>(kind) << kindShift) | payload);
    }

    EventKind
    kind() const
    {
        return static_cast<EventKind>(bits_ >> kindShift);
    }

    std::uint64_t payload() const { return bits_ & payloadMask; }

    std::uint64_t raw() const { return bits_; }
    static TraceEvent fromRaw(std::uint64_t raw) { return TraceEvent(raw); }

  private:
    explicit TraceEvent(std::uint64_t bits) : bits_(bits) {}

    std::uint64_t bits_;
};

/**
 * Hint payload layout: hint kind in payload bits 56..59, address in
 * bits 0..55 (all synthetic data-segment addresses fit well below
 * 2^56).
 */
constexpr unsigned hintKindShift = 56;
constexpr std::uint64_t hintAddrMask = (1ull << hintKindShift) - 1;

inline TraceEvent
makeHintEvent(DataHintKind kind, Addr addr)
{
    cgp_assert((addr & ~hintAddrMask) == 0, "hint address overflow");
    return TraceEvent::make(
        EventKind::Hint,
        (static_cast<std::uint64_t>(kind) << hintKindShift) | addr);
}

inline DataHintKind
hintKindOf(std::uint64_t payload)
{
    return static_cast<DataHintKind>(payload >> hintKindShift);
}

inline Addr
hintAddrOf(std::uint64_t payload)
{
    return payload & hintAddrMask;
}

/**
 * A recorded event sequence plus summary counts.  Summary counts are
 * maintained on append so the interleaver can meter quanta cheaply.
 */
class TraceBuffer
{
  public:
    void
    append(TraceEvent e)
    {
        events_.push_back(e.raw());
        switch (e.kind()) {
          case EventKind::Work:
            approxInstrs_ += e.payload();
            break;
          case EventKind::Call:
            ++calls_;
            ++approxInstrs_;
            break;
          case EventKind::Hint:
            // Metadata riding on the stream; costs no instruction.
            break;
          default:
            ++approxInstrs_;
            break;
        }
    }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    TraceEvent
    at(std::size_t i) const
    {
        cgp_assert(i < events_.size(), "trace index out of range");
        return TraceEvent::fromRaw(events_[i]);
    }

    /** Work-payload-weighted length; used for quantum metering. */
    std::uint64_t approxInstrs() const { return approxInstrs_; }

    /** Dynamic call count. */
    std::uint64_t calls() const { return calls_; }

    void
    clear()
    {
        events_.clear();
        approxInstrs_ = 0;
        calls_ = 0;
    }

  private:
    std::vector<std::uint64_t> events_;
    std::uint64_t approxInstrs_ = 0;
    std::uint64_t calls_ = 0;
};

} // namespace cgp

#endif // CGP_TRACE_EVENTS_HH
