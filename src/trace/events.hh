/**
 * @file
 * Compact dynamic trace representation.
 *
 * A trace is a flat sequence of 64-bit packed events recorded while
 * the workload (DBMS, SPEC proxy) executes natively.  Events are
 * layout independent: they name functions and work amounts, never
 * addresses of code.  Data addresses (buffer pool pages, tuples) are
 * synthetic data-segment addresses chosen by the workload.
 */

#ifndef CGP_TRACE_EVENTS_HH
#define CGP_TRACE_EVENTS_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace cgp
{

enum class EventKind : std::uint8_t
{
    Call = 1,   ///< enter function (payload: FunctionId)
    Return = 2, ///< leave current function
    Work = 3,   ///< straight-line work (payload: instruction count)
    Branch = 4, ///< data-dependent branch (payload: taken bit)
    Load = 5,   ///< explicit data read (payload: address)
    Store = 6,  ///< explicit data write (payload: address)
    Switch = 7  ///< context switch (payload: thread id)
};

/** One packed event: kind in the top 4 bits, payload below. */
class TraceEvent
{
  public:
    static constexpr unsigned kindShift = 60;
    static constexpr std::uint64_t payloadMask =
        (1ull << kindShift) - 1;

    static TraceEvent
    make(EventKind kind, std::uint64_t payload)
    {
        cgp_assert(payload <= payloadMask, "event payload overflow");
        return TraceEvent(
            (static_cast<std::uint64_t>(kind) << kindShift) | payload);
    }

    EventKind
    kind() const
    {
        return static_cast<EventKind>(bits_ >> kindShift);
    }

    std::uint64_t payload() const { return bits_ & payloadMask; }

    std::uint64_t raw() const { return bits_; }
    static TraceEvent fromRaw(std::uint64_t raw) { return TraceEvent(raw); }

  private:
    explicit TraceEvent(std::uint64_t bits) : bits_(bits) {}

    std::uint64_t bits_;
};

/**
 * A recorded event sequence plus summary counts.  Summary counts are
 * maintained on append so the interleaver can meter quanta cheaply.
 */
class TraceBuffer
{
  public:
    void
    append(TraceEvent e)
    {
        events_.push_back(e.raw());
        switch (e.kind()) {
          case EventKind::Work:
            approxInstrs_ += e.payload();
            break;
          case EventKind::Call:
            ++calls_;
            ++approxInstrs_;
            break;
          default:
            ++approxInstrs_;
            break;
        }
    }

    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }

    TraceEvent
    at(std::size_t i) const
    {
        cgp_assert(i < events_.size(), "trace index out of range");
        return TraceEvent::fromRaw(events_[i]);
    }

    /** Work-payload-weighted length; used for quantum metering. */
    std::uint64_t approxInstrs() const { return approxInstrs_; }

    /** Dynamic call count. */
    std::uint64_t calls() const { return calls_; }

    void
    clear()
    {
        events_.clear();
        approxInstrs_ = 0;
        calls_ = 0;
    }

  private:
    std::vector<std::uint64_t> events_;
    std::uint64_t approxInstrs_ = 0;
    std::uint64_t calls_ = 0;
};

} // namespace cgp

#endif // CGP_TRACE_EVENTS_HH
