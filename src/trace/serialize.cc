#include "trace/serialize.hh"

#include <fstream>
#include <vector>

#include "util/logging.hh"

namespace cgp
{

namespace
{

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t word)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (word >> (b * 8)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr std::uint64_t fnvInit = 0xcbf29ce484222325ull;

void
putWord(std::ostream &os, std::uint64_t w)
{
    std::uint8_t bytes[8];
    for (int b = 0; b < 8; ++b)
        bytes[b] = static_cast<std::uint8_t>((w >> (b * 8)) & 0xff);
    os.write(reinterpret_cast<const char *>(bytes), 8);
}

bool
getWord(std::istream &is, std::uint64_t &w)
{
    std::uint8_t bytes[8];
    is.read(reinterpret_cast<char *>(bytes), 8);
    if (!is)
        return false;
    w = 0;
    for (int b = 0; b < 8; ++b)
        w |= static_cast<std::uint64_t>(bytes[b]) << (b * 8);
    return true;
}

} // anonymous namespace

bool
saveTrace(const TraceBuffer &trace, std::ostream &os)
{
    putWord(os, traceFileMagic);
    putWord(os, (static_cast<std::uint64_t>(traceFileVersion) << 32));
    putWord(os, trace.size());

    std::uint64_t checksum = fnvInit;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const std::uint64_t raw = trace.at(i).raw();
        putWord(os, raw);
        checksum = fnv1a(checksum, raw);
    }
    putWord(os, checksum);
    return static_cast<bool>(os);
}

bool
saveTraceFile(const TraceBuffer &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        return false;
    return saveTrace(trace, os);
}

bool
loadTrace(TraceBuffer &trace, std::istream &is)
{
    trace.clear();

    std::uint64_t magic = 0, version_word = 0, count = 0;
    if (!getWord(is, magic) || magic != traceFileMagic) {
        cgp_warn("trace load: bad magic");
        return false;
    }
    if (!getWord(is, version_word) ||
        (version_word >> 32) != traceFileVersion) {
        cgp_warn("trace load: unsupported version");
        return false;
    }
    if (!getWord(is, count))
        return false;

    std::uint64_t checksum = fnvInit;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t raw = 0;
        if (!getWord(is, raw)) {
            trace.clear();
            cgp_warn("trace load: truncated event stream");
            return false;
        }
        checksum = fnv1a(checksum, raw);
        trace.append(TraceEvent::fromRaw(raw));
    }

    std::uint64_t stored = 0;
    if (!getWord(is, stored) || stored != checksum) {
        trace.clear();
        cgp_warn("trace load: checksum mismatch");
        return false;
    }
    return true;
}

bool
loadTraceFile(TraceBuffer &trace, const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    return loadTrace(trace, is);
}

} // namespace cgp
