/**
 * @file
 * DynInst: one dynamic instruction produced by the trace expander and
 * consumed by the CPU model.  Carries ground-truth control flow (the
 * CPU's predictors decide independently what they would have
 * predicted) plus the function identity information the CGP hardware
 * derives from its modified return address stack.
 */

#ifndef CGP_TRACE_DYNINST_HH
#define CGP_TRACE_DYNINST_HH

#include <cstdint>

#include "util/types.hh"

namespace cgp
{

enum class InstKind : std::uint8_t
{
    IntOp,      ///< single-cycle integer op
    MulOp,      ///< multi-cycle op (multiplier FU)
    Load,
    Store,
    Jump,       ///< unconditional direct jump (always taken)
    CondBranch, ///< conditional branch
    Call,       ///< direct function call
    Return      ///< function return
};

constexpr bool
isControl(InstKind k)
{
    return k == InstKind::Jump || k == InstKind::CondBranch ||
           k == InstKind::Call || k == InstKind::Return;
}

struct DynInst
{
    Addr pc = invalidAddr;
    InstKind kind = InstKind::IntOp;

    /** Actual direction for CondBranch (Jump/Call/Return: true). */
    bool taken = false;

    /** Actual target for taken control transfers. */
    Addr target = invalidAddr;

    /** Data address for Load/Store. */
    Addr memAddr = invalidAddr;

    /** Function containing this instruction. */
    FunctionId func = invalidFunctionId;

    /** Start address of the containing function. */
    Addr funcStart = invalidAddr;

    /** For Call: callee id; for Return: the function returned into. */
    FunctionId otherFunc = invalidFunctionId;

    /** For Call: callee start; for Return: returnee start address. */
    Addr otherFuncStart = invalidAddr;

    /** Semantic data-prefetch hint riding on this instruction, or
     *  invalidAddr when none.  See DataHintKind. */
    Addr hintAddr = invalidAddr;

    /** Valid only when hintAddr is set (raw DataHintKind value). */
    std::uint8_t hintKind = 0;
};

} // namespace cgp

#endif // CGP_TRACE_DYNINST_HH
