/**
 * @file
 * InstructionExpander: replays a recorded trace against a CodeImage,
 * producing the dynamic instruction stream the CPU model consumes.
 *
 * The same trace expanded against the O5 image and the OM image
 * yields the two "binaries" the paper compares: identical dynamic
 * behaviour, different fetch-address streams (block adjacency decides
 * where jump instructions are needed, exactly like a linker-time
 * reorder changes taken-branch counts).
 *
 * The expander can simultaneously fill an ExecutionProfile — this is
 * the "profile run of instrumented code" OM requires (paper §5.1).
 */

#ifndef CGP_TRACE_EXPAND_HH
#define CGP_TRACE_EXPAND_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include <memory>

#include "codegen/layout.hh"
#include "codegen/profile.hh"
#include "codegen/registry.hh"
#include "trace/dyninst.hh"
#include "trace/events.hh"
#include "trace/source.hh"
#include "util/types.hh"

namespace cgp
{

struct ExpanderConfig
{
    /**
     * Dynamic-instruction scale applied to Work payloads.  The paper
     * reports that OM's link-time re-optimizations cut the dynamic
     * instruction count by 12% relative to O5; the harness sets 0.88
     * for OM images.
     */
    double instrScale = 1.0;

    /** Every k-th work instruction is a stack-local load. */
    unsigned stackLoadEvery = 5;

    /** Every k-th work instruction is a stack-local store. */
    unsigned stackStoreEvery = 17;

    /** Every k-th work instruction needs the multiplier FU. */
    unsigned mulEvery = 23;
};

class InstructionExpander
{
  public:
    InstructionExpander(const FunctionRegistry &registry,
                        const CodeImage &image,
                        const TraceBuffer &trace,
                        ExpanderConfig config = {});

    /** Streaming variant: pull events from @p source (not owned).
     *  The source may report Dry, in which case next() returns false
     *  without endOfStream() becoming true — the caller retries once
     *  the source has more to give. */
    InstructionExpander(const FunctionRegistry &registry,
                        const CodeImage &image,
                        TraceSource &source,
                        ExpanderConfig config = {});

    /** Attach a profile to be filled during expansion (may be null). */
    void setProfile(ExecutionProfile *profile) { profile_ = profile; }

    /**
     * Produce the next dynamic instruction.
     * @return false when the trace is exhausted — or, for a streaming
     *         source, when it is merely dry; check endOfStream() to
     *         tell the two apart.
     */
    bool next(DynInst &out);

    /** True once the underlying source reported End. */
    bool endOfStream() const { return ended_; }

    /**
     * Fast-forward expansion mode: replay @p n instructions,
     * discarding the output.  Because expansion is deterministic,
     * advancing a fresh expander by the number of instructions a
     * warmup consumed reconstructs its internal state exactly —
     * the replay half of warm-state checkpoint restore.
     * @return instructions actually advanced (short only when the
     *         trace ended or a streaming source ran dry).
     */
    std::uint64_t
    advance(std::uint64_t n)
    {
        DynInst scratch;
        std::uint64_t done = 0;
        while (done < n && next(scratch))
            ++done;
        return done;
    }

    /// @{ Expansion statistics (valid incrementally).
    std::uint64_t emittedInstrs() const { return emitted_; }
    std::uint64_t emittedCalls() const { return calls_; }
    std::uint64_t emittedBranches() const { return branches_; }
    std::uint64_t emittedJumps() const { return jumps_; }
    std::uint64_t emittedLoads() const { return loads_; }
    std::uint64_t emittedStores() const { return stores_; }

    /** Mean instructions between successive calls (paper §5.4: ~43). */
    double
    instrsPerCall() const
    {
        return calls_ == 0
            ? 0.0
            : static_cast<double>(emitted_)
                / static_cast<double>(calls_);
    }
    /// @}

  private:
    /** One live function invocation on a thread's stack. */
    struct Activation
    {
        FunctionId fid;
        std::uint32_t walkIdx;   ///< position in hotWalk
        std::uint16_t block;     ///< current block index
        std::uint16_t offset;    ///< instructions emitted in block
        std::uint16_t usable;    ///< slots before a cross is needed
        bool needJump;           ///< cross requires a jump instr
        std::uint8_t decisionRR; ///< round-robin decision site
        /**
         * Per-invocation path diversity: after the entry block, the
         * walk dispatches to this hot-walk position (successive
         * invocations exercise different parts of the body, the way
         * argument-dependent control flow does in real code).  ~0u
         * means no pending dispatch.
         */
        std::uint32_t pendingDispatch;

        /** Phase-stable path shape: skip parameters + counter. */
        std::uint32_t pathMix;
        std::uint16_t crossCount;
    };

    struct ThreadState
    {
        std::vector<Activation> stack;
        Addr stackBase = 0;
        std::uint64_t workCounter = 0;
    };

    /** Drain one more instruction from the current Work burst. */
    void emitWorkInstr();

    /** Process trace events until something is queued. */
    bool refill();

    void processCall(FunctionId callee);
    void processReturn();
    void processBranch(bool taken);
    void processMem(EventKind kind, Addr addr);

    /** Address of the next instruction slot of @p act. */
    Addr curPc(const Activation &act) const;

    /** Emit the cross jump / walk advance when a block is exhausted. */
    void crossIfNeeded(Activation &act);

    /** The walk position entered after the current block. */
    std::uint32_t nextWalkIdx(const Activation &act) const;

    /** The block the walk enters after the current one. */
    std::uint16_t nextWalkBlock(const Activation &act) const;

    /** Advance the hot walk (recording the profile edge). */
    void advanceWalk(Activation &act);

    /** Initialize block-position fields after entering a block. */
    void setupBlock(Activation &act);

    /** Queue a fully-formed instruction. */
    void push(const DynInst &inst);

    /** Fill common fields from the current activation. */
    DynInst makeInst(const Activation &act, InstKind kind);

    ThreadState &thread() { return threads_[curThread_]; }
    Activation *top();

    const FunctionRegistry &registry_;
    const CodeImage &image_;
    /** Owns the buffer adapter for the legacy constructor. */
    std::unique_ptr<BufferTraceSource> ownedSource_;
    TraceSource *source_;
    ExpanderConfig config_;
    ExecutionProfile *profile_ = nullptr;

    bool ended_ = false;
    std::uint64_t curThread_ = 0;
    /** Per-function invocation counters driving path dispatch. */
    std::unordered_map<FunctionId, std::uint32_t> invocations_;
    std::unordered_map<std::uint64_t, ThreadState> threads_;
    std::deque<DynInst> ready_;
    /** Hint payloads awaiting an instruction to ride on. */
    std::deque<std::uint64_t> pendingHints_;
    std::uint64_t workLeft_ = 0;

    std::uint64_t emitted_ = 0;
    std::uint64_t calls_ = 0;
    std::uint64_t branches_ = 0;
    std::uint64_t jumps_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;

    /** Sequential prologue blocks before the path dispatch. */
    static constexpr std::uint32_t dispatchAfterBlocks = 3;

    /** Synthetic data segment for thread stacks. */
    static constexpr Addr stackSegmentBase = 0x7f00'0000;
    static constexpr Addr stackSegmentStride = 0x10'0000;
};

} // namespace cgp

#endif // CGP_TRACE_EXPAND_HH
