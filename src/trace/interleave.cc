#include "trace/interleave.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace cgp
{

namespace
{

/** Instruction cost an event contributes to quantum metering. */
std::uint64_t
eventCost(TraceEvent e)
{
    switch (e.kind()) {
      case EventKind::Work:
        return e.payload();
      case EventKind::Switch:
      case EventKind::Hint:
        return 0;
      default:
        return 1;
    }
}

} // anonymous namespace

TraceBuffer
interleaveTraces(const std::vector<const TraceBuffer *> &threads,
                 const InterleaveConfig &config)
{
    cgp_assert(!threads.empty(), "no threads to interleave");
    cgp_assert(config.quantumInstrs > 0, "zero scheduling quantum");

    TraceBuffer out;
    TraceRecorder rec(out);
    Rng rng(0x5c4ed);

    std::vector<std::size_t> cursor(threads.size(), 0);
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        cgp_assert(threads[i] != nullptr, "null thread trace");
        if (!threads[i]->empty())
            runnable.push_back(i);
    }

    std::size_t last = ~std::size_t{0};
    while (!runnable.empty()) {
        // Event-driven servers do not schedule in lockstep: pick a
        // runnable thread pseudo-randomly (avoiding back-to-back
        // re-selection when possible) and give it a quantum whose
        // length varies, the way I/O waits and lock hand-offs vary.
        std::size_t pick = runnable[rng.nextBelow(runnable.size())];
        if (runnable.size() > 1 && pick == last)
            pick = runnable[rng.nextBelow(runnable.size())];
        last = pick;

        out.append(TraceEvent::make(EventKind::Switch, pick));
        if (config.onSwitch)
            config.onSwitch(rec);

        const std::uint64_t quantum = config.quantumInstrs / 2 +
            rng.nextBelow(config.quantumInstrs);
        std::uint64_t used = 0;
        const TraceBuffer &t = *threads[pick];
        while (cursor[pick] < t.size() && used < quantum) {
            const TraceEvent e = t.at(cursor[pick]++);
            used += eventCost(e);
            out.append(e);
        }
        if (cursor[pick] >= t.size()) {
            runnable.erase(std::find(runnable.begin(),
                                     runnable.end(), pick));
        }
    }
    return out;
}

} // namespace cgp
