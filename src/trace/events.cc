#include "trace/events.hh"

namespace cgp
{

const char *
dataHintKindName(DataHintKind kind)
{
    switch (kind) {
      case DataHintKind::BtreeChild:
        return "btree_child";
      case DataHintKind::BtreeNextLeaf:
        return "btree_next_leaf";
      case DataHintKind::HeapNextSlot:
        return "heap_next_slot";
      case DataHintKind::HeapNextPage:
        return "heap_next_page";
      case DataHintKind::HeapRecord:
        return "heap_record";
      default:
        return "?";
    }
}

} // namespace cgp
