/**
 * @file
 * Trace persistence: save a recorded TraceBuffer to a file and load
 * it back, so expensive workload recordings can be reused across
 * runs and shared between machines.
 *
 * Format: a 16-byte header (magic, version, event count) followed by
 * the packed 64-bit events in little-endian order, with a trailing
 * FNV-1a checksum of the event words.
 */

#ifndef CGP_TRACE_SERIALIZE_HH
#define CGP_TRACE_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/events.hh"

namespace cgp
{

/** Magic bytes identifying a trace file ("CGPTRACE" truncated). */
constexpr std::uint64_t traceFileMagic = 0x43475054'52414345ull;

/** Current on-disk format version. */
constexpr std::uint32_t traceFileVersion = 1;

/** Write @p trace to @p os. @return false on stream failure. */
bool saveTrace(const TraceBuffer &trace, std::ostream &os);

/** Write @p trace to @p path. @return false on I/O failure. */
bool saveTraceFile(const TraceBuffer &trace, const std::string &path);

/**
 * Read a trace from @p is.
 * @return false on stream failure, bad magic/version, or checksum
 *         mismatch (the buffer is left empty in that case).
 */
bool loadTrace(TraceBuffer &trace, std::istream &is);

/** Read a trace from @p path. */
bool loadTraceFile(TraceBuffer &trace, const std::string &path);

} // namespace cgp

#endif // CGP_TRACE_SERIALIZE_HH
