/**
 * @file
 * Trace-driven, cycle-level out-of-order core in the spirit of
 * SimpleScalar's sim-outorder, configured per paper Table 1:
 *
 *   fetch/decode/issue width 4; instruction-fetch queue and
 *   load/store queue of 16; 64 reservation stations; 4 integer
 *   adders + 2 multipliers; 4 CPU-side memory ports; 2-level
 *   2K-entry branch predictor.
 *
 * Fetch is fully modeled (per-line I-cache accesses, at most one
 * taken control transfer per cycle, queue backpressure, stall until
 * fill on an I-miss, redirect bubble on mispredicts) because the
 * phenomenon under study — instruction fetch stalls — lives there.
 * The back end models dependence chains with a register scoreboard
 * keyed by hashed architectural registers, FU contention, and D-cache
 * latency through the shared L2 FIFO.  Wrong-path fetch is
 * approximated by halting fetch from the mispredicted branch until
 * it resolves plus a redirect penalty (standard for trace-driven
 * simulation; see DESIGN.md §4.3).
 */

#ifndef CGP_CPU_CORE_HH
#define CGP_CPU_CORE_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>

#include "branch/predictor.hh"
#include "dprefetch/dprefetcher.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "trace/dyninst.hh"
#include "trace/expand.hh"
#include "util/stats.hh"
#include "util/types.hh"

namespace cgp
{

struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;

    unsigned fetchQueueSize = 16;
    unsigned lsqSize = 16;
    unsigned rsSize = 64;

    unsigned intAlus = 4;
    unsigned multipliers = 2;
    unsigned memPorts = 4;
    Cycle mulLatency = 3;

    /** Front-end refill bubble after a resolved mispredict. */
    Cycle redirectPenalty = 2;

    /** All I-fetches hit in one cycle (perf-Icache bars). */
    bool perfectICache = false;

    /** Stop after this many committed instructions (0 = whole trace). */
    std::uint64_t maxInstrs = 0;

    /**
     * Watchdog cycle budget (0 = none).  Unlike maxInstrs — a normal
     * early stop that still yields a result — exceeding this budget
     * throws TimeoutError: the run is classified as timed out, its
     * partial numbers are discarded, and the campaign engine records
     * the job as failed instead of persisting a truncated result.
     */
    std::uint64_t maxCycles = 0;

    /** Watchdog wall-clock budget in seconds (0 = none); same
     *  classification as maxCycles but against real time. */
    double maxWallSeconds = 0.0;

    BranchPredictorConfig branch;
};

class Core
{
  public:
    /**
     * @param stream Instruction source (already bound to a layout).
     * @param mem The Table 1 memory hierarchy.
     * @param prefetcher Active instruction prefetcher (may be null).
     * @param dprefetcher Active data prefetcher (may be null): fed
     *        demand accesses/misses from the load/store issue path
     *        and semantic hints carried by the instruction stream.
     */
    Core(InstructionExpander &stream, MemoryHierarchy &mem,
         InstrPrefetcher *prefetcher, const CoreConfig &config,
         DataPrefetcher *dprefetcher = nullptr);

    /** Run the trace to completion (or maxInstrs). */
    void run();

    /// @{ Incremental stepping (the multi-core server drives cores
    /// cycle by cycle; run() is beginRun + stepCycle to completion).
    /** Arm the wall-clock watchdog; call once before stepCycle. */
    void beginRun();
    /**
     * Simulate one cycle (watchdog checks included).  A core whose
     * stream is merely dry burns the cycle idling; a core whose
     * stream has ended and whose pipeline has drained becomes
     * finished.  No-op once finished.  Does NOT finalize the memory
     * hierarchy — the owner of shared memory state does that once
     * every core is finished.
     */
    void stepCycle();
    bool finished() const { return finished_; }
    /// @}

    /// @{ SMARTS-style sampling support (src/sample drives these).
    /**
     * Fast-forward functional warming: consume up to @p max_instrs
     * instructions from the stream without cycle-accurate timing.
     * With @p warm_state (the default) every consumed instruction
     * still updates the caches (via Cache::warmAccess), the branch
     * structures, the CGHC and the D-prefetch tables, with all
     * statistics counters frozen; without it the stream merely
     * advances (the deliberately-unwarmed perturbation mode the
     * validation suite uses).  Consumed instructions count into
     * warmedInstrs(), never into committedInstrs().
     * @return instructions actually consumed (less than the budget
     *         only when the stream ran dry or ended).
     */
    std::uint64_t fastForward(std::uint64_t max_instrs,
                              bool warm_state = true);

    /** Stop fetching new instructions (drain before a jump). */
    void suspendFetch(bool suspend) { fetchSuspended_ = suspend; }

    /** Pipeline empty: safe to fast-forward / cut a checkpoint. */
    bool
    drained() const
    {
        return rob_.empty() && fetchQueue_.empty();
    }

    /** Jump the cycle clock over a fast-forwarded region. */
    void advanceClock(Cycle skip) { now_ += skip; }

    /** Instructions consumed by fastForward (not committed). */
    std::uint64_t warmedInstrs() const { return warmedInstrs_; }

    /** Cycles fetch spent waiting on I-cache fills. */
    std::uint64_t
    fetchIcacheStallCycles() const
    {
        return fetchIcacheStallCycles_.value();
    }

    /** Mutable branch unit (checkpoint save/restore). */
    BranchUnit &branchUnit() { return branch_; }

    /** Fetch-line tracking state for checkpoints. */
    Addr lastFetchLine() const { return lastFetchLine_; }
    void setLastFetchLine(Addr line) { lastFetchLine_ = line; }
    /// @}

    Cycle cycles() const { return now_; }
    std::uint64_t committedInstrs() const { return committed_.value(); }
    std::uint64_t idleCycles() const { return idleCycles_.value(); }
    double
    ipc() const
    {
        return now_ == 0 ? 0.0
                         : static_cast<double>(committed_.value())
                             / static_cast<double>(now_);
    }

    const StatGroup &stats() const { return stats_; }
    const BranchUnit &branchUnit() const { return branch_; }

  private:
    struct RobEntry
    {
        DynInst inst;
        bool issued = false;
        Cycle doneCycle = 0;
        std::uint64_t seq = 0;
    };

    struct FetchEntry
    {
        DynInst inst;
        std::uint64_t seq = 0;
        bool blocksFetch = false; ///< mispredicted control transfer
    };

    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch();

    /** Predict + prefetcher hooks for a fetched control transfer. */
    bool predictControl(const DynInst &inst);

    bool peek(DynInst &out);
    void consume();

    /** Hashed pseudo-register ids for the dependence model. */
    static unsigned destReg(const DynInst &inst);
    static void srcRegs(const DynInst &inst, unsigned &a, unsigned &b);

    InstructionExpander &stream_;
    MemoryHierarchy &mem_;
    InstrPrefetcher *prefetcher_;
    DataPrefetcher *dprefetcher_;
    CoreConfig config_;
    BranchUnit branch_;

    Cycle now_ = 0;
    std::uint64_t seqGen_ = 0;

    std::deque<FetchEntry> fetchQueue_;
    std::deque<RobEntry> rob_;
    unsigned lsqUsed_ = 0;

    std::optional<DynInst> pending_;
    bool streamDone_ = false;
    bool finished_ = false;
    bool fetchSuspended_ = false;
    std::uint64_t warmedInstrs_ = 0;
    bool wallBudget_ = false;
    std::chrono::steady_clock::time_point wallStart_{};

    Addr lastFetchLine_ = invalidAddr;
    Cycle fetchResumeCycle_ = 0;
    /** Sequence number of the unresolved blocking mispredict. */
    std::optional<std::uint64_t> blockedOnSeq_;

    static constexpr unsigned numRegs = 32;
    Cycle regReady_[numRegs] = {};

    Counter committed_;
    Counter fetchIcacheStallCycles_;
    Counter fetchBranchStallCycles_;
    Counter fetchQueueFullCycles_;
    Counter robFullEvents_;
    Counter idleCycles_;
    StatGroup stats_;
};

} // namespace cgp

#endif // CGP_CPU_CORE_HH
