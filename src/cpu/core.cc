#include "cpu/core.hh"

#include <algorithm>
#include <chrono>
#include <string>

#include "util/logging.hh"
#include "util/watchdog.hh"

namespace cgp
{

Core::Core(InstructionExpander &stream, MemoryHierarchy &mem,
           InstrPrefetcher *prefetcher, const CoreConfig &config,
           DataPrefetcher *dprefetcher)
    : stream_(stream), mem_(mem), prefetcher_(prefetcher),
      dprefetcher_(dprefetcher), config_(config),
      branch_(config.branch), stats_("core")
{
    stats_.addCounter("committed_instrs", &committed_,
                      "instructions committed");
    stats_.addCounter("fetch_icache_stall_cycles",
                      &fetchIcacheStallCycles_,
                      "cycles fetch waited on an I-cache fill");
    stats_.addCounter("fetch_branch_stall_cycles",
                      &fetchBranchStallCycles_,
                      "cycles fetch waited on a mispredict resolve");
    stats_.addCounter("fetch_queue_full_cycles", &fetchQueueFullCycles_,
                      "cycles fetch stopped on a full fetch queue");
    stats_.addCounter("rob_full_events", &robFullEvents_,
                      "dispatch attempts blocked by full window");
    stats_.addCounter("idle_cycles", &idleCycles_,
                      "cycles with no fetch, issue or commit activity");
    stats_.addFormula(
        "ipc", [this]() { return ipc(); },
        "committed instructions per cycle");
    stats_.addChild(&branch_.stats());
}

bool
Core::peek(DynInst &out)
{
    if (!pending_.has_value()) {
        DynInst inst;
        if (streamDone_)
            return false;
        if (!stream_.next(inst)) {
            // A streaming source may be merely dry (another session
            // owns the next events); only a reported end is final.
            if (stream_.endOfStream())
                streamDone_ = true;
            return false;
        }
        pending_ = inst;
    }
    out = *pending_;
    return true;
}

void
Core::consume()
{
    cgp_assert(pending_.has_value(), "consume without peek");
    pending_.reset();
}

unsigned
Core::destReg(const DynInst &inst)
{
    switch (inst.kind) {
      case InstKind::Store:
      case InstKind::Jump:
      case InstKind::CondBranch:
      case InstKind::Return:
        return 0; // r0: always-ready sink
      default:
        break;
    }
    const std::uint64_t h = (inst.pc >> 2) * 0x9e3779b97f4a7c15ull;
    return 1 + static_cast<unsigned>((h >> 7) % (numRegs - 1));
}

void
Core::srcRegs(const DynInst &inst, unsigned &a, unsigned &b)
{
    const std::uint64_t h = (inst.pc >> 2) * 0xc2b2ae3d27d4eb4full;
    a = static_cast<unsigned>((h >> 11) % numRegs);
    b = static_cast<unsigned>((h >> 23) % numRegs);
}

void
Core::doCommit()
{
    unsigned done = 0;
    while (done < config_.commitWidth && !rob_.empty()) {
        RobEntry &head = rob_.front();
        if (!head.issued || head.doneCycle > now_)
            break;
        if (head.inst.kind == InstKind::Load ||
            head.inst.kind == InstKind::Store) {
            cgp_assert(lsqUsed_ > 0, "LSQ underflow");
            --lsqUsed_;
        }
        ++committed_;
        rob_.pop_front();
        ++done;
    }
}

void
Core::doIssue()
{
    unsigned issued = 0;
    unsigned alus = config_.intAlus;
    unsigned muls = config_.multipliers;
    unsigned ports = config_.memPorts;

    for (RobEntry &e : rob_) {
        if (issued >= config_.issueWidth)
            break;
        if (e.issued)
            continue;

        unsigned s1, s2;
        srcRegs(e.inst, s1, s2);
        const Cycle operands = std::max(regReady_[s1], regReady_[s2]);
        if (operands > now_)
            continue;

        Cycle done = 0;
        switch (e.inst.kind) {
          case InstKind::IntOp:
          case InstKind::Jump:
          case InstKind::CondBranch:
          case InstKind::Call:
          case InstKind::Return:
            if (alus == 0)
                continue;
            --alus;
            done = now_ + 1;
            break;
          case InstKind::MulOp:
            if (muls == 0)
                continue;
            --muls;
            done = now_ + config_.mulLatency;
            break;
          case InstKind::Load: {
            if (ports == 0)
                continue;
            --ports;
            const auto res = mem_.l1d().access(
                e.inst.memAddr, now_, AccessSource::DemandLoad,
                false);
            done = res.readyCycle;
            if (dprefetcher_ != nullptr) {
                const bool miss = !res.hit && !res.delayedHit;
                dprefetcher_->onAccess(e.inst.pc, e.inst.memAddr,
                                       false, miss, now_);
                if (miss) {
                    dprefetcher_->onMiss(e.inst.pc, e.inst.memAddr,
                                         now_);
                }
            }
            break;
          }
          case InstKind::Store: {
            if (ports == 0)
                continue;
            --ports;
            const auto res = mem_.l1d().access(
                e.inst.memAddr, now_, AccessSource::DemandStore,
                true);
            done = now_ + 1; // retires via the store buffer
            if (dprefetcher_ != nullptr) {
                const bool miss = !res.hit && !res.delayedHit;
                dprefetcher_->onAccess(e.inst.pc, e.inst.memAddr,
                                       true, miss, now_);
                if (miss) {
                    dprefetcher_->onMiss(e.inst.pc, e.inst.memAddr,
                                         now_);
                }
            }
            break;
          }
        }

        e.issued = true;
        e.doneCycle = done;
        ++issued;

        const unsigned d = destReg(e.inst);
        if (d != 0)
            regReady_[d] = std::max(regReady_[d], done);

        // A blocking mispredict resolves when it executes; fetch
        // restarts after the redirect bubble.
        if (blockedOnSeq_.has_value() && *blockedOnSeq_ == e.seq) {
            blockedOnSeq_.reset();
            fetchResumeCycle_ = std::max(fetchResumeCycle_,
                                         done + config_.redirectPenalty);
        }
    }
}

void
Core::doDispatch()
{
    unsigned moved = 0;
    while (moved < config_.dispatchWidth && !fetchQueue_.empty()) {
        if (rob_.size() >= config_.rsSize) {
            ++robFullEvents_;
            break;
        }
        FetchEntry &fe = fetchQueue_.front();
        const bool is_mem = fe.inst.kind == InstKind::Load ||
            fe.inst.kind == InstKind::Store;
        if (is_mem && lsqUsed_ >= config_.lsqSize)
            break;
        if (is_mem)
            ++lsqUsed_;
        RobEntry re;
        re.inst = fe.inst;
        re.seq = fe.seq;
        rob_.push_back(re);
        fetchQueue_.pop_front();
        ++moved;
    }
}

bool
Core::predictControl(const DynInst &inst)
{
    BranchUnit::Prediction p;
    bool mispredicted = false;

    switch (inst.kind) {
      case InstKind::CondBranch: {
        p = branch_.predictConditional(inst.pc, inst.taken,
                                       inst.target);
        const bool dir_wrong = p.taken != inst.taken;
        const bool tgt_wrong = inst.taken && p.taken &&
            (!p.targetKnown || p.target != inst.target);
        mispredicted = dir_wrong || tgt_wrong;
        break;
      }
      case InstKind::Jump:
        p = branch_.predictJump(inst.pc, inst.target);
        mispredicted = !p.targetKnown || p.target != inst.target;
        break;
      case InstKind::Call:
        p = branch_.predictCall(inst.pc, inst.target, inst.funcStart);
        mispredicted = !p.targetKnown || p.target != inst.target;
        // CGP's call accesses use the *predicted* target (§3.2); no
        // prediction, no access.
        if (prefetcher_ != nullptr && p.targetKnown) {
            prefetcher_->onCall(p.target, inst.funcStart, now_);
        }
        break;
      case InstKind::Return:
        p = branch_.predictReturn(inst.pc, inst.target);
        mispredicted = !p.targetKnown || p.target != inst.target;
        // The modified RAS supplies the returnee's start (§3.2).
        if (prefetcher_ != nullptr) {
            prefetcher_->onReturn(p.callerFuncStart, inst.funcStart,
                                  now_);
        }
        break;
      default:
        cgp_panic("predictControl on non-control instruction");
    }
    return mispredicted;
}

void
Core::doFetch()
{
    // Sampling drain: checked before any stall accounting so a
    // suspended fetch stage leaves every counter untouched.
    if (fetchSuspended_)
        return;
    if (blockedOnSeq_.has_value()) {
        ++fetchBranchStallCycles_;
        return;
    }
    if (now_ < fetchResumeCycle_) {
        ++fetchIcacheStallCycles_;
        return;
    }

    unsigned fetched = 0;
    while (fetched < config_.fetchWidth) {
        if (fetchQueue_.size() >= config_.fetchQueueSize) {
            if (fetched == 0)
                ++fetchQueueFullCycles_;
            return;
        }

        DynInst inst;
        if (!peek(inst))
            return;

        // Per-line I-cache access on line change.
        const Addr line = mem_.l1i().lineAlign(inst.pc);
        if (!config_.perfectICache && line != lastFetchLine_) {
            const auto res = mem_.l1i().access(
                line, now_, AccessSource::DemandFetch, false);
            lastFetchLine_ = line;
            if (prefetcher_ != nullptr)
                prefetcher_->onFetchLine(line, now_);
            if (!res.hit) {
                // Stall until the fill arrives; the instruction is
                // consumed when fetch resumes.
                fetchResumeCycle_ = res.readyCycle;
                ++fetchIcacheStallCycles_;
                return;
            }
        }

        consume();

        // Semantic hints ride the instruction stream and are
        // dispatched at fetch — well before the consuming load
        // issues, giving the prefetch its lead time.
        if (dprefetcher_ != nullptr && inst.hintAddr != invalidAddr) {
            dprefetcher_->onHint(
                static_cast<DataHintKind>(inst.hintKind),
                inst.hintAddr, now_);
        }

        FetchEntry fe;
        fe.inst = inst;
        fe.seq = ++seqGen_;

        bool end_group = false;
        if (isControl(inst.kind)) {
            const bool mispredicted = predictControl(inst);
            if (mispredicted) {
                fe.blocksFetch = true;
                blockedOnSeq_ = fe.seq;
                end_group = true;
            } else if (inst.taken) {
                // Can't fetch past a predicted-taken transfer in the
                // same cycle.
                end_group = true;
            }
        }

        fetchQueue_.push_back(fe);
        ++fetched;
        if (end_group)
            return;
    }
}

void
Core::beginRun()
{
    wallBudget_ = config_.maxWallSeconds > 0.0;
    wallStart_ = std::chrono::steady_clock::now();
}

std::uint64_t
Core::fastForward(std::uint64_t max_instrs, bool warm_state)
{
    if (warm_state) {
        // Freeze every statistic while predictive state trains:
        // caches suppress prefetch issue, the branch unit and CGHC
        // stop counting, and demand traffic goes through the
        // counter-free warm path.
        mem_.setWarming(true);
        branch_.setWarming(true);
        if (prefetcher_ != nullptr)
            prefetcher_->setWarming(true);
    }

    std::uint64_t done = 0;
    DynInst inst;
    while (done < max_instrs && peek(inst)) {
        consume();
        if (warm_state) {
            const Addr line = mem_.l1i().lineAlign(inst.pc);
            if (!config_.perfectICache && line != lastFetchLine_) {
                mem_.l1i().warmAccess(line, false);
                lastFetchLine_ = line;
                if (prefetcher_ != nullptr)
                    prefetcher_->onFetchLine(line, now_);
            }
            if (dprefetcher_ != nullptr &&
                inst.hintAddr != invalidAddr) {
                dprefetcher_->onHint(
                    static_cast<DataHintKind>(inst.hintKind),
                    inst.hintAddr, now_);
            }
            if (isControl(inst.kind)) {
                // Mispredictions cost nothing here; the branch
                // structures and the CGHC still train.
                (void)predictControl(inst);
            }
            if (inst.kind == InstKind::Load ||
                inst.kind == InstKind::Store) {
                const bool is_write = inst.kind == InstKind::Store;
                const bool miss =
                    mem_.l1d().warmAccess(inst.memAddr, is_write);
                if (dprefetcher_ != nullptr) {
                    dprefetcher_->onAccess(inst.pc, inst.memAddr,
                                           is_write, miss, now_);
                    if (miss) {
                        dprefetcher_->onMiss(inst.pc, inst.memAddr,
                                             now_);
                    }
                }
            }
        }
        ++done;
        ++warmedInstrs_;
    }

    if (warm_state) {
        mem_.setWarming(false);
        branch_.setWarming(false);
        if (prefetcher_ != nullptr)
            prefetcher_->setWarming(false);
    }
    return done;
}

void
Core::stepCycle()
{
    if (finished_)
        return;
    if (config_.maxInstrs != 0 &&
        committed_.value() >= config_.maxInstrs) {
        finished_ = true;
        return;
    }
    // Watchdog: the cycle budget is deterministic (a livelocked
    // config times out at the same cycle everywhere); the
    // wall-clock budget and the cancel token are checked on a
    // coarse stride so the hot loop stays cheap.
    if (config_.maxCycles != 0 && now_ >= config_.maxCycles) {
        throw TimeoutError(
            "simulation exceeded cycle budget of " +
            std::to_string(config_.maxCycles) + " cycles");
    }
    if ((now_ & 0xFFFu) == 0) {
        if (cancelRequested()) {
            throw CancelledError(
                "simulation cancelled by watchdog at cycle " +
                std::to_string(now_));
        }
        if (wallBudget_ &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart_)
                    .count() > config_.maxWallSeconds) {
            throw TimeoutError(
                "simulation exceeded wall-clock budget of " +
                std::to_string(config_.maxWallSeconds) +
                " seconds");
        }
    }
    ++now_;
    mem_.tick(now_);

    const auto before = committed_.value();
    doCommit();
    doIssue();
    doDispatch();
    doFetch();

    // Demand priority on the shared L2 port: only after every
    // demand access of this cycle has claimed its slot may the
    // arbiter issue deferred prefetches into what is left.
    mem_.drainDeferred(now_);

    if (committed_.value() == before && fetchQueue_.empty() &&
        rob_.empty()) {
        DynInst probe;
        if (!peek(probe) && pending_ == std::nullopt) {
            if (streamDone_)
                finished_ = true;
            else
                ++idleCycles_; // dry source: the core waits
        } else {
            ++idleCycles_;
        }
    }
}

void
Core::run()
{
    beginRun();
    while (!finished_)
        stepCycle();
    mem_.finalize();
}

} // namespace cgp
