#include "dprefetch/semantic.hh"

#include <stdexcept>

#include "util/bitops.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp
{

SemanticDataPrefetcher::SemanticDataPrefetcher(
    Cache &l1d, const SemanticConfig &config)
    : l1d_(l1d), config_(config),
      recent_(config.dedupEntries, invalidAddr)
{
    cgp_assert(config_.lines > 0 && config_.btreeLines > 0,
               "semantic prefetcher must cover at least one line");
    cgp_assert(config_.dedupEntries > 0 &&
                   isPowerOfTwo(config_.dedupEntries),
               "dedup filter size must be a power of two");
}

bool
SemanticDataPrefetcher::recentlyHinted(Addr line)
{
    const std::size_t idx = static_cast<std::size_t>(
        (line / l1d_.lineBytes()) & (config_.dedupEntries - 1));
    if (recent_[idx] == line)
        return true;
    recent_[idx] = line;
    return false;
}

void
SemanticDataPrefetcher::onHint(DataHintKind kind, Addr addr,
                               Cycle now)
{
    ++hintsSeen_;
    const unsigned span = (kind == DataHintKind::BtreeChild ||
                           kind == DataHintKind::BtreeNextLeaf)
        ? config_.btreeLines
        : config_.lines;

    const Addr base = l1d_.lineAlign(addr);
    for (unsigned i = 0; i < span; ++i) {
        const Addr line = base +
            static_cast<Addr>(i) * l1d_.lineBytes();
        if (recentlyHinted(line)) {
            ++linesDeduped_;
            continue;
        }
        ++requested_;
        l1d_.prefetch(line, now, AccessSource::DataPrefetch);
    }
}

Json
SemanticDataPrefetcher::saveState() const
{
    Json j = Json::object();
    j.set("entries", static_cast<std::uint64_t>(recent_.size()));
    Json lines = Json::array();
    for (Addr line : recent_)
        lines.push(line);
    j.set("recent", std::move(lines));
    return j;
}

void
SemanticDataPrefetcher::loadState(const Json &state)
{
    if (state.at("entries").asUint() != recent_.size())
        throw std::runtime_error(
            "semantic checkpoint dedup-filter size mismatch");
    const Json &lines = state.at("recent");
    if (lines.size() != recent_.size())
        throw std::runtime_error(
            "semantic checkpoint recent-array size mismatch");
    for (std::size_t i = 0; i < recent_.size(); ++i)
        recent_[i] = lines[i].asUint();
}

} // namespace cgp
