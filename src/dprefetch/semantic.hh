/**
 * @file
 * DB-semantic data prefetcher (GrASP-style).
 *
 * The storage manager knows which page it will touch next — a B-tree
 * descent computes the child PageId several hundred instructions
 * before fixing it, a scan cursor knows its next slot — and records
 * that knowledge as Hint events in the trace (TraceRecorder::hint).
 * At simulation time the core delivers each hint to this prefetcher,
 * which covers the hinted region with line prefetches.  A small
 * recent-hint filter deduplicates the hint stream: iterator advance
 * paths re-announce the same page repeatedly, and re-prefetching a
 * line that was hinted moments ago only burns L2 port bandwidth.
 */

#ifndef CGP_DPREFETCH_SEMANTIC_HH
#define CGP_DPREFETCH_SEMANTIC_HH

#include <cstdint>
#include <vector>

#include "dprefetch/dprefetcher.hh"

namespace cgp
{

class Json;

struct SemanticConfig
{
    /** Lines prefetched per heap-record / scan hint. */
    unsigned lines = 2;

    /** Lines per B-tree node hint (header + key array). */
    unsigned btreeLines = 4;

    /** Recently hinted lines remembered by the dedup filter. */
    unsigned dedupEntries = 64;
};

class SemanticDataPrefetcher : public DataPrefetcher
{
  public:
    SemanticDataPrefetcher(Cache &l1d,
                           const SemanticConfig &config = {});

    void onHint(DataHintKind kind, Addr addr, Cycle now) override;

    const char *name() const override { return "semantic"; }

    /// @{ Introspection for tests.
    std::uint64_t hintsSeen() const { return hintsSeen_; }
    /** Lines skipped by the recent-hint dedup filter. */
    std::uint64_t linesDeduped() const { return linesDeduped_; }
    std::uint64_t prefetchesRequested() const { return requested_; }
    /// @}

    /// @{ Warm-state checkpointing (DESIGN.md §11.3): the dedup
    /// filter is predictive state; the introspection counters are
    /// not serialized.
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    /** True (and remembered) if @p line was hinted recently. */
    bool recentlyHinted(Addr line);

    Cache &l1d_;
    SemanticConfig config_;
    /** Direct-mapped filter of recently hinted line addresses. */
    std::vector<Addr> recent_;
    std::uint64_t hintsSeen_ = 0;
    std::uint64_t linesDeduped_ = 0;
    std::uint64_t requested_ = 0;
};

} // namespace cgp

#endif // CGP_DPREFETCH_SEMANTIC_HH
