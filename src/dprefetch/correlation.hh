/**
 * @file
 * Markov / access-to-miss correlation data prefetcher (AMC-style).
 *
 * A bounded, set-associative table maps a miss line to the lines
 * that missed right after it, in MRU order.  On a demand miss the
 * table records the (previous miss -> this miss) transition, then
 * prefetches up to `degree` recorded successors of the current miss;
 * with `depth` > 1 the lookup chains through the most-recent
 * successor to run further ahead of the miss stream.  Pointer-chasing
 * access patterns — the premise the paper applies to instruction
 * fetch — repeat their miss sequences, which is exactly what this
 * table captures on the data side.
 */

#ifndef CGP_DPREFETCH_CORRELATION_HH
#define CGP_DPREFETCH_CORRELATION_HH

#include <cstdint>
#include <vector>

#include "dprefetch/dprefetcher.hh"

namespace cgp
{

class Json;

struct CorrelationConfig
{
    /** Total table entries (trigger lines tracked). */
    unsigned entries = 1024;

    /** Set associativity of the table. */
    unsigned assoc = 4;

    /** Successor lines remembered per trigger (MRU order). */
    unsigned successors = 4;

    /** Successors prefetched per lookup. */
    unsigned degree = 2;

    /** Chained lookups per miss (1 = direct successors only). */
    unsigned depth = 1;
};

class CorrelationDataPrefetcher : public DataPrefetcher
{
  public:
    CorrelationDataPrefetcher(Cache &l1d,
                              const CorrelationConfig &config = {});

    void onMiss(Addr pc, Addr addr, Cycle now) override;

    const char *name() const override { return "corr"; }

    /// @{ Introspection for tests.
    std::size_t entryCount() const;
    /** Recorded successors of @p line (MRU first); empty if absent. */
    std::vector<Addr> successorsOf(Addr line) const;
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t prefetchesRequested() const { return requested_; }
    /// @}

    /// @{ Warm-state checkpointing of the correlation (AMC) table
    /// and the last-miss trigger.
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    struct Entry
    {
        Addr tag = invalidAddr;
        std::vector<Addr> succ; ///< MRU-ordered successor lines
        std::uint64_t lru = 0;
        bool valid = false;
    };

    std::size_t setBase(Addr line) const;
    Entry *find(Addr line);
    const Entry *find(Addr line) const;
    Entry &findOrAlloc(Addr line);
    void record(Addr prev_line, Addr line);

    Cache &l1d_;
    CorrelationConfig config_;
    std::uint32_t sets_;
    std::vector<Entry> table_;
    Addr lastMissLine_ = invalidAddr;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t requested_ = 0;
};

} // namespace cgp

#endif // CGP_DPREFETCH_CORRELATION_HH
