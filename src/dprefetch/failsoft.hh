/**
 * @file
 * Fail-soft data-prefetcher decorator — the D-side twin of
 * FailSoftPrefetcher.  Data prefetching is an optimisation, so a
 * fault inside a prefetcher must never take down the simulated
 * machine: on the first exception from any hook the wrapper logs an
 * error event, permanently disables the inner prefetcher, and the
 * run continues without data prefetching (graceful degradation).
 */

#ifndef CGP_DPREFETCH_FAILSOFT_HH
#define CGP_DPREFETCH_FAILSOFT_HH

#include <memory>
#include <string>

#include "dprefetch/dprefetcher.hh"

namespace cgp
{

class FailSoftDataPrefetcher : public DataPrefetcher
{
  public:
    explicit FailSoftDataPrefetcher(
        std::unique_ptr<DataPrefetcher> inner);

    void onAccess(Addr pc, Addr addr, bool is_write, bool miss,
                  Cycle now) override;
    void onMiss(Addr pc, Addr addr, Cycle now) override;
    void onHint(DataHintKind kind, Addr addr, Cycle now) override;

    const char *name() const override;

    /** True once the inner prefetcher has been disabled. */
    bool degraded() const { return degraded_; }

    /** What disabled it (empty while healthy). */
    const std::string &reason() const { return reason_; }

    /** The wrapped engine (for checkpoint state access). */
    DataPrefetcher *inner() { return inner_.get(); }

  private:
    void disable(const char *hook, const std::string &why);

    std::unique_ptr<DataPrefetcher> inner_;
    bool degraded_ = false;
    std::string reason_;
};

} // namespace cgp

#endif // CGP_DPREFETCH_FAILSOFT_HH
