/**
 * @file
 * Data prefetcher interface — the D-side counterpart of
 * InstrPrefetcher.
 *
 * The core's load/store issue path notifies the active data
 * prefetcher of every demand access to the L1-D (with its PC and
 * hit/miss outcome) and of every true miss; additionally, a semantic
 * channel delivers hints the workload recorded while it executed
 * (B-tree child nodes, next scan slots — see DataHintKind).
 * Prefetchers respond by issuing line prefetches into the L1 D-cache
 * with AccessSource::DataPrefetch, so D-side useful/late/polluting
 * classification stays separate from the I-side prefetchers'.
 *
 * Downstream users can implement this interface to plug their own
 * data prefetcher into the simulator, exactly as with the I-side
 * interface (see examples/custom_prefetcher.cpp).
 */

#ifndef CGP_DPREFETCH_DPREFETCHER_HH
#define CGP_DPREFETCH_DPREFETCHER_HH

#include "mem/cache.hh"
#include "trace/events.hh"
#include "util/types.hh"

namespace cgp
{

class DataPrefetcher
{
  public:
    virtual ~DataPrefetcher() = default;

    /**
     * A demand load/store issued to the L1-D.
     * @param pc address of the load/store instruction
     * @param addr data address accessed
     * @param is_write true for stores
     * @param miss true when the access missed array and MSHRs
     */
    virtual void onAccess(Addr pc, Addr addr, bool is_write,
                          bool miss, Cycle now)
    {
        (void)pc;
        (void)addr;
        (void)is_write;
        (void)miss;
        (void)now;
    }

    /** A demand access missed the L1-D array and MSHRs. */
    virtual void onMiss(Addr pc, Addr addr, Cycle now)
    {
        (void)pc;
        (void)addr;
        (void)now;
    }

    /** A semantic hint recorded by the workload (storage manager). */
    virtual void onHint(DataHintKind kind, Addr addr, Cycle now)
    {
        (void)kind;
        (void)addr;
        (void)now;
    }

    virtual const char *name() const = 0;
};

/** Baseline: no data prefetching. */
class NullDataPrefetcher : public DataPrefetcher
{
  public:
    const char *name() const override { return "none"; }
};

} // namespace cgp

#endif // CGP_DPREFETCH_DPREFETCHER_HH
