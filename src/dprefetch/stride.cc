#include "dprefetch/stride.hh"

#include <stdexcept>

#include "util/json.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace cgp
{

StrideDataPrefetcher::StrideDataPrefetcher(Cache &l1d,
                                           const StrideConfig &config)
    : l1d_(l1d), config_(config), table_(config.tableEntries)
{
    cgp_assert(config_.tableEntries > 0, "stride table needs entries");
    cgp_assert(isPowerOfTwo(config_.tableEntries),
               "stride table size must be a power of two");
    cgp_assert(config_.promoteAt > 0 &&
                   config_.promoteAt <= config_.maxConfidence,
               "promoteAt must lie within the confidence range");
}

std::size_t
StrideDataPrefetcher::indexOf(Addr pc) const
{
    // Instructions are 4-byte aligned; drop the low bits before
    // indexing so neighbouring PCs spread across the table.
    return static_cast<std::size_t>(
        (pc >> 2) & (config_.tableEntries - 1));
}

unsigned
StrideDataPrefetcher::confidenceFor(Addr pc) const
{
    const Entry &e = table_[indexOf(pc)];
    return e.pc == pc ? e.confidence : 0;
}

void
StrideDataPrefetcher::onAccess(Addr pc, Addr addr, bool is_write,
                               bool miss, Cycle now)
{
    (void)is_write;
    (void)miss;

    Entry &e = table_[indexOf(pc)];
    if (e.pc != pc) {
        // Tag mismatch: reallocate the slot to this PC.
        e.pc = pc;
        e.lastAddr = addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    const std::int64_t delta = static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(e.lastAddr);
    e.lastAddr = addr;
    if (delta == 0)
        return;

    if (delta == e.stride) {
        if (e.confidence < config_.maxConfidence)
            ++e.confidence;
    } else {
        // Demotion: lose confidence first; only retrain the stride
        // once it reaches zero, so one stray access does not wipe a
        // well-established stream.
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
        return;
    }

    if (e.confidence < config_.promoteAt)
        return;

    // Run ahead of the stream: prefetch the next `degree` strides,
    // skipping targets that land on the line being accessed (small
    // strides revisit it).
    const Addr cur_line = l1d_.lineAlign(addr);
    Addr prev_line = cur_line;
    for (unsigned k = 1; k <= config_.degree; ++k) {
        const Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(addr) +
            e.stride * static_cast<std::int64_t>(k));
        const Addr line = l1d_.lineAlign(target);
        if (line == cur_line || line == prev_line)
            continue;
        prev_line = line;
        ++requested_;
        l1d_.prefetch(line, now, AccessSource::DataPrefetch);
    }
}

Json
StrideDataPrefetcher::saveState() const
{
    Json j = Json::object();
    j.set("entries",
          static_cast<std::uint64_t>(table_.size()));
    Json pcs = Json::array();
    Json lasts = Json::array();
    Json strides = Json::array();
    Json confs = Json::array();
    for (const Entry &e : table_) {
        pcs.push(e.pc);
        lasts.push(e.lastAddr);
        strides.push(static_cast<long long>(e.stride));
        confs.push(e.confidence);
    }
    j.set("pc", std::move(pcs));
    j.set("last_addr", std::move(lasts));
    j.set("stride", std::move(strides));
    j.set("confidence", std::move(confs));
    return j;
}

void
StrideDataPrefetcher::loadState(const Json &state)
{
    if (state.at("entries").asUint() != table_.size())
        throw std::runtime_error("stride table size mismatch");
    const Json &pcs = state.at("pc");
    const Json &lasts = state.at("last_addr");
    const Json &strides = state.at("stride");
    const Json &confs = state.at("confidence");
    if (pcs.size() != table_.size() || lasts.size() != table_.size() ||
        strides.size() != table_.size() ||
        confs.size() != table_.size()) {
        throw std::runtime_error("stride table field mismatch");
    }
    for (std::size_t i = 0; i < table_.size(); ++i) {
        table_[i].pc = pcs[i].asUint();
        table_[i].lastAddr = lasts[i].asUint();
        table_[i].stride = strides[i].asInt();
        table_[i].confidence =
            static_cast<unsigned>(confs[i].asUint());
    }
}

} // namespace cgp
