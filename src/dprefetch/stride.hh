/**
 * @file
 * Per-PC stream/stride data prefetcher.
 *
 * A direct-mapped table indexed by load/store PC tracks the last
 * address and observed stride of each static memory instruction,
 * with a saturating confidence counter.  Once a stride repeats often
 * enough the prefetcher runs ahead of the access stream by `degree`
 * strides.  This is the classic tagged stride prefetcher
 * (Chen/Baer); in the DBMS traces it covers the sequential component
 * of scans (records advance by a fixed tuple size within a page).
 */

#ifndef CGP_DPREFETCH_STRIDE_HH
#define CGP_DPREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "dprefetch/dprefetcher.hh"

namespace cgp
{

class Json;

struct StrideConfig
{
    /** Direct-mapped table entries (per-PC). */
    unsigned tableEntries = 256;

    /** Strides prefetched ahead once confident. */
    unsigned degree = 2;

    /** Confidence needed before prefetches issue. */
    unsigned promoteAt = 2;

    /** Saturation cap of the confidence counter. */
    unsigned maxConfidence = 3;
};

class StrideDataPrefetcher : public DataPrefetcher
{
  public:
    StrideDataPrefetcher(Cache &l1d, const StrideConfig &config = {});

    void onAccess(Addr pc, Addr addr, bool is_write, bool miss,
                  Cycle now) override;

    const char *name() const override { return "stride"; }

    /// @{ Introspection for tests.
    /** Confidence of the entry currently owned by @p pc (0 when the
     *  slot is empty or held by another PC). */
    unsigned confidenceFor(Addr pc) const;
    std::uint64_t prefetchesRequested() const { return requested_; }
    /// @}

    /// @{ Warm-state checkpointing of the per-PC table.
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

  private:
    struct Entry
    {
        Addr pc = invalidAddr;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    std::size_t indexOf(Addr pc) const;

    Cache &l1d_;
    StrideConfig config_;
    std::vector<Entry> table_;
    std::uint64_t requested_ = 0;
};

} // namespace cgp

#endif // CGP_DPREFETCH_STRIDE_HH
