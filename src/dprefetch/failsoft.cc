#include "dprefetch/failsoft.hh"

#include "util/logging.hh"

namespace cgp
{

FailSoftDataPrefetcher::FailSoftDataPrefetcher(
    std::unique_ptr<DataPrefetcher> inner)
    : inner_(std::move(inner))
{
    cgp_assert(inner_ != nullptr,
               "FailSoftDataPrefetcher needs an inner prefetcher");
}

void
FailSoftDataPrefetcher::disable(const char *hook,
                                const std::string &why)
{
    degraded_ = true;
    reason_ = why;
    cgp_error("data prefetcher '", inner_->name(), "' faulted in ",
              hook, " (", why, "); continuing without data prefetch");
}

void
FailSoftDataPrefetcher::onAccess(Addr pc, Addr addr, bool is_write,
                                 bool miss, Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onAccess(pc, addr, is_write, miss, now);
    } catch (const std::exception &e) {
        disable("onAccess", e.what());
    }
}

void
FailSoftDataPrefetcher::onMiss(Addr pc, Addr addr, Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onMiss(pc, addr, now);
    } catch (const std::exception &e) {
        disable("onMiss", e.what());
    }
}

void
FailSoftDataPrefetcher::onHint(DataHintKind kind, Addr addr,
                               Cycle now)
{
    if (degraded_)
        return;
    try {
        inner_->onHint(kind, addr, now);
    } catch (const std::exception &e) {
        disable("onHint", e.what());
    }
}

const char *
FailSoftDataPrefetcher::name() const
{
    return degraded_ ? "none (degraded)" : inner_->name();
}

} // namespace cgp
