#include "dprefetch/correlation.hh"

#include <stdexcept>

#include "util/json.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace cgp
{

CorrelationDataPrefetcher::CorrelationDataPrefetcher(
    Cache &l1d, const CorrelationConfig &config)
    : l1d_(l1d), config_(config),
      sets_(config.entries / config.assoc),
      table_(static_cast<std::size_t>(sets_) * config.assoc)
{
    cgp_assert(config_.assoc > 0 && config_.entries >= config_.assoc,
               "correlation table smaller than one set");
    cgp_assert(config_.entries % config_.assoc == 0,
               "correlation entries not divisible into sets");
    cgp_assert(isPowerOfTwo(sets_),
               "correlation set count must be a power of two");
    cgp_assert(config_.successors > 0, "need at least one successor");
    cgp_assert(config_.depth > 0, "depth must be at least 1");
}

std::size_t
CorrelationDataPrefetcher::setBase(Addr line) const
{
    const std::uint64_t h =
        (line / l1d_.lineBytes()) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>((h >> 17) & (sets_ - 1)) *
        config_.assoc;
}

CorrelationDataPrefetcher::Entry *
CorrelationDataPrefetcher::find(Addr line)
{
    const std::size_t base = setBase(line);
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Entry &e = table_[base + w];
        if (e.valid && e.tag == line)
            return &e;
    }
    return nullptr;
}

const CorrelationDataPrefetcher::Entry *
CorrelationDataPrefetcher::find(Addr line) const
{
    return const_cast<CorrelationDataPrefetcher *>(this)->find(line);
}

CorrelationDataPrefetcher::Entry &
CorrelationDataPrefetcher::findOrAlloc(Addr line)
{
    if (Entry *e = find(line); e != nullptr) {
        e->lru = ++tick_;
        return *e;
    }
    const std::size_t base = setBase(line);
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Entry &e = table_[base + w];
        if (!e.valid) {
            victim = base + w;
            break;
        }
        if (e.lru < table_[victim].lru)
            victim = base + w;
    }
    Entry &v = table_[victim];
    if (v.valid)
        ++evictions_;
    v.valid = true;
    v.tag = line;
    v.succ.clear();
    v.lru = ++tick_;
    return v;
}

void
CorrelationDataPrefetcher::record(Addr prev_line, Addr line)
{
    Entry &e = findOrAlloc(prev_line);
    auto it = std::find(e.succ.begin(), e.succ.end(), line);
    if (it != e.succ.end())
        e.succ.erase(it);
    e.succ.insert(e.succ.begin(), line);
    if (e.succ.size() > config_.successors)
        e.succ.resize(config_.successors);
}

void
CorrelationDataPrefetcher::onMiss(Addr pc, Addr addr, Cycle now)
{
    (void)pc;
    const Addr line = l1d_.lineAlign(addr);

    if (lastMissLine_ != invalidAddr && lastMissLine_ != line)
        record(lastMissLine_, line);
    lastMissLine_ = line;

    // Prefetch recorded successors, chaining through the most-recent
    // successor for deeper lookahead.
    Addr key = line;
    for (unsigned d = 0; d < config_.depth; ++d) {
        const Entry *e = find(key);
        if (e == nullptr || e->succ.empty())
            break;
        const unsigned n = std::min<unsigned>(
            config_.degree,
            static_cast<unsigned>(e->succ.size()));
        for (unsigned i = 0; i < n; ++i) {
            ++requested_;
            l1d_.prefetch(e->succ[i], now,
                          AccessSource::DataPrefetch);
        }
        key = e->succ.front();
        if (key == line)
            break;
    }
}

std::size_t
CorrelationDataPrefetcher::entryCount() const
{
    std::size_t n = 0;
    for (const Entry &e : table_)
        n += e.valid ? 1 : 0;
    return n;
}

std::vector<Addr>
CorrelationDataPrefetcher::successorsOf(Addr line) const
{
    const Entry *e = find(line);
    return e == nullptr ? std::vector<Addr>{} : e->succ;
}

Json
CorrelationDataPrefetcher::saveState() const
{
    Json j = Json::object();
    j.set("entries",
          static_cast<std::uint64_t>(table_.size()));
    j.set("tick", tick_);
    j.set("last_miss_line", lastMissLine_);
    Json entries = Json::array();
    for (const Entry &e : table_) {
        Json je = Json::object();
        je.set("tag", e.valid ? Json(e.tag) : Json(nullptr));
        je.set("lru", e.lru);
        Json succ = Json::array();
        for (Addr a : e.succ)
            succ.push(a);
        je.set("succ", std::move(succ));
        entries.push(std::move(je));
    }
    j.set("table", std::move(entries));
    return j;
}

void
CorrelationDataPrefetcher::loadState(const Json &state)
{
    if (state.at("entries").asUint() != table_.size())
        throw std::runtime_error("correlation table size mismatch");
    const Json &entries = state.at("table");
    if (entries.size() != table_.size())
        throw std::runtime_error("correlation table field mismatch");
    tick_ = state.at("tick").asUint();
    lastMissLine_ = state.at("last_miss_line").asUint();
    for (std::size_t i = 0; i < table_.size(); ++i) {
        Entry &e = table_[i];
        const Json &je = entries[i];
        e.valid = !je.at("tag").isNull();
        e.tag = e.valid ? je.at("tag").asUint() : invalidAddr;
        e.lru = je.at("lru").asUint();
        e.succ.clear();
        for (const Json &a : je.at("succ").items())
            e.succ.push_back(a.asUint());
    }
}

} // namespace cgp
