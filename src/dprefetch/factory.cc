#include "dprefetch/factory.hh"

#include "util/logging.hh"

namespace cgp
{

const char *
dataPrefetchKindName(DataPrefetchKind kind)
{
    switch (kind) {
      case DataPrefetchKind::None:
        return "none";
      case DataPrefetchKind::Stride:
        return "stride";
      case DataPrefetchKind::Correlation:
        return "corr";
      case DataPrefetchKind::Semantic:
        return "semantic";
      case DataPrefetchKind::Combined:
        return "combined";
    }
    return "?";
}

MultiDataPrefetcher::MultiDataPrefetcher(
    std::vector<std::unique_ptr<DataPrefetcher>> parts)
    : parts_(std::move(parts))
{
    cgp_assert(!parts_.empty(), "combined prefetcher needs parts");
    for (const auto &p : parts_)
        cgp_assert(p != nullptr, "null part in combined prefetcher");
}

void
MultiDataPrefetcher::onAccess(Addr pc, Addr addr, bool is_write,
                              bool miss, Cycle now)
{
    for (auto &p : parts_)
        p->onAccess(pc, addr, is_write, miss, now);
}

void
MultiDataPrefetcher::onMiss(Addr pc, Addr addr, Cycle now)
{
    for (auto &p : parts_)
        p->onMiss(pc, addr, now);
}

void
MultiDataPrefetcher::onHint(DataHintKind kind, Addr addr, Cycle now)
{
    for (auto &p : parts_)
        p->onHint(kind, addr, now);
}

std::unique_ptr<DataPrefetcher>
makeDataPrefetcher(Cache &l1d, const DPrefetchConfig &config)
{
    switch (config.kind) {
      case DataPrefetchKind::None:
        return nullptr;
      case DataPrefetchKind::Stride:
        return std::make_unique<StrideDataPrefetcher>(l1d,
                                                      config.stride);
      case DataPrefetchKind::Correlation:
        return std::make_unique<CorrelationDataPrefetcher>(
            l1d, config.corr);
      case DataPrefetchKind::Semantic:
        return std::make_unique<SemanticDataPrefetcher>(
            l1d, config.semantic);
      case DataPrefetchKind::Combined: {
        std::vector<std::unique_ptr<DataPrefetcher>> parts;
        parts.push_back(std::make_unique<StrideDataPrefetcher>(
            l1d, config.stride));
        parts.push_back(
            std::make_unique<CorrelationDataPrefetcher>(
                l1d, config.corr));
        parts.push_back(std::make_unique<SemanticDataPrefetcher>(
            l1d, config.semantic));
        return std::make_unique<MultiDataPrefetcher>(
            std::move(parts));
      }
    }
    cgp_panic("unknown DataPrefetchKind");
    return nullptr;
}

} // namespace cgp
