/**
 * @file
 * Data-prefetch engine selection: the DPrefetchConfig knob block the
 * harness exposes, plus the factory that assembles the requested
 * engine (including the combined stride+correlation+semantic stack,
 * composed with MultiDataPrefetcher).
 */

#ifndef CGP_DPREFETCH_FACTORY_HH
#define CGP_DPREFETCH_FACTORY_HH

#include <memory>
#include <vector>

#include "dprefetch/correlation.hh"
#include "dprefetch/dprefetcher.hh"
#include "dprefetch/semantic.hh"
#include "dprefetch/stride.hh"

namespace cgp
{

enum class DataPrefetchKind : std::uint8_t
{
    None,
    Stride,      ///< per-PC stride table
    Correlation, ///< miss-correlation (Markov/AMC) table
    Semantic,    ///< DB hints from the storage manager
    Combined     ///< stride + correlation + semantic together
};

const char *dataPrefetchKindName(DataPrefetchKind kind);

struct DPrefetchConfig
{
    DataPrefetchKind kind = DataPrefetchKind::None;
    StrideConfig stride;
    CorrelationConfig corr;
    SemanticConfig semantic;
};

/** Fan every event out to a set of engines (the Combined stack). */
class MultiDataPrefetcher : public DataPrefetcher
{
  public:
    explicit MultiDataPrefetcher(
        std::vector<std::unique_ptr<DataPrefetcher>> parts);

    void onAccess(Addr pc, Addr addr, bool is_write, bool miss,
                  Cycle now) override;
    void onMiss(Addr pc, Addr addr, Cycle now) override;
    void onHint(DataHintKind kind, Addr addr, Cycle now) override;

    const char *name() const override { return "combined"; }

    /** Component engines (for checkpoint state access). */
    const std::vector<std::unique_ptr<DataPrefetcher>> &
    parts() const
    {
        return parts_;
    }

  private:
    std::vector<std::unique_ptr<DataPrefetcher>> parts_;
};

/**
 * Build the configured engine targeting @p l1d, or nullptr for
 * DataPrefetchKind::None (the null baseline: no engine at all, so
 * the issue path pays no virtual-call overhead).
 */
std::unique_ptr<DataPrefetcher>
makeDataPrefetcher(Cache &l1d, const DPrefetchConfig &config);

} // namespace cgp

#endif // CGP_DPREFETCH_FACTORY_HH
