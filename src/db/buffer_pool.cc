#include "db/buffer_pool.hh"

#include <algorithm>

#include "db/wal.hh"
#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp::db
{

namespace
{

constexpr unsigned maxIoRetries = 5;
constexpr unsigned backoffBaseWork = 16;
constexpr unsigned backoffCapWork = 256;

} // anonymous namespace

void
BufferPool::retryIo(TraceScope &ts, const std::function<void()> &op)
{
    for (unsigned attempt = 0;; ++attempt) {
        try {
            op();
            return;
        } catch (const fault::TransientIoError &e) {
            if (attempt + 1 >= maxIoRetries) {
                cgp_error("volume I/O failed after ", maxIoRetries,
                          " attempts: ", e.what());
                throw;
            }
            ++ioRetries_;
            ts.work(std::min(backoffBaseWork << attempt,
                             backoffCapWork));
        }
    }
}

void
BufferPool::forceLogForSteal()
{
    // WAL rule: no page image may reach the volume while the log
    // records describing it are still volatile, or a crash would
    // leave loser effects on disk that recovery cannot undo.
    if (log_ != nullptr && log_->tailLsn() - 1 > log_->durableLsn())
        log_->force(log_->tailLsn() - 1);
}

BufferPool::BufferPool(DbContext &ctx, Volume &volume,
                       std::size_t frames, Addr segment_base,
                       Replacement policy)
    : ctx_(ctx), volume_(volume), segmentBase_(segment_base),
      policy_(policy), frames_(frames)
{
    cgp_assert(frames > 0, "buffer pool needs at least one frame");
    freeList_.reserve(frames);
    for (std::size_t i = frames; i > 0; --i)
        freeList_.push_back(i - 1);
}

Addr
BufferPool::frameAddr(PageId pid, std::uint32_t offset) const
{
    auto it = map_.find(pid);
    cgp_assert(it != map_.end(), "frameAddr of non-resident page");
    return segmentBase_ +
        static_cast<Addr>(it->second) * pageBytes + offset;
}

Addr
BufferPool::frameAddrIfResident(PageId pid,
                                std::uint32_t offset) const
{
    auto it = map_.find(pid);
    if (it == map_.end())
        return invalidAddr;
    return segmentBase_ +
        static_cast<Addr>(it->second) * pageBytes + offset;
}

std::size_t
BufferPool::lookup(PageId pid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.bpLookup);
    ts.work(12);
    {
        TraceScope bs(ctx_.rec, ctx_.fn.bpBucketScan);
        bs.work(10);
        bs.branch(true);
    }
    auto it = map_.find(pid);
    const bool found = it != map_.end();
    ts.branch(found);
    return found ? it->second : npos;
}

std::size_t
BufferPool::evictVictim()
{
    TraceScope ts(ctx_.rec, ctx_.fn.bpEvict);
    std::size_t victim = npos;
    if (policy_ == Replacement::Lru) {
        std::uint64_t best = ~0ull;
        for (std::size_t i = 0; i < frames_.size(); ++i) {
            const Frame &f = frames_[i];
            if (f.pid != invalidPageId && f.pins == 0 &&
                f.lru < best) {
                best = f.lru;
                victim = i;
            }
        }
    } else {
        // Clock sweep: give each referenced frame a second chance.
        for (std::size_t step = 0; step < 2 * frames_.size();
             ++step) {
            Frame &f = frames_[clockHand_];
            const std::size_t here = clockHand_;
            clockHand_ = (clockHand_ + 1) % frames_.size();
            if (f.pid == invalidPageId || f.pins > 0)
                continue;
            if (f.referenced) {
                f.referenced = false;
                continue;
            }
            victim = here;
            break;
        }
    }
    ts.work(24);
    cgp_assert(victim != npos,
               "buffer pool exhausted: all frames pinned");
    Frame &f = frames_[victim];
    ts.branch(f.dirty);
    if (f.dirty) {
        TraceScope ws(ctx_.rec, ctx_.fn.bpWriteDisk);
        ws.work(30);
        fault::hit(ctx_.fault, "pool.evict");
        forceLogForSteal();
        retryIo(ws, [&] { volume_.writePage(f.pid, f.bytes.data()); });
        f.dirty = false;
    }
    map_.erase(f.pid);
    f.pid = invalidPageId;
    ++evictions_;
    return victim;
}

std::uint8_t *
BufferPool::fix(PageId pid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.bpFix);
    ts.work(22);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.bpLatch);
        hs.work(6);
    }
    {
        TraceScope hs(ctx_.rec, ctx_.fn.threadCheck);
        hs.work(5);
    }

    std::size_t idx = lookup(pid);
    const bool hit = idx != npos;
    ts.branch(hit);
    if (!hit) {
        // Getpage_from_disk (Figure 2): rare once resident.
        TraceScope rs(ctx_.rec, ctx_.fn.bpReadDisk);
        rs.work(40);
        if (!freeList_.empty()) {
            idx = freeList_.back();
            freeList_.pop_back();
        } else {
            idx = evictVictim();
        }
        Frame &f = frames_[idx];
        if (f.bytes.empty())
            f.bytes.resize(pageBytes);
        retryIo(rs, [&] { volume_.readPage(pid, f.bytes.data()); });
        f.pid = pid;
        f.dirty = false;
        f.pins = 0;
        map_[pid] = idx;
        ++diskReads_;
    }

    {
        TraceScope hs(ctx_.rec, ctx_.fn.bpStats);
        hs.work(5);
    }
    Frame &f = frames_[idx];
    {
        TraceScope ps(ctx_.rec, ctx_.fn.bpPin);
        ps.work(5);
        ++f.pins;
    }
    {
        TraceScope lt(ctx_.rec, ctx_.fn.bpLruTouch);
        lt.work(5);
        f.lru = ++tick_;
        f.referenced = true;
    }
    ts.loadAt(segmentBase_ + static_cast<Addr>(idx) * pageBytes);
    ts.work(6);
    return f.bytes.data();
}

void
BufferPool::unfix(PageId pid, bool dirty)
{
    TraceScope ts(ctx_.rec, ctx_.fn.bpUnfix);
    ts.work(6);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.bufGuard);
        hs.work(5);
    }
    auto it = map_.find(pid);
    cgp_assert(it != map_.end(), "unfix of non-resident page ", pid);
    Frame &f = frames_[it->second];
    cgp_assert(f.pins > 0, "unfix of unpinned page ", pid);
    {
        TraceScope us(ctx_.rec, ctx_.fn.bpUnpin);
        us.work(4);
        --f.pins;
    }
    f.dirty = f.dirty || dirty;
}

void
BufferPool::flushAll()
{
    TraceScope ts(ctx_.rec, ctx_.fn.bpFlush);
    fault::hit(ctx_.fault, "pool.flush");
    forceLogForSteal();
    for (auto &f : frames_) {
        if (f.pid != invalidPageId && f.dirty) {
            ts.work(8);
            retryIo(ts, [&] { volume_.writePage(f.pid, f.bytes.data()); });
            f.dirty = false;
        }
    }
}

unsigned
BufferPool::pinCount(PageId pid) const
{
    auto it = map_.find(pid);
    return it == map_.end() ? 0 : frames_[it->second].pins;
}

} // namespace cgp::db
