#include "db/heapfile.hh"

#include "util/logging.hh"

namespace cgp::db
{

HeapFile::HeapFile(DbContext &ctx, BufferPool &pool, Volume &volume,
                   LockManager &locks, WriteAheadLog &log,
                   const Schema *schema)
    : ctx_(ctx), pool_(pool), volume_(volume), locks_(locks),
      log_(log), schema_(schema)
{
    cgp_assert(schema_ != nullptr, "heap file needs a schema");
    cgp_assert(schema_->recordBytes() > 0, "empty record schema");
}

PageId
HeapFile::findFreePage(std::uint16_t len, std::uint8_t *&frame)
{
    // Find_page_in_buffer_pool (Figure 2): records append to the
    // tail page, so the common case is one pinned resident page.
    TraceScope ts(ctx_.rec, ctx_.fn.hfFindFree);
    ts.work(10);

    if (!pages_.empty()) {
        const PageId tail = pages_.back();
        frame = pool_.fix(tail);
        SlottedPage page(frame);
        const bool fits = page.fits(len);
        ts.branch(fits);
        if (fits)
            return tail;
        pool_.unfix(tail, false);
    } else {
        ts.branch(false);
    }

    // Tail full (or empty file): extend.
    const PageId fresh = volume_.allocPage();
    frame = pool_.fix(fresh);
    {
        TraceScope is(ctx_.rec, ctx_.fn.pageInit);
        is.work(12);
        SlottedPage page(frame);
        page.init();
    }
    pages_.push_back(fresh);
    return fresh;
}

Rid
HeapFile::createRec(TxnId txn, const Tuple &tuple)
{
    TraceScope ts(ctx_.rec, ctx_.fn.hfCreateRec);
    ts.work(8);
    cgp_assert(tuple.size() == schema_->recordBytes(),
               "tuple does not match heap file schema");

    std::uint8_t *frame = nullptr;
    const PageId pid = findFreePage(tuple.size(), frame);

    locks_.acquire(txn, pid, LockMode::Exclusive);

    std::uint16_t slot;
    {
        TraceScope us(ctx_.rec, ctx_.fn.pageInsert);
        us.work(18);
        SlottedPage page(frame);
        slot = page.insert(tuple.data(), tuple.size());
        cgp_assert(slot != SlottedPage::invalidSlot,
                   "findFreePage returned a full page");
        us.storeAt(pool_.frameAddr(pid, 64u + slot * tuple.size()));
    }

    log_.append(txn, LogRecordType::Insert, pid, slot,
                tuple.data(), tuple.size());
    locks_.release(txn, pid);
    pool_.unfix(pid, true);

    ++records_;
    return Rid{pid, slot};
}

Tuple
HeapFile::getRec(TxnId txn, Rid rid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.hfGetRecC[ctx_.opClass()]);
    ts.work(8);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.ridDecode);
        hs.work(5);
    }
    {
        TraceScope hs(ctx_.rec, ctx_.fn.hfStats);
        hs.work(5);
    }

    // The RID names the record before any lock/fix work happens:
    // announce its (approximate) location so a semantic prefetcher
    // can cover it during the lock acquisition path.
    ts.hint(DataHintKind::HeapRecord,
            pool_.frameAddrIfResident(
                rid.page,
                64u + rid.slot * schema_->recordBytes()));

    locks_.acquire(txn, rid.page, LockMode::Shared);
    std::uint8_t *frame = pool_.fix(rid.page);

    Tuple out;
    {
        TraceScope rs(ctx_.rec, ctx_.fn.pageRead);
        rs.work(6);
        {
            TraceScope hs(ctx_.rec, ctx_.fn.pageChecksum);
            hs.work(5);
        }
        SlottedPage page(frame);
        std::uint16_t len = 0;
        const std::uint8_t *bytes = nullptr;
        {
            TraceScope sl(ctx_.rec,
                          ctx_.fn.pageSlotLookupC[ctx_.opClass()]);
            sl.work(10);
            bytes = page.read(rid.slot, &len);
        }
        cgp_assert(bytes != nullptr, "getRec of missing slot");
        cgp_assert(len == schema_->recordBytes(), "corrupt record");
        rs.loadAt(pool_.frameAddr(
            rid.page,
            static_cast<std::uint32_t>(bytes -
                                       frame)));
        {
            TraceScope rc(ctx_.rec,
                          ctx_.fn.pageRecordCopyC[ctx_.opClass()]);
            rc.work(8);
            out = Tuple(schema_, bytes);
        }
        {
            TraceScope de(ctx_.rec,
                          ctx_.fn.tupDeserializeC[ctx_.opClass()]);
            de.work(7);
        }
    }

    pool_.unfix(rid.page, false);
    locks_.release(txn, rid.page);
    return out;
}

void
HeapFile::updateRec(TxnId txn, Rid rid, const Tuple &tuple)
{
    TraceScope ts(ctx_.rec, ctx_.fn.hfUpdateRec);
    ts.work(8);

    locks_.acquire(txn, rid.page, LockMode::Exclusive);
    std::uint8_t *frame = pool_.fix(rid.page);
    std::vector<std::uint8_t> before;
    {
        TraceScope us(ctx_.rec, ctx_.fn.pageUpdate);
        us.work(14);
        SlottedPage page(frame);
        // Capture the before-image: abort() and recovery's undo pass
        // restore it for loser transactions.
        std::uint16_t old_len = 0;
        const std::uint8_t *old = page.read(rid.slot, &old_len);
        cgp_assert(old != nullptr, "updateRec of missing slot");
        before.assign(old, old + old_len);
        const bool ok = page.update(rid.slot, tuple.data(),
                                    tuple.size());
        cgp_assert(ok, "updateRec failed");
        us.storeAt(pool_.frameAddr(rid.page,
                                   64u + rid.slot * tuple.size()));
    }
    log_.append(txn, LogRecordType::Update, rid.page, rid.slot,
                tuple.data(), tuple.size(), before.data(),
                static_cast<std::uint16_t>(before.size()));
    pool_.unfix(rid.page, true);
    locks_.release(txn, rid.page);
}

HeapFile::Scan::Scan(HeapFile &file, TxnId txn)
    : file_(file), txn_(txn)
{
    TraceScope ts(file_.ctx_.rec, file_.ctx_.fn.hfScanOpen);
    ts.work(12);
}

HeapFile::Scan::~Scan()
{
    if (open_)
        close();
}

bool
HeapFile::Scan::next(Tuple &out, Rid *rid)
{
    TraceScope ts(file_.ctx_.rec,
                  file_.ctx_.fn.hfScanNextC[file_.ctx_.opClass()]);
    ts.work(13);
    {
        TraceScope hs(file_.ctx_.rec, file_.ctx_.fn.hfIterAdvance);
        hs.work(6);
    }
    {
        TraceScope hs(file_.ctx_.rec, file_.ctx_.fn.cursorCheck);
        hs.work(5);
    }

    while (true) {
        if (frame_ == nullptr) {
            const bool more = pageIdx_ < file_.pages_.size();
            ts.branch(more);
            if (!more)
                return false;
            const PageId pid = file_.pages_[pageIdx_];
            file_.locks_.acquire(txn_, pid, LockMode::Shared);
            frame_ = file_.pool_.fix(pid);
            slot_ = 0;
        }

        SlottedPage page(frame_);
        if (slot_ < page.slotCount()) {
            TraceScope rs(file_.ctx_.rec,
                          file_.ctx_.fn.pageReadC[
                              file_.ctx_.opClass()]);
            rs.work(8);
            {
                TraceScope hs(file_.ctx_.rec,
                              file_.ctx_.fn.pageStats);
                hs.work(5);
            }
            std::uint16_t len = 0;
            const std::uint8_t *bytes = nullptr;
            {
                TraceScope sl(file_.ctx_.rec,
                              file_.ctx_.fn.pageSlotLookupC[
                                  file_.ctx_.opClass()]);
                sl.work(10);
                bytes = page.read(slot_, &len);
            }
            const auto rec_off =
                static_cast<std::uint32_t>(bytes - frame_);
            rs.loadAt(file_.pool_.frameAddr(file_.pages_[pageIdx_],
                                            rec_off));
            // Sequential cursor: the next call reads the next slot
            // of this page — or the head of the next page when this
            // one is nearly done.
            if (rec_off + len < pageBytes) {
                rs.hint(DataHintKind::HeapNextSlot,
                        file_.pool_.frameAddrIfResident(
                            file_.pages_[pageIdx_], rec_off + len));
            }
            if (slot_ + 4 >= page.slotCount() &&
                pageIdx_ + 1 < file_.pages_.size()) {
                rs.hint(DataHintKind::HeapNextPage,
                        file_.pool_.frameAddrIfResident(
                            file_.pages_[pageIdx_ + 1], 64u));
            }
            {
                TraceScope rc(file_.ctx_.rec,
                              file_.ctx_.fn.pageRecordCopyC[
                                  file_.ctx_.opClass()]);
                rc.work(7);
                out = Tuple(file_.schema_, bytes);
            }
            if (rid != nullptr)
                *rid = Rid{file_.pages_[pageIdx_], slot_};
            ++slot_;
            return true;
        }

        // Page exhausted: release and advance.
        const PageId pid = file_.pages_[pageIdx_];
        file_.pool_.unfix(pid, false);
        file_.locks_.release(txn_, pid);
        frame_ = nullptr;
        ++pageIdx_;
    }
}

void
HeapFile::Scan::close()
{
    TraceScope ts(file_.ctx_.rec, file_.ctx_.fn.hfScanClose);
    ts.work(5);
    if (frame_ != nullptr) {
        const PageId pid = file_.pages_[pageIdx_];
        file_.pool_.unfix(pid, false);
        file_.locks_.release(txn_, pid);
        frame_ = nullptr;
    }
    open_ = false;
}

} // namespace cgp::db
