/**
 * @file
 * Write-ahead log: append-only records with LSNs and a force()
 * operation at commit.  Recovery itself is out of scope (the paper
 * never crashes), but the logging code paths run on every update,
 * contributing their share of the instruction footprint.
 */

#ifndef CGP_DB_WAL_HH
#define CGP_DB_WAL_HH

#include <cstdint>
#include <vector>

#include "db/common.hh"
#include "db/context.hh"

namespace cgp::db
{

enum class LogRecordType : std::uint8_t
{
    Begin,
    Update,
    Insert,
    Commit,
    Abort
};

struct LogRecord
{
    Lsn lsn = 0;
    TxnId txn = invalidTxnId;
    LogRecordType type = LogRecordType::Update;
    PageId page = invalidPageId;
    std::uint16_t slot = 0;
    /** After-image of the record (Insert/Update), for redo. */
    std::vector<std::uint8_t> payload;
};

class WriteAheadLog
{
  public:
    explicit WriteAheadLog(DbContext &ctx) : ctx_(ctx) {}

    /** Append a record; returns its LSN. */
    Lsn append(TxnId txn, LogRecordType type, PageId page = invalidPageId,
               std::uint16_t slot = 0);

    /** Append a record with an after-image payload (redo data). */
    Lsn append(TxnId txn, LogRecordType type, PageId page,
               std::uint16_t slot, const std::uint8_t *bytes,
               std::uint16_t len);

    /** Force the log up to @p lsn (commit durability point). */
    void force(Lsn lsn);

    Lsn durableLsn() const { return durable_; }
    Lsn tailLsn() const { return next_; }
    const std::vector<LogRecord> &records() const { return records_; }

  private:
    DbContext &ctx_;
    std::vector<LogRecord> records_;
    Lsn next_ = 1;
    Lsn durable_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_WAL_HH
