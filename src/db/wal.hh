/**
 * @file
 * Write-ahead log: append-only records with LSNs and a force()
 * operation at commit.
 *
 * Hardened for crash safety: every record carries a FNV-1a checksum
 * over its header and images, Update records carry an undo (before)
 * image next to the redo (after) image, and force() is instrumented
 * with the "wal.pre_force" / "wal.mid_force" crash points so a
 * fault-injected run can lose its non-durable tail or leave a torn
 * record at the durability boundary.  truncateToDurable() models what
 * a real restart reads back from the log device: only the forced
 * prefix.
 */

#ifndef CGP_DB_WAL_HH
#define CGP_DB_WAL_HH

#include <cstdint>
#include <vector>

#include "db/common.hh"
#include "db/context.hh"

namespace cgp::db
{

enum class LogRecordType : std::uint8_t
{
    Begin,
    Update,
    Insert,
    Commit,
    Abort,
    /**
     * Compensation record written while a transaction rolls back:
     * redo-only (never undone).  A Clr with a payload restores that
     * image into page/slot; a Clr without one tombstones the slot
     * (undo of an insert).
     */
    Clr
};

struct LogRecord
{
    Lsn lsn = 0;
    TxnId txn = invalidTxnId;
    LogRecordType type = LogRecordType::Update;
    PageId page = invalidPageId;
    std::uint16_t slot = 0;
    /** After-image of the record (Insert/Update), for redo. */
    std::vector<std::uint8_t> payload;
    /** Before-image (Update), for undo of loser transactions. */
    std::vector<std::uint8_t> undo;
    /** FNV-1a over header fields + both images, set at append. */
    std::uint32_t checksum = 0;
};

class WriteAheadLog
{
  public:
    explicit WriteAheadLog(DbContext &ctx) : ctx_(ctx) {}

    /** Append a record; returns its LSN. */
    Lsn append(TxnId txn, LogRecordType type, PageId page = invalidPageId,
               std::uint16_t slot = 0);

    /** Append a record with an after-image payload (redo data). */
    Lsn append(TxnId txn, LogRecordType type, PageId page,
               std::uint16_t slot, const std::uint8_t *bytes,
               std::uint16_t len);

    /** Append with both after- and before-images (Update). */
    Lsn append(TxnId txn, LogRecordType type, PageId page,
               std::uint16_t slot, const std::uint8_t *bytes,
               std::uint16_t len, const std::uint8_t *undo_bytes,
               std::uint16_t undo_len);

    /**
     * Force the log up to @p lsn (commit durability point).  Crash
     * points: "wal.pre_force" fires before any block reaches the
     * device (a crash there loses everything past durableLsn());
     * "wal.mid_force" fires between device blocks (a crash leaves a
     * partial prefix durable; a torn write additionally corrupts the
     * record at the new durability boundary).  Transient device
     * errors are retried with capped exponential backoff.
     */
    void force(Lsn lsn);

    Lsn durableLsn() const { return durable_; }
    Lsn tailLsn() const { return next_; }
    const std::vector<LogRecord> &records() const { return records_; }

    /**
     * Simulate a restart's view of the log device: drop every record
     * past the durable LSN (the lost in-memory tail).  Called by the
     * crash-loop harness after catching a CrashInjected.
     */
    void truncateToDurable();

    /**
     * Simulate a torn write of record @p lsn: its stored bytes are
     * cut roughly in half without updating the checksum, so recovery
     * must detect it.  Also used by tests directly.
     */
    void tearRecord(Lsn lsn);

    /** Recompute a record's checksum (verification helper). */
    static std::uint32_t computeChecksum(const LogRecord &record);

    /** True if @p record 's stored checksum matches its contents. */
    static bool checksumValid(const LogRecord &record);

    /** Transient log-device errors survived by force() retries. */
    std::uint64_t forceRetries() const { return forceRetries_; }

  private:
    DbContext &ctx_;
    std::vector<LogRecord> records_;
    Lsn next_ = 1;
    Lsn durable_ = 0;
    std::uint64_t forceRetries_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_WAL_HH
