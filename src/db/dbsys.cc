#include "db/dbsys.hh"

#include "util/logging.hh"

namespace cgp::db
{

DbSystem::DbSystem(FunctionRegistry &registry,
                   TraceBuffer &initial_buffer, const DbConfig &config)
    : ctx_(registry, initial_buffer), volume_(ctx_),
      pool_(ctx_, volume_, config.bufferFrames,
            config.bufferSegment),
      locks_(ctx_),
      log_(ctx_), txns_(ctx_, locks_, log_), catalog_(ctx_)
{
    txns_.bindPool(&pool_);
    pool_.bindLog(&log_);
}

TableInfo &
DbSystem::createTable(const std::string &name, Schema schema)
{
    auto info = std::make_unique<TableInfo>();
    info->name = name;
    info->schema = std::make_unique<Schema>(std::move(schema));
    info->file = std::make_unique<HeapFile>(
        ctx_, pool_, volume_, locks_, log_, info->schema.get());
    return catalog_.addTable(std::move(info));
}

BTree &
DbSystem::createIndex(const std::string &table,
                      const std::string &column)
{
    TableInfo &t = catalog_.table(table);
    cgp_assert(t.indexes.find(column) == t.indexes.end(),
               "index already exists on ", table, ".", column);
    cgp_assert(t.schema->column(t.schema->indexOf(column)).type ==
                   ColumnType::Int32,
               "indexes support INT32 columns only");

    auto tree =
        std::make_unique<BTree>(ctx_, pool_, volume_, locks_);
    BTree &ref = *tree;
    t.indexes.emplace(column, std::move(tree));

    // Bulk build from the heap file.
    const std::size_t col = t.schema->indexOf(column);
    const TxnId txn = txns_.begin();
    HeapFile::Scan scan(*t.file, txn);
    Tuple tup;
    Rid rid;
    while (scan.next(tup, &rid))
        ref.insert(txn, tup.getInt(col), rid);
    scan.close();
    txns_.commit(txn);
    return ref;
}

Rid
DbSystem::insertRow(TxnId txn, const std::string &table,
                    const Tuple &tuple)
{
    TableInfo &t = catalog_.table(table);
    const Rid rid = t.file->createRec(txn, tuple);
    // Maintain any existing indexes.
    for (auto &[col, tree] : t.indexes) {
        const std::size_t idx = t.schema->indexOf(col);
        tree->insert(txn, tuple.getInt(idx), rid);
    }
    return rid;
}

} // namespace cgp::db
