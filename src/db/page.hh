/**
 * @file
 * Slotted pages: records grow from the front, the slot directory
 * grows from the back (offset/length pairs).  A SlottedPage is a
 * non-owning view over an 8KB frame in the buffer pool.
 */

#ifndef CGP_DB_PAGE_HH
#define CGP_DB_PAGE_HH

#include <cstdint>

#include "db/common.hh"

namespace cgp::db
{

class SlottedPage
{
  public:
    static constexpr std::uint16_t invalidSlot = 0xffff;

    explicit SlottedPage(std::uint8_t *frame) : frame_(frame) {}

    /** Format an empty page. */
    void init();

    /** True if the header looks like a formatted page (recovery). */
    bool formatted() const;

    /** Number of occupied slots. */
    std::uint16_t slotCount() const;

    /** Free bytes available for one more record (incl. slot entry). */
    std::uint16_t freeBytes() const;

    /** True if a record of @p len bytes fits. */
    bool fits(std::uint16_t len) const;

    /**
     * Insert a record.
     * @return the new slot index, or invalidSlot when full.
     */
    std::uint16_t insert(const std::uint8_t *bytes, std::uint16_t len);

    /**
     * Pointer to the record in slot @p slot (nullptr if bad).  A slot
     * whose directory entry is out of bounds — e.g. after a torn page
     * write clobbered the directory — reads as absent rather than as
     * a wild pointer.
     */
    const std::uint8_t *read(std::uint16_t slot,
                             std::uint16_t *len = nullptr) const;

    /** Overwrite a record in place (same length only). */
    bool update(std::uint16_t slot, const std::uint8_t *bytes,
                std::uint16_t len);

    /**
     * Tombstone a slot (undo of an insert): the entry stays allocated
     * so later slot ids keep their meaning — and its record bytes and
     * offset stay in place so revive() can redo the insert — but
     * read() returns nullptr for it.
     */
    bool erase(std::uint16_t slot);

    /**
     * Re-fill a tombstoned slot with @p bytes (redo of an insert
     * whose slot directory entry already exists).  Fails if the slot
     * is missing, live, or its retained offset no longer fits.
     */
    bool revive(std::uint16_t slot, const std::uint8_t *bytes,
                std::uint16_t len);

  private:
    struct Header
    {
        std::uint16_t slots;
        std::uint16_t freeOffset; ///< first free byte after records
    };

    struct Slot
    {
        std::uint16_t offset;
        std::uint16_t length;
    };

    Header *header() { return reinterpret_cast<Header *>(frame_); }
    const Header *
    header() const
    {
        return reinterpret_cast<const Header *>(frame_);
    }

    Slot *slotEntry(std::uint16_t slot);
    const Slot *slotEntry(std::uint16_t slot) const;

    std::uint8_t *frame_;
};

} // namespace cgp::db

#endif // CGP_DB_PAGE_HH
