/**
 * @file
 * The Wisconsin benchmark (Bitton/DeWitt/Turbyfill 1983): standard
 * schema generator and the queries the paper runs (1-7 and 9).
 *
 * Relations: big1 and big2 with n tuples each, small with n/10.
 * Indexes: clustered-equivalent on unique2 (insertion order) and
 * non-clustered on unique1 (random permutation), matching the
 * benchmark's access-pattern intent.
 */

#ifndef CGP_DB_WISCONSIN_HH
#define CGP_DB_WISCONSIN_HH

#include <cstdint>
#include <string>

#include "db/dbsys.hh"
#include "util/rng.hh"

namespace cgp::db
{

class Wisconsin
{
  public:
    /** The 16-column Wisconsin schema (strings shortened to 8). */
    static Schema schema();

    /**
     * Create and load big1, big2 (n tuples) and small (n/10), then
     * build the unique1/unique2 indexes on big1 and big2.
     */
    static void load(DbSystem &db, std::uint32_t n,
                     std::uint64_t seed = 0x715c);

    /**
     * Run one benchmark query.
     * @param query 1..7 or 9 (the paper's subset).
     * @param n The loaded scale (selectivity ranges derive from it).
     * @param rng Source for the query's range placement.
     * @return result row count.
     */
    static std::uint64_t runQuery(DbSystem &db, int query,
                                  std::uint32_t n, Rng &rng);

    /** Human-readable description of a query number. */
    static const char *queryName(int query);
};

} // namespace cgp::db

#endif // CGP_DB_WISCONSIN_HH
