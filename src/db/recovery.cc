#include "db/recovery.hh"

#include "db/page.hh"
#include "util/logging.hh"

namespace cgp::db
{

RecoveryManager::Stats
RecoveryManager::recover(BufferPool &pool)
{
    Stats stats;

    // --- Analysis: winners are transactions with a Commit record.
    std::set<TxnId> winners;
    std::set<TxnId> seen;
    for (const LogRecord &r : log_.records()) {
        seen.insert(r.txn);
        if (r.type == LogRecordType::Commit)
            winners.insert(r.txn);
    }
    stats.winners = static_cast<std::uint32_t>(winners.size());
    stats.losers =
        static_cast<std::uint32_t>(seen.size() - winners.size());

    // --- Redo: replay winners' after-images in LSN order.
    for (const LogRecord &r : log_.records()) {
        const bool has_image = r.type == LogRecordType::Insert ||
            r.type == LogRecordType::Update;
        if (!has_image)
            continue;
        if (winners.find(r.txn) == winners.end()) {
            ++stats.skipped;
            continue;
        }
        cgp_assert(!r.payload.empty(), "redo record without image");
        cgp_assert(r.page != invalidPageId, "redo without a page");

        std::uint8_t *frame = pool.fix(r.page);
        SlottedPage page(frame);

        // A page that never reached the volume reads back as zeroes:
        // format it before replaying into it.
        if (!page.formatted())
            page.init();
        if (page.read(r.slot) == nullptr) {
            // Slot absent: re-run the insert.  Slots are append-only
            // and the log is in LSN order, so the slot ids line up.
            const auto slot = page.insert(
                r.payload.data(),
                static_cast<std::uint16_t>(r.payload.size()));
            cgp_assert(slot == r.slot,
                       "redo slot mismatch: got ", slot, " want ",
                       r.slot);
        } else {
            // Slot exists (page reached the volume, or a loser wrote
            // it): overwrite with the winner's after-image.
            const bool ok = page.update(
                r.slot, r.payload.data(),
                static_cast<std::uint16_t>(r.payload.size()));
            cgp_assert(ok, "redo overwrite failed");
        }
        pool.unfix(r.page, true);
        ++stats.redone;
    }

    pool.flushAll();
    return stats;
}

} // namespace cgp::db
