#include "db/recovery.hh"

#include <vector>

#include "db/page.hh"
#include "util/logging.hh"

namespace cgp::db
{

RecoveryManager::Stats
RecoveryManager::recover(BufferPool &pool)
{
    Stats stats;
    const std::vector<LogRecord> &log = log_.records();

    // --- Validate: checksum every surviving record.  Invalid
    // records at the very end form the torn tail (the interrupted
    // final force); invalid records elsewhere are isolated
    // corruption.  Both are excluded from analysis/redo/undo.
    std::vector<bool> valid(log.size(), true);
    std::size_t end = log.size(); // records at/after end: torn tail
    while (end > 0 && !WriteAheadLog::checksumValid(log[end - 1])) {
        valid[end - 1] = false;
        ++stats.tornTail;
        --end;
    }
    for (std::size_t i = 0; i < end; ++i) {
        if (!WriteAheadLog::checksumValid(log[i])) {
            valid[i] = false;
            ++stats.corruptRecords;
            cgp_error("recovery: corrupt log record at LSN ",
                      log[i].lsn, ", skipping");
        }
    }
    if (stats.tornTail > 0)
        cgp_warn("recovery: dropped torn tail of ", stats.tornTail,
                 " record(s)");

    // --- Analysis: winners committed; aborted losers finished their
    // (Clr-logged) rollback before the crash and need no undo.
    std::set<TxnId> winners;
    std::set<TxnId> aborted;
    std::set<TxnId> seen;
    for (std::size_t i = 0; i < end; ++i) {
        if (!valid[i])
            continue;
        seen.insert(log[i].txn);
        if (log[i].type == LogRecordType::Commit)
            winners.insert(log[i].txn);
        else if (log[i].type == LogRecordType::Abort)
            aborted.insert(log[i].txn);
    }
    stats.winners = static_cast<std::uint32_t>(winners.size());
    stats.losers =
        static_cast<std::uint32_t>(seen.size() - winners.size());

    // --- Redo: repeat history.  Every image record replays in LSN
    // order — losers too, so pages and slot directories rebuild
    // exactly as they evolved; the undo pass below then reverses the
    // unfinished losers.
    for (std::size_t i = 0; i < end; ++i) {
        const LogRecord &r = log[i];
        const bool is_clr = r.type == LogRecordType::Clr;
        const bool has_image = r.type == LogRecordType::Insert ||
            r.type == LogRecordType::Update || is_clr;
        if (!valid[i] || !has_image)
            continue;
        if (!is_clr && r.payload.empty()) {
            ++stats.emptyPayload;
            cgp_error("recovery: redo record LSN ", r.lsn,
                      " has no image, skipping");
            continue;
        }
        if (r.page == invalidPageId || r.page >= volume_.pageCount()) {
            ++stats.invalidPage;
            cgp_error("recovery: redo record LSN ", r.lsn,
                      " names invalid page ", r.page, ", skipping");
            continue;
        }

        std::uint8_t *frame = pool.fix(r.page);
        SlottedPage page(frame);

        // A page that never reached the volume reads back as zeroes
        // (or as garbage after a torn write): format it before
        // replaying into it.
        if (!page.formatted())
            page.init();

        bool dirtied = false;
        if (is_clr && r.payload.empty()) {
            // Compensated insert: tombstone the slot (no-op if the
            // insert itself never replayed into this image).
            dirtied = page.erase(r.slot);
        } else if (r.slot < page.slotCount()) {
            // Slot allocated: overwrite a live record or revive a
            // tombstoned one with this after-image.
            const std::uint16_t len =
                static_cast<std::uint16_t>(r.payload.size());
            dirtied = page.read(r.slot) != nullptr
                ? page.update(r.slot, r.payload.data(), len)
                : page.revive(r.slot, r.payload.data(), len);
            if (!dirtied) {
                ++stats.failedOverwrite;
                cgp_error("recovery: redo LSN ", r.lsn,
                          " could not overwrite page ", r.page,
                          " slot ", r.slot);
            }
        } else {
            // Slot absent: re-run the insert.  Slots are append-only
            // and the log is in LSN order, so the slot ids line up.
            const auto slot = page.insert(
                r.payload.data(),
                static_cast<std::uint16_t>(r.payload.size()));
            dirtied = slot != SlottedPage::invalidSlot;
            if (slot != r.slot) {
                ++stats.slotMismatch;
                cgp_error("recovery: redo LSN ", r.lsn,
                          " replayed into slot ",
                          static_cast<std::int32_t>(slot),
                          ", expected ", r.slot);
            }
        }
        pool.unfix(r.page, dirtied);
        ++stats.redone;
    }

    // --- Undo: roll the unfinished losers back, newest first.
    // Needed because eviction steals dirty loser pages to the volume
    // mid-run.  Clr records are redo-only and never undone.
    for (std::size_t i = end; i > 0; --i) {
        const LogRecord &r = log[i - 1];
        if (!valid[i - 1] || winners.count(r.txn) > 0 ||
            aborted.count(r.txn) > 0)
            continue;
        const bool has_image = r.type == LogRecordType::Insert ||
            r.type == LogRecordType::Update;
        if (!has_image)
            continue;
        if (r.page == invalidPageId || r.page >= volume_.pageCount()) {
            ++stats.invalidPage;
            continue;
        }

        std::uint8_t *frame = pool.fix(r.page);
        SlottedPage page(frame);
        bool dirtied = false;
        if (!page.formatted()) {
            // Nothing of the loser ever reached this page image.
        } else if (r.type == LogRecordType::Insert) {
            dirtied = page.erase(r.slot);
        } else if (r.undo.empty()) {
            ++stats.emptyPayload;
            cgp_error("recovery: undo record LSN ", r.lsn,
                      " has no before-image, skipping");
        } else if (page.read(r.slot) != nullptr) {
            dirtied = page.update(
                r.slot, r.undo.data(),
                static_cast<std::uint16_t>(r.undo.size()));
            if (!dirtied) {
                ++stats.failedOverwrite;
                cgp_error("recovery: undo LSN ", r.lsn,
                          " could not restore page ", r.page,
                          " slot ", r.slot);
            }
        }
        pool.unfix(r.page, dirtied);
        if (dirtied)
            ++stats.undone;
    }

    pool.flushAll();
    return stats;
}

} // namespace cgp::db
