/**
 * @file
 * DbContext: plumbing shared by every storage-manager and operator
 * component — the trace recorder plus the FunctionIds of all traced
 * DBMS functions.
 *
 * The function inventory mirrors the layered architecture of
 * paper Figure 1 (storage manager at the bottom, relational
 * operators above, scheduler/optimizer/parser on top) and includes
 * the Create_rec example chain from Figure 2.
 */

#ifndef CGP_DB_CONTEXT_HH
#define CGP_DB_CONTEXT_HH

#include "codegen/registry.hh"
#include "trace/recorder.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace cgp::fault
{
class FaultInjector;
} // namespace cgp::fault

namespace cgp::db
{

/**
 * A set of per-call-site copies of a function small enough that the
 * -O5 -inline compiler of the paper's testbed would inline it.  Each
 * call site then owns a distinct copy of those instructions in the
 * text segment — which is how inlined accessors actually occupy
 * I-cache space in an optimized DBMS binary.  Call sites index the
 * set with a stable site id.
 */
struct InlinedFn
{
    static constexpr std::size_t sites = 6;
    FunctionId at[sites];

    FunctionId
    site(std::size_t i) const
    {
        return at[i % sites];
    }
};

/** Ids of every traced function in the database system. */
struct DbFuncs
{
    /// @{ Buffer manager
    FunctionId bpFix;        ///< Find_page_in_buffer_pool
    FunctionId bpUnfix;
    FunctionId bpLookup;     ///< hash-table probe
    FunctionId bpEvict;
    FunctionId bpReadDisk;   ///< Getpage_from_disk
    FunctionId bpWriteDisk;
    FunctionId bpFlush;
    FunctionId bpPin;
    FunctionId bpUnpin;
    FunctionId bpLruTouch;
    FunctionId bpBucketScan;
    /// @}

    /// @{ Slotted pages
    FunctionId pageInit;
    FunctionId pageInsert;   ///< Update_page (insert path)
    FunctionId pageRead;
    FunctionId pageUpdate;   ///< Update_page (overwrite path)
    InlinedFn pageSlotLookup;
    InlinedFn pageRecordCopy;
    /// @}

    /// @{ Volume / disk
    FunctionId diskRead;
    FunctionId diskWrite;
    FunctionId diskAlloc;
    /// @}

    /// @{ Lock manager (two-phase locking)
    FunctionId lockAcquire;  ///< Lock_page
    FunctionId lockRelease;  ///< Unlock_page
    FunctionId lockTableProbe;
    FunctionId lockUpgrade;
    FunctionId lockGrantCheck;
    FunctionId lockHolderScan;
    /// @}

    /// @{ Write-ahead log
    FunctionId logAppend;
    FunctionId logForce;
    FunctionId logReserve;
    FunctionId logCopy;
    /// @}

    /// @{ Transactions
    FunctionId txnBegin;
    FunctionId txnCommit;
    FunctionId txnAbort;
    /// @}

    /// @{ Heap files
    FunctionId hfCreateRec;  ///< Create_rec (Figure 2 entry point)
    FunctionId hfFindFree;
    FunctionId hfGetRec;
    FunctionId hfUpdateRec;
    FunctionId hfScanOpen;
    FunctionId hfScanNext;
    FunctionId hfScanClose;
    /// @}

    /// @{ B+-tree
    FunctionId btSearch;
    FunctionId btDescend;
    FunctionId btLeafInsert;
    FunctionId btRemove;
    FunctionId btLeafRemove;
    FunctionId btInsert;
    FunctionId btSplit;
    FunctionId btRangeOpen;
    FunctionId btRangeNext;
    InlinedFn btKeyCompare;
    InlinedFn btNodeSearch;
    /// @}

    /// @{ Catalog
    FunctionId catTableLookup;
    FunctionId catIndexLookup;
    /// @}

    /// @{ Tuples and expressions (inlined at -O5: per-site copies)
    InlinedFn tupGetInt;
    InlinedFn tupGetString;
    InlinedFn tupCopy;
    InlinedFn tupHash;
    InlinedFn tupDeserialize;
    InlinedFn predEvalRange;
    InlinedFn predEvalEq;
    /// @}

    /**
     * Per-query-class instances of the hot operator-layer loop
     * functions.  Each in-flight query runs its own plan-node
     * instances, and different query shapes exercise different
     * slices of a DBMS's large operator code base; one instance per
     * query class models that code-path diversity (the storage
     * manager below stays shared, as it is in the real system).
     */
    static constexpr std::size_t opClasses = 13;
    FunctionId scanNextC[opClasses];
    FunctionId idxSelNextC[opClasses];
    FunctionId hfScanNextC[opClasses];
    FunctionId btRangeNextC[opClasses];
    FunctionId inljNextC[opClasses];
    FunctionId ghjProbeC[opClasses];
    FunctionId ghjNextC[opClasses];
    FunctionId aggAccumC[opClasses];
    FunctionId execNextC[opClasses];
    FunctionId pageReadC[opClasses];
    FunctionId predDispatchC[opClasses];
    FunctionId hfGetRecC[opClasses];
    FunctionId btDescendC[opClasses];
    FunctionId btNodeSearchC[opClasses];
    FunctionId pageSlotLookupC[opClasses];
    FunctionId pageRecordCopyC[opClasses];
    FunctionId tupDeserializeC[opClasses];
    FunctionId tupGetIntC[opClasses];
    FunctionId predEvalRangeC[opClasses];

    /// @{ Relational operators
    FunctionId scanOpen;
    FunctionId scanNext;
    FunctionId scanClose;
    FunctionId idxSelOpen;
    FunctionId idxSelNext;
    FunctionId idxSelClose;
    FunctionId nljOpen;
    FunctionId nljNext;
    FunctionId nljClose;
    FunctionId inljOpen;
    FunctionId inljNext;
    FunctionId inljClose;
    FunctionId ghjOpen;
    FunctionId ghjPartition;
    FunctionId ghjBuild;
    FunctionId ghjProbe;
    FunctionId ghjNext;
    FunctionId ghjClose;
    FunctionId aggOpen;
    FunctionId aggAccumulate;
    FunctionId aggNext;
    FunctionId aggClose;
    FunctionId sortOpen;
    FunctionId sortCompare;
    FunctionId sortNext;
    FunctionId sortClose;
    FunctionId projNext;
    /// @}

    /// @{ Query layer (parser / optimizer / scheduler, Figure 1)
    FunctionId queryParse;
    FunctionId queryOptimize;
    FunctionId querySchedule;
    FunctionId planBuild;
    FunctionId execOpen;
    FunctionId execNext;
    FunctionId execDeliver;
    FunctionId execClose;

    /**
     * Each query class walks its own route through the large
     * front-end code (different grammar productions, different
     * plan-enumeration branches).  The walk model executes fixed
     * paths, so path diversity inside the parser/optimizer/plan
     * generator is represented as one code path per query class.
     */
    static constexpr std::size_t queryClasses = 14;
    FunctionId parsePath[queryClasses];
    FunctionId optimizePath[queryClasses];
    FunctionId planPath[queryClasses];
    /// @}

    /// @{ Cross-cutting service layers (latching, statistics,
    ///    monitoring, memory management — SHORE runs these on every
    ///    storage operation)
    FunctionId bpLatch;
    FunctionId bpStats;
    FunctionId lockLatch;
    FunctionId lockCompat;
    FunctionId lockStats;
    FunctionId pageChecksum;
    FunctionId pageStats;
    FunctionId btLatch;
    FunctionId btIterAdvance;
    FunctionId hfIterAdvance;
    FunctionId hfStats;
    FunctionId logMutex;
    FunctionId memArenaAlloc;
    FunctionId memArenaFree;
    FunctionId statsBump;
    FunctionId threadCheck;
    FunctionId exprSetup;
    FunctionId ridDecode;
    FunctionId probeSetup;
    FunctionId bucketCalc;
    FunctionId groupHash;
    FunctionId schedCheck;
    FunctionId cursorCheck;
    FunctionId bufGuard;
    /// @}

    /// @{ OS-scheduler stub (context-switch interleaving)
    FunctionId osSchedule;
    FunctionId osCtxSave;
    FunctionId osCtxRestore;
    /// @}

    /** Declare every function in @p reg. */
    static DbFuncs declareAll(FunctionRegistry &reg);
};

/**
 * Shared execution context threaded through the database system.
 * One DbContext per database instance; the recorder can be retargeted
 * between queries so each query thread records into its own buffer.
 */
struct DbContext
{
    /**
     * Straight-line work calibration for the DBMS skeleton (see
     * TraceRecorder): sized so traces average ~43 instructions
     * between calls, the paper's measured DBMS value (§5.4).
     */
    static constexpr double dbWorkScale = 5.0;

    DbContext(FunctionRegistry &reg, TraceBuffer &initial_buffer)
        : fn(DbFuncs::declareAll(reg)),
          rec(initial_buffer, dbWorkScale), rng(0x5eed'cafe)
    {
    }

    /** Redirect recording into a different buffer (per-query). */
    void
    retarget(TraceBuffer &buffer)
    {
        rec = TraceRecorder(buffer, dbWorkScale);
    }

    DbFuncs fn;
    TraceRecorder rec;
    Rng rng;

    /**
     * Instance-scoped fault injector consulted by this database's
     * crash points; null (the default) falls back to the process
     * global, which is itself usually null.  See src/fault/fault.hh.
     */
    fault::FaultInjector *fault = nullptr;

    /** Class of the query currently executing (set per query). */
    std::size_t queryClass = 0;

    /** Operator-instance index for the running query. */
    std::size_t
    opClass() const
    {
        return queryClass % DbFuncs::opClasses;
    }
};

} // namespace cgp::db

#endif // CGP_DB_CONTEXT_HH
