#include "db/wisconsin.hh"

#include <vector>

#include "db/ops/executor.hh"
#include "db/ops/index_select.hh"
#include "db/ops/joins.hh"
#include "db/ops/scan.hh"
#include "util/logging.hh"

namespace cgp::db
{

namespace
{

/** Wisconsin string columns: cyclic letter codes. */
std::string
wiscString(std::uint32_t v)
{
    std::string s = "AAAAAAA";
    for (int i = 6; i >= 0 && v > 0; --i) {
        s[static_cast<std::size_t>(i)] =
            static_cast<char>('A' + (v % 26));
        v /= 26;
    }
    return s;
}

void
loadTable(DbSystem &db, const std::string &name, std::uint32_t n,
          Rng &rng)
{
    TableInfo &t = db.createTable(name, Wisconsin::schema());
    const Schema *s = t.schema.get();

    // unique1: random permutation of 0..n-1; unique2: sequential.
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i)
        perm[i] = i;
    rng.shuffle(perm);

    const TxnId txn = db.txns().begin();
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t u1 = perm[i];
        Tuple tup(s);
        tup.setInt(0, static_cast<std::int32_t>(u1));       // unique1
        tup.setInt(1, static_cast<std::int32_t>(i));        // unique2
        tup.setInt(2, static_cast<std::int32_t>(u1 % 2));   // two
        tup.setInt(3, static_cast<std::int32_t>(u1 % 4));   // four
        tup.setInt(4, static_cast<std::int32_t>(u1 % 10));  // ten
        tup.setInt(5, static_cast<std::int32_t>(u1 % 20));  // twenty
        tup.setInt(6, static_cast<std::int32_t>(u1 % 100)); // onePercent
        tup.setInt(7, static_cast<std::int32_t>(u1 % 10));  // tenPercent
        tup.setInt(8, static_cast<std::int32_t>(u1 % 5));   // twentyPercent
        tup.setInt(9, static_cast<std::int32_t>(u1 % 2));   // fiftyPercent
        tup.setInt(10, static_cast<std::int32_t>(u1));      // unique3
        tup.setInt(11,
                   static_cast<std::int32_t>((u1 % 100) * 2)); // evenOnePercent
        tup.setInt(12,
                   static_cast<std::int32_t>((u1 % 100) * 2 + 1)); // oddOnePercent
        tup.setString(13, wiscString(u1));                  // stringu1
        tup.setString(14, wiscString(i));                   // stringu2
        tup.setString(15, wiscString(u1 % 4));              // string4
        db.insertRow(txn, name, tup);
    }
    db.txns().commit(txn);
}

} // anonymous namespace

Schema
Wisconsin::schema()
{
    return Schema({
        {"unique1", ColumnType::Int32, 4},
        {"unique2", ColumnType::Int32, 4},
        {"two", ColumnType::Int32, 4},
        {"four", ColumnType::Int32, 4},
        {"ten", ColumnType::Int32, 4},
        {"twenty", ColumnType::Int32, 4},
        {"onePercent", ColumnType::Int32, 4},
        {"tenPercent", ColumnType::Int32, 4},
        {"twentyPercent", ColumnType::Int32, 4},
        {"fiftyPercent", ColumnType::Int32, 4},
        {"unique3", ColumnType::Int32, 4},
        {"evenOnePercent", ColumnType::Int32, 4},
        {"oddOnePercent", ColumnType::Int32, 4},
        {"stringu1", ColumnType::Char, 8},
        {"stringu2", ColumnType::Char, 8},
        {"string4", ColumnType::Char, 8},
    });
}

void
Wisconsin::load(DbSystem &db, std::uint32_t n, std::uint64_t seed)
{
    cgp_assert(n >= 20, "Wisconsin scale too small");
    Rng rng(seed);
    loadTable(db, "big1", n, rng);
    loadTable(db, "big2", n, rng);
    loadTable(db, "small", n / 10, rng);

    // Clustered-equivalent index (unique2 = insertion order) and
    // non-clustered index (unique1 = random permutation).
    db.createIndex("big1", "unique2");
    db.createIndex("big1", "unique1");
    db.createIndex("big2", "unique2");
    db.createIndex("big2", "unique1");
}

const char *
Wisconsin::queryName(int query)
{
    switch (query) {
      case 1:
        return "wisc-q1: 1% selection, no index";
      case 2:
        return "wisc-q2: 10% selection, no index";
      case 3:
        return "wisc-q3: 1% selection, clustered index";
      case 4:
        return "wisc-q4: 10% selection, clustered index";
      case 5:
        return "wisc-q5: 1% selection, non-clustered index";
      case 6:
        return "wisc-q6: 10% selection, non-clustered index";
      case 7:
        return "wisc-q7: single-tuple select, clustered index";
      case 9:
        return "wisc-q9: two-way join (joinAselB)";
      default:
        return "wisc-q?: unknown";
    }
}

std::uint64_t
Wisconsin::runQuery(DbSystem &db, int query, std::uint32_t n, Rng &rng)
{
    DbContext &ctx = db.ctx();
    ctx.queryClass = static_cast<std::size_t>(query == 9 ? 7
                                                         : query - 1);
    Executor exec(ctx);
    const TxnId txn = db.txns().begin();

    TableInfo &big1 = db.catalog().table("big1");
    TableInfo &big2 = db.catalog().table("big2");
    const std::size_t cu1 = big1.schema->indexOf("unique1");
    const std::size_t cu2 = big1.schema->indexOf("unique2");

    const auto one_pct =
        static_cast<std::int32_t>(std::max<std::uint32_t>(n / 100, 1));
    const auto ten_pct =
        static_cast<std::int32_t>(std::max<std::uint32_t>(n / 10, 1));

    std::uint64_t rows = 0;
    switch (query) {
      case 1: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(one_pct)));
        Predicate p;
        p.andInt(cu2, CmpOp::Between, lo, lo + one_pct - 1);
        SeqScan scan(ctx, *big1.file, txn, p);
        rows = exec.run("q1", scan, 0);
        break;
      }
      case 2: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(ten_pct)));
        Predicate p;
        p.andInt(cu2, CmpOp::Between, lo, lo + ten_pct - 1);
        SeqScan scan(ctx, *big1.file, txn, p);
        rows = exec.run("q2", scan, 1);
        break;
      }
      case 3: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(one_pct)));
        IndexSelect sel(ctx, db.catalog().index("big1", "unique2"),
                        *big1.file, txn, lo, lo + one_pct - 1);
        rows = exec.run("q3", sel, 2);
        break;
      }
      case 4: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(ten_pct)));
        IndexSelect sel(ctx, db.catalog().index("big1", "unique2"),
                        *big1.file, txn, lo, lo + ten_pct - 1);
        rows = exec.run("q4", sel, 3);
        break;
      }
      case 5: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(one_pct)));
        IndexSelect sel(ctx, db.catalog().index("big1", "unique1"),
                        *big1.file, txn, lo, lo + one_pct - 1);
        rows = exec.run("q5", sel, 4);
        break;
      }
      case 6: {
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(ten_pct)));
        IndexSelect sel(ctx, db.catalog().index("big1", "unique1"),
                        *big1.file, txn, lo, lo + ten_pct - 1);
        rows = exec.run("q6", sel, 5);
        break;
      }
      case 7: {
        const auto key =
            static_cast<std::int32_t>(rng.nextBelow(n));
        IndexSelect sel(ctx, db.catalog().index("big1", "unique2"),
                        *big1.file, txn, key, key);
        rows = exec.run("q7", sel, 6);
        break;
      }
      case 9: {
        // joinAselB: big1 JOIN big2 ON unique1 with a 10% selection
        // on big2.unique2, via grace hash join (creates temporary
        // partitions through Create_rec).
        const auto lo = static_cast<std::int32_t>(
            rng.nextBelow(n - static_cast<std::uint32_t>(ten_pct)));
        Predicate sel;
        sel.andInt(cu2, CmpOp::Between, lo, lo + ten_pct - 1);
        SeqScan right(ctx, *big2.file, txn, sel);
        SeqScan left(ctx, *big1.file, txn, Predicate{});
        GraceHashJoin join(ctx, db.bufferPool(), db.volume(),
                           db.locks(), db.log(), left, right, txn,
                           cu1, cu1, 8);
        rows = exec.run("q9", join, 7);
        break;
      }
      default:
        cgp_fatal("Wisconsin query ", query, " not implemented");
    }

    db.txns().commit(txn);
    return rows;
}

} // namespace cgp::db
