/**
 * @file
 * External merge sort: builds sorted runs, materializes each run as
 * a temporary heap file through Create_rec (the paper's Figure 2
 * entry point — its intro names "sorted runs" as one of the
 * operations that routinely invoke it), then k-way merges the runs.
 */

#ifndef CGP_DB_OPS_EXTERNAL_SORT_HH
#define CGP_DB_OPS_EXTERNAL_SORT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "db/heapfile.hh"
#include "db/ops/operator.hh"
#include "db/txn.hh"

namespace cgp::db
{

class ExternalSort : public Operator
{
  public:
    /**
     * @param run_tuples In-memory run size in tuples (the "sort
     *        buffer"); smaller values force more runs and a wider
     *        merge.
     */
    ExternalSort(DbContext &ctx, BufferPool &pool, Volume &volume,
                 LockManager &locks, WriteAheadLog &log,
                 Operator &child, TxnId txn, std::size_t key_col,
                 std::size_t run_tuples = 256,
                 bool descending = false);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return child_.schema(); }

    std::size_t runCount() const { return runs_.size(); }

  private:
    /** Consume the child into sorted runs on "disk". */
    void buildRuns();

    /** Prime the merge cursors. */
    void startMerge();

    /** Refill cursor @p i from its run. */
    void advance(std::size_t i);

    DbContext &ctx_;
    BufferPool &pool_;
    Volume &volume_;
    LockManager &locks_;
    WriteAheadLog &log_;
    Operator &child_;
    TxnId txn_;
    std::size_t keyCol_;
    std::size_t runTuples_;
    bool descending_;

    std::vector<std::unique_ptr<HeapFile>> runs_;
    std::vector<std::unique_ptr<HeapFile::Scan>> cursors_;
    std::vector<std::optional<Tuple>> heads_;
    bool opened_ = false;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_EXTERNAL_SORT_HH
