/**
 * @file
 * SeqScan: full heap-file scan with an optional filter predicate —
 * Wisconsin's non-indexed selections.
 */

#ifndef CGP_DB_OPS_SCAN_HH
#define CGP_DB_OPS_SCAN_HH

#include <memory>
#include <optional>

#include "db/heapfile.hh"
#include "db/ops/operator.hh"

namespace cgp::db
{

class SeqScan : public Operator
{
  public:
    SeqScan(DbContext &ctx, HeapFile &file, TxnId txn,
            Predicate predicate = {});

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;

    const Schema *schema() const override { return file_.schema(); }

    std::uint64_t tuplesScanned() const { return scanned_; }

  private:
    DbContext &ctx_;
    HeapFile &file_;
    TxnId txn_;
    Predicate predicate_;
    std::optional<HeapFile::Scan> scan_;
    std::uint64_t scanned_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_SCAN_HH
