/**
 * @file
 * Volcano-style operator interface plus predicate evaluation.  Every
 * operator is traced; per-tuple work flows through the storage
 * manager beneath it, producing the layered call sequences CGP
 * learns.
 */

#ifndef CGP_DB_OPS_OPERATOR_HH
#define CGP_DB_OPS_OPERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "db/context.hh"
#include "db/tuple.hh"

namespace cgp::db
{

class Operator
{
  public:
    virtual ~Operator() = default;

    virtual void open() = 0;

    /** Produce the next tuple; false at end. */
    virtual bool next(Tuple &out) = 0;

    virtual void close() = 0;

    /** Reset to the start (for nested-loops inner re-scan). */
    virtual void rewind() = 0;

    virtual const Schema *schema() const = 0;
};

/**
 * Call-site ids for the inlined-function copy sets (see InlinedFn):
 * each operator references its own inlined copies of the tuple
 * accessors and predicate evaluators.
 */
namespace callsite
{
constexpr std::size_t seqScan = 0;
constexpr std::size_t indexSelect = 1;
constexpr std::size_t nlj = 2;
constexpr std::size_t ghj = 3;
constexpr std::size_t agg = 4;
constexpr std::size_t misc = 5;
} // namespace callsite

/** Comparison operators for predicate terms. */
enum class CmpOp : std::uint8_t
{
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
    Between ///< lo <= v <= hi
};

/**
 * Conjunctive predicate over INT32 columns (plus optional CHAR
 * equality), the shape every Wisconsin/TPC-H filter needs.
 */
class Predicate
{
  public:
    struct Term
    {
        std::size_t col = 0;
        CmpOp op = CmpOp::Eq;
        std::int32_t lo = 0;
        std::int32_t hi = 0;
        bool isString = false;
        std::string strValue;
    };

    Predicate() = default;

    Predicate &andInt(std::size_t col, CmpOp op, std::int32_t lo,
                      std::int32_t hi = 0);
    Predicate &andString(std::size_t col, const std::string &value);

    /** Evaluate (traced: one data-dependent branch per term).
     *  @param site call-site id selecting the inlined copies. */
    bool eval(DbContext &ctx, const Tuple &t,
              std::size_t site = callsite::misc) const;

    bool empty() const { return terms_.empty(); }
    const std::vector<Term> &terms() const { return terms_; }

  private:
    std::vector<Term> terms_;
};

/** Traced accessor: read an INT32 column. */
std::int32_t tracedGetInt(DbContext &ctx, const Tuple &t,
                          std::size_t col,
                          std::size_t site = callsite::misc);

/** Traced accessor: read a CHAR column. */
std::string tracedGetString(DbContext &ctx, const Tuple &t,
                            std::size_t col,
                            std::size_t site = callsite::misc);

/** Traced tuple hash over one column. */
std::uint64_t tracedHash(DbContext &ctx, const Tuple &t,
                         std::size_t col,
                         std::size_t site = callsite::misc);

/** Traced tuple copy. */
Tuple tracedCopy(DbContext &ctx, const Tuple &t,
                 std::size_t site = callsite::misc);

} // namespace cgp::db

#endif // CGP_DB_OPS_OPERATOR_HH
