#include "db/ops/executor.hh"

namespace cgp::db
{

std::uint64_t
Executor::run(const std::string &name, Operator &root,
              std::size_t query_class)
{
    (void)name;
    const std::size_t qc = query_class % DbFuncs::queryClasses;

    // Per-query front-end work: parse, optimize, plan, schedule.
    // Each query class walks its own route through the big
    // front-end code (its own grammar productions and plan shapes).
    {
        TraceScope ps(ctx_.rec, ctx_.fn.queryParse);
        ps.work(40);
        TraceScope path(ctx_.rec, ctx_.fn.parsePath[qc]);
        path.work(200);
        path.branch(true);
        path.work(140);
    }
    {
        TraceScope os(ctx_.rec, ctx_.fn.queryOptimize);
        os.work(40);
        TraceScope path(ctx_.rec, ctx_.fn.optimizePath[qc]);
        path.work(260);
        path.branch(false);
        path.work(180);
    }
    {
        TraceScope bs(ctx_.rec, ctx_.fn.planBuild);
        bs.work(40);
        TraceScope path(ctx_.rec, ctx_.fn.planPath[qc]);
        path.work(120);
    }
    {
        TraceScope ss(ctx_.rec, ctx_.fn.querySchedule);
        ss.work(60);
    }

    std::uint64_t rows = 0;
    {
        TraceScope es(ctx_.rec, ctx_.fn.execOpen);
        es.work(20);
        root.open();
    }
    Tuple t;
    while (true) {
        TraceScope es(ctx_.rec,
                      ctx_.fn.execNextC[ctx_.opClass()]);
        es.work(7);
        {
            TraceScope hs(ctx_.rec, ctx_.fn.schedCheck);
            hs.work(4);
        }
        if (!root.next(t))
            break;
        {
            TraceScope ds(ctx_.rec, ctx_.fn.execDeliver);
            ds.work(9);
        }
        ++rows;
    }
    {
        TraceScope es(ctx_.rec, ctx_.fn.execClose);
        es.work(10);
        root.close();
    }
    return rows;
}

} // namespace cgp::db
