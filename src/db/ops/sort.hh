/**
 * @file
 * Sort (materializing) and Project operators — needed by the TPC-H
 * order-by queries and for trimming join outputs.
 */

#ifndef CGP_DB_OPS_SORT_HH
#define CGP_DB_OPS_SORT_HH

#include <cstdint>
#include <vector>

#include "db/ops/operator.hh"

namespace cgp::db
{

class Sort : public Operator
{
  public:
    /**
     * @param key_col INT32 sort key.
     * @param descending Sort direction.
     * @param limit Emit at most this many rows (0 = all).
     */
    Sort(DbContext &ctx, Operator &child, std::size_t key_col,
         bool descending = false, std::uint64_t limit = 0);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return child_.schema(); }

  private:
    void materialize();

    DbContext &ctx_;
    Operator &child_;
    std::size_t keyCol_;
    bool descending_;
    std::uint64_t limit_;
    std::vector<Tuple> rows_;
    std::size_t cursor_ = 0;
};

class Project : public Operator
{
  public:
    Project(DbContext &ctx, Operator &child,
            std::vector<std::size_t> cols);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return &outSchema_; }

  private:
    DbContext &ctx_;
    Operator &child_;
    std::vector<std::size_t> cols_;
    Schema outSchema_;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_SORT_HH
