#include "db/ops/sort.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp::db
{

Sort::Sort(DbContext &ctx, Operator &child, std::size_t key_col,
           bool descending, std::uint64_t limit)
    : ctx_(ctx), child_(child), keyCol_(key_col),
      descending_(descending), limit_(limit)
{
}

void
Sort::materialize()
{
    rows_.clear();
    Tuple t;
    while (child_.next(t))
        rows_.push_back(tracedCopy(ctx_, t));

    auto cmp = [this](const Tuple &a, const Tuple &b) {
        TraceScope cs(ctx_.rec, ctx_.fn.sortCompare);
        cs.work(6);
        const auto ka = a.getInt(keyCol_);
        const auto kb = b.getInt(keyCol_);
        return descending_ ? ka > kb : ka < kb;
    };
    std::stable_sort(rows_.begin(), rows_.end(), cmp);
    cursor_ = 0;
}

void
Sort::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortOpen);
    ts.work(22);
    child_.open();
    materialize();
}

bool
Sort::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortNext);
    ts.work(5);
    if (cursor_ >= rows_.size())
        return false;
    if (limit_ != 0 && cursor_ >= limit_)
        return false;
    out = rows_[cursor_++];
    return true;
}

void
Sort::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortClose);
    ts.work(4);
    child_.close();
    rows_.clear();
}

void
Sort::rewind()
{
    cursor_ = 0;
}

namespace
{

Schema
projectSchema(const Schema &in, const std::vector<std::size_t> &cols)
{
    std::vector<Column> out;
    for (std::size_t c : cols)
        out.push_back(in.column(c));
    return Schema(std::move(out));
}

} // anonymous namespace

Project::Project(DbContext &ctx, Operator &child,
                 std::vector<std::size_t> cols)
    : ctx_(ctx), child_(child), cols_(std::move(cols)),
      outSchema_(projectSchema(*child.schema(), cols_))
{
}

void
Project::open()
{
    child_.open();
}

bool
Project::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.projNext);
    ts.work(6);
    Tuple t;
    if (!child_.next(t))
        return false;
    Tuple p(&outSchema_);
    for (std::size_t i = 0; i < cols_.size(); ++i) {
        const Column &c = outSchema_.column(i);
        if (c.type == ColumnType::Int32)
            p.setInt(i, t.getInt(cols_[i]));
        else
            p.setString(i, t.getString(cols_[i]));
    }
    out = p;
    return true;
}

void
Project::close()
{
    child_.close();
}

void
Project::rewind()
{
    child_.rewind();
}

} // namespace cgp::db
