/**
 * @file
 * Hash-based grouping aggregate (SUM/COUNT/AVG/MIN over INT32
 * columns) — the paper's "hash based aggregate" operator, used by
 * the TPC-H queries.
 */

#ifndef CGP_DB_OPS_AGGREGATE_HH
#define CGP_DB_OPS_AGGREGATE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/ops/operator.hh"

namespace cgp::db
{

enum class AggKind : std::uint8_t
{
    Sum,
    Count,
    Avg,
    Min,
    Max
};

struct AggSpec
{
    AggKind kind = AggKind::Sum;
    std::size_t col = 0; ///< input column (ignored for Count)
    std::string name;    ///< output column name
};

class HashAggregate : public Operator
{
  public:
    /**
     * Output schema: the group-by columns (as INT32) followed by one
     * INT32 column per aggregate.
     */
    HashAggregate(DbContext &ctx, Operator &child,
                  std::vector<std::size_t> group_cols,
                  std::vector<AggSpec> aggs);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return &outSchema_; }

    std::uint64_t groupCount() const { return groups_.size(); }

  private:
    struct GroupState
    {
        std::vector<std::int64_t> acc;
        std::vector<std::int64_t> count;
    };

    void consumeChild();

    DbContext &ctx_;
    Operator &child_;
    std::vector<std::size_t> groupCols_;
    std::vector<AggSpec> aggs_;
    Schema outSchema_;

    /** Ordered map gives deterministic output order. */
    std::map<std::vector<std::int32_t>, GroupState> groups_;
    std::map<std::vector<std::int32_t>, GroupState>::const_iterator
        cursor_;
    bool materialized_ = false;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_AGGREGATE_HH
