/**
 * @file
 * Query execution driver: models the top layers of paper Figure 1
 * (parser, optimizer, scheduler) as per-query setup work, then pulls
 * the plan to exhaustion through the Volcano interface.
 */

#ifndef CGP_DB_OPS_EXECUTOR_HH
#define CGP_DB_OPS_EXECUTOR_HH

#include <cstdint>
#include <string>

#include "db/ops/operator.hh"

namespace cgp::db
{

class Executor
{
  public:
    explicit Executor(DbContext &ctx) : ctx_(ctx) {}

    /**
     * Run a query plan to completion.
     * @param name Query name (for reporting only).
     * @param root Plan root.
     * @param query_class Which route through the parser/optimizer/
     *        plan-builder code this query exercises (see
     *        DbFuncs::queryClasses).
     * @return number of result rows.
     */
    std::uint64_t run(const std::string &name, Operator &root,
                      std::size_t query_class = 0);

  private:
    DbContext &ctx_;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_EXECUTOR_HH
