#include "db/ops/operator.hh"

#include "util/logging.hh"

namespace cgp::db
{

Predicate &
Predicate::andInt(std::size_t col, CmpOp op, std::int32_t lo,
                  std::int32_t hi)
{
    Term t;
    t.col = col;
    t.op = op;
    t.lo = lo;
    t.hi = hi;
    terms_.push_back(t);
    return *this;
}

Predicate &
Predicate::andString(std::size_t col, const std::string &value)
{
    Term t;
    t.col = col;
    t.op = CmpOp::Eq;
    t.isString = true;
    t.strValue = value;
    terms_.push_back(t);
    return *this;
}

bool
Predicate::eval(DbContext &ctx, const Tuple &t, std::size_t site) const
{
    TraceScope ds(ctx.rec, ctx.fn.predDispatchC[ctx.opClass()]);
    ds.work(8);
    for (const Term &term : terms_) {
        bool pass = false;
        if (term.isString) {
            TraceScope es(ctx.rec, ctx.fn.predEvalEq.site(site));
            es.work(10);
            pass = tracedGetString(ctx, t, term.col, site) ==
                term.strValue;
            es.branch(pass);
        } else {
            TraceScope es(ctx.rec,
                          ctx.fn.predEvalRangeC[ctx.opClass()]);
            (void)site;
            es.work(8);
            const std::int32_t v =
                tracedGetInt(ctx, t, term.col, site);
            switch (term.op) {
              case CmpOp::Eq:
                pass = v == term.lo;
                break;
              case CmpOp::Lt:
                pass = v < term.lo;
                break;
              case CmpOp::Le:
                pass = v <= term.lo;
                break;
              case CmpOp::Gt:
                pass = v > term.lo;
                break;
              case CmpOp::Ge:
                pass = v >= term.lo;
                break;
              case CmpOp::Between:
                pass = v >= term.lo && v <= term.hi;
                break;
            }
            es.branch(pass);
        }
        if (!pass)
            return false;
    }
    return true;
}

std::int32_t
tracedGetInt(DbContext &ctx, const Tuple &t, std::size_t col,
             std::size_t site)
{
    TraceScope ts(ctx.rec, ctx.fn.tupGetIntC[ctx.opClass()]);
    (void)site;
    ts.work(5);
    return t.getInt(col);
}

std::string
tracedGetString(DbContext &ctx, const Tuple &t, std::size_t col,
                std::size_t site)
{
    TraceScope ts(ctx.rec, ctx.fn.tupGetString.site(site));
    ts.work(7);
    return t.getString(col);
}

std::uint64_t
tracedHash(DbContext &ctx, const Tuple &t, std::size_t col,
           std::size_t site)
{
    TraceScope ts(ctx.rec, ctx.fn.tupHash.site(site));
    ts.work(6);
    const auto v = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(t.getInt(col)));
    return v * 0x9e3779b97f4a7c15ull;
}

Tuple
tracedCopy(DbContext &ctx, const Tuple &t, std::size_t site)
{
    TraceScope ts(ctx.rec, ctx.fn.tupCopy.site(site));
    ts.work(6);
    {
        TraceScope hs(ctx.rec, ctx.fn.memArenaAlloc);
        hs.work(6);
    }
    return t;
}

} // namespace cgp::db
