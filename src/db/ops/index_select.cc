#include "db/ops/index_select.hh"

#include "util/logging.hh"

namespace cgp::db
{

IndexSelect::IndexSelect(DbContext &ctx, BTree &index, HeapFile &file,
                         TxnId txn, std::int32_t lo, std::int32_t hi,
                         Predicate residual)
    : ctx_(ctx), index_(index), file_(file), txn_(txn), lo_(lo),
      hi_(hi), residual_(std::move(residual))
{
}

void
IndexSelect::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.idxSelOpen);
    ts.work(14);
    scan_.emplace(index_, txn_, lo_, hi_);
}

bool
IndexSelect::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.idxSelNextC[ctx_.opClass()]);
    ts.work(13);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.ridDecode);
        hs.work(5);
    }
    cgp_assert(scan_.has_value(), "next() before open()");

    std::int32_t key;
    Rid rid;
    while (scan_->next(key, rid)) {
        Tuple t = file_.getRec(txn_, rid);
        if (residual_.empty() ||
            residual_.eval(ctx_, t, callsite::indexSelect)) {
            out = t;
            return true;
        }
    }
    return false;
}

void
IndexSelect::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.idxSelClose);
    ts.work(5);
    if (scan_.has_value()) {
        scan_->close();
        scan_.reset();
    }
}

void
IndexSelect::rewind()
{
    if (scan_.has_value())
        scan_->close();
    scan_.emplace(index_, txn_, lo_, hi_);
}

} // namespace cgp::db
