#include "db/ops/scan.hh"

#include "util/logging.hh"

namespace cgp::db
{

SeqScan::SeqScan(DbContext &ctx, HeapFile &file, TxnId txn,
                 Predicate predicate)
    : ctx_(ctx), file_(file), txn_(txn),
      predicate_(std::move(predicate))
{
}

void
SeqScan::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.scanOpen);
    ts.work(14);
    scan_.emplace(file_, txn_);
}

bool
SeqScan::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.scanNextC[ctx_.opClass()]);
    ts.work(13);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.exprSetup);
        hs.work(5);
    }
    cgp_assert(scan_.has_value(), "next() before open()");

    Tuple t;
    while (scan_->next(t)) {
        ++scanned_;
        if (predicate_.empty() ||
            predicate_.eval(ctx_, t, callsite::seqScan)) {
            out = t;
            return true;
        }
    }
    return false;
}

void
SeqScan::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.scanClose);
    ts.work(5);
    if (scan_.has_value()) {
        scan_->close();
        scan_.reset();
    }
}

void
SeqScan::rewind()
{
    if (scan_.has_value())
        scan_->close();
    scan_.emplace(file_, txn_);
}

} // namespace cgp::db
