/**
 * @file
 * IndexSelect: B+-tree range scan followed by heap-file RID fetches
 * — Wisconsin's indexed selections.  With a non-clustered index the
 * fetches hop across pages, exactly the access pattern the paper's
 * query 5 exercises.
 */

#ifndef CGP_DB_OPS_INDEX_SELECT_HH
#define CGP_DB_OPS_INDEX_SELECT_HH

#include <optional>

#include "db/btree.hh"
#include "db/heapfile.hh"
#include "db/ops/operator.hh"

namespace cgp::db
{

class IndexSelect : public Operator
{
  public:
    /**
     * @param lo,hi Key range [lo, hi] pushed into the index.
     * @param residual Extra predicate applied after the fetch.
     */
    IndexSelect(DbContext &ctx, BTree &index, HeapFile &file,
                TxnId txn, std::int32_t lo, std::int32_t hi,
                Predicate residual = {});

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;

    const Schema *schema() const override { return file_.schema(); }

  private:
    DbContext &ctx_;
    BTree &index_;
    HeapFile &file_;
    TxnId txn_;
    std::int32_t lo_;
    std::int32_t hi_;
    Predicate residual_;
    std::optional<BTree::RangeScan> scan_;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_INDEX_SELECT_HH
