/**
 * @file
 * Join operators: nested loops, indexed nested loops, and grace
 * hash join (which materializes temporary partitions through the
 * storage manager — the paper's Create_rec example cites exactly
 * this use).
 */

#ifndef CGP_DB_OPS_JOINS_HH
#define CGP_DB_OPS_JOINS_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "db/btree.hh"
#include "db/heapfile.hh"
#include "db/ops/operator.hh"
#include "db/txn.hh"

namespace cgp::db
{

/** Plain nested loops: rescans the inner per outer tuple. */
class NestedLoopsJoin : public Operator
{
  public:
    NestedLoopsJoin(DbContext &ctx, Operator &outer, Operator &inner,
                    std::size_t outer_col, std::size_t inner_col);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return &outSchema_; }

  private:
    DbContext &ctx_;
    Operator &outer_;
    Operator &inner_;
    std::size_t outerCol_;
    std::size_t innerCol_;
    Schema outSchema_;
    Tuple outerTuple_;
    bool haveOuter_ = false;
};

/** Indexed nested loops: probes a B+-tree per outer tuple. */
class IndexedNLJoin : public Operator
{
  public:
    /**
     * @param inner_residual Predicate applied to each fetched inner
     *        tuple (e.g. a date filter that the index cannot serve).
     */
    IndexedNLJoin(DbContext &ctx, Operator &outer, BTree &inner_index,
                  HeapFile &inner_file, TxnId txn,
                  std::size_t outer_col, std::size_t inner_col,
                  Predicate inner_residual = {});

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return &outSchema_; }

  private:
    DbContext &ctx_;
    Operator &outer_;
    BTree &innerIndex_;
    HeapFile &innerFile_;
    TxnId txn_;
    std::size_t outerCol_;
    std::size_t innerCol_;
    Predicate innerResidual_;
    Schema outSchema_;
    Tuple outerTuple_;
    std::vector<Rid> matches_;
    std::size_t matchIdx_ = 0;
    bool haveOuter_ = false;
};

/**
 * Grace hash join: partition both inputs into temporary heap files
 * via the storage manager, then build+probe per partition.
 */
class GraceHashJoin : public Operator
{
  public:
    /**
     * @param partitions Fan-out of the partition phase.
     */
    GraceHashJoin(DbContext &ctx, BufferPool &pool, Volume &volume,
                  LockManager &locks, WriteAheadLog &log,
                  Operator &left, Operator &right, TxnId txn,
                  std::size_t left_col, std::size_t right_col,
                  unsigned partitions = 8);

    void open() override;
    bool next(Tuple &out) override;
    void close() override;
    void rewind() override;
    const Schema *schema() const override { return &outSchema_; }

  private:
    /** Route one input into temp partition files. */
    void partitionInput(Operator &input, std::size_t col,
                        std::vector<std::unique_ptr<HeapFile>> &parts);

    /** Load partition @p p of the left side into the hash table. */
    void buildPartition(std::size_t p);

    /** Pull right-side tuples of partition @p p and probe. */
    bool probeStep(Tuple &out);

    DbContext &ctx_;
    BufferPool &pool_;
    Volume &volume_;
    LockManager &locks_;
    WriteAheadLog &log_;
    Operator &left_;
    Operator &right_;
    TxnId txn_;
    std::size_t leftCol_;
    std::size_t rightCol_;
    unsigned numPartitions_;
    Schema outSchema_;

    std::vector<std::unique_ptr<HeapFile>> leftParts_;
    std::vector<std::unique_ptr<HeapFile>> rightParts_;
    std::unordered_multimap<std::int32_t, Tuple> hashTable_;
    std::size_t curPartition_ = 0;
    std::unique_ptr<HeapFile::Scan> probeScan_;
    Tuple probeTuple_;
    std::vector<const Tuple *> probeMatches_;
    std::size_t probeMatchIdx_ = 0;
    bool opened_ = false;
};

} // namespace cgp::db

#endif // CGP_DB_OPS_JOINS_HH
