#include "db/ops/joins.hh"

#include "util/logging.hh"

namespace cgp::db
{

NestedLoopsJoin::NestedLoopsJoin(DbContext &ctx, Operator &outer,
                                 Operator &inner,
                                 std::size_t outer_col,
                                 std::size_t inner_col)
    : ctx_(ctx), outer_(outer), inner_(inner), outerCol_(outer_col),
      innerCol_(inner_col),
      outSchema_(concatSchemas(*outer.schema(), *inner.schema()))
{
}

void
NestedLoopsJoin::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.nljOpen);
    ts.work(16);
    outer_.open();
    inner_.open();
    haveOuter_ = false;
}

bool
NestedLoopsJoin::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.nljNext);
    ts.work(8);

    while (true) {
        if (!haveOuter_) {
            if (!outer_.next(outerTuple_))
                return false;
            haveOuter_ = true;
            inner_.rewind();
        }
        Tuple inner_tuple;
        while (inner_.next(inner_tuple)) {
            const auto a = tracedGetInt(ctx_, outerTuple_,
                                        outerCol_, callsite::nlj);
            const auto b = tracedGetInt(ctx_, inner_tuple,
                                        innerCol_, callsite::nlj);
            const bool match = a == b;
            ts.branch(match);
            if (match) {
                out = concatTuples(&outSchema_, outerTuple_,
                                   inner_tuple);
                return true;
            }
        }
        haveOuter_ = false;
    }
}

void
NestedLoopsJoin::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.nljClose);
    ts.work(5);
    outer_.close();
    inner_.close();
}

void
NestedLoopsJoin::rewind()
{
    outer_.rewind();
    inner_.rewind();
    haveOuter_ = false;
}

IndexedNLJoin::IndexedNLJoin(DbContext &ctx, Operator &outer,
                             BTree &inner_index, HeapFile &inner_file,
                             TxnId txn, std::size_t outer_col,
                             std::size_t inner_col,
                             Predicate inner_residual)
    : ctx_(ctx), outer_(outer), innerIndex_(inner_index),
      innerFile_(inner_file), txn_(txn), outerCol_(outer_col),
      innerCol_(inner_col),
      innerResidual_(std::move(inner_residual)),
      outSchema_(concatSchemas(*outer.schema(), *inner_file.schema()))
{
}

void
IndexedNLJoin::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.inljOpen);
    ts.work(14);
    outer_.open();
    haveOuter_ = false;
    matches_.clear();
    matchIdx_ = 0;
}

bool
IndexedNLJoin::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.inljNextC[ctx_.opClass()]);
    ts.work(12);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.probeSetup);
        hs.work(5);
    }

    while (true) {
        if (haveOuter_ && matchIdx_ < matches_.size()) {
            const Rid rid = matches_[matchIdx_++];
            Tuple inner_tuple = innerFile_.getRec(txn_, rid);
            // Verify the key (duplicates share a probe list) and
            // apply the non-indexable residual filter.
            if (tracedGetInt(ctx_, inner_tuple, innerCol_,
                             callsite::nlj) ==
                    tracedGetInt(ctx_, outerTuple_, outerCol_,
                                 callsite::nlj) &&
                (innerResidual_.empty() ||
                 innerResidual_.eval(ctx_, inner_tuple,
                                     callsite::nlj))) {
                out = concatTuples(&outSchema_, outerTuple_,
                                   inner_tuple);
                return true;
            }
            continue;
        }

        if (!outer_.next(outerTuple_))
            return false;
        haveOuter_ = true;
        matches_.clear();
        matchIdx_ = 0;

        const std::int32_t key = tracedGetInt(
            ctx_, outerTuple_, outerCol_, callsite::nlj);
        BTree::RangeScan probe(innerIndex_, txn_, key, key);
        std::int32_t k;
        Rid rid;
        while (probe.next(k, rid))
            matches_.push_back(rid);
        probe.close();
        ts.branch(!matches_.empty());
    }
}

void
IndexedNLJoin::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.inljClose);
    ts.work(5);
    outer_.close();
}

void
IndexedNLJoin::rewind()
{
    outer_.rewind();
    haveOuter_ = false;
    matches_.clear();
    matchIdx_ = 0;
}

GraceHashJoin::GraceHashJoin(DbContext &ctx, BufferPool &pool,
                             Volume &volume, LockManager &locks,
                             WriteAheadLog &log, Operator &left,
                             Operator &right, TxnId txn,
                             std::size_t left_col,
                             std::size_t right_col,
                             unsigned partitions)
    : ctx_(ctx), pool_(pool), volume_(volume), locks_(locks),
      log_(log), left_(left), right_(right), txn_(txn),
      leftCol_(left_col), rightCol_(right_col),
      numPartitions_(partitions),
      outSchema_(concatSchemas(*left.schema(), *right.schema()))
{
    cgp_assert(partitions > 0, "grace join needs partitions");
}

void
GraceHashJoin::partitionInput(
    Operator &input, std::size_t col,
    std::vector<std::unique_ptr<HeapFile>> &parts)
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjPartition);
    ts.work(20);

    parts.clear();
    for (unsigned p = 0; p < numPartitions_; ++p) {
        parts.push_back(std::make_unique<HeapFile>(
            ctx_, pool_, volume_, locks_, log_, input.schema()));
    }

    Tuple t;
    while (input.next(t)) {
        const std::uint64_t h =
            tracedHash(ctx_, t, col, callsite::ghj);
        const auto p =
            static_cast<std::size_t>(h % numPartitions_);
        // Temporary partitions are written through Create_rec —
        // the paper's Figure 2 path.
        parts[p]->createRec(txn_, t);
    }
}

void
GraceHashJoin::buildPartition(std::size_t p)
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjBuild);
    ts.work(18);

    hashTable_.clear();
    HeapFile::Scan scan(*leftParts_[p], txn_);
    Tuple t;
    while (scan.next(t)) {
        const std::int32_t key =
            tracedGetInt(ctx_, t, leftCol_, callsite::ghj);
        hashTable_.emplace(key, tracedCopy(ctx_, t, callsite::ghj));
    }
    scan.close();
}

void
GraceHashJoin::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjOpen);
    ts.work(16);

    left_.open();
    right_.open();
    partitionInput(left_, leftCol_, leftParts_);
    partitionInput(right_, rightCol_, rightParts_);

    curPartition_ = 0;
    buildPartition(0);
    probeScan_ = std::make_unique<HeapFile::Scan>(*rightParts_[0],
                                                  txn_);
    probeMatches_.clear();
    probeMatchIdx_ = 0;
    opened_ = true;
}

bool
GraceHashJoin::probeStep(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjProbeC[ctx_.opClass()]);
    ts.work(12);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.bucketCalc);
        hs.work(5);
    }

    while (true) {
        if (probeMatchIdx_ < probeMatches_.size()) {
            const Tuple *build_tuple =
                probeMatches_[probeMatchIdx_++];
            out = concatTuples(&outSchema_, *build_tuple,
                               probeTuple_);
            return true;
        }

        if (!probeScan_->next(probeTuple_)) {
            // Partition exhausted.
            probeScan_->close();
            probeScan_.reset();
            return false;
        }
        const std::int32_t key = tracedGetInt(
            ctx_, probeTuple_, rightCol_, callsite::ghj);
        probeMatches_.clear();
        probeMatchIdx_ = 0;
        auto [lo, hi] = hashTable_.equal_range(key);
        for (auto it = lo; it != hi; ++it)
            probeMatches_.push_back(&it->second);
        ts.branch(!probeMatches_.empty());
    }
}

bool
GraceHashJoin::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjNextC[ctx_.opClass()]);
    ts.work(6);
    cgp_assert(opened_, "next() before open()");

    while (true) {
        if (probeScan_ != nullptr && probeStep(out))
            return true;

        // Move to the next partition.
        ++curPartition_;
        if (curPartition_ >= numPartitions_)
            return false;
        buildPartition(curPartition_);
        probeScan_ = std::make_unique<HeapFile::Scan>(
            *rightParts_[curPartition_], txn_);
        probeMatches_.clear();
        probeMatchIdx_ = 0;
    }
}

void
GraceHashJoin::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.ghjClose);
    ts.work(6);
    if (probeScan_ != nullptr) {
        probeScan_->close();
        probeScan_.reset();
    }
    hashTable_.clear();
    left_.close();
    right_.close();
    opened_ = false;
}

void
GraceHashJoin::rewind()
{
    close();
    left_.rewind();
    right_.rewind();
    open();
}

} // namespace cgp::db
