#include "db/ops/aggregate.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace cgp::db
{

namespace
{

Schema
makeOutSchema(const std::vector<std::size_t> &group_cols,
              const Schema &in, const std::vector<AggSpec> &aggs)
{
    std::vector<Column> cols;
    for (std::size_t g : group_cols) {
        Column c = in.column(g);
        c.type = ColumnType::Int32;
        c.width = 4;
        cols.push_back(c);
    }
    for (const AggSpec &a : aggs)
        cols.push_back(Column{a.name, ColumnType::Int32, 4});
    return Schema(std::move(cols));
}

} // anonymous namespace

HashAggregate::HashAggregate(DbContext &ctx, Operator &child,
                             std::vector<std::size_t> group_cols,
                             std::vector<AggSpec> aggs)
    : ctx_(ctx), child_(child), groupCols_(std::move(group_cols)),
      aggs_(std::move(aggs)),
      outSchema_(makeOutSchema(groupCols_, *child.schema(), aggs_))
{
    cgp_assert(!aggs_.empty(), "aggregate without aggregates");
}

void
HashAggregate::consumeChild()
{
    Tuple t;
    while (child_.next(t)) {
        TraceScope as(ctx_.rec, ctx_.fn.aggAccumC[ctx_.opClass()]);
        as.work(11);
        {
            TraceScope hs(ctx_.rec, ctx_.fn.groupHash);
            hs.work(5);
        }

        std::vector<std::int32_t> key;
        key.reserve(groupCols_.size());
        for (std::size_t g : groupCols_)
            key.push_back(tracedGetInt(ctx_, t, g, callsite::agg));

        auto [it, fresh] = groups_.try_emplace(key);
        as.branch(fresh);
        GroupState &gs = it->second;
        if (fresh) {
            gs.acc.resize(aggs_.size(), 0);
            gs.count.resize(aggs_.size(), 0);
            for (std::size_t a = 0; a < aggs_.size(); ++a) {
                if (aggs_[a].kind == AggKind::Min)
                    gs.acc[a] = std::numeric_limits<std::int32_t>::max();
                if (aggs_[a].kind == AggKind::Max)
                    gs.acc[a] = std::numeric_limits<std::int32_t>::min();
            }
        }
        for (std::size_t a = 0; a < aggs_.size(); ++a) {
            const AggSpec &spec = aggs_[a];
            switch (spec.kind) {
              case AggKind::Count:
                ++gs.acc[a];
                break;
              case AggKind::Sum:
              case AggKind::Avg:
                gs.acc[a] += tracedGetInt(ctx_, t, spec.col,
                                          callsite::agg);
                ++gs.count[a];
                break;
              case AggKind::Min:
                gs.acc[a] = std::min<std::int64_t>(
                    gs.acc[a],
                    tracedGetInt(ctx_, t, spec.col, callsite::agg));
                break;
              case AggKind::Max:
                gs.acc[a] = std::max<std::int64_t>(
                    gs.acc[a],
                    tracedGetInt(ctx_, t, spec.col, callsite::agg));
                break;
            }
        }
    }
    materialized_ = true;
    cursor_ = groups_.begin();
}

void
HashAggregate::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.aggOpen);
    ts.work(15);
    child_.open();
    groups_.clear();
    materialized_ = false;
    consumeChild();
}

bool
HashAggregate::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.aggNext);
    ts.work(8);
    cgp_assert(materialized_, "next() before open()");
    if (cursor_ == groups_.end())
        return false;

    Tuple t(&outSchema_);
    std::size_t col = 0;
    for (std::int32_t k : cursor_->first)
        t.setInt(col++, k);
    const GroupState &gs = cursor_->second;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
        std::int64_t v = gs.acc[a];
        if (aggs_[a].kind == AggKind::Avg && gs.count[a] > 0)
            v /= gs.count[a];
        t.setInt(col++, static_cast<std::int32_t>(v));
    }
    out = t;
    ++cursor_;
    return true;
}

void
HashAggregate::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.aggClose);
    ts.work(5);
    child_.close();
    groups_.clear();
    materialized_ = false;
}

void
HashAggregate::rewind()
{
    child_.rewind();
    groups_.clear();
    consumeChild();
}

} // namespace cgp::db
