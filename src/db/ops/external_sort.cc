#include "db/ops/external_sort.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp::db
{

ExternalSort::ExternalSort(DbContext &ctx, BufferPool &pool,
                           Volume &volume, LockManager &locks,
                           WriteAheadLog &log, Operator &child,
                           TxnId txn, std::size_t key_col,
                           std::size_t run_tuples, bool descending)
    : ctx_(ctx), pool_(pool), volume_(volume), locks_(locks),
      log_(log), child_(child), txn_(txn), keyCol_(key_col),
      runTuples_(run_tuples), descending_(descending)
{
    cgp_assert(run_tuples >= 2, "sort buffer too small");
}

void
ExternalSort::buildRuns()
{
    runs_.clear();
    std::vector<Tuple> buffer;
    buffer.reserve(runTuples_);

    auto flush = [this, &buffer]() {
        if (buffer.empty())
            return;
        {
            TraceScope ss(ctx_.rec, ctx_.fn.sortOpen);
            ss.work(20);
            auto cmp = [this](const Tuple &a, const Tuple &b) {
                TraceScope cs(ctx_.rec, ctx_.fn.sortCompare);
                cs.work(6);
                const auto ka = a.getInt(keyCol_);
                const auto kb = b.getInt(keyCol_);
                return descending_ ? ka > kb : ka < kb;
            };
            std::stable_sort(buffer.begin(), buffer.end(), cmp);
        }
        // Materialize the sorted run through Create_rec.
        runs_.push_back(std::make_unique<HeapFile>(
            ctx_, pool_, volume_, locks_, log_, child_.schema()));
        for (const Tuple &t : buffer)
            runs_.back()->createRec(txn_, t);
        buffer.clear();
    };

    Tuple t;
    while (child_.next(t)) {
        buffer.push_back(t);
        if (buffer.size() >= runTuples_)
            flush();
    }
    flush();
}

void
ExternalSort::advance(std::size_t i)
{
    Tuple t;
    if (cursors_[i] != nullptr && cursors_[i]->next(t)) {
        heads_[i] = t;
    } else {
        heads_[i].reset();
        if (cursors_[i] != nullptr) {
            cursors_[i]->close();
            cursors_[i].reset();
        }
    }
}

void
ExternalSort::startMerge()
{
    cursors_.clear();
    heads_.assign(runs_.size(), std::nullopt);
    for (std::size_t i = 0; i < runs_.size(); ++i) {
        cursors_.push_back(
            std::make_unique<HeapFile::Scan>(*runs_[i], txn_));
        advance(i);
    }
}

void
ExternalSort::open()
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortOpen);
    ts.work(18);
    child_.open();
    buildRuns();
    startMerge();
    opened_ = true;
}

bool
ExternalSort::next(Tuple &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortNext);
    ts.work(6);
    cgp_assert(opened_, "next() before open()");

    // K-way merge: pick the best head.
    std::size_t best = heads_.size();
    for (std::size_t i = 0; i < heads_.size(); ++i) {
        if (!heads_[i].has_value())
            continue;
        if (best == heads_.size()) {
            best = i;
            continue;
        }
        TraceScope cs(ctx_.rec, ctx_.fn.sortCompare);
        cs.work(6);
        const auto ki = heads_[i]->getInt(keyCol_);
        const auto kb = heads_[best]->getInt(keyCol_);
        if (descending_ ? ki > kb : ki < kb)
            best = i;
    }
    if (best == heads_.size())
        return false;
    out = *heads_[best];
    advance(best);
    return true;
}

void
ExternalSort::close()
{
    TraceScope ts(ctx_.rec, ctx_.fn.sortClose);
    ts.work(5);
    for (auto &c : cursors_) {
        if (c != nullptr)
            c->close();
    }
    cursors_.clear();
    heads_.clear();
    child_.close();
    opened_ = false;
}

void
ExternalSort::rewind()
{
    // Runs are already materialized and sorted: restart the merge.
    for (auto &c : cursors_) {
        if (c != nullptr)
            c->close();
    }
    startMerge();
}

} // namespace cgp::db
