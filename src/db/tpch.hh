/**
 * @file
 * Scaled-down TPC-H-like dataset and the five queries the paper
 * evaluates (1, 2, 3, 5, 6), implemented over our operator set.
 *
 * Numeric columns are INT32 (prices in cents, dates as day numbers);
 * the queries keep TPC-H's join/aggregation shapes: Q1/Q6 scan +
 * aggregate lineitem, Q3 is the shipping-priority 3-way join with
 * sort, Q5 the local-supplier 5-way join, Q2 the minimum-cost
 * supplier nested query (aggregate subquery + re-join).
 */

#ifndef CGP_DB_TPCH_HH
#define CGP_DB_TPCH_HH

#include <cstdint>

#include "db/dbsys.hh"
#include "util/rng.hh"

namespace cgp::db
{

class Tpch
{
  public:
    /** Row counts derived from a lineitem target. */
    struct Scale
    {
        std::uint32_t lineitem = 8000;
        std::uint32_t orders = 2000;
        std::uint32_t customer = 200;
        std::uint32_t part = 400;
        std::uint32_t supplier = 40;
        std::uint32_t partsupp = 800;

        static Scale fromLineitems(std::uint32_t l);
    };

    /** Create and load all eight tables plus the query indexes. */
    static void load(DbSystem &db, const Scale &scale,
                     std::uint64_t seed = 0x7bc8);

    /**
     * Run one TPC-H query (1, 2, 3, 5 or 6).
     * @return result row count.
     */
    static std::uint64_t runQuery(DbSystem &db, int query,
                                  const Scale &scale, Rng &rng);

    static const char *queryName(int query);

    /** Last day number in the generated date domain. */
    static constexpr std::int32_t maxDate = 2400;
};

} // namespace cgp::db

#endif // CGP_DB_TPCH_HH
