#include "db/context.hh"

namespace cgp::db
{

namespace
{

/** Declare one per-call-site copy set of an inlinable function. */
InlinedFn
declareInlined(FunctionRegistry &reg, const std::string &name,
               const FunctionTraits &traits)
{
    InlinedFn fn;
    for (std::size_t i = 0; i < InlinedFn::sites; ++i) {
        fn.at[i] = reg.declare(
            name + "@site" + std::to_string(i), traits);
    }
    return fn;
}

} // anonymous namespace

DbFuncs
DbFuncs::declareAll(FunctionRegistry &reg)
{
    using T = FunctionTraits;
    DbFuncs f;

    // Buffer manager ---------------------------------------------------
    f.bpFix = reg.declare("BufferPool::fix", T::medium());
    f.bpUnfix = reg.declare("BufferPool::unfix", T::tiny());
    f.bpLookup = reg.declare("BufferPool::hashLookup", T::small());
    f.bpEvict = reg.declare("BufferPool::evictVictim", T::medium());
    f.bpReadDisk = reg.declare("BufferPool::getPageFromDisk",
                               T::large());
    f.bpWriteDisk = reg.declare("BufferPool::writePageToDisk",
                                T::large());
    f.bpFlush = reg.declare("BufferPool::flushAll", T::medium());
    f.bpPin = reg.declare("BufferPool::pin", T::tiny());
    f.bpUnpin = reg.declare("BufferPool::unpin", T::tiny());
    f.bpLruTouch = reg.declare("BufferPool::lruTouch", T::tiny());
    f.bpBucketScan = reg.declare("BufferPool::bucketScan",
                                 T::small());

    // Slotted pages ----------------------------------------------------
    f.pageInit = reg.declare("SlottedPage::init", T::small());
    f.pageInsert = reg.declare("SlottedPage::insert", T::medium());
    f.pageRead = reg.declare("SlottedPage::read", T::small());
    f.pageUpdate = reg.declare("SlottedPage::update", T::small());
    f.pageSlotLookup =
        declareInlined(reg, "SlottedPage::slotLookup", T::small());
    f.pageRecordCopy =
        declareInlined(reg, "SlottedPage::recordCopy", T::small());

    // Volume / disk ----------------------------------------------------
    f.diskRead = reg.declare("Volume::readPage", T::large());
    f.diskWrite = reg.declare("Volume::writePage", T::large());
    f.diskAlloc = reg.declare("Volume::allocPage", T::small());

    // Lock manager -----------------------------------------------------
    f.lockAcquire = reg.declare("LockManager::acquire", T::medium());
    f.lockRelease = reg.declare("LockManager::release", T::small());
    f.lockTableProbe = reg.declare("LockManager::tableProbe",
                                   T::small());
    f.lockUpgrade = reg.declare("LockManager::upgrade", T::small());
    f.lockGrantCheck = reg.declare("LockManager::grantCheck",
                                   T::small());
    f.lockHolderScan = reg.declare("LockManager::holderScan",
                                   T::small());

    // Log ----------------------------------------------------------------
    f.logAppend = reg.declare("Log::append", T::small());
    f.logForce = reg.declare("Log::force", T::medium());
    f.logReserve = reg.declare("Log::reserve", T::tiny());
    f.logCopy = reg.declare("Log::copyPayload", T::tiny());

    // Transactions -------------------------------------------------------
    f.txnBegin = reg.declare("Transaction::begin", T::small());
    f.txnCommit = reg.declare("Transaction::commit", T::medium());
    f.txnAbort = reg.declare("Transaction::abort", T::medium());

    // Heap files ---------------------------------------------------------
    f.hfCreateRec = reg.declare("HeapFile::createRec", T::medium());
    f.hfFindFree = reg.declare("HeapFile::findFreePage", T::medium());
    f.hfGetRec = reg.declare("HeapFile::getRec", T::small());
    f.hfUpdateRec = reg.declare("HeapFile::updateRec", T::medium());
    f.hfScanOpen = reg.declare("HeapFile::scanOpen", T::small());
    f.hfScanNext = reg.declare("HeapFile::scanNext", T::medium());
    f.hfScanClose = reg.declare("HeapFile::scanClose", T::tiny());

    // B+-tree --------------------------------------------------------------
    f.btSearch = reg.declare("BTree::search", T::medium());
    f.btDescend = reg.declare("BTree::descend", T::small());
    f.btLeafInsert = reg.declare("BTree::leafInsert", T::medium());
    f.btRemove = reg.declare("BTree::remove", T::medium());
    f.btLeafRemove = reg.declare("BTree::leafRemove", T::medium());
    f.btInsert = reg.declare("BTree::insert", T::medium());
    f.btSplit = reg.declare("BTree::split", T::large());
    f.btRangeOpen = reg.declare("BTree::rangeOpen", T::medium());
    f.btRangeNext = reg.declare("BTree::rangeNext", T::small());
    f.btKeyCompare =
        declareInlined(reg, "BTree::keyCompare", T::tiny());
    f.btNodeSearch =
        declareInlined(reg, "BTree::nodeSearch", T::small());

    // Catalog ----------------------------------------------------------------
    f.catTableLookup = reg.declare("Catalog::tableLookup", T::small());
    f.catIndexLookup = reg.declare("Catalog::indexLookup", T::small());

    // Tuples / expressions -----------------------------------------------------
    f.tupGetInt = declareInlined(reg, "Tuple::getInt", T::tiny());
    f.tupGetString =
        declareInlined(reg, "Tuple::getString", T::tiny());
    f.tupCopy = declareInlined(reg, "Tuple::copy", T::tiny());
    f.tupHash = declareInlined(reg, "Tuple::hash", T::tiny());
    f.tupDeserialize =
        declareInlined(reg, "Tuple::deserialize", T::small());
    f.predEvalRange =
        declareInlined(reg, "Predicate::evalRange", T::small());
    f.predEvalEq =
        declareInlined(reg, "Predicate::evalEq", T::small());

    // Per-query-class operator-layer instances --------------------------
    for (std::size_t q = 0; q < DbFuncs::opClasses; ++q) {
        const std::string c = "<plan" + std::to_string(q) + ">";
        f.scanNextC[q] = reg.declare("SeqScan::next" + c, T::medium());
        f.idxSelNextC[q] =
            reg.declare("IndexSelect::next" + c, T::medium());
        f.hfScanNextC[q] =
            reg.declare("HeapFile::scanNext" + c, T::medium());
        f.btRangeNextC[q] =
            reg.declare("BTree::rangeNext" + c, T::small());
        f.inljNextC[q] =
            reg.declare("IndexedNLJoin::next" + c, T::medium());
        f.ghjProbeC[q] =
            reg.declare("GraceHashJoin::probe" + c, T::medium());
        f.aggAccumC[q] =
            reg.declare("HashAggregate::accumulate" + c, T::small());
        f.execNextC[q] =
            reg.declare("Executor::next" + c, T::small());
        f.pageReadC[q] =
            reg.declare("SlottedPage::read" + c, T::small());
        f.predDispatchC[q] =
            reg.declare("Predicate::dispatch" + c, T::small());
        f.ghjNextC[q] =
            reg.declare("GraceHashJoin::next" + c, T::medium());
        f.hfGetRecC[q] =
            reg.declare("HeapFile::getRec" + c, T::small());
        f.btDescendC[q] =
            reg.declare("BTree::descend" + c, T::small());
        f.btNodeSearchC[q] =
            reg.declare("BTree::nodeSearch" + c, T::small());
        f.pageSlotLookupC[q] =
            reg.declare("SlottedPage::slotLookup" + c, T::small());
        f.pageRecordCopyC[q] =
            reg.declare("SlottedPage::recordCopy" + c, T::small());
        f.tupDeserializeC[q] =
            reg.declare("Tuple::deserialize" + c, T::small());
        f.tupGetIntC[q] =
            reg.declare("Tuple::getInt" + c, T::tiny());
        f.predEvalRangeC[q] =
            reg.declare("Predicate::evalRange" + c, T::small());
    }

    // Operators -------------------------------------------------------------
    f.scanOpen = reg.declare("SeqScan::open", T::medium());
    f.scanNext = reg.declare("SeqScan::next", T::medium());
    f.scanClose = reg.declare("SeqScan::close", T::tiny());
    f.idxSelOpen = reg.declare("IndexSelect::open", T::medium());
    f.idxSelNext = reg.declare("IndexSelect::next", T::medium());
    f.idxSelClose = reg.declare("IndexSelect::close", T::tiny());
    f.nljOpen = reg.declare("NestedLoopsJoin::open", T::medium());
    f.nljNext = reg.declare("NestedLoopsJoin::next", T::large());
    f.nljClose = reg.declare("NestedLoopsJoin::close", T::tiny());
    f.inljOpen = reg.declare("IndexedNLJoin::open", T::medium());
    f.inljNext = reg.declare("IndexedNLJoin::next", T::large());
    f.inljClose = reg.declare("IndexedNLJoin::close", T::tiny());
    f.ghjOpen = reg.declare("GraceHashJoin::open", T::medium());
    f.ghjPartition = reg.declare("GraceHashJoin::partition",
                                 T::large());
    f.ghjBuild = reg.declare("GraceHashJoin::build", T::medium());
    f.ghjProbe = reg.declare("GraceHashJoin::probe", T::medium());
    f.ghjNext = reg.declare("GraceHashJoin::next", T::medium());
    f.ghjClose = reg.declare("GraceHashJoin::close", T::tiny());
    f.aggOpen = reg.declare("HashAggregate::open", T::medium());
    f.aggAccumulate = reg.declare("HashAggregate::accumulate",
                                  T::small());
    f.aggNext = reg.declare("HashAggregate::next", T::small());
    f.aggClose = reg.declare("HashAggregate::close", T::tiny());
    f.sortOpen = reg.declare("Sort::open", T::large());
    f.sortCompare = reg.declare("Sort::compare", T::tiny());
    f.sortNext = reg.declare("Sort::next", T::tiny());
    f.sortClose = reg.declare("Sort::close", T::tiny());
    f.projNext = reg.declare("Project::next", T::small());

    // Query layer ---------------------------------------------------------
    f.queryParse = reg.declare("QueryParser::parse", T::huge());
    f.queryOptimize = reg.declare("QueryOptimizer::optimize",
                                  T::huge());
    f.querySchedule = reg.declare("QueryScheduler::schedule",
                                  T::medium());
    f.planBuild = reg.declare("PlanBuilder::build", T::large());
    for (std::size_t q = 0; q < DbFuncs::queryClasses; ++q) {
        f.parsePath[q] = reg.declare(
            "QueryParser::path" + std::to_string(q), T::huge());
        f.optimizePath[q] = reg.declare(
            "QueryOptimizer::path" + std::to_string(q), T::huge());
        f.planPath[q] = reg.declare(
            "PlanBuilder::path" + std::to_string(q), T::large());
    }
    f.execOpen = reg.declare("Executor::open", T::medium());
    f.execNext = reg.declare("Executor::next", T::small());
    f.execDeliver = reg.declare("Executor::deliverRow", T::small());
    f.execClose = reg.declare("Executor::close", T::small());

    // Cross-cutting service layers ------------------------------------
    f.bpLatch = reg.declare("BufferPool::latch", T::small());
    f.bpStats = reg.declare("BufferPool::statsBump", T::small());
    f.lockLatch = reg.declare("LockManager::latch", T::small());
    f.lockCompat = reg.declare("LockManager::modeCompat", T::small());
    f.lockStats = reg.declare("LockManager::statsBump", T::small());
    f.pageChecksum = reg.declare("SlottedPage::checksum", T::small());
    f.pageStats = reg.declare("SlottedPage::statsBump", T::small());
    f.btLatch = reg.declare("BTree::latch", T::small());
    f.btIterAdvance = reg.declare("BTree::iterAdvance", T::small());
    f.hfIterAdvance = reg.declare("HeapFile::iterAdvance",
                                  T::small());
    f.hfStats = reg.declare("HeapFile::statsBump", T::small());
    f.logMutex = reg.declare("Log::mutex", T::small());
    f.memArenaAlloc = reg.declare("MemArena::alloc", T::small());
    f.memArenaFree = reg.declare("MemArena::free", T::small());
    f.statsBump = reg.declare("Stats::bump", T::small());
    f.threadCheck = reg.declare("Thread::check", T::small());
    f.exprSetup = reg.declare("Expr::setup", T::small());
    f.ridDecode = reg.declare("Rid::decode", T::small());
    f.probeSetup = reg.declare("Join::probeSetup", T::small());
    f.bucketCalc = reg.declare("Hash::bucketCalc", T::small());
    f.groupHash = reg.declare("Aggregate::groupHash", T::small());
    f.schedCheck = reg.declare("Scheduler::check", T::small());
    f.cursorCheck = reg.declare("Cursor::check", T::small());
    f.bufGuard = reg.declare("BufferGuard::ctor", T::small());

    // OS scheduler stub -------------------------------------------------------
    f.osSchedule = reg.declare("os::schedule", T::medium());
    f.osCtxSave = reg.declare("os::contextSave", T::small());
    f.osCtxRestore = reg.declare("os::contextRestore", T::small());

    return f;
}

} // namespace cgp::db
