/**
 * @file
 * Fundamental identifiers and constants of the storage manager.
 */

#ifndef CGP_DB_COMMON_HH
#define CGP_DB_COMMON_HH

#include <cstdint>

#include "util/types.hh"

namespace cgp::db
{

/** Page identifier: index into the database "volume". */
using PageId = std::uint32_t;

constexpr PageId invalidPageId = ~0u;

/** Bytes per database page. */
constexpr std::uint32_t pageBytes = 8192;

/** Record identifier: page + slot. */
struct Rid
{
    PageId page = invalidPageId;
    std::uint16_t slot = 0;

    bool
    operator==(const Rid &o) const
    {
        return page == o.page && slot == o.slot;
    }
    bool
    valid() const
    {
        return page != invalidPageId;
    }
};

/** Transaction identifier. */
using TxnId = std::uint32_t;

constexpr TxnId invalidTxnId = ~0u;

/** Log sequence number. */
using Lsn = std::uint64_t;

/** Synthetic data-segment base where buffer frames live. */
constexpr Addr bufferSegmentBase = 0x1000'0000;

} // namespace cgp::db

#endif // CGP_DB_COMMON_HH
