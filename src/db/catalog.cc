#include "db/catalog.hh"

#include "util/logging.hh"

namespace cgp::db
{

TableInfo &
Catalog::addTable(std::unique_ptr<TableInfo> table)
{
    cgp_assert(table != nullptr && !table->name.empty(),
               "bad table registration");
    cgp_assert(tables_.find(table->name) == tables_.end(),
               "duplicate table '", table->name, "'");
    const std::string name = table->name;
    auto [it, ok] = tables_.emplace(name, std::move(table));
    cgp_assert(ok, "catalog insert failed");
    return *it->second;
}

TableInfo &
Catalog::table(const std::string &name)
{
    TraceScope ts(ctx_.rec, ctx_.fn.catTableLookup);
    ts.work(11);
    auto it = tables_.find(name);
    cgp_assert(it != tables_.end(), "unknown table '", name, "'");
    return *it->second;
}

BTree &
Catalog::index(const std::string &table_name, const std::string &column)
{
    TraceScope ts(ctx_.rec, ctx_.fn.catIndexLookup);
    ts.work(11);
    TableInfo &t = table(table_name);
    auto it = t.indexes.find(column);
    cgp_assert(it != t.indexes.end(), "no index on ", table_name, ".",
               column);
    return *it->second;
}

bool
Catalog::hasTable(const std::string &name) const
{
    return tables_.find(name) != tables_.end();
}

bool
Catalog::hasIndex(const std::string &table_name,
                  const std::string &column) const
{
    auto it = tables_.find(table_name);
    if (it == tables_.end())
        return false;
    return it->second->indexes.find(column) !=
        it->second->indexes.end();
}

} // namespace cgp::db
