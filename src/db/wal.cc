#include "db/wal.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp::db
{

namespace
{

constexpr unsigned maxForceRetries = 5;
constexpr unsigned backoffBaseWork = 16;

/** 32-bit FNV-1a, incrementally. */
std::uint32_t
fnv1a(std::uint32_t h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x01000193u;
    }
    return h;
}

template <typename T>
std::uint32_t
fnv1aValue(std::uint32_t h, const T &value)
{
    return fnv1a(h, &value, sizeof(value));
}

} // anonymous namespace

std::uint32_t
WriteAheadLog::computeChecksum(const LogRecord &record)
{
    std::uint32_t h = 0x811c9dc5u;
    h = fnv1aValue(h, record.lsn);
    h = fnv1aValue(h, record.txn);
    h = fnv1aValue(h, record.type);
    h = fnv1aValue(h, record.page);
    h = fnv1aValue(h, record.slot);
    const auto payload_len =
        static_cast<std::uint32_t>(record.payload.size());
    const auto undo_len =
        static_cast<std::uint32_t>(record.undo.size());
    h = fnv1aValue(h, payload_len);
    h = fnv1aValue(h, undo_len);
    h = fnv1a(h, record.payload.data(), record.payload.size());
    h = fnv1a(h, record.undo.data(), record.undo.size());
    return h;
}

bool
WriteAheadLog::checksumValid(const LogRecord &record)
{
    return record.checksum == computeChecksum(record);
}

Lsn
WriteAheadLog::append(TxnId txn, LogRecordType type, PageId page,
                      std::uint16_t slot, const std::uint8_t *bytes,
                      std::uint16_t len)
{
    const Lsn lsn = append(txn, type, page, slot);
    cgp_assert(bytes != nullptr && len > 0, "empty redo payload");
    records_.back().payload.assign(bytes, bytes + len);
    records_.back().checksum = computeChecksum(records_.back());
    return lsn;
}

Lsn
WriteAheadLog::append(TxnId txn, LogRecordType type, PageId page,
                      std::uint16_t slot, const std::uint8_t *bytes,
                      std::uint16_t len, const std::uint8_t *undo_bytes,
                      std::uint16_t undo_len)
{
    const Lsn lsn = append(txn, type, page, slot, bytes, len);
    cgp_assert(undo_bytes != nullptr && undo_len > 0,
               "empty undo image");
    records_.back().undo.assign(undo_bytes, undo_bytes + undo_len);
    records_.back().checksum = computeChecksum(records_.back());
    return lsn;
}

Lsn
WriteAheadLog::append(TxnId txn, LogRecordType type, PageId page,
                      std::uint16_t slot)
{
    TraceScope ts(ctx_.rec, ctx_.fn.logAppend);
    ts.work(10);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.logMutex);
        hs.work(5);
    }
    {
        TraceScope rs(ctx_.rec, ctx_.fn.logReserve);
        rs.work(5);
    }
    {
        TraceScope cs(ctx_.rec, ctx_.fn.logCopy);
        cs.work(6);
    }
    LogRecord r;
    r.lsn = next_++;
    r.txn = txn;
    r.type = type;
    r.page = page;
    r.slot = slot;
    r.checksum = computeChecksum(r);
    records_.push_back(std::move(r));
    return records_.back().lsn;
}

void
WriteAheadLog::force(Lsn lsn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.logForce);
    ts.work(40);
    cgp_assert(lsn < next_, "forcing an unwritten LSN");

    // The log device may error transiently before anything is
    // written; retry with capped exponential backoff.
    for (unsigned attempt = 0;; ++attempt) {
        const auto kind = fault::hit(ctx_.fault, "wal.pre_force");
        if (kind == fault::FaultKind::TransientIo) {
            if (attempt + 1 >= maxForceRetries)
                throw fault::TransientIoError(
                    "log force failed after retries");
            ++forceRetries_;
            ts.work(std::min(backoffBaseWork << attempt, 256u));
            continue;
        }
        break;
    }

    if (lsn <= durable_)
        return;

    // The device writes the forced range block-wise: advance the
    // durability point halfway, then cross the mid-force crash
    // window.  A crash there leaves a clean partial prefix; a torn
    // write leaves the boundary record half-written on top of that.
    const Lsn mid = durable_ + (lsn - durable_ + 1) / 2;
    durable_ = mid;
    if (const auto kind = fault::hit(ctx_.fault, "wal.mid_force")) {
        if (*kind == fault::FaultKind::TornWrite)
            tearRecord(mid);
        if (*kind == fault::FaultKind::TornWrite ||
            *kind == fault::FaultKind::PartialForce)
            throw fault::CrashInjected("wal.mid_force");
        // TransientIo mid-force: the block retry succeeds below.
    }
    durable_ = lsn;
}

void
WriteAheadLog::truncateToDurable()
{
    while (!records_.empty() && records_.back().lsn > durable_)
        records_.pop_back();
    next_ = durable_ + 1;
}

void
WriteAheadLog::tearRecord(Lsn lsn)
{
    auto it = std::lower_bound(
        records_.begin(), records_.end(), lsn,
        [](const LogRecord &r, Lsn l) { return r.lsn < l; });
    cgp_assert(it != records_.end() && it->lsn == lsn,
               "tearRecord of unknown LSN ", lsn);
    if (it->payload.size() > 1) {
        it->payload.resize(it->payload.size() / 2);
    } else {
        // No image bytes to lose: corrupt the stored checksum so the
        // record still reads back invalid.
        it->checksum = ~it->checksum;
    }
}

} // namespace cgp::db
