#include "db/wal.hh"

#include "util/logging.hh"

namespace cgp::db
{

Lsn
WriteAheadLog::append(TxnId txn, LogRecordType type, PageId page,
                      std::uint16_t slot, const std::uint8_t *bytes,
                      std::uint16_t len)
{
    const Lsn lsn = append(txn, type, page, slot);
    cgp_assert(bytes != nullptr && len > 0, "empty redo payload");
    records_.back().payload.assign(bytes, bytes + len);
    return lsn;
}

Lsn
WriteAheadLog::append(TxnId txn, LogRecordType type, PageId page,
                      std::uint16_t slot)
{
    TraceScope ts(ctx_.rec, ctx_.fn.logAppend);
    ts.work(10);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.logMutex);
        hs.work(5);
    }
    {
        TraceScope rs(ctx_.rec, ctx_.fn.logReserve);
        rs.work(5);
    }
    {
        TraceScope cs(ctx_.rec, ctx_.fn.logCopy);
        cs.work(6);
    }
    LogRecord r;
    r.lsn = next_++;
    r.txn = txn;
    r.type = type;
    r.page = page;
    r.slot = slot;
    records_.push_back(r);
    return r.lsn;
}

void
WriteAheadLog::force(Lsn lsn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.logForce);
    ts.work(40);
    cgp_assert(lsn < next_, "forcing an unwritten LSN");
    if (lsn > durable_)
        durable_ = lsn;
}

} // namespace cgp::db
