/**
 * @file
 * DbSystem: the assembled database server (paper Figure 1's layer
 * stack).  One instance owns a volume, buffer pool, lock manager,
 * WAL, transaction manager and catalog, and exposes helpers for
 * creating/loading tables and indexes.  Query execution happens via
 * the operators in db/ops.
 */

#ifndef CGP_DB_DBSYS_HH
#define CGP_DB_DBSYS_HH

#include <memory>
#include <string>
#include <vector>

#include "db/buffer_pool.hh"
#include "db/catalog.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/txn.hh"
#include "db/volume.hh"
#include "db/wal.hh"

namespace cgp::db
{

struct DbConfig
{
    /** Buffer pool capacity in pages (size above the DB footprint
     *  so the working set is memory resident, per the paper). */
    std::size_t bufferFrames = 8192;

    /** Synthetic data-segment base of this instance's buffer pool. */
    Addr bufferSegment = bufferSegmentBase;
};

class DbSystem
{
  public:
    DbSystem(FunctionRegistry &registry, TraceBuffer &initial_buffer,
             const DbConfig &config = {});

    /** Create an empty table. */
    TableInfo &createTable(const std::string &name, Schema schema);

    /** Build a B+-tree on an INT32 column from existing rows. */
    BTree &createIndex(const std::string &table,
                       const std::string &column);

    /** Bulk-insert one tuple (load phase, outside measurement). */
    Rid insertRow(TxnId txn, const std::string &table,
                  const Tuple &tuple);

    /// @{ Component access.
    DbContext &ctx() { return ctx_; }
    Catalog &catalog() { return catalog_; }
    BufferPool &bufferPool() { return pool_; }
    Volume &volume() { return volume_; }
    LockManager &locks() { return locks_; }
    WriteAheadLog &log() { return log_; }
    TransactionManager &txns() { return txns_; }
    /// @}

    /** Retarget trace recording (per query thread). */
    void record(TraceBuffer &buffer) { ctx_.retarget(buffer); }

  private:
    DbContext ctx_;
    Volume volume_;
    BufferPool pool_;
    LockManager locks_;
    WriteAheadLog log_;
    TransactionManager txns_;
    Catalog catalog_;
};

} // namespace cgp::db

#endif // CGP_DB_DBSYS_HH
