#include "db/txn.hh"

#include "db/buffer_pool.hh"
#include "db/page.hh"
#include "util/logging.hh"

namespace cgp::db
{

TxnId
TransactionManager::begin()
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnBegin);
    ts.work(12);
    const TxnId id = next_++;
    log_.append(id, LogRecordType::Begin);
    table_[id] = TxnState::Active;
    ++active_;
    return id;
}

bool
TransactionManager::isActive(TxnId txn) const
{
    auto it = table_.find(txn);
    return it != table_.end() && it->second == TxnState::Active;
}

std::optional<TxnState>
TransactionManager::stateOf(TxnId txn) const
{
    auto it = table_.find(txn);
    if (it == table_.end())
        return std::nullopt;
    return it->second;
}

bool
TransactionManager::commit(TxnId txn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnCommit);
    ts.work(18);
    auto it = table_.find(txn);
    if (it == table_.end()) {
        cgp_error("commit of unknown transaction ", txn);
        return false;
    }
    if (it->second != TxnState::Active) {
        cgp_error("commit of finished transaction ", txn, " (",
                  it->second == TxnState::Committed ? "committed"
                                                    : "aborted",
                  ")");
        return false;
    }
    const Lsn lsn = log_.append(txn, LogRecordType::Commit);
    // force() may unwind on an injected crash: the transaction then
    // stays Active and its fate is decided by the durable log prefix
    // at recovery.
    log_.force(lsn);
    it->second = TxnState::Committed;
    locks_.releaseAll(txn);
    cgp_assert(active_ > 0, "commit with no active transactions");
    --active_;
    return true;
}

bool
TransactionManager::abort(TxnId txn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnAbort);
    ts.work(24);
    auto it = table_.find(txn);
    if (it == table_.end()) {
        cgp_error("abort of unknown transaction ", txn);
        return false;
    }
    if (it->second != TxnState::Active) {
        cgp_error("abort of finished transaction ", txn, " (",
                  it->second == TxnState::Committed ? "committed"
                                                    : "aborted",
                  ")");
        return false;
    }
    rollback(txn);
    log_.append(txn, LogRecordType::Abort);
    it->second = TxnState::Aborted;
    locks_.releaseAll(txn);
    cgp_assert(active_ > 0, "abort with no active transactions");
    --active_;
    return true;
}

void
TransactionManager::rollback(TxnId txn)
{
    if (pool_ == nullptr)
        cgp_warn("abort of transaction ", txn,
                 " without a bound buffer pool: in-memory pages keep "
                 "its effects until recovery replays the CLRs");

    // Collect the transaction's undoable work, newest first.  The
    // compensation (Clr) records appended below are themselves part
    // of the log being walked, but they sit past the snapshot point.
    const auto &records = log_.records();
    const std::size_t snapshot = records.size();
    for (std::size_t i = snapshot; i > 0; --i) {
        // Copy the fields out: appending the Clr below may grow the
        // log vector and invalidate references into it.
        const LogRecord &r = records[i - 1];
        if (r.txn != txn)
            continue;
        if (r.type == LogRecordType::Begin)
            break; // everything before it belongs to other txns
        if (r.page == invalidPageId ||
            (r.type != LogRecordType::Insert &&
             r.type != LogRecordType::Update))
            continue;
        const bool is_insert = r.type == LogRecordType::Insert;
        const PageId pid = r.page;
        const std::uint16_t slot = r.slot;
        const std::vector<std::uint8_t> before = r.undo;
        if (!is_insert && before.empty()) {
            cgp_error("rollback of txn ", txn, " found update LSN ",
                      r.lsn, " without a before-image, skipping");
            continue;
        }

        // Log the compensation first (redo-only): recovery replays
        // it even if this in-memory undo never reaches the volume.
        if (is_insert)
            log_.append(txn, LogRecordType::Clr, pid, slot);
        else
            log_.append(txn, LogRecordType::Clr, pid, slot,
                        before.data(),
                        static_cast<std::uint16_t>(before.size()));

        if (pool_ == nullptr)
            continue;
        std::uint8_t *frame = pool_->fix(pid);
        SlottedPage page(frame);
        bool dirtied = false;
        if (is_insert) {
            dirtied = page.erase(slot);
        } else if (!before.empty()) {
            dirtied = page.update(
                slot, before.data(),
                static_cast<std::uint16_t>(before.size()));
            if (!dirtied)
                cgp_error("rollback of txn ", txn,
                          " could not restore page ", pid, " slot ",
                          slot);
        }
        pool_->unfix(pid, dirtied);
    }
}

} // namespace cgp::db
