#include "db/txn.hh"

#include "util/logging.hh"

namespace cgp::db
{

TxnId
TransactionManager::begin()
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnBegin);
    ts.work(12);
    const TxnId id = next_++;
    log_.append(id, LogRecordType::Begin);
    ++active_;
    return id;
}

void
TransactionManager::commit(TxnId txn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnCommit);
    ts.work(18);
    const Lsn lsn = log_.append(txn, LogRecordType::Commit);
    log_.force(lsn);
    locks_.releaseAll(txn);
    cgp_assert(active_ > 0, "commit with no active transactions");
    --active_;
}

void
TransactionManager::abort(TxnId txn)
{
    TraceScope ts(ctx_.rec, ctx_.fn.txnAbort);
    ts.work(24);
    log_.append(txn, LogRecordType::Abort);
    locks_.releaseAll(txn);
    cgp_assert(active_ > 0, "abort with no active transactions");
    --active_;
}

} // namespace cgp::db
