#include "db/tuple.hh"

#include <algorithm>

namespace cgp::db
{

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns))
{
    offsets_.reserve(columns_.size());
    std::uint16_t off = 0;
    for (auto &c : columns_) {
        if (c.type == ColumnType::Int32)
            c.width = 4;
        cgp_assert(c.width > 0, "zero-width column ", c.name);
        offsets_.push_back(off);
        off = static_cast<std::uint16_t>(off + c.width);
    }
    recordBytes_ = off;
}

const Column &
Schema::column(std::size_t i) const
{
    cgp_assert(i < columns_.size(), "column index out of range");
    return columns_[i];
}

std::size_t
Schema::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i].name == name)
            return i;
    }
    cgp_panic("unknown column '", name, "'");
}

std::uint16_t
Schema::offsetOf(std::size_t i) const
{
    cgp_assert(i < offsets_.size(), "column index out of range");
    return offsets_[i];
}

Tuple::Tuple(const Schema *schema)
    : schema_(schema), bytes_(schema->recordBytes(), 0)
{
}

Tuple::Tuple(const Schema *schema, const std::uint8_t *bytes)
    : schema_(schema),
      bytes_(bytes, bytes + schema->recordBytes())
{
}

void
Tuple::setInt(std::size_t col, std::int32_t value)
{
    cgp_assert(schema_ != nullptr, "tuple without schema");
    cgp_assert(schema_->column(col).type == ColumnType::Int32,
               "setInt on non-int column");
    std::memcpy(bytes_.data() + schema_->offsetOf(col), &value, 4);
}

void
Tuple::setString(std::size_t col, const std::string &value)
{
    cgp_assert(schema_ != nullptr, "tuple without schema");
    const Column &c = schema_->column(col);
    cgp_assert(c.type == ColumnType::Char,
               "setString on non-char column");
    std::uint8_t *dst = bytes_.data() + schema_->offsetOf(col);
    std::fill(dst, dst + c.width, 0);
    std::memcpy(dst, value.data(),
                std::min<std::size_t>(value.size(), c.width));
}

std::int32_t
Tuple::getInt(std::size_t col) const
{
    cgp_assert(schema_ != nullptr, "tuple without schema");
    cgp_assert(schema_->column(col).type == ColumnType::Int32,
               "getInt on non-int column");
    std::int32_t v;
    std::memcpy(&v, bytes_.data() + schema_->offsetOf(col), 4);
    return v;
}

std::string
Tuple::getString(std::size_t col) const
{
    cgp_assert(schema_ != nullptr, "tuple without schema");
    const Column &c = schema_->column(col);
    cgp_assert(c.type == ColumnType::Char,
               "getString on non-char column");
    const char *src = reinterpret_cast<const char *>(
        bytes_.data() + schema_->offsetOf(col));
    const std::size_t len = ::strnlen(src, c.width);
    return std::string(src, len);
}

Schema
concatSchemas(const Schema &a, const Schema &b)
{
    std::vector<Column> cols;
    for (std::size_t i = 0; i < a.columnCount(); ++i)
        cols.push_back(a.column(i));
    for (std::size_t i = 0; i < b.columnCount(); ++i)
        cols.push_back(b.column(i));
    return Schema(std::move(cols));
}

Tuple
concatTuples(const Schema *out, const Tuple &a, const Tuple &b)
{
    Tuple t(out);
    cgp_assert(a.size() + b.size() == t.size(),
               "concat width mismatch");
    std::uint8_t *dst = const_cast<std::uint8_t *>(t.data());
    std::memcpy(dst, a.data(), a.size());
    std::memcpy(dst + a.size(), b.data(), b.size());
    return t;
}

} // namespace cgp::db
