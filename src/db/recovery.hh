/**
 * @file
 * Crash recovery: a redo-only restart pass over the write-ahead log.
 *
 * Analysis scans the log to split transactions into winners (a
 * Commit record exists) and losers; redo replays the winners'
 * after-images into the volume in LSN order.  Because our pages are
 * append-only slotted pages and the log carries full after-images,
 * redo is idempotent: an insert whose slot already exists (the page
 * made it to the volume before the crash) is re-applied as an
 * overwrite.  Losers' effects are simply not replayed (no undo pass
 * is needed on a volume restored from redo of winners only... their
 * dirty pages never reached the volume in our no-steal buffer pool
 * unless evicted; evicted loser writes are overwritten by replay of
 * the page's winner history).
 */

#ifndef CGP_DB_RECOVERY_HH
#define CGP_DB_RECOVERY_HH

#include <cstdint>
#include <set>

#include "db/buffer_pool.hh"
#include "db/context.hh"
#include "db/volume.hh"
#include "db/wal.hh"

namespace cgp::db
{

class RecoveryManager
{
  public:
    RecoveryManager(DbContext &ctx, Volume &volume,
                    WriteAheadLog &log)
        : ctx_(ctx), volume_(volume), log_(log)
    {
    }

    struct Stats
    {
        std::uint32_t winners = 0;   ///< committed transactions
        std::uint32_t losers = 0;    ///< uncommitted transactions
        std::uint64_t redone = 0;    ///< records replayed
        std::uint64_t skipped = 0;   ///< loser records not replayed
    };

    /**
     * Restart after a crash: replay committed work into the volume
     * through @p pool, then flush.
     */
    Stats recover(BufferPool &pool);

  private:
    DbContext &ctx_;
    Volume &volume_;
    WriteAheadLog &log_;
};

} // namespace cgp::db

#endif // CGP_DB_RECOVERY_HH
