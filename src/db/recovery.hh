/**
 * @file
 * Crash recovery: an analysis/redo/undo restart pass over the
 * write-ahead log.
 *
 * Analysis verifies every surviving record's checksum and splits
 * transactions into winners (a valid Commit record exists), finished
 * losers (an Abort record: their rollback completed and was logged
 * as Clr compensation records) and unfinished losers.  Redo repeats
 * history — every image record, winners and losers alike, including
 * compensations, in LSN order — so slot directories rebuild exactly
 * as they evolved before the crash.  Undo then walks the log
 * backwards rolling back only the unfinished losers: inserts are
 * tombstoned, updates restore their before-images — needed because
 * the buffer pool steals (evicts) dirty loser pages to the volume
 * under memory pressure.
 *
 * The pass never asserts on a malformed log.  A contiguous run of
 * invalid records at the tail is a torn tail (the crash interrupted
 * the last force) and is dropped; an invalid record in the middle is
 * skipped; degenerate redo/undo conditions (missing image, invalid
 * page id, slot mismatch, failed overwrite) are skipped too.  Every
 * skip increments a dedicated Stats counter so callers can tell a
 * clean restart from a degraded one.
 */

#ifndef CGP_DB_RECOVERY_HH
#define CGP_DB_RECOVERY_HH

#include <cstdint>
#include <set>

#include "db/buffer_pool.hh"
#include "db/context.hh"
#include "db/volume.hh"
#include "db/wal.hh"

namespace cgp::db
{

class RecoveryManager
{
  public:
    RecoveryManager(DbContext &ctx, Volume &volume,
                    WriteAheadLog &log)
        : ctx_(ctx), volume_(volume), log_(log)
    {
    }

    struct Stats
    {
        std::uint32_t winners = 0;   ///< committed transactions
        std::uint32_t losers = 0;    ///< uncommitted transactions
        std::uint64_t redone = 0;    ///< records replayed
        std::uint64_t undone = 0;    ///< loser effects rolled back

        /// @{ Malformed-log tolerance counters (formerly asserts).
        std::uint64_t tornTail = 0;       ///< invalid records at tail
        std::uint64_t corruptRecords = 0; ///< mid-log checksum failures
        std::uint64_t emptyPayload = 0;   ///< redo record without image
        std::uint64_t invalidPage = 0;    ///< image without a page id
        std::uint64_t slotMismatch = 0;   ///< replayed slot id differs
        std::uint64_t failedOverwrite = 0;///< in-place redo rejected
        /// @}

        /** True when nothing had to be skipped or repaired. */
        bool
        clean() const
        {
            return tornTail == 0 && corruptRecords == 0 &&
                emptyPayload == 0 && invalidPage == 0 &&
                slotMismatch == 0 && failedOverwrite == 0;
        }
    };

    /**
     * Restart after a crash: replay committed work into the volume
     * through @p pool, undo loser effects, then flush.
     */
    Stats recover(BufferPool &pool);

  private:
    DbContext &ctx_;
    Volume &volume_;
    WriteAheadLog &log_;
};

} // namespace cgp::db

#endif // CGP_DB_RECOVERY_HH
