#include "db/crashloop.hh"

#include <cstring>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "db/heapfile.hh"
#include "db/txn.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cgp::db
{

namespace
{

/** One page write the workload performed (the shadow model). */
struct ShadowWrite
{
    TxnId txn = invalidTxnId;
    Rid rid;
    bool insert = false;
    std::vector<std::uint8_t> bytes;
};

using SlotKey = std::pair<PageId, std::uint16_t>;

SlotKey
keyOf(Rid rid)
{
    return {rid.page, rid.slot};
}

Tuple
makeRow(const Schema &schema, std::int32_t id, std::uint64_t salt)
{
    Tuple t(&schema);
    t.setInt(0, id);
    t.setString(1, "r" + std::to_string(salt));
    return t;
}

} // anonymous namespace

CrashLoopResult
CrashLoopHarness::run(std::string_view point,
                      const fault::FaultSpec &spec)
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx(reg, buf);
    Volume vol(ctx);
    LockManager locks(ctx);
    WriteAheadLog log(ctx);
    TransactionManager txns(ctx, locks, log);
    Schema schema{{{"id", ColumnType::Int32, 4},
                   {"payload", ColumnType::Char, 24}}};

    fault::FaultInjector inj;
    ctx.fault = &inj;

    CrashLoopResult res;
    std::vector<ShadowWrite> history;
    std::vector<Rid> stableRids; // update targets: committed inserts
    Rng rng(config_.seed);

    {
        // --- Workload session (dies with its buffer pool).
        BufferPool pool(ctx, vol, config_.poolFrames);
        pool.bindLog(&log);
        txns.bindPool(&pool);
        HeapFile file(ctx, pool, vol, locks, log, &schema);

        inj.arm(point, spec);
        try {
            std::uint64_t salt = 0;
            for (unsigned n = 0; n < config_.txnCount; ++n) {
                const TxnId t = txns.begin();
                const std::size_t firstWrite = history.size();
                const unsigned writes =
                    1 + static_cast<unsigned>(rng.nextBelow(3));
                for (unsigned w = 0; w < writes; ++w) {
                    const auto id =
                        static_cast<std::int32_t>(rng.nextBelow(1000));
                    const Tuple row = makeRow(schema, id, ++salt);
                    ShadowWrite sw;
                    sw.txn = t;
                    sw.bytes.assign(row.data(),
                                    row.data() + row.size());
                    if (!stableRids.empty() && rng.nextBool(0.4)) {
                        sw.rid = stableRids[rng.nextBelow(
                            stableRids.size())];
                        sw.insert = false;
                        file.updateRec(t, sw.rid, row);
                    } else {
                        sw.rid = file.createRec(t, row);
                        sw.insert = true;
                    }
                    history.push_back(std::move(sw));
                }
                if (rng.nextBool(0.25)) {
                    txns.abort(t);
                } else {
                    txns.commit(t);
                    for (std::size_t i = firstWrite;
                         i < history.size(); ++i) {
                        if (history[i].insert)
                            stableRids.push_back(history[i].rid);
                    }
                }
                // Periodic checkpoint: exercises the pool.flush
                // crash point and ages volume state.
                if (n % 8 == 7)
                    pool.flushAll();
            }
        } catch (const fault::CrashInjected &e) {
            res.crashed = true;
            res.crashPoint = e.point();
        } catch (const fault::TransientIoError &) {
            // Retry budget exhausted: the device is effectively
            // dead, which from the engine's view is also a crash.
            res.crashed = true;
            res.ioGaveUp = true;
        }
        // CRASH: the pool's dirty frames vanish here.
    }

    // --- Restart: the log device only retained the forced prefix.
    inj.disarmAll();
    log.truncateToDurable();

    BufferPool pool(ctx, vol, 64);
    RecoveryManager recovery(ctx, vol, log);
    res.stats = recovery.recover(pool);

    // Ground truth for the audit: a transaction won iff its Commit
    // record is durable and intact — the same rule recovery applies,
    // but derived here independently from the raw log.
    std::set<TxnId> winners;
    for (const LogRecord &r : log.records()) {
        if (r.type == LogRecordType::Commit &&
            WriteAheadLog::checksumValid(r))
            winners.insert(r.txn);
    }

    // Replay the shadow history: winner writes define the expected
    // live image; a slot only ever touched by losers must be gone.
    std::map<SlotKey, const ShadowWrite *> expectLive;
    std::set<SlotKey> loserSlots;
    for (const ShadowWrite &w : history) {
        if (winners.count(w.txn) > 0)
            expectLive[keyOf(w.rid)] = &w;
        else if (w.insert)
            loserSlots.insert(keyOf(w.rid));
    }

    res.committedRows = expectLive.size();
    for (const auto &[key, w] : expectLive) {
        std::uint8_t *frame = pool.fix(key.first);
        SlottedPage page(frame);
        std::uint16_t len = 0;
        const std::uint8_t *bytes = page.read(key.second, &len);
        const bool good = bytes != nullptr &&
            len == w->bytes.size() &&
            std::memcmp(bytes, w->bytes.data(), len) == 0;
        pool.unfix(key.first, false);
        if (good) {
            ++res.verifiedRows;
        } else {
            ++res.missingCommitted;
            cgp_error("crashloop: committed row page ", key.first,
                      " slot ", key.second,
                      bytes == nullptr ? " missing" : " corrupt",
                      " after recovery");
        }
    }
    for (const SlotKey &key : loserSlots) {
        if (expectLive.count(key) > 0)
            continue;
        if (key.first >= vol.pageCount())
            continue; // the loser's page never reached the volume
        std::uint8_t *frame = pool.fix(key.first);
        SlottedPage page(frame);
        const bool alive = page.read(key.second) != nullptr;
        pool.unfix(key.first, false);
        if (alive) {
            ++res.survivingAborted;
            cgp_error("crashloop: loser row page ", key.first,
                      " slot ", key.second, " survived recovery");
        }
    }
    return res;
}

} // namespace cgp::db
