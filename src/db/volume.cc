#include "db/volume.hh"

#include <cstring>

#include "fault/fault.hh"
#include "util/logging.hh"

namespace cgp::db
{

PageId
Volume::allocPage()
{
    TraceScope ts(ctx_.rec, ctx_.fn.diskAlloc);
    ts.work(14);
    pages_.push_back(std::make_unique<std::uint8_t[]>(pageBytes));
    std::memset(pages_.back().get(), 0, pageBytes);
    return static_cast<PageId>(pages_.size() - 1);
}

void
Volume::readPage(PageId pid, std::uint8_t *out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.diskRead);
    cgp_assert(pid < pages_.size(), "read of unallocated page ", pid);
    const auto kind = fault::hit(ctx_.fault, "volume.read");
    if (kind == fault::FaultKind::TransientIo)
        throw fault::TransientIoError("transient read error on page " +
                                      std::to_string(pid));
    // Modeled cost of the block-copy path (the I/O itself is assumed
    // masked by concurrent execution per paper §1).
    ts.work(120);
    std::memcpy(out, pages_[pid].get(), pageBytes);
}

void
Volume::writePage(PageId pid, const std::uint8_t *in)
{
    TraceScope ts(ctx_.rec, ctx_.fn.diskWrite);
    cgp_assert(pid < pages_.size(), "write of unallocated page ", pid);
    const auto kind = fault::hit(ctx_.fault, "volume.write");
    if (kind == fault::FaultKind::TransientIo)
        throw fault::TransientIoError(
            "transient write error on page " + std::to_string(pid));
    ts.work(120);
    if (kind == fault::FaultKind::TornWrite ||
        kind == fault::FaultKind::PartialForce) {
        // The device loses power mid-sector-run: only the first half
        // of the image lands; the rest keeps its previous contents.
        std::memcpy(pages_[pid].get(), in, pageBytes / 2);
        ++tornWrites_;
        cgp_error("torn write on page ", pid);
        return;
    }
    std::memcpy(pages_[pid].get(), in, pageBytes);
}

} // namespace cgp::db
