#include "db/lock.hh"

#include <algorithm>

#include "util/logging.hh"

namespace cgp::db
{

bool
LockManager::acquire(TxnId txn, PageId pid, LockMode mode)
{
    TraceScope ts(ctx_.rec, ctx_.fn.lockAcquire);
    ts.work(22);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.lockLatch);
        hs.work(6);
    }
    {
        TraceScope hs(ctx_.rec, ctx_.fn.lockCompat);
        hs.work(6);
    }

    std::vector<Holder> *holders = nullptr;
    {
        TraceScope ps(ctx_.rec, ctx_.fn.lockTableProbe);
        ps.work(9);
        holders = &table_[pid];
    }

    {
        TraceScope gs(ctx_.rec, ctx_.fn.lockGrantCheck);
        gs.work(11);
        gs.branch(holders->empty());
    }
    {
        TraceScope hs(ctx_.rec, ctx_.fn.lockHolderScan);
        hs.work(9);
    }
    for (Holder &h : *holders) {
        if (h.txn == txn) {
            const bool upgrade =
                h.mode == LockMode::Shared &&
                mode == LockMode::Exclusive;
            ts.branch(upgrade);
            if (upgrade) {
                TraceScope us(ctx_.rec, ctx_.fn.lockUpgrade);
                us.work(11);
                h.mode = LockMode::Exclusive;
            }
            return true;
        }
    }

    ts.work(8);
    holders->push_back({txn, mode});
    byTxn_[txn].push_back(pid);
    return true;
}

void
LockManager::release(TxnId txn, PageId pid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.lockRelease);
    ts.work(15);
    {
        TraceScope hs(ctx_.rec, ctx_.fn.lockStats);
        hs.work(5);
    }
    auto it = table_.find(pid);
    if (it == table_.end())
        return;
    auto &holders = it->second;
    holders.erase(std::remove_if(holders.begin(), holders.end(),
                                 [txn](const Holder &h) {
                                     return h.txn == txn;
                                 }),
                  holders.end());
    if (holders.empty())
        table_.erase(it);
    auto bt = byTxn_.find(txn);
    if (bt != byTxn_.end()) {
        auto &pages = bt->second;
        pages.erase(std::remove(pages.begin(), pages.end(), pid),
                    pages.end());
    }
}

void
LockManager::releaseAll(TxnId txn)
{
    auto bt = byTxn_.find(txn);
    if (bt == byTxn_.end())
        return;
    // Copy: release() edits the byTxn_ vector.
    const std::vector<PageId> pages = bt->second;
    for (PageId pid : pages)
        release(txn, pid);
    byTxn_.erase(txn);
}

bool
LockManager::holds(TxnId txn, PageId pid) const
{
    auto it = table_.find(pid);
    if (it == table_.end())
        return false;
    for (const Holder &h : it->second) {
        if (h.txn == txn)
            return true;
    }
    return false;
}

LockMode
LockManager::modeOf(TxnId txn, PageId pid) const
{
    auto it = table_.find(pid);
    cgp_assert(it != table_.end(), "modeOf unlocked page");
    for (const Holder &h : it->second) {
        if (h.txn == txn)
            return h.mode;
    }
    cgp_panic("txn does not hold the lock");
}

std::size_t
LockManager::lockCount(TxnId txn) const
{
    auto it = byTxn_.find(txn);
    return it == byTxn_.end() ? 0 : it->second.size();
}

} // namespace cgp::db
