/**
 * @file
 * Two-phase lock manager at page granularity (S/X modes).  Query
 * threads in our setup execute serially within a quantum, so waits
 * never occur, but the full bookkeeping (lock table, holder sets,
 * upgrades, release-at-commit) runs on every acquisition — it's the
 * Lock_page / Unlock_page code of the paper's Figure 2.
 */

#ifndef CGP_DB_LOCK_HH
#define CGP_DB_LOCK_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "db/common.hh"
#include "db/context.hh"

namespace cgp::db
{

enum class LockMode : std::uint8_t
{
    Shared,
    Exclusive
};

class LockManager
{
  public:
    explicit LockManager(DbContext &ctx) : ctx_(ctx) {}

    /**
     * Acquire (or upgrade) a page lock for @p txn.
     * @return true (always grantable in serial execution); the
     *         return type documents intent for future concurrency.
     */
    bool acquire(TxnId txn, PageId pid, LockMode mode);

    /** Release one page lock. */
    void release(TxnId txn, PageId pid);

    /** Release everything @p txn holds (commit/abort). */
    void releaseAll(TxnId txn);

    /// @{ Introspection for tests.
    bool holds(TxnId txn, PageId pid) const;
    LockMode modeOf(TxnId txn, PageId pid) const;
    std::size_t lockCount(TxnId txn) const;
    /// @}

  private:
    struct Holder
    {
        TxnId txn;
        LockMode mode;
    };

    DbContext &ctx_;
    std::unordered_map<PageId, std::vector<Holder>> table_;
    std::unordered_map<TxnId, std::vector<PageId>> byTxn_;
};

} // namespace cgp::db

#endif // CGP_DB_LOCK_HH
