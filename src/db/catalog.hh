/**
 * @file
 * Catalog: table and index metadata, owning the heap files, B+-trees
 * and schemas of a database instance.
 */

#ifndef CGP_DB_CATALOG_HH
#define CGP_DB_CATALOG_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/btree.hh"
#include "db/context.hh"
#include "db/heapfile.hh"
#include "db/tuple.hh"

namespace cgp::db
{

struct TableInfo
{
    std::string name;
    std::unique_ptr<Schema> schema;
    std::unique_ptr<HeapFile> file;
    /** column name -> index */
    std::unordered_map<std::string, std::unique_ptr<BTree>> indexes;
};

class Catalog
{
  public:
    explicit Catalog(DbContext &ctx) : ctx_(ctx) {}

    /** Register a new table (takes ownership of its pieces). */
    TableInfo &addTable(std::unique_ptr<TableInfo> table);

    /** Look up a table by name (traced); panics when absent. */
    TableInfo &table(const std::string &name);

    /** Look up an index (traced); panics when absent. */
    BTree &index(const std::string &table_name,
                 const std::string &column);

    bool hasTable(const std::string &name) const;
    bool hasIndex(const std::string &table_name,
                  const std::string &column) const;

    std::size_t tableCount() const { return tables_.size(); }

  private:
    DbContext &ctx_;
    std::unordered_map<std::string, std::unique_ptr<TableInfo>>
        tables_;
};

} // namespace cgp::db

#endif // CGP_DB_CATALOG_HH
