/**
 * @file
 * Buffer pool with pinning — the heart of the paper's Figure 2
 * example.  fix() is Find_page_in_buffer_pool: given a large pool
 * and repeated access, pages are found pinned/resident and
 * getPageFromDisk is rarely invoked, which is exactly the
 * predictability CGP's history exploits.
 */

#ifndef CGP_DB_BUFFER_POOL_HH
#define CGP_DB_BUFFER_POOL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "db/common.hh"
#include "db/context.hh"
#include "db/volume.hh"

namespace cgp::db
{

class WriteAheadLog;

/** Frame replacement policy. */
enum class Replacement : std::uint8_t
{
    Lru,   ///< least-recently-used (default)
    Clock  ///< second-chance / clock sweep
};

class BufferPool
{
  public:
    /**
     * @param frames Pool capacity in pages; size it above the
     *        database footprint so steady state is memory resident.
     * @param segment_base Synthetic data address of frame 0 (distinct
     *        per database instance so D-cache behaviour is faithful).
     */
    BufferPool(DbContext &ctx, Volume &volume, std::size_t frames,
               Addr segment_base = bufferSegmentBase,
               Replacement policy = Replacement::Lru);

    /**
     * Attach the write-ahead log for the WAL rule: before a stolen
     * (evicted) dirty page or a flush reaches the volume, the log is
     * forced, so every page image on disk is always describable —
     * and hence undoable — from the durable log.  Optional: without
     * a bound log the pool writes pages unconditionally (fine for
     * log-less uses such as recovery itself).
     */
    void bindLog(WriteAheadLog *log) { log_ = log; }

    /**
     * Pin page @p pid, reading it from the volume if absent.
     * @return pointer to the 8KB frame.
     */
    std::uint8_t *fix(PageId pid);

    /** Unpin; @p dirty marks the frame for write-back. */
    void unfix(PageId pid, bool dirty);

    /** Write all dirty frames back to the volume. */
    void flushAll();

    /** Synthetic data address of byte @p offset of page @p pid
     *  (only valid while fixed); used for trace load/store events. */
    Addr frameAddr(PageId pid, std::uint32_t offset) const;

    /**
     * frameAddr() for hint paths: returns invalidAddr instead of
     * asserting when @p pid is not resident (a prefetch hint for a
     * page still on disk is simply dropped by the recorder).
     */
    Addr frameAddrIfResident(PageId pid, std::uint32_t offset) const;

    /// @{ Occupancy introspection (for tests).
    std::size_t residentPages() const { return map_.size(); }
    std::size_t capacity() const { return frames_.size(); }
    unsigned pinCount(PageId pid) const;
    std::uint64_t diskReads() const { return diskReads_; }
    std::uint64_t evictions() const { return evictions_; }
    /** Transient volume errors absorbed by the retry/backoff path. */
    std::uint64_t ioRetries() const { return ioRetries_; }
    /// @}

  private:
    struct Frame
    {
        PageId pid = invalidPageId;
        unsigned pins = 0;
        bool dirty = false;
        bool referenced = false; ///< clock second-chance bit
        std::uint64_t lru = 0;
        std::vector<std::uint8_t> bytes;
    };

    /** Find the frame of @p pid, or npos. */
    std::size_t lookup(PageId pid);

    /** Choose and clean an unpinned victim frame. */
    std::size_t evictVictim();

    /**
     * Run a volume operation, retrying injected transient I/O errors
     * with capped exponential backoff (modeled as trace work).  After
     * the retry budget the error propagates to the caller.
     */
    void retryIo(TraceScope &ts, const std::function<void()> &op);

    /** WAL rule: force the bound log before a dirty page is stolen. */
    void forceLogForSteal();

    static constexpr std::size_t npos = ~std::size_t{0};

    DbContext &ctx_;
    Volume &volume_;
    WriteAheadLog *log_ = nullptr;
    Addr segmentBase_;
    Replacement policy_;
    std::size_t clockHand_ = 0;
    std::vector<Frame> frames_;
    std::unordered_map<PageId, std::size_t> map_;
    std::vector<std::size_t> freeList_;
    std::uint64_t tick_ = 0;
    std::uint64_t diskReads_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t ioRetries_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_BUFFER_POOL_HH
