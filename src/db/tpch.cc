#include "db/tpch.hh"

#include <map>
#include <utility>

#include "db/ops/aggregate.hh"
#include "db/ops/executor.hh"
#include "db/ops/index_select.hh"
#include "db/ops/joins.hh"
#include "db/ops/scan.hh"
#include "db/ops/sort.hh"
#include "util/logging.hh"

namespace cgp::db
{

Tpch::Scale
Tpch::Scale::fromLineitems(std::uint32_t l)
{
    Scale s;
    s.lineitem = std::max<std::uint32_t>(l, 400);
    s.orders = std::max<std::uint32_t>(s.lineitem / 4, 100);
    s.customer = std::max<std::uint32_t>(s.orders / 10, 20);
    s.part = std::max<std::uint32_t>(s.lineitem / 20, 40);
    s.supplier = std::max<std::uint32_t>(s.lineitem / 200, 10);
    s.partsupp = s.part * 2;
    return s;
}

namespace
{

constexpr std::uint32_t numNations = 25;
constexpr std::uint32_t numRegions = 5;

void
loadRegionNation(DbSystem &db)
{
    TableInfo &region = db.createTable(
        "region", Schema({{"regionkey", ColumnType::Int32, 4},
                          {"name", ColumnType::Char, 8}}));
    TableInfo &nation = db.createTable(
        "nation", Schema({{"nationkey", ColumnType::Int32, 4},
                          {"regionkey", ColumnType::Int32, 4},
                          {"name", ColumnType::Char, 8}}));

    const TxnId txn = db.txns().begin();
    for (std::uint32_t r = 0; r < numRegions; ++r) {
        Tuple t(region.schema.get());
        t.setInt(0, static_cast<std::int32_t>(r));
        t.setString(1, "REGION" + std::to_string(r));
        db.insertRow(txn, "region", t);
    }
    for (std::uint32_t n = 0; n < numNations; ++n) {
        Tuple t(nation.schema.get());
        t.setInt(0, static_cast<std::int32_t>(n));
        t.setInt(1, static_cast<std::int32_t>(n % numRegions));
        t.setString(2, "NATION" + std::to_string(n));
        db.insertRow(txn, "nation", t);
    }
    db.txns().commit(txn);
}

} // anonymous namespace

void
Tpch::load(DbSystem &db, const Scale &scale, std::uint64_t seed)
{
    Rng rng(seed);

    loadRegionNation(db);

    TableInfo &supplier = db.createTable(
        "supplier", Schema({{"suppkey", ColumnType::Int32, 4},
                            {"nationkey", ColumnType::Int32, 4},
                            {"acctbal", ColumnType::Int32, 4}}));
    TableInfo &customer = db.createTable(
        "customer", Schema({{"custkey", ColumnType::Int32, 4},
                            {"nationkey", ColumnType::Int32, 4},
                            {"mktsegment", ColumnType::Int32, 4},
                            {"acctbal", ColumnType::Int32, 4}}));
    TableInfo &part = db.createTable(
        "part", Schema({{"partkey", ColumnType::Int32, 4},
                        {"size", ColumnType::Int32, 4},
                        {"type", ColumnType::Int32, 4}}));
    TableInfo &partsupp = db.createTable(
        "partsupp", Schema({{"partkey", ColumnType::Int32, 4},
                            {"suppkey", ColumnType::Int32, 4},
                            {"supplycost", ColumnType::Int32, 4}}));
    TableInfo &orders = db.createTable(
        "orders", Schema({{"orderkey", ColumnType::Int32, 4},
                          {"custkey", ColumnType::Int32, 4},
                          {"orderdate", ColumnType::Int32, 4},
                          {"shippriority", ColumnType::Int32, 4}}));
    TableInfo &lineitem = db.createTable(
        "lineitem", Schema({{"orderkey", ColumnType::Int32, 4},
                            {"partkey", ColumnType::Int32, 4},
                            {"suppkey", ColumnType::Int32, 4},
                            {"quantity", ColumnType::Int32, 4},
                            {"extendedprice", ColumnType::Int32, 4},
                            {"discount", ColumnType::Int32, 4},
                            {"tax", ColumnType::Int32, 4},
                            {"returnflag", ColumnType::Int32, 4},
                            {"linestatus", ColumnType::Int32, 4},
                            {"shipdate", ColumnType::Int32, 4}}));

    const TxnId txn = db.txns().begin();

    for (std::uint32_t i = 0; i < scale.supplier; ++i) {
        Tuple t(supplier.schema.get());
        t.setInt(0, static_cast<std::int32_t>(i));
        t.setInt(1, static_cast<std::int32_t>(
                        rng.nextBelow(numNations)));
        t.setInt(2, static_cast<std::int32_t>(
                        rng.nextBelow(100000)));
        db.insertRow(txn, "supplier", t);
    }

    for (std::uint32_t i = 0; i < scale.customer; ++i) {
        Tuple t(customer.schema.get());
        t.setInt(0, static_cast<std::int32_t>(i));
        t.setInt(1, static_cast<std::int32_t>(
                        rng.nextBelow(numNations)));
        t.setInt(2, static_cast<std::int32_t>(rng.nextBelow(5)));
        t.setInt(3, static_cast<std::int32_t>(
                        rng.nextBelow(100000)));
        db.insertRow(txn, "customer", t);
    }

    for (std::uint32_t i = 0; i < scale.part; ++i) {
        Tuple t(part.schema.get());
        t.setInt(0, static_cast<std::int32_t>(i));
        t.setInt(1, static_cast<std::int32_t>(
                        1 + rng.nextBelow(50)));
        t.setInt(2, static_cast<std::int32_t>(rng.nextBelow(25)));
        db.insertRow(txn, "part", t);
    }

    for (std::uint32_t i = 0; i < scale.partsupp; ++i) {
        Tuple t(partsupp.schema.get());
        t.setInt(0, static_cast<std::int32_t>(i % scale.part));
        t.setInt(1, static_cast<std::int32_t>(
                        rng.nextBelow(scale.supplier)));
        t.setInt(2, static_cast<std::int32_t>(
                        100 + rng.nextBelow(99900)));
        db.insertRow(txn, "partsupp", t);
    }

    for (std::uint32_t i = 0; i < scale.orders; ++i) {
        Tuple t(orders.schema.get());
        t.setInt(0, static_cast<std::int32_t>(i));
        t.setInt(1, static_cast<std::int32_t>(
                        rng.nextBelow(scale.customer)));
        t.setInt(2, static_cast<std::int32_t>(
                        1 + rng.nextBelow(Tpch::maxDate)));
        t.setInt(3, 0);
        db.insertRow(txn, "orders", t);
    }

    for (std::uint32_t i = 0; i < scale.lineitem; ++i) {
        Tuple t(lineitem.schema.get());
        t.setInt(0, static_cast<std::int32_t>(
                        rng.nextBelow(scale.orders)));
        t.setInt(1, static_cast<std::int32_t>(
                        rng.nextBelow(scale.part)));
        t.setInt(2, static_cast<std::int32_t>(
                        rng.nextBelow(scale.supplier)));
        t.setInt(3, static_cast<std::int32_t>(
                        1 + rng.nextBelow(50)));
        t.setInt(4, static_cast<std::int32_t>(
                        1000 + rng.nextBelow(99000)));
        t.setInt(5, static_cast<std::int32_t>(rng.nextBelow(11)));
        t.setInt(6, static_cast<std::int32_t>(rng.nextBelow(9)));
        t.setInt(7, static_cast<std::int32_t>(rng.nextBelow(3)));
        t.setInt(8, static_cast<std::int32_t>(rng.nextBelow(2)));
        t.setInt(9, static_cast<std::int32_t>(
                        1 + rng.nextBelow(Tpch::maxDate)));
        db.insertRow(txn, "lineitem", t);
    }

    db.txns().commit(txn);

    db.createIndex("orders", "custkey");
    db.createIndex("lineitem", "orderkey");
    db.createIndex("supplier", "suppkey");
    db.createIndex("partsupp", "partkey");
}

const char *
Tpch::queryName(int query)
{
    switch (query) {
      case 1:
        return "tpch-q1: pricing summary report";
      case 2:
        return "tpch-q2: minimum cost supplier";
      case 3:
        return "tpch-q3: shipping priority";
      case 5:
        return "tpch-q5: local supplier volume";
      case 6:
        return "tpch-q6: forecasting revenue change";
      default:
        return "tpch-q?: unknown";
    }
}

std::uint64_t
Tpch::runQuery(DbSystem &db, int query, const Scale &scale, Rng &rng)
{
    DbContext &ctx = db.ctx();
    ctx.queryClass = static_cast<std::size_t>(8 + query);
    Executor exec(ctx);
    const TxnId txn = db.txns().begin();

    TableInfo &lineitem = db.catalog().table("lineitem");
    TableInfo &orders = db.catalog().table("orders");
    TableInfo &customer = db.catalog().table("customer");
    TableInfo &supplier = db.catalog().table("supplier");
    TableInfo &part = db.catalog().table("part");
    TableInfo &partsupp = db.catalog().table("partsupp");

    const Schema &li = *lineitem.schema;
    const std::size_t li_orderkey = li.indexOf("orderkey");
    const std::size_t li_qty = li.indexOf("quantity");
    const std::size_t li_price = li.indexOf("extendedprice");
    const std::size_t li_disc = li.indexOf("discount");
    const std::size_t li_rf = li.indexOf("returnflag");
    const std::size_t li_ls = li.indexOf("linestatus");
    const std::size_t li_ship = li.indexOf("shipdate");
    const std::size_t li_supp = li.indexOf("suppkey");

    std::uint64_t rows = 0;
    switch (query) {
      case 1: {
        // Pricing summary: filter by shipdate, group by
        // returnflag/linestatus.
        Predicate p;
        p.andInt(li_ship, CmpOp::Le, maxDate - 90);
        SeqScan scan(ctx, *lineitem.file, txn, p);
        HashAggregate agg(
            ctx, scan, {li_rf, li_ls},
            {{AggKind::Sum, li_qty, "sum_qty"},
             {AggKind::Sum, li_price, "sum_base_price"},
             {AggKind::Avg, li_qty, "avg_qty"},
             {AggKind::Count, 0, "count_order"}});
        rows = exec.run("tpch-q1", agg, 8);
        break;
      }
      case 6: {
        // Revenue forecast: tight scan filter, scalar aggregate.
        const auto year_start = static_cast<std::int32_t>(
            1 + rng.nextBelow(maxDate - 365));
        Predicate p;
        p.andInt(li_ship, CmpOp::Between, year_start,
                 year_start + 364);
        p.andInt(li_disc, CmpOp::Between, 4, 6);
        p.andInt(li_qty, CmpOp::Lt, 24);
        SeqScan scan(ctx, *lineitem.file, txn, p);
        HashAggregate agg(ctx, scan, {},
                          {{AggKind::Sum, li_price, "revenue"},
                           {AggKind::Count, 0, "rows"}});
        rows = exec.run("tpch-q6", agg, 12);
        break;
      }
      case 3: {
        // Shipping priority: customer(mktsegment) |><| orders |><|
        // lineitem, aggregate revenue per order, top-10 by revenue.
        const Schema &cu = *customer.schema;
        const Schema &od = *orders.schema;
        const auto segment =
            static_cast<std::int32_t>(rng.nextBelow(5));
        const std::int32_t cutoff = maxDate / 2;

        Predicate pc;
        pc.andInt(cu.indexOf("mktsegment"), CmpOp::Eq, segment);
        SeqScan cust(ctx, *customer.file, txn, pc);

        // o_orderdate < cutoff (residual on the index probe).
        Predicate p_orders;
        p_orders.andInt(od.indexOf("orderdate"), CmpOp::Lt, cutoff);
        IndexedNLJoin c_o(ctx, cust,
                          db.catalog().index("orders", "custkey"),
                          *orders.file, txn, cu.indexOf("custkey"),
                          od.indexOf("custkey"), p_orders);

        // Concatenated schema: customer columns then orders columns.
        const std::size_t od_off = cu.columnCount();
        const std::size_t co_orderkey = od_off + od.indexOf("orderkey");

        // l_shipdate > cutoff.
        Predicate p_lines;
        p_lines.andInt(li_ship, CmpOp::Gt, cutoff);
        IndexedNLJoin col(ctx, c_o,
                          db.catalog().index("lineitem", "orderkey"),
                          *lineitem.file, txn, co_orderkey,
                          li_orderkey, p_lines);

        const std::size_t li_off = od_off + od.columnCount();
        HashAggregate agg(
            ctx, col, {co_orderkey},
            {{AggKind::Sum, li_off + li_price, "revenue"}});
        Sort sort(ctx, agg, 1, /*descending=*/true, /*limit=*/10);
        rows = exec.run("tpch-q3", sort, 10);
        break;
      }
      case 5: {
        // Local supplier volume: customers of one region joined
        // through orders/lineitem to suppliers, revenue by nation.
        const Schema &cu = *customer.schema;
        const Schema &od = *orders.schema;
        const auto region =
            static_cast<std::int32_t>(rng.nextBelow(numRegions));

        // Nations of the region (nationkey % regions == region).
        Predicate pc;
        // Our nation->region mapping is nationkey % numRegions, so
        // region membership is not a contiguous range; filter
        // customers by explicit nation check below instead.
        SeqScan cust(ctx, *customer.file, txn, pc);

        IndexedNLJoin c_o(ctx, cust,
                          db.catalog().index("orders", "custkey"),
                          *orders.file, txn, cu.indexOf("custkey"),
                          od.indexOf("custkey"));
        const std::size_t od_off = cu.columnCount();
        const std::size_t co_orderkey =
            od_off + od.indexOf("orderkey");
        IndexedNLJoin col(ctx, c_o,
                          db.catalog().index("lineitem", "orderkey"),
                          *lineitem.file, txn, co_orderkey,
                          li_orderkey);

        // Pull loop with the supplier probe and the region/nation
        // residuals evaluated per tuple; revenue accumulated by
        // nation.
        const std::size_t cu_nation = cu.indexOf("nationkey");
        const std::size_t li_off2 = od_off + od.columnCount();
        BTree &supp_idx = db.catalog().index("supplier", "suppkey");
        const Schema &su = *supplier.schema;

        std::map<std::int32_t, std::int64_t> revenue;
        col.open();
        Tuple jt;
        while (col.next(jt)) {
            const auto nation = tracedGetInt(ctx, jt, cu_nation);
            bool in_region = false;
            {
                TraceScope es(ctx.rec, ctx.fn.predEvalEq.site(5));
                es.work(8);
                in_region =
                    nation % static_cast<std::int32_t>(numRegions) ==
                    region;
                es.branch(in_region);
            }
            if (!in_region)
                continue;
            Rid srid;
            if (!supp_idx.search(
                    txn,
                    tracedGetInt(ctx, jt, li_off2 + li_supp),
                    srid)) {
                continue;
            }
            Tuple sup = supplier.file->getRec(txn, srid);
            bool local = false;
            {
                TraceScope es(ctx.rec, ctx.fn.predEvalEq.site(5));
                es.work(8);
                local = tracedGetInt(ctx, sup,
                                     su.indexOf("nationkey")) ==
                    nation;
                es.branch(local);
            }
            if (!local)
                continue;
            revenue[nation] += tracedGetInt(ctx, jt,
                                            li_off2 + li_price);
        }
        col.close();
        rows = revenue.size();
        break;
      }
      case 2: {
        // Minimum-cost supplier: aggregate subquery then re-join.
        const Schema &ps = *partsupp.schema;
        const Schema &pt = *part.schema;
        const auto size =
            static_cast<std::int32_t>(1 + rng.nextBelow(50));

        // Phase 1: min supplycost per part of the chosen size.
        Predicate pp;
        pp.andInt(pt.indexOf("size"), CmpOp::Eq, size);
        SeqScan parts(ctx, *part.file, txn, pp);
        IndexedNLJoin p_ps(ctx, parts,
                           db.catalog().index("partsupp", "partkey"),
                           *partsupp.file, txn,
                           pt.indexOf("partkey"),
                           ps.indexOf("partkey"));
        const std::size_t ps_off = pt.columnCount();
        HashAggregate minAgg(
            ctx, p_ps, {ps_off + ps.indexOf("partkey")},
            {{AggKind::Min, ps_off + ps.indexOf("supplycost"),
              "min_cost"}});

        minAgg.open();
        std::map<std::int32_t, std::int32_t> min_cost;
        Tuple mt;
        while (minAgg.next(mt))
            min_cost[mt.getInt(0)] = mt.getInt(1);
        minAgg.close();

        // Phase 2: partsupp rows matching the minimum, joined to
        // their supplier through the suppkey index.
        SeqScan psScan(ctx, *partsupp.file, txn, Predicate{});
        psScan.open();
        Tuple pst;
        while (psScan.next(pst)) {
            const auto pk = tracedGetInt(ctx, pst,
                                         ps.indexOf("partkey"));
            const auto cost = tracedGetInt(
                ctx, pst, ps.indexOf("supplycost"));
            bool match = false;
            {
                TraceScope es(ctx.rec, ctx.fn.predEvalEq.site(5));
                es.work(9);
                auto it = min_cost.find(pk);
                match = it != min_cost.end() && it->second == cost;
                es.branch(match);
            }
            if (!match)
                continue;
            Rid srid;
            if (db.catalog().index("supplier", "suppkey")
                    .search(txn,
                            tracedGetInt(ctx, pst,
                                         ps.indexOf("suppkey")),
                            srid)) {
                Tuple sup = supplier.file->getRec(txn, srid);
                (void)sup;
                ++rows;
            }
        }
        psScan.close();
        break;
      }
      default:
        cgp_fatal("TPC-H query ", query, " not implemented");
    }

    db.txns().commit(txn);
    return rows;
}

} // namespace cgp::db
