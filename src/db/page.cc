#include "db/page.hh"

#include <cstring>

#include "util/logging.hh"

namespace cgp::db
{

void
SlottedPage::init()
{
    header()->slots = 0;
    header()->freeOffset = sizeof(Header);
}

bool
SlottedPage::formatted() const
{
    // A torn or never-written page must not pass for a usable one:
    // besides the free-offset range, the slot directory implied by
    // the header has to fit between the record heap and the page end.
    const Header *h = header();
    if (h->freeOffset < sizeof(Header) || h->freeOffset > pageBytes)
        return false;
    const std::uint32_t dir =
        static_cast<std::uint32_t>(h->slots) * sizeof(Slot);
    return h->freeOffset + dir <= pageBytes;
}

std::uint16_t
SlottedPage::slotCount() const
{
    return header()->slots;
}

SlottedPage::Slot *
SlottedPage::slotEntry(std::uint16_t slot)
{
    return reinterpret_cast<Slot *>(
        frame_ + pageBytes - (slot + 1) * sizeof(Slot));
}

const SlottedPage::Slot *
SlottedPage::slotEntry(std::uint16_t slot) const
{
    return reinterpret_cast<const Slot *>(
        frame_ + pageBytes - (slot + 1) * sizeof(Slot));
}

std::uint16_t
SlottedPage::freeBytes() const
{
    const std::uint32_t dir = static_cast<std::uint32_t>(
        (header()->slots) * sizeof(Slot));
    const std::uint32_t used = header()->freeOffset + dir;
    if (used + sizeof(Slot) >= pageBytes)
        return 0;
    return static_cast<std::uint16_t>(pageBytes - used - sizeof(Slot));
}

bool
SlottedPage::fits(std::uint16_t len) const
{
    return freeBytes() >= len;
}

std::uint16_t
SlottedPage::insert(const std::uint8_t *bytes, std::uint16_t len)
{
    cgp_assert(len > 0, "empty record");
    if (!fits(len))
        return invalidSlot;
    Header *h = header();
    const std::uint16_t slot = h->slots;
    Slot *s = slotEntry(slot);
    s->offset = h->freeOffset;
    s->length = len;
    std::memcpy(frame_ + h->freeOffset, bytes, len);
    h->freeOffset = static_cast<std::uint16_t>(h->freeOffset + len);
    ++h->slots;
    return slot;
}

const std::uint8_t *
SlottedPage::read(std::uint16_t slot, std::uint16_t *len) const
{
    if (slot >= header()->slots)
        return nullptr;
    const Slot *s = slotEntry(slot);
    if (s->length == 0) // erased (undo tombstone)
        return nullptr;
    if (s->offset < sizeof(Header) ||
        static_cast<std::uint32_t>(s->offset) + s->length > pageBytes)
        return nullptr; // corrupt directory entry (torn write)
    if (len != nullptr)
        *len = s->length;
    return frame_ + s->offset;
}

bool
SlottedPage::update(std::uint16_t slot, const std::uint8_t *bytes,
                    std::uint16_t len)
{
    if (slot >= header()->slots)
        return false;
    Slot *s = slotEntry(slot);
    if (s->length != len)
        return false;
    if (s->offset < sizeof(Header) ||
        static_cast<std::uint32_t>(s->offset) + s->length > pageBytes)
        return false;
    std::memcpy(frame_ + s->offset, bytes, len);
    return true;
}

bool
SlottedPage::erase(std::uint16_t slot)
{
    if (slot >= header()->slots)
        return false;
    slotEntry(slot)->length = 0;
    return true;
}

bool
SlottedPage::revive(std::uint16_t slot, const std::uint8_t *bytes,
                    std::uint16_t len)
{
    if (slot >= header()->slots || len == 0)
        return false;
    Slot *s = slotEntry(slot);
    if (s->length != 0)
        return false; // live slot: use update()
    if (s->offset < sizeof(Header) ||
        static_cast<std::uint32_t>(s->offset) + len > pageBytes)
        return false;
    std::memcpy(frame_ + s->offset, bytes, len);
    s->length = len;
    return true;
}

} // namespace cgp::db
