/**
 * @file
 * Heap files of fixed-schema records.  createRec() is the paper's
 * Figure 2 entry point: find a page with space in the buffer pool
 * (rarely touching disk once resident), lock it, update it, unlock
 * it — the call sequence CGP learns.
 */

#ifndef CGP_DB_HEAPFILE_HH
#define CGP_DB_HEAPFILE_HH

#include <cstdint>
#include <vector>

#include "db/buffer_pool.hh"
#include "db/common.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/page.hh"
#include "db/tuple.hh"
#include "db/txn.hh"
#include "db/volume.hh"
#include "db/wal.hh"

namespace cgp::db
{

class HeapFile
{
  public:
    HeapFile(DbContext &ctx, BufferPool &pool, Volume &volume,
             LockManager &locks, WriteAheadLog &log,
             const Schema *schema);

    /** Create_rec: append a record, returning its RID. */
    Rid createRec(TxnId txn, const Tuple &tuple);

    /** Fetch a record by RID. */
    Tuple getRec(TxnId txn, Rid rid);

    /** Overwrite a record in place. */
    void updateRec(TxnId txn, Rid rid, const Tuple &tuple);

    const Schema *schema() const { return schema_; }
    std::uint64_t recordCount() const { return records_; }
    std::size_t pageCount() const { return pages_.size(); }
    PageId pageAt(std::size_t i) const { return pages_[i]; }

    /**
     * Sequential scan cursor.  Pages are fixed one at a time; tuples
     * are produced in RID order.
     */
    class Scan
    {
      public:
        Scan(HeapFile &file, TxnId txn);
        ~Scan();

        /** @return false at end of file. */
        bool next(Tuple &out, Rid *rid = nullptr);

        void close();

      private:
        HeapFile &file_;
        TxnId txn_;
        std::size_t pageIdx_ = 0;
        std::uint16_t slot_ = 0;
        std::uint8_t *frame_ = nullptr;
        bool open_ = true;
    };

  private:
    friend class Scan;

    /** Locate (and fix) a page with room; appends pages as needed. */
    PageId findFreePage(std::uint16_t len, std::uint8_t *&frame);

    DbContext &ctx_;
    BufferPool &pool_;
    Volume &volume_;
    LockManager &locks_;
    WriteAheadLog &log_;
    const Schema *schema_;

    std::vector<PageId> pages_;
    std::uint64_t records_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_HEAPFILE_HH
