/**
 * @file
 * Transactions: id allocation, begin/commit/abort with 2PL release
 * and log force at commit.
 *
 * An active-transaction table tracks every id from begin() to its
 * terminal state; commit/abort of an unknown or already-finished id
 * is rejected with a clear error instead of silently corrupting the
 * active count.  abort() really rolls back: the transaction's log
 * records are walked backwards applying undo images (Update) and
 * slot tombstones (Insert) through the bound buffer pool.
 */

#ifndef CGP_DB_TXN_HH
#define CGP_DB_TXN_HH

#include <optional>
#include <unordered_map>

#include "db/common.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/wal.hh"

namespace cgp::db
{

class BufferPool;

enum class TxnState : std::uint8_t
{
    Active,
    Committed,
    Aborted
};

class TransactionManager
{
  public:
    TransactionManager(DbContext &ctx, LockManager &locks,
                       WriteAheadLog &log)
        : ctx_(ctx), locks_(locks), log_(log)
    {
    }

    /**
     * Attach the buffer pool abort() rolls back through.  Without a
     * bound pool, abort still releases locks and logs the Abort
     * record (recovery's undo pass then erases the effects), but
     * in-memory state keeps the loser's writes until restart.
     */
    void bindPool(BufferPool *pool) { pool_ = pool; }

    /** Start a transaction; logs a Begin record. */
    TxnId begin();

    /**
     * Commit: force the log, release all locks.
     * @return false (with an error event) if @p txn is unknown or
     *         already finished; the log and locks are untouched.
     */
    bool commit(TxnId txn);

    /**
     * Abort: undo the transaction's effects via the bound pool, log
     * an Abort record, release locks.
     * @return false (with an error event) if @p txn is unknown or
     *         already finished.
     */
    bool abort(TxnId txn);

    std::uint32_t active() const { return active_; }

    /** True while @p txn has begun and not yet committed/aborted. */
    bool isActive(TxnId txn) const;

    /** State of a known transaction; nullopt if never begun. */
    std::optional<TxnState> stateOf(TxnId txn) const;

  private:
    /** Walk @p txn's log backwards applying undo images. */
    void rollback(TxnId txn);

    DbContext &ctx_;
    LockManager &locks_;
    WriteAheadLog &log_;
    BufferPool *pool_ = nullptr;
    TxnId next_ = 1;
    std::uint32_t active_ = 0;
    std::unordered_map<TxnId, TxnState> table_;
};

} // namespace cgp::db

#endif // CGP_DB_TXN_HH
