/**
 * @file
 * Transactions: id allocation, begin/commit/abort with 2PL release
 * and log force at commit.
 */

#ifndef CGP_DB_TXN_HH
#define CGP_DB_TXN_HH

#include "db/common.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/wal.hh"

namespace cgp::db
{

class TransactionManager
{
  public:
    TransactionManager(DbContext &ctx, LockManager &locks,
                       WriteAheadLog &log)
        : ctx_(ctx), locks_(locks), log_(log)
    {
    }

    /** Start a transaction; logs a Begin record. */
    TxnId begin();

    /** Commit: force the log, release all locks. */
    void commit(TxnId txn);

    /** Abort: log, release locks (no undo: aborts only in tests). */
    void abort(TxnId txn);

    std::uint32_t active() const { return active_; }

  private:
    DbContext &ctx_;
    LockManager &locks_;
    WriteAheadLog &log_;
    TxnId next_ = 1;
    std::uint32_t active_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_TXN_HH
