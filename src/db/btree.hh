/**
 * @file
 * Page-based B+-tree over int32 keys -> RIDs, built on the buffer
 * pool.  Leaves are chained for range scans (the Wisconsin indexed
 * selections and the TPC-H index probes).  Splits propagate upward;
 * the root splits grow the tree.
 */

#ifndef CGP_DB_BTREE_HH
#define CGP_DB_BTREE_HH

#include <cstdint>
#include <vector>

#include "db/buffer_pool.hh"
#include "db/common.hh"
#include "db/context.hh"
#include "db/lock.hh"
#include "db/volume.hh"

namespace cgp::db
{

class BTree
{
  public:
    BTree(DbContext &ctx, BufferPool &pool, Volume &volume,
          LockManager &locks);

    /** Insert a key/RID pair (duplicate keys allowed). */
    void insert(TxnId txn, std::int32_t key, Rid rid);

    /**
     * Point lookup.
     * @return true and set @p out to the first match.
     */
    bool search(TxnId txn, std::int32_t key, Rid &out);

    /**
     * Remove one (key, rid) pair.  Deletion is lazy, as in most
     * production B-trees (e.g. PostgreSQL): entries are removed
     * from their leaf without eager merging, so empty leaves may
     * remain linked until a rebuild.
     * @return true if a matching entry was removed.
     */
    bool remove(TxnId txn, std::int32_t key, Rid rid);

    /** Range iterator over keys in [lo, hi]. */
    class RangeScan
    {
      public:
        RangeScan(BTree &tree, TxnId txn, std::int32_t lo,
                  std::int32_t hi);
        ~RangeScan();

        bool next(std::int32_t &key, Rid &rid);
        void close();

      private:
        BTree &tree_;
        TxnId txn_;
        std::int32_t hi_;
        PageId leaf_ = invalidPageId;
        std::uint16_t pos_ = 0;
        std::uint8_t *frame_ = nullptr;
        bool open_ = true;
    };

    unsigned height() const { return height_; }
    std::uint64_t size() const { return size_; }

    /**
     * Structural check: keys ordered in every node, leaf chain
     * ordered, all leaves at the same depth.  Test support.
     */
    bool validate(TxnId txn);

  private:
    friend class RangeScan;

    /**
     * Node layout inside an 8KB page:
     *   header (8 bytes): isLeaf, count, link
     *     - leaf: link = right-sibling page
     *     - internal: link = leftmost child
     *   keys:   int32[maxEntries]      at byte 8
     *   values: leaf Rid-packed uint64 / internal child PageId,
     *           after the keys, padded to 8-byte alignment
     */
    struct NodeHeader
    {
        std::uint16_t isLeaf;
        std::uint16_t count;
        PageId link;
    };

    static constexpr std::uint16_t maxEntries = 448;

    class NodeView
    {
      public:
        explicit NodeView(std::uint8_t *frame);

        bool isLeaf() const { return hdr_->isLeaf != 0; }
        std::uint16_t count() const { return hdr_->count; }
        PageId link() const { return hdr_->link; }
        void setLeaf(bool leaf) { hdr_->isLeaf = leaf ? 1 : 0; }
        void setCount(std::uint16_t c) { hdr_->count = c; }
        void setLink(PageId p) { hdr_->link = p; }

        std::int32_t key(std::uint16_t i) const { return keys_[i]; }
        void setKey(std::uint16_t i, std::int32_t k) { keys_[i] = k; }

        Rid rid(std::uint16_t i) const;
        void setRid(std::uint16_t i, Rid r);

        PageId child(std::uint16_t i) const
        {
            return static_cast<PageId>(vals_[i]);
        }
        void setChild(std::uint16_t i, PageId p) { vals_[i] = p; }

        /** First position with key >= @p k (binary search). */
        std::uint16_t lowerBound(std::int32_t k) const;

      private:
        NodeHeader *hdr_;
        std::int32_t *keys_;
        std::uint64_t *vals_;
    };

    PageId allocNode(bool leaf);

    /** Descend from the root to the leaf covering @p key,
     *  recording the path of internal pages. */
    PageId descendToLeaf(TxnId txn, std::int32_t key,
                         std::vector<PageId> *path);

    /** Split a full leaf; returns (separator key, new page). */
    std::pair<std::int32_t, PageId> splitLeaf(std::uint8_t *frame,
                                              PageId leaf_pid);

    /** Split a full internal node. */
    std::pair<std::int32_t, PageId> splitInternal(std::uint8_t *frame,
                                                  PageId pid);

    /** Insert a separator into a parent chain after a child split. */
    void insertIntoParents(TxnId txn, std::vector<PageId> &path,
                           std::int32_t sep, PageId right);

    DbContext &ctx_;
    BufferPool &pool_;
    Volume &volume_;
    LockManager &locks_;

    PageId root_;
    unsigned height_ = 1;
    std::uint64_t size_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_BTREE_HH
