#include "db/btree.hh"

#include <cstring>

#include "db/page.hh"
#include "util/logging.hh"

namespace cgp::db
{

namespace
{

constexpr std::uint32_t keysOffset = 8;

/** Values follow the keys, padded up to 8-byte alignment so the
 *  uint64 array can be addressed directly. */
constexpr std::uint32_t
valsOffset(std::uint32_t max_entries)
{
    const std::uint32_t end =
        keysOffset +
        static_cast<std::uint32_t>(sizeof(std::int32_t)) *
            (max_entries + 1);
    return (end + 7u) & ~7u;
}

std::uint64_t
packRid(Rid r)
{
    return (static_cast<std::uint64_t>(r.page) << 16) | r.slot;
}

Rid
unpackRid(std::uint64_t v)
{
    Rid r;
    r.page = static_cast<PageId>(v >> 16);
    r.slot = static_cast<std::uint16_t>(v & 0xffff);
    return r;
}

} // anonymous namespace

BTree::NodeView::NodeView(std::uint8_t *frame)
    : hdr_(reinterpret_cast<NodeHeader *>(frame)),
      keys_(reinterpret_cast<std::int32_t *>(frame + keysOffset)),
      vals_(reinterpret_cast<std::uint64_t *>(
          frame + valsOffset(maxEntries)))
{
    static_assert(valsOffset(maxEntries) +
                      sizeof(std::uint64_t) * (maxEntries + 2) <=
                  pageBytes,
                  "B+-tree node layout exceeds the page");
}

Rid
BTree::NodeView::rid(std::uint16_t i) const
{
    return unpackRid(vals_[i]);
}

void
BTree::NodeView::setRid(std::uint16_t i, Rid r)
{
    vals_[i] = packRid(r);
}

std::uint16_t
BTree::NodeView::lowerBound(std::int32_t k) const
{
    std::uint16_t lo = 0;
    std::uint16_t hi = count();
    while (lo < hi) {
        const std::uint16_t mid =
            static_cast<std::uint16_t>((lo + hi) / 2);
        if (keys_[mid] < k)
            lo = static_cast<std::uint16_t>(mid + 1);
        else
            hi = mid;
    }
    return lo;
}

BTree::BTree(DbContext &ctx, BufferPool &pool, Volume &volume,
             LockManager &locks)
    : ctx_(ctx), pool_(pool), volume_(volume), locks_(locks)
{
    root_ = allocNode(/*leaf=*/true);
}

PageId
BTree::allocNode(bool leaf)
{
    const PageId pid = volume_.allocPage();
    std::uint8_t *frame = pool_.fix(pid);
    NodeView node(frame);
    node.setLeaf(leaf);
    node.setCount(0);
    node.setLink(invalidPageId);
    pool_.unfix(pid, true);
    return pid;
}

PageId
BTree::descendToLeaf(TxnId txn, std::int32_t key,
                     std::vector<PageId> *path)
{
    PageId pid = root_;
    while (true) {
        TraceScope ds(ctx_.rec,
                      ctx_.fn.btDescendC[ctx_.opClass()]);
        ds.work(14);
        {
            TraceScope hs(ctx_.rec, ctx_.fn.btLatch);
            hs.work(6);
        }
        locks_.acquire(txn, pid, LockMode::Shared);
        std::uint8_t *frame = pool_.fix(pid);
        NodeView node(frame);
        const bool leaf = node.isLeaf();
        ds.branch(leaf);
        if (leaf) {
            pool_.unfix(pid, false);
            locks_.release(txn, pid);
            return pid;
        }
        std::uint16_t pos;
        {
            TraceScope ns(ctx_.rec,
                          ctx_.fn.btNodeSearchC[ctx_.opClass()]);
            ns.work(7);
            {
                TraceScope cs(ctx_.rec,
                              ctx_.fn.btKeyCompare.site(0));
                cs.work(9);
                pos = node.lowerBound(key + 1);
                cs.loadAt(pool_.frameAddr(pid,
                                          keysOffset + 4u * pos));
            }
            ns.work(5);
        }
        const PageId child =
            pos == 0 ? node.link() : node.child(pos - 1);
        // The descent knows its next node here, a full level of
        // latch/lock/fix work before searching it: announce the key
        // area so a semantic prefetcher can cover it.
        ds.hint(DataHintKind::BtreeChild,
                pool_.frameAddrIfResident(child, keysOffset));
        if (path != nullptr)
            path->push_back(pid);
        pool_.unfix(pid, false);
        locks_.release(txn, pid);
        pid = child;
    }
}

std::pair<std::int32_t, PageId>
BTree::splitLeaf(std::uint8_t *frame, PageId leaf_pid)
{
    TraceScope ss(ctx_.rec, ctx_.fn.btSplit);
    ss.work(60);

    NodeView node(frame);
    const PageId right_pid = allocNode(/*leaf=*/true);
    std::uint8_t *rframe = pool_.fix(right_pid);
    NodeView right(rframe);

    const std::uint16_t half =
        static_cast<std::uint16_t>(node.count() / 2);
    const std::uint16_t moved =
        static_cast<std::uint16_t>(node.count() - half);
    for (std::uint16_t i = 0; i < moved; ++i) {
        right.setKey(i, node.key(half + i));
        right.setRid(i, node.rid(half + i));
    }
    right.setCount(moved);
    right.setLink(node.link());
    node.setCount(half);
    node.setLink(right_pid);
    (void)leaf_pid;

    const std::int32_t sep = right.key(0);
    pool_.unfix(right_pid, true);
    return {sep, right_pid};
}

std::pair<std::int32_t, PageId>
BTree::splitInternal(std::uint8_t *frame, PageId pid)
{
    TraceScope ss(ctx_.rec, ctx_.fn.btSplit);
    ss.work(70);

    NodeView node(frame);
    const PageId right_pid = allocNode(/*leaf=*/false);
    std::uint8_t *rframe = pool_.fix(right_pid);
    NodeView right(rframe);

    // Promote the middle key; its right child becomes the new
    // node's leftmost child.
    const std::uint16_t mid =
        static_cast<std::uint16_t>(node.count() / 2);
    const std::int32_t sep = node.key(mid);
    right.setLink(node.child(mid));
    std::uint16_t out = 0;
    for (std::uint16_t i = static_cast<std::uint16_t>(mid + 1);
         i < node.count(); ++i, ++out) {
        right.setKey(out, node.key(i));
        right.setChild(out, node.child(i));
    }
    right.setCount(out);
    node.setCount(mid);
    (void)pid;

    pool_.unfix(right_pid, true);
    return {sep, right_pid};
}

void
BTree::insertIntoParents(TxnId txn, std::vector<PageId> &path,
                         std::int32_t sep, PageId right)
{
    std::int32_t carry_key = sep;
    PageId carry_child = right;

    while (!path.empty()) {
        const PageId pid = path.back();
        path.pop_back();

        locks_.acquire(txn, pid, LockMode::Exclusive);
        std::uint8_t *frame = pool_.fix(pid);
        NodeView node(frame);

        if (node.count() < maxEntries) {
            const std::uint16_t pos = node.lowerBound(carry_key);
            for (std::uint16_t i = node.count(); i > pos; --i) {
                node.setKey(i, node.key(i - 1));
                node.setChild(i, node.child(i - 1));
            }
            node.setKey(pos, carry_key);
            node.setChild(pos, carry_child);
            node.setCount(static_cast<std::uint16_t>(node.count() + 1));
            pool_.unfix(pid, true);
            locks_.release(txn, pid);
            return;
        }

        // Full: insert then split.
        {
            const std::uint16_t pos = node.lowerBound(carry_key);
            cgp_assert(node.count() == maxEntries, "overfull node");
            // Temporarily exceed by shifting within capacity+1 slack
            // (the layout reserves one extra slot).
            for (std::uint16_t i = node.count(); i > pos; --i) {
                node.setKey(i, node.key(i - 1));
                node.setChild(i, node.child(i - 1));
            }
            node.setKey(pos, carry_key);
            node.setChild(pos, carry_child);
            node.setCount(static_cast<std::uint16_t>(node.count() + 1));
        }
        auto [new_sep, new_right] = splitInternal(frame, pid);
        pool_.unfix(pid, true);
        locks_.release(txn, pid);
        carry_key = new_sep;
        carry_child = new_right;
    }

    // Root split: grow the tree.
    const PageId new_root = allocNode(/*leaf=*/false);
    std::uint8_t *frame = pool_.fix(new_root);
    NodeView node(frame);
    node.setLink(root_);
    node.setKey(0, carry_key);
    node.setChild(0, carry_child);
    node.setCount(1);
    pool_.unfix(new_root, true);
    root_ = new_root;
    ++height_;
}

void
BTree::insert(TxnId txn, std::int32_t key, Rid rid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.btInsert);
    ts.work(10);

    std::vector<PageId> path;
    const PageId leaf_pid = descendToLeaf(txn, key, &path);

    locks_.acquire(txn, leaf_pid, LockMode::Exclusive);
    std::uint8_t *frame = pool_.fix(leaf_pid);
    NodeView node(frame);

    {
        TraceScope ls(ctx_.rec, ctx_.fn.btLeafInsert);
        ls.work(16);
        std::uint16_t pos;
        {
            TraceScope ns(ctx_.rec, ctx_.fn.btNodeSearch.site(1));
            ns.work(8);
            pos = node.lowerBound(key);
        }
        for (std::uint16_t i = node.count(); i > pos; --i) {
            node.setKey(i, node.key(i - 1));
            node.setRid(i, node.rid(i - 1));
        }
        node.setKey(pos, key);
        node.setRid(pos, rid);
        node.setCount(static_cast<std::uint16_t>(node.count() + 1));
        ls.storeAt(pool_.frameAddr(leaf_pid, keysOffset + 4u * pos));
    }

    const bool overflow = node.count() > maxEntries;
    ts.branch(overflow);
    if (overflow) {
        auto [sep, right] = splitLeaf(frame, leaf_pid);
        pool_.unfix(leaf_pid, true);
        locks_.release(txn, leaf_pid);
        insertIntoParents(txn, path, sep, right);
    } else {
        pool_.unfix(leaf_pid, true);
        locks_.release(txn, leaf_pid);
    }
    ++size_;
}

bool
BTree::search(TxnId txn, std::int32_t key, Rid &out)
{
    TraceScope ts(ctx_.rec, ctx_.fn.btSearch);
    ts.work(8);

    const PageId leaf_pid = descendToLeaf(txn, key, nullptr);
    locks_.acquire(txn, leaf_pid, LockMode::Shared);
    std::uint8_t *frame = pool_.fix(leaf_pid);
    NodeView node(frame);

    bool found = false;
    {
        TraceScope cs(ctx_.rec, ctx_.fn.btKeyCompare.site(1));
        cs.work(9);
        const std::uint16_t pos = node.lowerBound(key);
        cs.loadAt(pool_.frameAddr(leaf_pid, keysOffset + 4u * pos));
        if (pos < node.count() && node.key(pos) == key) {
            out = node.rid(pos);
            found = true;
        }
    }
    ts.branch(found);

    pool_.unfix(leaf_pid, false);
    locks_.release(txn, leaf_pid);
    return found;
}

bool
BTree::remove(TxnId txn, std::int32_t key, Rid rid)
{
    TraceScope ts(ctx_.rec, ctx_.fn.btRemove);
    ts.work(10);

    // Duplicates can spill across leaves: walk the leaf chain from
    // the covering leaf until the key range is exhausted.
    PageId pid = descendToLeaf(txn, key, nullptr);
    while (pid != invalidPageId) {
        locks_.acquire(txn, pid, LockMode::Exclusive);
        std::uint8_t *frame = pool_.fix(pid);
        NodeView node(frame);

        bool removed = false;
        bool past_key = false;
        {
            TraceScope ls(ctx_.rec, ctx_.fn.btLeafRemove);
            ls.work(14);
            std::uint16_t pos = node.lowerBound(key);
            for (; pos < node.count() && node.key(pos) == key;
                 ++pos) {
                if (node.rid(pos) == rid) {
                    for (std::uint16_t i = pos;
                         i + 1 < node.count(); ++i) {
                        node.setKey(i, node.key(i + 1));
                        node.setRid(i, node.rid(i + 1));
                    }
                    node.setCount(static_cast<std::uint16_t>(
                        node.count() - 1));
                    removed = true;
                    break;
                }
            }
            past_key = pos < node.count() && node.key(pos) > key;
            ls.branch(removed);
        }

        const PageId next_leaf = node.link();
        pool_.unfix(pid, removed);
        locks_.release(txn, pid);

        if (removed) {
            --size_;
            return true;
        }
        if (past_key)
            return false;
        pid = next_leaf;
    }
    return false;
}

BTree::RangeScan::RangeScan(BTree &tree, TxnId txn, std::int32_t lo,
                            std::int32_t hi)
    : tree_(tree), txn_(txn), hi_(hi)
{
    TraceScope ts(tree_.ctx_.rec, tree_.ctx_.fn.btRangeOpen);
    ts.work(12);

    leaf_ = tree_.descendToLeaf(txn_, lo, nullptr);
    tree_.locks_.acquire(txn_, leaf_, LockMode::Shared);
    frame_ = tree_.pool_.fix(leaf_);
    NodeView node(frame_);
    pos_ = node.lowerBound(lo);
}

BTree::RangeScan::~RangeScan()
{
    if (open_)
        close();
}

bool
BTree::RangeScan::next(std::int32_t &key, Rid &rid)
{
    TraceScope ts(tree_.ctx_.rec,
                  tree_.ctx_.fn.btRangeNextC[tree_.ctx_.opClass()]);
    ts.work(12);
    {
        TraceScope hs(tree_.ctx_.rec, tree_.ctx_.fn.btIterAdvance);
        hs.work(6);
    }

    while (frame_ != nullptr) {
        NodeView node(frame_);
        if (pos_ < node.count()) {
            const std::int32_t k = node.key(pos_);
            const bool in_range = k <= hi_;
            ts.branch(in_range);
            if (!in_range) {
                close();
                return false;
            }
            ts.loadAt(tree_.pool_.frameAddr(
                leaf_, keysOffset + 4u * pos_));
            // Nearing the end of this leaf: announce the chain
            // successor (duplicates are filtered by the semantic
            // prefetcher's recent-hint dedup).
            if (pos_ + 4 >= node.count() &&
                node.link() != invalidPageId) {
                ts.hint(DataHintKind::BtreeNextLeaf,
                        tree_.pool_.frameAddrIfResident(node.link(),
                                                        keysOffset));
            }
            key = k;
            rid = node.rid(pos_);
            ++pos_;
            return true;
        }
        // Advance the leaf chain.
        const PageId next_leaf = node.link();
        tree_.pool_.unfix(leaf_, false);
        tree_.locks_.release(txn_, leaf_);
        frame_ = nullptr;
        if (next_leaf == invalidPageId) {
            open_ = false;
            return false;
        }
        leaf_ = next_leaf;
        tree_.locks_.acquire(txn_, leaf_, LockMode::Shared);
        frame_ = tree_.pool_.fix(leaf_);
        pos_ = 0;
    }
    return false;
}

void
BTree::RangeScan::close()
{
    if (frame_ != nullptr) {
        tree_.pool_.unfix(leaf_, false);
        tree_.locks_.release(txn_, leaf_);
        frame_ = nullptr;
    }
    open_ = false;
}

bool
BTree::validate(TxnId txn)
{
    // Walk the leaf chain: keys must be globally nondecreasing and
    // the chain must contain size() entries.
    PageId pid = root_;
    unsigned depth = 1;
    while (true) {
        std::uint8_t *frame = pool_.fix(pid);
        NodeView node(frame);
        if (node.isLeaf()) {
            pool_.unfix(pid, false);
            break;
        }
        const PageId child = node.link();
        pool_.unfix(pid, false);
        pid = child;
        ++depth;
    }
    if (depth != height_)
        return false;

    std::uint64_t seen = 0;
    std::int64_t prev = INT64_MIN;
    while (pid != invalidPageId) {
        locks_.acquire(txn, pid, LockMode::Shared);
        std::uint8_t *frame = pool_.fix(pid);
        NodeView node(frame);
        for (std::uint16_t i = 0; i < node.count(); ++i) {
            if (node.key(i) < prev) {
                pool_.unfix(pid, false);
                locks_.release(txn, pid);
                return false;
            }
            prev = node.key(i);
            ++seen;
        }
        const PageId next_leaf = node.link();
        pool_.unfix(pid, false);
        locks_.release(txn, pid);
        pid = next_leaf;
    }
    return seen == size_;
}

} // namespace cgp::db
