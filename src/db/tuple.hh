/**
 * @file
 * Schemas and tuples.  Columns are fixed width (INT32 or CHAR(n)) so
 * records have a static layout — matching the Wisconsin benchmark's
 * relations and keeping slotted-page arithmetic simple.
 */

#ifndef CGP_DB_TUPLE_HH
#define CGP_DB_TUPLE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace cgp::db
{

enum class ColumnType : std::uint8_t
{
    Int32,
    Char ///< fixed-width string
};

struct Column
{
    std::string name;
    ColumnType type = ColumnType::Int32;
    std::uint16_t width = 4; ///< bytes (4 for Int32)
};

class Schema
{
  public:
    Schema() = default;
    explicit Schema(std::vector<Column> columns);

    std::size_t columnCount() const { return columns_.size(); }
    const Column &column(std::size_t i) const;

    /** Index of a named column; panics if absent. */
    std::size_t indexOf(const std::string &name) const;

    /** Byte offset of column @p i in a record. */
    std::uint16_t offsetOf(std::size_t i) const;

    /** Total record width in bytes. */
    std::uint16_t recordBytes() const { return recordBytes_; }

  private:
    std::vector<Column> columns_;
    std::vector<std::uint16_t> offsets_;
    std::uint16_t recordBytes_ = 0;
};

/**
 * An owned, schema-typed record.  Values live in a flat byte vector
 * in record layout, so a tuple can be memcpy'ed into a page slot.
 */
class Tuple
{
  public:
    Tuple() = default;
    explicit Tuple(const Schema *schema);

    /** Wrap raw record bytes (copies them). */
    Tuple(const Schema *schema, const std::uint8_t *bytes);

    void setInt(std::size_t col, std::int32_t value);
    void setString(std::size_t col, const std::string &value);

    std::int32_t getInt(std::size_t col) const;
    std::string getString(std::size_t col) const;

    const std::uint8_t *data() const { return bytes_.data(); }
    std::uint16_t size() const
    {
        return static_cast<std::uint16_t>(bytes_.size());
    }

    const Schema *schema() const { return schema_; }

  private:
    const Schema *schema_ = nullptr;
    std::vector<std::uint8_t> bytes_;
};

/** Concatenate two schemas (for join outputs). */
Schema concatSchemas(const Schema &a, const Schema &b);

/** Concatenate two tuples under @p out (= concatSchemas(a,b)). */
Tuple concatTuples(const Schema *out, const Tuple &a, const Tuple &b);

} // namespace cgp::db

#endif // CGP_DB_TUPLE_HH
