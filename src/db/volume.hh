/**
 * @file
 * Volume: the database's backing store ("disk").  Pages are kept in
 * host memory — the paper's setting is a main-memory-resident
 * working set where disk latency is assumed masked — but reads and
 * writes still run through traced functions so cold fetches show up
 * in the instruction stream.
 *
 * The device paths carry the "volume.read" / "volume.write" crash
 * points: an injected TransientIo makes the call throw
 * fault::TransientIoError (callers retry with backoff, see
 * BufferPool), and an injected TornWrite persists only the first
 * half of the page image — the canonical torn page a crash-safe
 * recovery pass has to survive.
 */

#ifndef CGP_DB_VOLUME_HH
#define CGP_DB_VOLUME_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "db/common.hh"
#include "db/context.hh"

namespace cgp::db
{

class Volume
{
  public:
    explicit Volume(DbContext &ctx) : ctx_(ctx) {}

    /** Allocate a fresh zeroed page. */
    PageId allocPage();

    /**
     * Copy page @p pid into @p out (pageBytes).
     * @throws fault::TransientIoError on an injected device error.
     */
    void readPage(PageId pid, std::uint8_t *out);

    /**
     * Copy @p in (pageBytes) into page @p pid.
     * @throws fault::TransientIoError on an injected device error.
     */
    void writePage(PageId pid, const std::uint8_t *in);

    std::size_t pageCount() const { return pages_.size(); }

    /** Injected torn page writes that reached this volume. */
    std::uint64_t tornWrites() const { return tornWrites_; }

  private:
    using PageImage = std::unique_ptr<std::uint8_t[]>;

    DbContext &ctx_;
    std::vector<PageImage> pages_;
    std::uint64_t tornWrites_ = 0;
};

} // namespace cgp::db

#endif // CGP_DB_VOLUME_HH
