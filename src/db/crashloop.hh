/**
 * @file
 * Crash-loop harness: the storage layer's torture loop.
 *
 * One run() builds a fresh database world (volume, WAL, buffer pool,
 * transaction manager, heap file), arms a single fault at a named
 * crash point, and drives a seeded transactional workload — inserts
 * and updates, commits and aborts, a pool deliberately too small so
 * dirty pages are stolen — until the fault fires (or the workload
 * finishes).  It then simulates the restart: discard the buffer
 * pool, truncate the WAL to its durable prefix, run
 * RecoveryManager::recover, and audit the volume against a shadow
 * model of the workload: every committed row must read back with its
 * last committed value, and no aborted or in-flight row may survive.
 *
 * Everything is deterministic — the same seed and fault spec replay
 * the same failure — so the fuzz sweep in the tests can bisect any
 * regression to one (point, kind, seed) triple.
 */

#ifndef CGP_DB_CRASHLOOP_HH
#define CGP_DB_CRASHLOOP_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "db/recovery.hh"
#include "fault/fault.hh"

namespace cgp::db
{

struct CrashLoopConfig
{
    std::uint64_t seed = 0xc4a5'11ull;

    /** Transactions the workload attempts before a crash-free end. */
    unsigned txnCount = 48;

    /** Pool frames during the workload; small forces page steals. */
    std::size_t poolFrames = 4;
};

struct CrashLoopResult
{
    /** True when the armed fault unwound the engine mid-workload. */
    bool crashed = false;

    /** Crash point that fired (empty for a clean or I/O-failed run). */
    std::string crashPoint;

    /** True when a transient I/O error exhausted its retry budget. */
    bool ioGaveUp = false;

    RecoveryManager::Stats stats;

    std::uint64_t committedRows = 0;  ///< rows the shadow model expects
    std::uint64_t verifiedRows = 0;   ///< rows that read back correctly
    std::uint64_t missingCommitted = 0; ///< committed rows lost/corrupt
    std::uint64_t survivingAborted = 0; ///< loser rows still on disk

    /** The invariant every crash must preserve. */
    bool
    ok() const
    {
        return missingCommitted == 0 && survivingAborted == 0 &&
            stats.corruptRecords == 0;
    }
};

class CrashLoopHarness
{
  public:
    explicit CrashLoopHarness(const CrashLoopConfig &config = {})
        : config_(config)
    {
    }

    /**
     * Run the seeded workload with @p spec armed at @p point, crash,
     * recover, and audit.  Arm an unreachable schedule (huge
     * afterHits) to exercise the crash-free path.
     */
    CrashLoopResult run(std::string_view point,
                        const fault::FaultSpec &spec);

  private:
    CrashLoopConfig config_;
};

} // namespace cgp::db

#endif // CGP_DB_CRASHLOOP_HH
