/**
 * @file
 * Cache hierarchy model.
 *
 * Geometry follows paper Table 1: split 32KB 2-way L1 I/D caches and
 * a unified 1MB 4-way L2, all with 32-byte lines; hit latencies 1
 * (L1) and 16 (L2), memory latency 80 cycles.
 *
 * Two properties of the paper's memory system are modeled exactly:
 *
 *  - L2 services L1 misses *and* prefetches through one FIFO port
 *    with no demand priority (§3.3), at one request per cycle, so a
 *    burst of useless prefetches genuinely delays demand misses;
 *
 *  - every prefetched L1 line is classified on its *next* reference
 *    (§5.6 / Figure 8): already present -> "pref hit", still in
 *    flight -> "delayed hit", evicted or never referenced ->
 *    "useless".  Prefetches for lines already present or in flight
 *    are squashed without touching the L2 port.
 */

#ifndef CGP_MEM_CACHE_HH
#define CGP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace cgp
{

class Json;
class PrefetchArbiter;

/** Who generated a memory-system request (for attribution stats).
 *  I-side and D-side sources are distinct so prefetch accuracy is
 *  never conflated across the two in SimResult. */
enum class AccessSource : std::uint8_t
{
    DemandFetch = 0,  ///< instruction fetch
    DemandLoad = 1,   ///< data load
    DemandStore = 2,  ///< data store
    PrefetchNL = 3,   ///< next-N-line prefetcher (I-side)
    PrefetchCGHC = 4, ///< call graph history cache (I-side)
    DataPrefetch = 5, ///< data-side prefetch engine (src/dprefetch)
    NumSources = 6
};

const char *accessSourceName(AccessSource src);

struct CacheConfig
{
    std::string name = "cache";
    std::uint32_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 32;
    Cycle hitLatency = 1;
};

/**
 * The backing side of the last cache level: a fixed-latency memory
 * plus the one-per-cycle FIFO request port described in §3.3.
 */
class MemoryPort
{
  public:
    /** Requests the port can start per cycle (L2 banking). */
    static constexpr unsigned bandwidth = 2;

    /**
     * Enqueue a request arriving at @p now; returns the cycle the
     * next level starts servicing it.  Throughput is limited per
     * cycle in arrival order — demand misses and prefetches queue
     * together with no priority (paper §3.3).  @p requester tags the
     * request for per-core attribution when several cores share the
     * port (the server model); cycles a request waits behind the
     * backlog are charged to its requester as contention.
     */
    Cycle
    request(Cycle now, unsigned requester = 0)
    {
        Cycle start = now + 1;
        if (start < lastStart_)
            start = lastStart_;
        if (start == lastStart_ && startedThisCycle_ >= bandwidth)
            ++start;
        if (start != lastStart_) {
            lastStart_ = start;
            startedThisCycle_ = 1;
        } else {
            ++startedThisCycle_;
        }
        ++requests_;
        const std::uint64_t wait = start - (now + 1);
        waitCycles_ += wait;
        if (requester >= perRequester_.size())
            perRequester_.resize(requester + 1);
        ++perRequester_[requester].requests;
        perRequester_[requester].waitCycles += wait;
        return start;
    }

    /** Total requests that crossed this port (bus traffic in lines). */
    std::uint64_t requests() const { return requests_; }

    /** Total cycles requests spent queued behind the FIFO backlog. */
    std::uint64_t waitCycles() const { return waitCycles_; }

    /// @{ Per-requester attribution (zero for unseen requesters).
    std::uint64_t
    requestsBy(unsigned requester) const
    {
        return requester < perRequester_.size()
            ? perRequester_[requester].requests
            : 0;
    }
    std::uint64_t
    waitCyclesBy(unsigned requester) const
    {
        return requester < perRequester_.size()
            ? perRequester_[requester].waitCycles
            : 0;
    }
    /// @}

    /**
     * Would a request arriving at @p now have to wait behind the
     * backlog (i.e. not start at now + 1)?  Pure query — the port
     * occupancy the arbiter's demand-priority gate keys on.
     */
    bool
    wouldDelay(Cycle now) const
    {
        const Cycle start = now + 1;
        if (lastStart_ > start)
            return true;
        return lastStart_ == start && startedThisCycle_ >= bandwidth;
    }

  private:
    struct RequesterStats
    {
        std::uint64_t requests = 0;
        std::uint64_t waitCycles = 0;
    };

    Cycle lastStart_ = 0;
    unsigned startedThisCycle_ = 0;
    std::uint64_t requests_ = 0;
    std::uint64_t waitCycles_ = 0;
    std::vector<RequesterStats> perRequester_;
};

/**
 * One set-associative, LRU, write-allocate cache level.  Levels are
 * chained: a miss in this level consults @c next (or raw memory when
 * this is the last level).  Timing is computed at request time; fills
 * become visible to subsequent accesses once their ready cycle
 * passes (drained eagerly each CPU cycle via tick()).
 */
class Cache
{
  public:
    /**
     * @param config Geometry/latency.
     * @param next Next cache level, or nullptr if memory-backed.
     * @param memory Memory port used when @p next is nullptr, or the
     *               FIFO port in front of @p next.
     */
    Cache(const CacheConfig &config, Cache *next, MemoryPort *port);

    struct AccessResult
    {
        Cycle readyCycle = 0;  ///< when the data can be consumed
        bool hit = false;      ///< L1 array hit
        bool delayedHit = false; ///< matched an in-flight fill
    };

    /** Demand access (fetch or data). */
    AccessResult access(Addr addr, Cycle now, AccessSource source,
                        bool is_write);

    /**
     * Prefetch @p addr into this cache.  Squashed (no effect, no L2
     * traffic) when the line is present or already in flight.  With
     * an arbiter installed the request is gated first: dropped,
     * deferred, or merged requests never reach the presence check.
     * @return true if a prefetch request was actually issued.
     */
    bool prefetch(Addr addr, Cycle now, AccessSource source);

    /**
     * Install the shared prefetch arbiter (nullptr = direct issue).
     * With an arbiter, §5.6 classification outcomes are also fed
     * back to it as accuracy signals.
     */
    void setArbiter(PrefetchArbiter *arbiter) { arbiter_ = arbiter; }

    /** Tag this cache's port requests with a core id (server model);
     *  the default 0 keeps single-core attribution unchanged. */
    void setRequesterId(unsigned id) { requester_ = id; }

    /**
     * Arbiter drain path: issue a previously-deferred prefetch
     * without re-entering the admission gate.  Returns false when
     * the line became present/in-flight meanwhile (not counted as a
     * squash — the arbiter accounts it as duplicate-merged).
     */
    bool issueArbitrated(Addr line_addr, Cycle now,
                         AccessSource source);

    /** Pure query: is @p addr's line in the array or an MSHR? */
    bool linePresentOrInflight(Addr addr) const;

    /**
     * Functional-warming mode (SMARTS fast-forward): while set,
     * prefetch() is a no-op — engines keep training their tables but
     * issue nothing, and no statistic moves.  Demand traffic during
     * warming goes through warmAccess() instead of access().
     */
    void setWarming(bool warming) { warming_ = warming; }
    bool warming() const { return warming_; }

    /**
     * Functional (timing-free) demand access: update tags, LRU and
     * dirty bits — recursing into the next level and installing the
     * line on a miss — without touching any counter, MSHR or port.
     * @return true when the line missed this level's array and MSHRs.
     */
    bool warmAccess(Addr addr, bool is_write);

    /** No in-flight fills (checkpoints require a quiesced cache). */
    bool inflightEmpty() const { return inflight_.empty(); }

    /// @{ Warm-state checkpointing: tag/LRU/flag arrays plus the LRU
    /// tick.  MSHRs must be empty at save time (asserted); loadState
    /// verifies the serialized geometry matches this cache's.
    Json saveState() const;
    void loadState(const Json &state);
    /// @}

    /** Move fills whose ready cycle has passed into the array. */
    void tick(Cycle now);

    /**
     * End-of-run accounting: classify still-unreferenced prefetched
     * lines (in the array or in flight) as useless.
     */
    void finalize();

    /// @{ Statistics access for the harness.
    const StatGroup &stats() const { return stats_; }
    std::uint64_t demandAccesses() const;
    std::uint64_t demandMisses() const { return misses_.value(); }
    std::uint64_t prefetchesIssued(AccessSource src) const;
    std::uint64_t prefHits(AccessSource src) const;
    std::uint64_t delayedHits(AccessSource src) const;
    std::uint64_t useless(AccessSource src) const;
    std::uint64_t squashedPrefetches() const { return squashed_.value(); }
    std::uint64_t fills() const { return fills_.value(); }
    /// @}

    std::uint32_t lineBytes() const { return config_.lineBytes; }

    Addr
    lineAlign(Addr addr) const
    {
        return addr & ~static_cast<Addr>(config_.lineBytes - 1);
    }

  private:
    static constexpr std::size_t numSources =
        static_cast<std::size_t>(AccessSource::NumSources);

    struct Line
    {
        Addr tag = invalidAddr;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;   ///< filled by a prefetch...
        bool referenced = false;   ///< ...and demanded since
        AccessSource source = AccessSource::DemandFetch;
    };

    struct Mshr
    {
        Cycle readyCycle = 0;
        bool isPrefetch = false;
        bool demanded = false; ///< a demand access joined the fill
        AccessSource source = AccessSource::DemandFetch;
    };

    std::size_t setOf(Addr line_addr) const;

    /** Miss path: compute fill latency through next level / memory. */
    Cycle forwardMiss(Addr line_addr, Cycle now, AccessSource source);

    /** Insert a line, evicting LRU (classifying prefetch victims). */
    void insert(Addr line_addr, const Mshr &mshr);

    Line *find(Addr line_addr);
    const Line *find(Addr line_addr) const;

    /** Unconditional issue (presence already checked). */
    Cycle issuePrefetch(Addr line_addr, Cycle now,
                        AccessSource source);

    /** Counter-free line install used by the warming path. */
    void warmInstall(Addr line_addr);

    CacheConfig config_;
    Cache *next_;
    MemoryPort *port_;
    PrefetchArbiter *arbiter_ = nullptr;
    unsigned requester_ = 0;
    bool warming_ = false;

    std::uint32_t sets_;
    std::vector<Line> lines_;
    std::unordered_map<Addr, Mshr> inflight_;
    std::uint64_t tick_ = 0;

    Counter accesses_;
    Counter misses_;
    Counter writeAccesses_;
    Counter fills_;
    Counter evictions_;
    Counter squashed_;
    Counter prefIssued_[numSources];
    Counter prefHits_[numSources];
    Counter delayedHits_[numSources];
    Counter useless_[numSources];
    StatGroup stats_;
};

} // namespace cgp

#endif // CGP_MEM_CACHE_HH
