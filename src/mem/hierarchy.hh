/**
 * @file
 * Convenience bundle wiring the Table 1 memory system: split L1 I/D,
 * one shared FIFO port, and a unified L2 (memory-backed) — plus,
 * when enabled, the shared prefetch arbiter that coordinates I-side
 * and D-side engines on that port (see mem/pfarbiter.hh).
 */

#ifndef CGP_MEM_HIERARCHY_HH
#define CGP_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/pfarbiter.hh"

namespace cgp
{

struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 2, 32, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 2, 32, 1};
    CacheConfig l2{"l2", 1024 * 1024, 4, 32, 16};

    /** Shared I+D prefetch arbitration on the L2 port; disabled by
     *  default, in which case behaviour is bit-identical to the
     *  arbiter-less hierarchy. */
    PfArbiterConfig arbiter;
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config = {})
        : l2_(config.l2, nullptr, nullptr),
          l1i_(config.l1i, &l2_, &port_),
          l1d_(config.l1d, &l2_, &port_)
    {
        if (config.arbiter.enabled) {
            arbiter_ = std::make_unique<PrefetchArbiter>(
                port_, config.arbiter);
            l1i_.setArbiter(arbiter_.get());
            l1d_.setArbiter(arbiter_.get());
        }
    }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    MemoryPort &port() { return port_; }

    /** Active arbiter, or nullptr when arbitration is disabled. */
    PrefetchArbiter *arbiter() { return arbiter_.get(); }
    const PrefetchArbiter *arbiter() const { return arbiter_.get(); }

    void
    tick(Cycle now)
    {
        l1i_.tick(now);
        l1d_.tick(now);
        l2_.tick(now);
    }

    /**
     * End-of-cycle drain of arbiter-deferred prefetches: the core
     * calls this after all demand traffic of the cycle has claimed
     * its port slots, which is what gives demand requests priority.
     * No-op without an arbiter.
     */
    void
    drainDeferred(Cycle now)
    {
        if (arbiter_ != nullptr)
            arbiter_->drain(now);
    }

    /**
     * End-of-run accounting.  Idempotent: the simulator's teardown
     * and any explicit per-level finalize (the L2 finalize is also
     * reachable directly) must not double-classify prefetched lines
     * or double-drop queued arbiter entries.
     */
    void
    finalize()
    {
        if (finalized_)
            return;
        finalized_ = true;
        if (arbiter_ != nullptr)
            arbiter_->finalize();
        // Each level is finalized exactly once, including the L2:
        // still-unreferenced L2 prefetched lines must be classified
        // in end-of-run accounting too.
        l1i_.finalize();
        l1d_.finalize();
        l2_.finalize();
    }

  private:
    MemoryPort port_;
    std::unique_ptr<PrefetchArbiter> arbiter_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
    bool finalized_ = false;
};

} // namespace cgp

#endif // CGP_MEM_HIERARCHY_HH
