/**
 * @file
 * Convenience bundle wiring the Table 1 memory system: split L1 I/D,
 * one shared FIFO port, and a unified L2 (memory-backed) — plus,
 * when enabled, the shared prefetch arbiter that coordinates I-side
 * and D-side engines on that port (see mem/pfarbiter.hh).
 *
 * L2 ownership is explicit.  The single-core path constructs a
 * MemoryHierarchy that owns its SharedL2 (bit-identical to the old
 * implicit wiring); the server model constructs one SharedL2 and N
 * borrowing hierarchies, one per core, each with private L1s and a
 * private arbiter on the shared port.  SharedL2 carries its own
 * once-guards for tick (per cycle) and finalize (per run) so that N
 * owners can drive it without double-ticking or double-classifying —
 * the multi-owner audit of the PR-4 `finalized_` guard.
 */

#ifndef CGP_MEM_HIERARCHY_HH
#define CGP_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/pfarbiter.hh"

namespace cgp
{

struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 2, 32, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 2, 32, 1};
    CacheConfig l2{"l2", 1024 * 1024, 4, 32, 16};

    /** Shared I+D prefetch arbitration on the L2 port; disabled by
     *  default, in which case behaviour is bit-identical to the
     *  arbiter-less hierarchy. */
    PfArbiterConfig arbiter;
};

/**
 * The L2 cache plus the FIFO port in front of it — the state that is
 * per-*server*, not per-core.  tick() is idempotent per cycle and
 * finalize() is idempotent per run, so every attached hierarchy may
 * call both without coordinating.
 */
class SharedL2
{
  public:
    explicit SharedL2(const CacheConfig &config)
        : l2_(config, nullptr, nullptr)
    {
    }

    Cache &cache() { return l2_; }
    const Cache &cache() const { return l2_; }
    MemoryPort &port() { return port_; }
    const MemoryPort &port() const { return port_; }

    /** Drain L2 fills once per cycle (no-op on repeat calls for the
     *  same @p now, so N cores may all tick it). */
    void
    tick(Cycle now)
    {
        if (now == lastTick_)
            return;
        lastTick_ = now;
        l2_.tick(now);
    }

    /** Classify still-unreferenced L2 prefetched lines, once. */
    void
    finalize()
    {
        if (finalized_)
            return;
        finalized_ = true;
        l2_.finalize();
    }

  private:
    MemoryPort port_;
    Cache l2_;
    Cycle lastTick_ = 0;
    bool finalized_ = false;
};

class MemoryHierarchy
{
  public:
    /** Owning form: the hierarchy constructs and owns its L2 (the
     *  legacy single-core wiring). */
    explicit MemoryHierarchy(const HierarchyConfig &config = {})
        : ownedL2_(std::make_unique<SharedL2>(config.l2)),
          shared_(ownedL2_.get()),
          l1i_(config.l1i, &shared_->cache(), &shared_->port()),
          l1d_(config.l1d, &shared_->cache(), &shared_->port())
    {
        installArbiter(config);
    }

    /**
     * Borrowing form: private L1s (and arbiter) in front of a SharedL2
     * owned elsewhere.  @p coreId tags this core's port requests for
     * contention attribution.  The borrowing hierarchy never
     * finalizes the L2 — the SharedL2 owner does, after every
     * attached core has drained.
     */
    MemoryHierarchy(const HierarchyConfig &config, SharedL2 &shared,
                    unsigned coreId)
        : shared_(&shared),
          l1i_(config.l1i, &shared.cache(), &shared.port()),
          l1d_(config.l1d, &shared.cache(), &shared.port())
    {
        l1i_.setRequesterId(coreId);
        l1d_.setRequesterId(coreId);
        installArbiter(config);
    }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return shared_->cache(); }
    MemoryPort &port() { return shared_->port(); }
    SharedL2 &sharedL2() { return *shared_; }

    /** True when this hierarchy owns its L2 (single-core wiring). */
    bool ownsL2() const { return ownedL2_ != nullptr; }

    /** Active arbiter, or nullptr when arbitration is disabled. */
    PrefetchArbiter *arbiter() { return arbiter_.get(); }
    const PrefetchArbiter *arbiter() const { return arbiter_.get(); }

    void
    tick(Cycle now)
    {
        l1i_.tick(now);
        l1d_.tick(now);
        shared_->tick(now);
    }

    /** Functional-warming mode for every level (SMARTS sampling):
     *  prefetches are suppressed and demand warming goes through
     *  Cache::warmAccess, which recurses into the shared L2. */
    void
    setWarming(bool warming)
    {
        l1i_.setWarming(warming);
        l1d_.setWarming(warming);
        shared_->cache().setWarming(warming);
    }

    /**
     * End-of-cycle drain of arbiter-deferred prefetches: the core
     * calls this after all demand traffic of the cycle has claimed
     * its port slots, which is what gives demand requests priority.
     * No-op without an arbiter.
     */
    void
    drainDeferred(Cycle now)
    {
        if (arbiter_ != nullptr)
            arbiter_->drain(now);
    }

    /**
     * End-of-run accounting.  Idempotent: the simulator's teardown
     * and any explicit per-level finalize (the L2 finalize is also
     * reachable directly) must not double-classify prefetched lines
     * or double-drop queued arbiter entries.  An owned L2 is
     * finalized here (legacy order: arbiter, L1-I, L1-D, L2); a
     * borrowed one is left to its owner.
     */
    void
    finalize()
    {
        if (finalized_)
            return;
        finalized_ = true;
        if (arbiter_ != nullptr)
            arbiter_->finalize();
        // Each level is finalized exactly once, including the L2:
        // still-unreferenced L2 prefetched lines must be classified
        // in end-of-run accounting too.
        l1i_.finalize();
        l1d_.finalize();
        if (ownedL2_ != nullptr)
            shared_->finalize();
    }

  private:
    void
    installArbiter(const HierarchyConfig &config)
    {
        if (config.arbiter.enabled) {
            arbiter_ = std::make_unique<PrefetchArbiter>(
                shared_->port(), config.arbiter);
            l1i_.setArbiter(arbiter_.get());
            l1d_.setArbiter(arbiter_.get());
        }
    }

    std::unique_ptr<SharedL2> ownedL2_;
    SharedL2 *shared_;
    std::unique_ptr<PrefetchArbiter> arbiter_;
    Cache l1i_;
    Cache l1d_;
    bool finalized_ = false;
};

} // namespace cgp

#endif // CGP_MEM_HIERARCHY_HH
