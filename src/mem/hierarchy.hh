/**
 * @file
 * Convenience bundle wiring the Table 1 memory system: split L1 I/D,
 * one shared FIFO port, and a unified L2 (memory-backed).
 */

#ifndef CGP_MEM_HIERARCHY_HH
#define CGP_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"

namespace cgp
{

struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 2, 32, 1};
    CacheConfig l1d{"l1d", 32 * 1024, 2, 32, 1};
    CacheConfig l2{"l2", 1024 * 1024, 4, 32, 16};
};

class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config = {})
        : l2_(config.l2, nullptr, nullptr),
          l1i_(config.l1i, &l2_, &port_),
          l1d_(config.l1d, &l2_, &port_)
    {
    }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    MemoryPort &port() { return port_; }

    void
    tick(Cycle now)
    {
        l1i_.tick(now);
        l1d_.tick(now);
        l2_.tick(now);
    }

    void
    finalize()
    {
        // Each level is finalized exactly once, including the L2:
        // still-unreferenced L2 prefetched lines must be classified
        // in end-of-run accounting too.
        l1i_.finalize();
        l1d_.finalize();
        l2_.finalize();
    }

  private:
    MemoryPort port_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
};

} // namespace cgp

#endif // CGP_MEM_HIERARCHY_HH
