#include "mem/cache.hh"

#include <algorithm>
#include <stdexcept>

#include "mem/pfarbiter.hh"
#include "util/bitops.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace cgp
{

const char *
accessSourceName(AccessSource src)
{
    switch (src) {
      case AccessSource::DemandFetch:
        return "demand_fetch";
      case AccessSource::DemandLoad:
        return "demand_load";
      case AccessSource::DemandStore:
        return "demand_store";
      case AccessSource::PrefetchNL:
        return "prefetch_nl";
      case AccessSource::PrefetchCGHC:
        return "prefetch_cghc";
      case AccessSource::DataPrefetch:
        return "data_prefetch";
      default:
        return "?";
    }
}

Cache::Cache(const CacheConfig &config, Cache *next, MemoryPort *port)
    : config_(config), next_(next), port_(port),
      sets_(config.sizeBytes / (config.lineBytes * config.assoc)),
      lines_(static_cast<std::size_t>(sets_) * config.assoc),
      stats_(config.name)
{
    cgp_assert(isPowerOfTwo(config.lineBytes),
               "line size must be a power of two");
    cgp_assert(isPowerOfTwo(sets_), "set count must be a power of two");
    cgp_assert(config.sizeBytes %
                   (config.lineBytes * config.assoc) == 0,
               "cache size not divisible into sets");
    cgp_assert((next_ == nullptr) == (port_ == nullptr),
               "next level and its port go together");

    stats_.addCounter("demand_accesses", &accesses_,
                      "demand lookups (reads + writes)");
    stats_.addCounter("demand_misses", &misses_,
                      "demand lookups missing array and MSHRs");
    stats_.addCounter("writes", &writeAccesses_, "write accesses");
    stats_.addCounter("fills", &fills_, "lines filled into the array");
    stats_.addCounter("evictions", &evictions_, "valid lines evicted");
    stats_.addCounter("squashed_prefetches", &squashed_,
                      "prefetches dropped: line present or in flight");
    for (std::size_t s = 0; s < numSources; ++s) {
        const std::string n = accessSourceName(
            static_cast<AccessSource>(s));
        stats_.addCounter("prefetches_issued." + n, &prefIssued_[s],
                          "prefetch requests sent to the next level");
        stats_.addCounter("pref_hits." + n, &prefHits_[s],
                          "first demand touch found line resident");
        stats_.addCounter("delayed_hits." + n, &delayedHits_[s],
                          "first demand touch found line in flight");
        stats_.addCounter("useless." + n, &useless_[s],
                          "prefetched lines evicted or never touched");
    }
    stats_.addFormula(
        "miss_rate",
        [this]() {
            const auto a = accesses_.value();
            return a == 0 ? 0.0
                          : static_cast<double>(misses_.value())
                              / static_cast<double>(a);
        },
        "demand miss rate");
}

std::size_t
Cache::setOf(Addr line_addr) const
{
    return static_cast<std::size_t>(
        (line_addr / config_.lineBytes) & (sets_ - 1));
}

Cache::Line *
Cache::find(Addr line_addr)
{
    const std::size_t base = setOf(line_addr) * config_.assoc;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (l.valid && l.tag == line_addr)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

bool
Cache::linePresentOrInflight(Addr addr) const
{
    const Addr line_addr = lineAlign(addr);
    return find(line_addr) != nullptr ||
        inflight_.find(line_addr) != inflight_.end();
}

Cycle
Cache::forwardMiss(Addr line_addr, Cycle now, AccessSource source)
{
    if (next_ != nullptr) {
        const Cycle start = port_->request(now, requester_);
        // serviceChild computes its own latency from `start`; the
        // port already accounts FIFO occupancy.
        auto res = next_->access(line_addr, start, source, false);
        return res.readyCycle;
    }
    // Last level: memory-backed with a fixed latency.
    return now + config_.hitLatency + 80;
}

Cache::AccessResult
Cache::access(Addr addr, Cycle now, AccessSource source, bool is_write)
{
    const Addr line_addr = lineAlign(addr);
    ++accesses_;
    if (is_write)
        ++writeAccesses_;
    ++tick_;

    AccessResult res;
    if (Line *l = find(line_addr); l != nullptr) {
        res.hit = true;
        res.readyCycle = now + config_.hitLatency;
        l->lru = tick_;
        l->dirty = l->dirty || is_write;
        if (l->prefetched && !l->referenced) {
            ++prefHits_[static_cast<std::size_t>(l->source)];
            l->referenced = true;
            if (arbiter_ != nullptr)
                arbiter_->recordOutcome(l->source, true);
        }
        return res;
    }

    if (auto it = inflight_.find(line_addr); it != inflight_.end()) {
        Mshr &m = it->second;
        if (m.isPrefetch && !m.demanded) {
            ++delayedHits_[static_cast<std::size_t>(m.source)];
            if (arbiter_ != nullptr)
                arbiter_->recordOutcome(m.source, true);
        }
        m.demanded = true;
        res.delayedHit = true;
        res.readyCycle = std::max(m.readyCycle,
                                  now + config_.hitLatency);
        return res;
    }

    ++misses_;
    Mshr m;
    m.readyCycle = forwardMiss(line_addr, now, source);
    m.isPrefetch = false;
    m.demanded = true;
    m.source = source;
    res.readyCycle = m.readyCycle;
    inflight_.emplace(line_addr, m);
    return res;
}

bool
Cache::warmAccess(Addr addr, bool is_write)
{
    const Addr line_addr = lineAlign(addr);
    ++tick_;
    if (Line *l = find(line_addr); l != nullptr) {
        l->lru = tick_;
        l->dirty = l->dirty || is_write;
        // A warming touch silently "uses" a prefetched line: the
        // classification event happened inside the warmed region, so
        // no counter moves, but the line must not later be counted
        // useless for a reference it did receive.
        l->referenced = true;
        return false;
    }
    if (auto it = inflight_.find(line_addr); it != inflight_.end()) {
        it->second.demanded = true;
        return false;
    }
    if (next_ != nullptr)
        next_->warmAccess(line_addr, is_write);
    warmInstall(line_addr);
    return true;
}

void
Cache::warmInstall(Addr line_addr)
{
    const std::size_t base = setOf(line_addr) * config_.assoc;
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (!l.valid) {
            victim = base + w;
            break;
        }
        if (l.lru < lines_[victim].lru)
            victim = base + w;
    }
    ++tick_;
    Line &v = lines_[victim];
    v.valid = true;
    v.tag = line_addr;
    v.lru = tick_;
    v.dirty = false;
    v.prefetched = false;
    v.referenced = false;
    v.source = AccessSource::DemandFetch;
}

Json
Cache::saveState() const
{
    cgp_assert(inflight_.empty(),
               "checkpoint requires a quiesced cache");
    Json j = Json::object();
    j.set("name", config_.name);
    j.set("size_bytes", config_.sizeBytes);
    j.set("assoc", config_.assoc);
    j.set("line_bytes", config_.lineBytes);
    j.set("tick", tick_);
    Json tags = Json::array();
    Json lrus = Json::array();
    Json meta = Json::array();
    for (const Line &l : lines_) {
        tags.push(l.tag);
        lrus.push(l.lru);
        const unsigned flags = (l.valid ? 1u : 0u) |
            (l.dirty ? 2u : 0u) | (l.prefetched ? 4u : 0u) |
            (l.referenced ? 8u : 0u) |
            (static_cast<unsigned>(l.source) << 4);
        meta.push(flags);
    }
    j.set("tag", std::move(tags));
    j.set("lru", std::move(lrus));
    j.set("meta", std::move(meta));
    return j;
}

void
Cache::loadState(const Json &state)
{
    if (state.at("name").asString() != config_.name ||
        state.at("size_bytes").asUint() != config_.sizeBytes ||
        state.at("assoc").asUint() != config_.assoc ||
        state.at("line_bytes").asUint() != config_.lineBytes) {
        throw std::runtime_error(
            "cache checkpoint geometry mismatch for " + config_.name);
    }
    const Json &tags = state.at("tag");
    const Json &lrus = state.at("lru");
    const Json &meta = state.at("meta");
    if (tags.size() != lines_.size() || lrus.size() != lines_.size() ||
        meta.size() != lines_.size()) {
        throw std::runtime_error(
            "cache checkpoint line count mismatch for " +
            config_.name);
    }
    tick_ = state.at("tick").asUint();
    inflight_.clear();
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        Line &l = lines_[i];
        l.tag = tags[i].asUint();
        l.lru = lrus[i].asUint();
        const unsigned flags =
            static_cast<unsigned>(meta[i].asUint());
        l.valid = (flags & 1u) != 0;
        l.dirty = (flags & 2u) != 0;
        l.prefetched = (flags & 4u) != 0;
        l.referenced = (flags & 8u) != 0;
        const unsigned src = flags >> 4;
        if (src >= numSources) {
            throw std::runtime_error(
                "cache checkpoint has an invalid access source");
        }
        l.source = static_cast<AccessSource>(src);
    }
}

bool
Cache::prefetch(Addr addr, Cycle now, AccessSource source)
{
    // Functional warming: engines train their tables but issue
    // nothing (no counters, no arbiter traffic, no port requests).
    if (warming_)
        return false;
    const Addr line_addr = lineAlign(addr);
    if (arbiter_ != nullptr) {
        switch (arbiter_->request(*this, line_addr, source, now)) {
          case PrefetchArbiter::Decision::Drop:
          case PrefetchArbiter::Decision::Defer:
          case PrefetchArbiter::Decision::Merge:
            return false;
          case PrefetchArbiter::Decision::Admit:
            break;
        }
    }
    if (find(line_addr) != nullptr ||
        inflight_.find(line_addr) != inflight_.end()) {
        ++squashed_;
        return false;
    }
    issuePrefetch(line_addr, now, source);
    if (arbiter_ != nullptr)
        arbiter_->noteIssued(source);
    return true;
}

bool
Cache::issueArbitrated(Addr line_addr, Cycle now, AccessSource source)
{
    if (find(line_addr) != nullptr ||
        inflight_.find(line_addr) != inflight_.end()) {
        return false;
    }
    issuePrefetch(line_addr, now, source);
    return true;
}

Cycle
Cache::issuePrefetch(Addr line_addr, Cycle now, AccessSource source)
{
    Mshr m;
    m.readyCycle = forwardMiss(line_addr, now, source);
    m.isPrefetch = true;
    m.demanded = false;
    m.source = source;
    inflight_.emplace(line_addr, m);
    ++prefIssued_[static_cast<std::size_t>(source)];
    return m.readyCycle;
}

void
Cache::insert(Addr line_addr, const Mshr &mshr)
{
    const std::size_t base = setOf(line_addr) * config_.assoc;
    std::size_t victim = base;
    for (std::uint32_t w = 0; w < config_.assoc; ++w) {
        Line &l = lines_[base + w];
        if (!l.valid) {
            victim = base + w;
            break;
        }
        if (l.lru < lines_[victim].lru)
            victim = base + w;
    }
    Line &v = lines_[victim];
    if (v.valid) {
        ++evictions_;
        if (v.prefetched && !v.referenced) {
            ++useless_[static_cast<std::size_t>(v.source)];
            if (arbiter_ != nullptr)
                arbiter_->recordOutcome(v.source, false);
        }
    }
    ++tick_;
    v.valid = true;
    v.tag = line_addr;
    v.lru = tick_;
    v.dirty = false;
    v.prefetched = mshr.isPrefetch;
    v.referenced = mshr.demanded;
    v.source = mshr.source;
    ++fills_;
}

void
Cache::tick(Cycle now)
{
    if (inflight_.empty())
        return;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second.readyCycle <= now) {
            insert(it->first, it->second);
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Cache::finalize()
{
    for (const auto &[addr, m] : inflight_) {
        (void)addr;
        if (m.isPrefetch && !m.demanded)
            ++useless_[static_cast<std::size_t>(m.source)];
    }
    inflight_.clear();
    for (Line &l : lines_) {
        if (l.valid && l.prefetched && !l.referenced) {
            ++useless_[static_cast<std::size_t>(l.source)];
            l.referenced = true;
        }
    }
}

std::uint64_t
Cache::demandAccesses() const
{
    return accesses_.value();
}

std::uint64_t
Cache::prefetchesIssued(AccessSource src) const
{
    return prefIssued_[static_cast<std::size_t>(src)].value();
}

std::uint64_t
Cache::prefHits(AccessSource src) const
{
    return prefHits_[static_cast<std::size_t>(src)].value();
}

std::uint64_t
Cache::delayedHits(AccessSource src) const
{
    return delayedHits_[static_cast<std::size_t>(src)].value();
}

std::uint64_t
Cache::useless(AccessSource src) const
{
    return useless_[static_cast<std::size_t>(src)].value();
}

} // namespace cgp
