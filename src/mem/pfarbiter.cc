#include "mem/pfarbiter.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace cgp
{

PrefetchArbiter::PrefetchArbiter(MemoryPort &port,
                                 const PfArbiterConfig &config)
    : port_(port), config_(config)
{
    cgp_assert(config_.queueDepth > 0, "arbiter queue needs depth");
    cgp_assert(config_.creditsPerEngine > 0,
               "arbiter needs per-engine credits");
    cgp_assert(isPowerOfTwo(config_.filterEntries),
               "filter size must be a power of two");
    cgp_assert(config_.probePeriod > 0, "probe period must be > 0");
    cgp_assert(config_.accuracyWindow >= config_.minSamples,
               "accuracy window smaller than its sample floor");
    cgp_assert(config_.drainPerCycle > 0, "drain rate must be > 0");
    for (Engine &e : engines_)
        e.filter.resize(config_.filterEntries);
}

PrefetchArbiter::Engine &
PrefetchArbiter::engineOf(AccessSource source)
{
    return engines_[static_cast<std::size_t>(source)];
}

const PrefetchArbiter::Engine &
PrefetchArbiter::engineOf(AccessSource source) const
{
    return engines_[static_cast<std::size_t>(source)];
}

std::size_t
PrefetchArbiter::filterIndex(Addr line) const
{
    // Lines are >= 32B aligned; spread neighbouring lines across the
    // filter with a cheap multiplicative hash.
    const std::uint64_t h = (line >> 5) * 0x9e3779b97f4a7c15ull;
    return static_cast<std::size_t>(
        (h >> 13) & (config_.filterEntries - 1));
}

bool
PrefetchArbiter::duplicateInFilter(Engine &e, Addr line,
                                   Cycle now) const
{
    const FilterSlot &slot = e.filter[filterIndex(line)];
    return slot.line == line && now >= slot.at &&
        now - slot.at <= config_.filterWindow;
}

void
PrefetchArbiter::rememberInFilter(Engine &e, Addr line, Cycle now)
{
    FilterSlot &slot = e.filter[filterIndex(line)];
    slot.line = line;
    slot.at = now;
}

double
PrefetchArbiter::windowAccuracy(AccessSource source) const
{
    const Engine &e = engineOf(source);
    const std::uint64_t classified = e.windowUseful + e.windowUseless;
    if (classified < config_.minSamples)
        return 1.0; // cold: assume accurate until proven otherwise
    return static_cast<double>(e.windowUseful) /
        static_cast<double>(classified);
}

bool
PrefetchArbiter::gated(AccessSource source) const
{
    return windowAccuracy(source) < config_.lowAccuracy;
}

PrefetchArbiter::Decision
PrefetchArbiter::request(Cache &cache, Addr line_addr,
                         AccessSource source, Cycle now)
{
    Engine &e = engineOf(source);

    // 1. Recent-line filter: the engine asked for this exact line
    // moments ago — the canonical squash-producing duplicate.
    if (duplicateInFilter(e, line_addr, now)) {
        ++e.dropped;
        return Decision::Drop;
    }

    // 2. A request for this line is already waiting in the queue
    // (possibly from the other side): merge instead of queueing twice.
    if (queued_.count({&cache, line_addr}) != 0) {
        ++e.duplicateMerged;
        return Decision::Merge;
    }

    // 3. Accuracy gate: recently-inaccurate engines are throttled to
    // one probe in `probePeriod` so they can still re-train.
    if (gated(source)) {
        if (++e.probeCounter % config_.probePeriod != 0) {
            ++e.dropped;
            return Decision::Drop;
        }
    }

    // 4. Demand priority: when the FIFO port has no free slot this
    // cycle, defer into the bounded queue instead of lengthening the
    // backlog ahead of future demand misses.
    if (port_.wouldDelay(now)) {
        if (queue_.size() >= config_.queueDepth ||
            e.queued >= config_.creditsPerEngine) {
            ++e.dropped;
            return Decision::Drop;
        }
        queue_.push_back(Pending{&cache, line_addr, source, now});
        queued_.insert({&cache, line_addr});
        ++e.queued;
        ++e.deferred;
        rememberInFilter(e, line_addr, now);
        return Decision::Defer;
    }

    // 5. Admit: the cache performs its presence check and issues;
    // noteIssued() completes the accounting.
    rememberInFilter(e, line_addr, now);
    return Decision::Admit;
}

void
PrefetchArbiter::noteIssued(AccessSource source)
{
    ++engineOf(source).issued;
}

void
PrefetchArbiter::recordOutcome(AccessSource source, bool useful)
{
    Engine &e = engineOf(source);
    if (useful)
        ++e.windowUseful;
    else
        ++e.windowUseless;
    // Sliding window by periodic halving: old outcomes fade, recent
    // behaviour dominates — and the arithmetic stays deterministic.
    if (e.windowUseful + e.windowUseless >= config_.accuracyWindow) {
        e.windowUseful /= 2;
        e.windowUseless /= 2;
    }
}

void
PrefetchArbiter::drain(Cycle now)
{
    unsigned issued_now = 0;
    while (!queue_.empty() && issued_now < config_.drainPerCycle) {
        Pending p = queue_.front();
        Engine &e = engineOf(p.source);

        // Stale entries cost nothing to discard.
        if (now - p.enqueued > config_.maxDeferCycles) {
            queue_.pop_front();
            queued_.erase({p.cache, p.line});
            cgp_assert(e.queued > 0, "arbiter credit underflow");
            --e.queued;
            ++e.dropped;
            continue;
        }

        if (port_.wouldDelay(now))
            break; // port still saturated; keep waiting

        queue_.pop_front();
        queued_.erase({p.cache, p.line});
        cgp_assert(e.queued > 0, "arbiter credit underflow");
        --e.queued;

        // Redundant by the time its turn came: a demand miss or an
        // earlier prefetch already covers the line.
        if (p.cache->linePresentOrInflight(p.line)) {
            ++e.duplicateMerged;
            continue;
        }
        if (p.cache->issueArbitrated(p.line, now, p.source)) {
            ++e.issued;
            ++issued_now;
        } else {
            ++e.duplicateMerged; // raced with a same-cycle fill
        }
    }
}

void
PrefetchArbiter::finalize()
{
    while (!queue_.empty()) {
        const Pending &p = queue_.front();
        Engine &e = engineOf(p.source);
        queued_.erase({p.cache, p.line});
        cgp_assert(e.queued > 0, "arbiter credit underflow");
        --e.queued;
        ++e.dropped;
        queue_.pop_front();
    }
}

std::uint64_t
PrefetchArbiter::issued(AccessSource source) const
{
    return engineOf(source).issued;
}

std::uint64_t
PrefetchArbiter::deferred(AccessSource source) const
{
    return engineOf(source).deferred;
}

std::uint64_t
PrefetchArbiter::dropped(AccessSource source) const
{
    return engineOf(source).dropped;
}

std::uint64_t
PrefetchArbiter::duplicateMerged(AccessSource source) const
{
    return engineOf(source).duplicateMerged;
}

} // namespace cgp
