/**
 * @file
 * Unified I+D prefetch arbitration on the shared L2 port.
 *
 * The paper's memory system services L1 misses and prefetches through
 * one FIFO port with *no* demand priority (§3.3) — which is exactly
 * why §5.6 classifies prefetches so carefully: a burst of useless or
 * duplicate prefetches genuinely delays demand misses.  Once the
 * I-side (CGP/NL) and D-side (stride/correlation/semantic) engines
 * run together, they compete for that port, and figD-era data shows
 * the squash counters saturating it with redundant requests.
 *
 * The PrefetchArbiter sits between every prefetch engine and the
 * caches and coordinates the two sides, in the spirit of
 * feedback-directed prefetching (Srinath et al., HPCA 2007):
 *
 *  - a per-engine *recent-line filter* kills re-requests of a line
 *    the same engine asked for within the last few hundred cycles —
 *    the dominant source of squashed prefetches — before they spend
 *    a cache lookup;
 *  - a bounded *issue queue* gives demand traffic priority: when the
 *    FIFO port is occupied this cycle, prefetches are deferred and
 *    drained at end-of-cycle (after all demand requests have claimed
 *    their port slots), merged if the line became redundant while
 *    waiting, and dropped when they go stale;
 *  - an *accuracy gate* tracks each engine's recent
 *    useful/(useful+useless) over a sliding window (fed back from the
 *    §5.6 classification points in the cache) and throttles engines
 *    whose recent accuracy is poor, admitting only an occasional
 *    probe request so the engine can re-train;
 *  - per-engine *credits* bound how much of the queue any one engine
 *    may occupy, so a misbehaving engine cannot starve the other side.
 *
 * Engines are identified by their AccessSource, so I-side and D-side
 * accounting (issued / deferred / dropped / duplicate-merged) never
 * conflates — the same property the cache's §5.6 counters have.
 * When no arbiter is installed the caches behave exactly as before;
 * every pre-arbiter configuration is bit-identical.
 */

#ifndef CGP_MEM_PFARBITER_HH
#define CGP_MEM_PFARBITER_HH

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "mem/cache.hh"
#include "util/types.hh"

namespace cgp
{

struct PfArbiterConfig
{
    /** Master switch; disabled means no arbiter is constructed and
     *  the caches issue prefetches exactly as without one. */
    bool enabled = false;

    /** Bounded issue queue shared by all engines. */
    unsigned queueDepth = 32;

    /** Max queue entries any single engine may hold. */
    unsigned creditsPerEngine = 12;

    /** Classified prefetches per engine before the sliding window
     *  ages (both window counters are halved). */
    unsigned accuracyWindow = 256;

    /** Classified prefetches required before the gate may throttle
     *  an engine at all (cold engines run unthrottled to train). */
    unsigned minSamples = 32;

    /** Recent accuracy below this drops the engine's requests,
     *  keeping one probe in `probePeriod` to allow re-training. */
    double lowAccuracy = 0.20;

    /** One request in this many is admitted from a gated engine. */
    unsigned probePeriod = 8;

    /** Deferred entries older than this are dropped at drain. */
    Cycle maxDeferCycles = 64;

    /** Per-engine recent-line filter slots (power of two). */
    unsigned filterEntries = 64;

    /** A line re-requested by the same engine within this many
     *  cycles is dropped as a duplicate. */
    Cycle filterWindow = 128;

    /** Deferred prefetches issued per drain call (one per cycle). */
    unsigned drainPerCycle = 2;
};

/**
 * Shared prefetch-arbitration layer in front of the L2 FIFO port.
 * One instance serves both L1 caches; engine attribution rides the
 * AccessSource of each request.
 */
class PrefetchArbiter
{
  public:
    enum class Decision : std::uint8_t
    {
        Admit, ///< issue now (caller proceeds into the cache)
        Defer, ///< queued; the drain pass will issue it later
        Drop,  ///< rejected (duplicate filter, gate, or overflow)
        Merge  ///< matched a request already waiting in the queue
    };

    PrefetchArbiter(MemoryPort &port, const PfArbiterConfig &config);

    /**
     * Gate one prefetch request for @p line_addr (already
     * line-aligned by the caller) from engine @p source targeting
     * @p cache.  Only Decision::Admit lets the caller continue; all
     * other outcomes are fully accounted here.
     */
    Decision request(Cache &cache, Addr line_addr, AccessSource source,
                     Cycle now);

    /** An admitted request was actually issued by the cache (it was
     *  not squashed on the presence check). */
    void noteIssued(AccessSource source);

    /**
     * §5.6 classification feedback from the caches: a prefetched
     * line was demanded (useful) or evicted untouched (useless).
     * Drives the sliding-window accuracy of the issuing engine.
     */
    void recordOutcome(AccessSource source, bool useful);

    /**
     * End-of-cycle drain: issue deferred prefetches while the port
     * has a free slot this cycle, dropping stale entries and merging
     * those made redundant while they waited.  Called by the core
     * after all demand traffic of the cycle has claimed the port.
     */
    void drain(Cycle now);

    /** End of run: account still-queued entries as dropped. */
    void finalize();

    /// @{ Per-engine counters for SimResult.
    std::uint64_t issued(AccessSource source) const;
    std::uint64_t deferred(AccessSource source) const;
    std::uint64_t dropped(AccessSource source) const;
    std::uint64_t duplicateMerged(AccessSource source) const;
    /// @}

    /// @{ Introspection for tests.
    std::size_t queueSize() const { return queue_.size(); }
    /** Recent accuracy of @p source (1.0 while under minSamples). */
    double windowAccuracy(AccessSource source) const;
    /** True when the accuracy gate currently throttles @p source. */
    bool gated(AccessSource source) const;
    /// @}

  private:
    static constexpr std::size_t numSources =
        static_cast<std::size_t>(AccessSource::NumSources);

    struct FilterSlot
    {
        Addr line = invalidAddr;
        Cycle at = 0;
    };

    struct Engine
    {
        std::uint64_t windowUseful = 0;
        std::uint64_t windowUseless = 0;
        std::uint64_t probeCounter = 0;
        unsigned queued = 0; ///< credits in use
        std::uint64_t issued = 0;
        std::uint64_t deferred = 0;
        std::uint64_t dropped = 0;
        std::uint64_t duplicateMerged = 0;
        std::vector<FilterSlot> filter;
    };

    struct Pending
    {
        Cache *cache = nullptr;
        Addr line = invalidAddr;
        AccessSource source = AccessSource::PrefetchNL;
        Cycle enqueued = 0;
    };

    Engine &engineOf(AccessSource source);
    const Engine &engineOf(AccessSource source) const;
    std::size_t filterIndex(Addr line) const;
    bool duplicateInFilter(Engine &e, Addr line, Cycle now) const;
    void rememberInFilter(Engine &e, Addr line, Cycle now);

    MemoryPort &port_;
    PfArbiterConfig config_;
    Engine engines_[numSources];
    std::deque<Pending> queue_;
    /** Dedup index over the queue: one waiter per (cache, line). */
    std::set<std::pair<const Cache *, Addr>> queued_;
};

} // namespace cgp

#endif // CGP_MEM_PFARBITER_HH
