/**
 * @file
 * End-to-end integration tests over a reduced database workload set:
 * the full record -> interleave -> profile -> layout -> simulate
 * pipeline, checking the paper's qualitative orderings.
 *
 * CGP_SCALE is forced small here so the suite stays fast.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/simulator.hh"
#include "harness/workload.hh"

namespace cgp
{
namespace
{

class DbIntegration : public ::testing::Test
{
  protected:
    static DbWorkloadSet &
    set()
    {
        static DbWorkloadSet instance = [] {
            ::setenv("CGP_SCALE", "0.06", 1);
            DbWorkloadSet s = WorkloadFactory::buildDbSet();
            ::unsetenv("CGP_SCALE");
            return s;
        }();
        return instance;
    }
};

TEST_F(DbIntegration, BuildsAllFourWorkloads)
{
    ASSERT_EQ(set().workloads.size(), 4u);
    EXPECT_EQ(set().workloads[0].name, "wisc-prof");
    EXPECT_EQ(set().workloads[1].name, "wisc-large-1");
    EXPECT_EQ(set().workloads[2].name, "wisc-large-2");
    EXPECT_EQ(set().workloads[3].name, "wisc+tpch");
    for (const auto &w : set().workloads) {
        EXPECT_GT(w.trace->size(), 1000u) << w.name;
        EXPECT_EQ(w.registry.get(), set().registry.get());
        EXPECT_EQ(w.omProfile.get(), set().omProfile.get());
    }
    // More queries => more work.
    EXPECT_GT(set().workloads[2].trace->approxInstrs(),
              set().workloads[1].trace->approxInstrs());
    EXPECT_GT(set().workloads[3].trace->approxInstrs(),
              set().workloads[2].trace->approxInstrs());
}

TEST_F(DbIntegration, ProfileCoversTheCallGraph)
{
    const CallGraphAnalyzer analyzer(*set().omProfile);
    // Paper §3.2: the vast majority of functions call fewer than 8
    // distinct callees.
    EXPECT_GT(analyzer.callerCount(), 50u);
    EXPECT_GT(analyzer.fractionWithFewerCalleesThan(8), 0.6);
}

TEST_F(DbIntegration, InstructionsBetweenCallsNearPaperValue)
{
    const Workload &w = set().workloads[0];
    const SimResult r = runSimulation(w, SimConfig::o5());
    // Paper §5.4 reports ~43 for DBMS workloads; accept a band.
    EXPECT_GT(r.instrsPerCall, 30.0);
    EXPECT_LT(r.instrsPerCall, 65.0);
}

TEST_F(DbIntegration, PaperOrderingHoldsOnWiscProf)
{
    const Workload &w = set().workloads[0];
    const auto o5 = runSimulation(w, SimConfig::o5());
    const auto om = runSimulation(w, SimConfig::o5Om());
    const auto nl = runSimulation(
        w, SimConfig::withNL(LayoutKind::PettisHansen, 4));
    const auto cgp = runSimulation(
        w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    const auto perfect = runSimulation(
        w, SimConfig::perfectICacheOn(LayoutKind::PettisHansen));

    // Figure 6's bar ordering.
    EXPECT_LT(om.cycles, o5.cycles);
    EXPECT_LT(nl.cycles, om.cycles);
    EXPECT_LE(cgp.cycles, nl.cycles);
    EXPECT_LT(perfect.cycles, cgp.cycles);

    // Figure 7's miss ordering.
    EXPECT_LT(om.icacheMisses, o5.icacheMisses);
    EXPECT_LT(nl.icacheMisses, om.icacheMisses);
    EXPECT_LT(cgp.icacheMisses, nl.icacheMisses);
}

TEST_F(DbIntegration, CghcIsMoreAccurateThanNL)
{
    // Figure 9's headline: the CGHC-issued prefetches are far more
    // often useful than the NL-issued ones.
    const Workload &w = set().workloads[2];
    const auto r = runSimulation(
        w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    ASSERT_GT(r.cghc.issued, 0u);
    ASSERT_GT(r.nl.issued, 0u);
    EXPECT_GT(r.cghc.usefulFraction(),
              r.nl.usefulFraction() + 0.15);
}

TEST_F(DbIntegration, ResultsAreReproducible)
{
    const Workload &w = set().workloads[0];
    const auto a = runSimulation(w, SimConfig::o5());
    const auto b = runSimulation(w, SimConfig::o5());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
    EXPECT_EQ(a.instrs, b.instrs);
}

TEST_F(DbIntegration, BusTrafficGrowsWithPrefetchDepth)
{
    const Workload &w = set().workloads[0];
    const auto nl2 = runSimulation(
        w, SimConfig::withNL(LayoutKind::PettisHansen, 2));
    const auto nl4 = runSimulation(
        w, SimConfig::withNL(LayoutKind::PettisHansen, 4));
    EXPECT_GT(nl4.busLines, nl2.busLines);
}

} // namespace
} // namespace cgp
