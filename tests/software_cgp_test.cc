/**
 * @file
 * Tests for the software CGP variant (paper §6): the frozen,
 * profile-derived prefetch schedule.
 */

#include <gtest/gtest.h>

#include "codegen/layout.hh"
#include "prefetch/software_cgp.hh"

namespace cgp
{
namespace
{

struct SwFixture
{
    FunctionRegistry reg;
    FunctionId f, g, h, cold;
    CodeImage image;
    ExecutionProfile profile;

    SwFixture()
    {
        f = reg.declare("F", FunctionTraits::medium());
        g = reg.declare("G", FunctionTraits::small());
        h = reg.declare("H", FunctionTraits::small());
        cold = reg.declare("COLD", FunctionTraits::small());

        // Profile: F calls G often, H sometimes; COLD never calls.
        for (int i = 0; i < 100; ++i)
            profile.onCall(f, g);
        for (int i = 0; i < 40; ++i)
            profile.onCall(f, h);
        profile.onEntry(f);

        LayoutBuilder builder(reg);
        image = builder.buildOriginal();
    }

    CacheConfig
    l1iConfig() const
    {
        CacheConfig c;
        c.name = "l1i";
        c.sizeBytes = 32 * 1024;
        c.assoc = 2;
        c.lineBytes = 32;
        return c;
    }
};

TEST(SoftwareCgp, CoversOnlyProfiledCallers)
{
    SwFixture fx;
    Cache l1i(fx.l1iConfig(), nullptr, nullptr);
    SoftwareCgpPrefetcher sw(l1i, fx.reg, fx.image, fx.profile, 2);
    EXPECT_EQ(sw.coveredFunctions(), 1u); // only F makes calls
    EXPECT_STREQ(sw.name(), "software-cgp");
}

TEST(SoftwareCgp, EntryPrefetchesHeaviestCallee)
{
    SwFixture fx;
    Cache l1i(fx.l1iConfig(), nullptr, nullptr);
    SoftwareCgpPrefetcher sw(l1i, fx.reg, fx.image, fx.profile, 2);

    // Entering F prefetches G (the heaviest profiled callee).
    sw.onCall(fx.image.funcStart(fx.f), invalidAddr, 1);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 2u);
    l1i.tick(1000);
    EXPECT_TRUE(l1i.access(fx.image.funcStart(fx.g), 1000,
                           AccessSource::DemandFetch, false)
                    .hit);
}

TEST(SoftwareCgp, ReturnAdvancesTheStaticSchedule)
{
    SwFixture fx;
    Cache l1i(fx.l1iConfig(), nullptr, nullptr);
    SoftwareCgpPrefetcher sw(l1i, fx.reg, fx.image, fx.profile, 1);

    sw.onCall(fx.image.funcStart(fx.f), invalidAddr, 1); // -> G
    sw.onCall(fx.image.funcStart(fx.g),
              fx.image.funcStart(fx.f), 5);
    // Returning into F prefetches the next scheduled callee: H.
    sw.onReturn(fx.image.funcStart(fx.f),
                fx.image.funcStart(fx.g), 10);
    l1i.tick(1000);
    EXPECT_TRUE(l1i.access(fx.image.funcStart(fx.h), 1000,
                           AccessSource::DemandFetch, false)
                    .hit);

    // The schedule is exhausted after the last profiled callee.
    const auto before =
        l1i.prefetchesIssued(AccessSource::PrefetchCGHC);
    sw.onReturn(fx.image.funcStart(fx.f), fx.image.funcStart(fx.h),
                20);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC),
              before);
}

TEST(SoftwareCgp, CannotAdaptUnlikeHardware)
{
    // A function absent from the profile gets nothing, ever — the
    // key limitation vs the CGHC.
    SwFixture fx;
    Cache l1i(fx.l1iConfig(), nullptr, nullptr);
    SoftwareCgpPrefetcher sw(l1i, fx.reg, fx.image, fx.profile, 2);

    for (int i = 0; i < 10; ++i) {
        sw.onCall(fx.image.funcStart(fx.cold), invalidAddr, i * 10);
        sw.onCall(fx.image.funcStart(fx.g),
                  fx.image.funcStart(fx.cold), i * 10 + 5);
        sw.onReturn(fx.image.funcStart(fx.cold),
                    fx.image.funcStart(fx.g), i * 10 + 8);
    }
    // COLD repeatedly calls G at runtime, but the static table was
    // frozen without it.
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 0u);
}

TEST(SoftwareCgp, InvalidAddressesIgnored)
{
    SwFixture fx;
    Cache l1i(fx.l1iConfig(), nullptr, nullptr);
    SoftwareCgpPrefetcher sw(l1i, fx.reg, fx.image, fx.profile, 2);
    sw.onCall(invalidAddr, invalidAddr, 1);
    sw.onReturn(invalidAddr, invalidAddr, 2);
    EXPECT_EQ(l1i.prefetchesIssued(AccessSource::PrefetchCGHC), 0u);
}

} // namespace
} // namespace cgp
