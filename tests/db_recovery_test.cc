/**
 * @file
 * Crash-recovery tests: committed work survives a crash (buffer pool
 * discarded before flushing), uncommitted work does not, and redo is
 * idempotent on pages that did reach the volume.
 */

#include <gtest/gtest.h>

#include "db/heapfile.hh"
#include "db/recovery.hh"
#include "db/txn.hh"

namespace cgp::db
{
namespace
{

struct CrashFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx{reg, buf};
    Volume vol{ctx};
    LockManager locks{ctx};
    WriteAheadLog log{ctx};
    TransactionManager txns{ctx, locks, log};
    Schema schema{{{"id", ColumnType::Int32, 4},
                   {"payload", ColumnType::Char, 32}}};

    Tuple
    makeRow(std::int32_t id, const std::string &s)
    {
        Tuple t(&schema);
        t.setInt(0, id);
        t.setString(1, s);
        return t;
    }
};

TEST(Recovery, CommittedInsertsSurviveACrash)
{
    CrashFixture fx;
    std::vector<Rid> rids;
    {
        // Session before the crash: the pool dies without flushing.
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t = fx.txns.begin();
        for (int i = 0; i < 200; ++i)
            rids.push_back(file.createRec(t, fx.makeRow(i, "v")));
        fx.txns.commit(t);
        // CRASH: pool destroyed, dirty frames lost.
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 1u);
    EXPECT_EQ(stats.losers, 0u);
    EXPECT_EQ(stats.redone, 200u);

    HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                  &fx.schema);
    // Read the recovered records straight through the page layer.
    for (int i = 0; i < 200; ++i) {
        std::uint8_t *frame = pool.fix(rids[static_cast<std::size_t>(i)].page);
        SlottedPage page(frame);
        std::uint16_t len = 0;
        const auto *bytes =
            page.read(rids[static_cast<std::size_t>(i)].slot, &len);
        ASSERT_NE(bytes, nullptr) << "record " << i;
        const Tuple t(&fx.schema, bytes);
        EXPECT_EQ(t.getInt(0), i);
        pool.unfix(rids[static_cast<std::size_t>(i)].page, false);
    }
}

TEST(Recovery, UncommittedWorkIsNotReplayed)
{
    CrashFixture fx;
    Rid committed_rid, loser_rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId winner = fx.txns.begin();
        committed_rid = file.createRec(winner, fx.makeRow(1, "win"));
        fx.txns.commit(winner);

        const TxnId loser = fx.txns.begin();
        loser_rid = file.createRec(loser, fx.makeRow(2, "lose"));
        // No commit: crash.
        fx.txns.abort(loser);
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 1u);
    EXPECT_EQ(stats.losers, 1u);
    EXPECT_EQ(stats.redone, 1u);
    EXPECT_EQ(stats.skipped, 1u);

    std::uint8_t *frame = pool.fix(committed_rid.page);
    SlottedPage page(frame);
    ASSERT_NE(page.read(committed_rid.slot), nullptr);
    // The loser's slot was never replayed.
    EXPECT_EQ(page.read(loser_rid.slot), nullptr);
    pool.unfix(committed_rid.page, false);
}

TEST(Recovery, CommittedUpdatesWinOverStaleVolume)
{
    CrashFixture fx;
    Rid rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t1 = fx.txns.begin();
        rid = file.createRec(t1, fx.makeRow(7, "old"));
        fx.txns.commit(t1);
        pool.flushAll(); // the insert reaches the volume

        const TxnId t2 = fx.txns.begin();
        file.updateRec(t2, rid, fx.makeRow(7, "new"));
        fx.txns.commit(t2);
        // CRASH before the update is flushed.
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 2u);
    // Both the insert (idempotent overwrite) and update replay.
    EXPECT_EQ(stats.redone, 2u);

    std::uint8_t *frame = pool.fix(rid.page);
    SlottedPage page(frame);
    const Tuple t(&fx.schema, page.read(rid.slot));
    EXPECT_EQ(t.getString(1), "new");
    pool.unfix(rid.page, false);
}

TEST(Recovery, IdempotentWhenNothingWasLost)
{
    CrashFixture fx;
    Rid rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t = fx.txns.begin();
        rid = file.createRec(t, fx.makeRow(9, "safe"));
        fx.txns.commit(t);
        pool.flushAll(); // everything durable before the "crash"
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    recovery.recover(pool);
    recovery.recover(pool); // run twice: still consistent

    std::uint8_t *frame = pool.fix(rid.page);
    SlottedPage page(frame);
    ASSERT_NE(page.read(rid.slot), nullptr);
    const Tuple t(&fx.schema, page.read(rid.slot));
    EXPECT_EQ(t.getInt(0), 9);
    EXPECT_EQ(page.slotCount(), 1u); // no duplicate slot
    pool.unfix(rid.page, false);
}

} // namespace
} // namespace cgp::db
