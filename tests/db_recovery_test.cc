/**
 * @file
 * Crash-recovery tests: committed work survives a crash (buffer pool
 * discarded before flushing), uncommitted work does not, redo is
 * idempotent on pages that did reach the volume, and — via the
 * crash-loop harness — the committed-survives / losers-vanish
 * invariant holds when the engine is killed at every registered
 * crash point under every fault kind (seeded fuzz sweep).
 */

#include <gtest/gtest.h>

#include "db/crashloop.hh"
#include "db/heapfile.hh"
#include "db/recovery.hh"
#include "db/txn.hh"
#include "fault/fault.hh"

namespace cgp::db
{
namespace
{

struct CrashFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx{reg, buf};
    Volume vol{ctx};
    LockManager locks{ctx};
    WriteAheadLog log{ctx};
    TransactionManager txns{ctx, locks, log};
    Schema schema{{{"id", ColumnType::Int32, 4},
                   {"payload", ColumnType::Char, 32}}};

    Tuple
    makeRow(std::int32_t id, const std::string &s)
    {
        Tuple t(&schema);
        t.setInt(0, id);
        t.setString(1, s);
        return t;
    }
};

TEST(Recovery, CommittedInsertsSurviveACrash)
{
    CrashFixture fx;
    std::vector<Rid> rids;
    {
        // Session before the crash: the pool dies without flushing.
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t = fx.txns.begin();
        for (int i = 0; i < 200; ++i)
            rids.push_back(file.createRec(t, fx.makeRow(i, "v")));
        fx.txns.commit(t);
        // CRASH: pool destroyed, dirty frames lost.
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 1u);
    EXPECT_EQ(stats.losers, 0u);
    EXPECT_EQ(stats.redone, 200u);

    HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                  &fx.schema);
    // Read the recovered records straight through the page layer.
    for (int i = 0; i < 200; ++i) {
        std::uint8_t *frame = pool.fix(rids[static_cast<std::size_t>(i)].page);
        SlottedPage page(frame);
        std::uint16_t len = 0;
        const auto *bytes =
            page.read(rids[static_cast<std::size_t>(i)].slot, &len);
        ASSERT_NE(bytes, nullptr) << "record " << i;
        const Tuple t(&fx.schema, bytes);
        EXPECT_EQ(t.getInt(0), i);
        pool.unfix(rids[static_cast<std::size_t>(i)].page, false);
    }
}

TEST(Recovery, UncommittedWorkIsNotReplayed)
{
    CrashFixture fx;
    Rid committed_rid, loser_rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId winner = fx.txns.begin();
        committed_rid = file.createRec(winner, fx.makeRow(1, "win"));
        fx.txns.commit(winner);

        const TxnId loser = fx.txns.begin();
        loser_rid = file.createRec(loser, fx.makeRow(2, "lose"));
        // No commit: crash.
        fx.txns.abort(loser);
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 1u);
    EXPECT_EQ(stats.losers, 1u);
    // Repeating history: the winner's insert, the loser's insert and
    // the loser's Clr tombstone all replay.
    EXPECT_EQ(stats.redone, 3u);
    EXPECT_TRUE(stats.clean());

    std::uint8_t *frame = pool.fix(committed_rid.page);
    SlottedPage page(frame);
    ASSERT_NE(page.read(committed_rid.slot), nullptr);
    // The loser's slot replayed, then its Clr tombstoned it.
    EXPECT_EQ(page.read(loser_rid.slot), nullptr);
    pool.unfix(committed_rid.page, false);
}

TEST(Recovery, CommittedUpdatesWinOverStaleVolume)
{
    CrashFixture fx;
    Rid rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t1 = fx.txns.begin();
        rid = file.createRec(t1, fx.makeRow(7, "old"));
        fx.txns.commit(t1);
        pool.flushAll(); // the insert reaches the volume

        const TxnId t2 = fx.txns.begin();
        file.updateRec(t2, rid, fx.makeRow(7, "new"));
        fx.txns.commit(t2);
        // CRASH before the update is flushed.
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    const auto stats = recovery.recover(pool);
    EXPECT_EQ(stats.winners, 2u);
    // Both the insert (idempotent overwrite) and update replay.
    EXPECT_EQ(stats.redone, 2u);

    std::uint8_t *frame = pool.fix(rid.page);
    SlottedPage page(frame);
    const Tuple t(&fx.schema, page.read(rid.slot));
    EXPECT_EQ(t.getString(1), "new");
    pool.unfix(rid.page, false);
}

TEST(Recovery, IdempotentWhenNothingWasLost)
{
    CrashFixture fx;
    Rid rid;
    {
        BufferPool pool(fx.ctx, fx.vol, 64);
        HeapFile file(fx.ctx, pool, fx.vol, fx.locks, fx.log,
                      &fx.schema);
        const TxnId t = fx.txns.begin();
        rid = file.createRec(t, fx.makeRow(9, "safe"));
        fx.txns.commit(t);
        pool.flushAll(); // everything durable before the "crash"
    }

    BufferPool pool(fx.ctx, fx.vol, 64);
    RecoveryManager recovery(fx.ctx, fx.vol, fx.log);
    recovery.recover(pool);
    recovery.recover(pool); // run twice: still consistent

    std::uint8_t *frame = pool.fix(rid.page);
    SlottedPage page(frame);
    ASSERT_NE(page.read(rid.slot), nullptr);
    const Tuple t(&fx.schema, page.read(rid.slot));
    EXPECT_EQ(t.getInt(0), 9);
    EXPECT_EQ(page.slotCount(), 1u); // no duplicate slot
    pool.unfix(rid.page, false);
}

// ---------------------------------------------------------------
// Crash-loop: kill the engine at a crash point, recover, audit.

/** Crash points the database workload actually reaches. */
const std::vector<std::string> &
dbCrashPoints()
{
    static const std::vector<std::string> points = {
        "wal.pre_force", "wal.mid_force", "pool.flush",
        "pool.evict",    "volume.read",   "volume.write",
    };
    return points;
}

TEST(CrashLoop, CleanRunCommitsEverythingItPromised)
{
    CrashLoopHarness harness;
    // Armed but unreachable: the workload runs to completion.
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::Crash;
    spec.afterHits = ~0ull >> 1;
    const auto res = harness.run("pool.evict", spec);
    EXPECT_FALSE(res.crashed);
    EXPECT_TRUE(res.ok()) << "missing=" << res.missingCommitted
                          << " surviving=" << res.survivingAborted;
    EXPECT_GT(res.committedRows, 0u);
    EXPECT_EQ(res.verifiedRows, res.committedRows);
    EXPECT_EQ(res.stats.corruptRecords, 0u);
}

TEST(CrashLoop, EveryRegisteredPointIsKnown)
{
    for (const auto &p : dbCrashPoints())
        EXPECT_TRUE(fault::FaultInjector::isRegistered(p)) << p;
}

TEST(CrashLoop, CrashAtEveryPointPreservesCommittedData)
{
    for (const auto &point : dbCrashPoints()) {
        for (const std::uint64_t after : {0ull, 5ull, 23ull}) {
            CrashLoopHarness harness;
            fault::FaultSpec spec;
            spec.kind = fault::FaultKind::Crash;
            spec.afterHits = after;
            const auto res = harness.run(point, spec);
            EXPECT_TRUE(res.ok())
                << point << " after=" << after
                << " crashed=" << res.crashed
                << " missing=" << res.missingCommitted
                << " surviving=" << res.survivingAborted;
            // The audit must have had something real to check.
            EXPECT_EQ(res.verifiedRows, res.committedRows) << point;
        }
    }
}

TEST(CrashLoop, FuzzSweepPointsTimesKindsTimesSeeds)
{
    using fault::FaultKind;
    const FaultKind kinds[] = {
        FaultKind::Crash,
        FaultKind::TornWrite,
        FaultKind::PartialForce,
        FaultKind::TransientIo,
    };
    Rng rng(0xf022ull);
    unsigned crashes = 0;
    for (const auto &point : dbCrashPoints()) {
        for (const FaultKind kind : kinds) {
            for (unsigned round = 0; round < 3; ++round) {
                CrashLoopConfig cfg;
                cfg.seed = rng.next();
                CrashLoopHarness harness(cfg);
                fault::FaultSpec spec;
                spec.kind = kind;
                spec.afterHits = rng.nextBelow(40);
                // Transient errors sometimes persist past the
                // retry budget (the I/O-gave-up path).
                spec.count = kind == FaultKind::TransientIo
                    ? 1 + static_cast<std::uint32_t>(rng.nextBelow(8))
                    : 1;
                const auto res = harness.run(point, spec);
                crashes += res.crashed ? 1 : 0;
                EXPECT_TRUE(res.ok())
                    << point << " kind="
                    << fault::toString(kind)
                    << " seed=" << cfg.seed
                    << " after=" << spec.afterHits
                    << " count=" << spec.count
                    << " missing=" << res.missingCommitted
                    << " surviving=" << res.survivingAborted
                    << " corrupt=" << res.stats.corruptRecords;
                EXPECT_EQ(res.verifiedRows, res.committedRows);
            }
        }
    }
    // The sweep is pointless if nothing ever actually crashed.
    EXPECT_GT(crashes, 10u);
}

} // namespace
} // namespace cgp::db
