/**
 * @file
 * Statistical validation of sampled simulation (src/sample): the
 * estimator math, accuracy of sampled estimates against full-detail
 * ground truth across several workload seeds/phases, determinism
 * across engine thread counts, the deliberately-unwarmed
 * perturbation self-check, the >= 5x cycle-loop speedup bar, and
 * warm-state checkpoints — in-memory round trip, identity-mismatch
 * re-warming, the sealed run-dir store, and corruption quarantine.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hh"
#include "exp/engine.hh"
#include "harness/report.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"
#include "sample/checkpoint.hh"
#include "sample/estimator.hh"

namespace cgp
{
namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------

/** A deterministic SPEC-proxy workload; the parameters select the
 *  phase structure, so varying them is the suite's "seed" axis. */
Workload
proxyWorkload(const std::string &name, unsigned functions,
              double workPerCall, std::uint64_t instrs)
{
    spec::SpecProgramSpec s;
    s.name = name;
    s.functions = functions;
    s.hotFunctions = functions / 2;
    s.workPerCall = workPerCall;
    s.trainInstrs = instrs;
    s.testInstrs = instrs / 4;
    return WorkloadFactory::buildSpec(s, 1.0);
}

double
truthCpi(const SimResult &r)
{
    return r.instrs == 0 ? 0.0
                         : static_cast<double>(r.cycles)
            / static_cast<double>(r.instrs);
}

double
truthL1i(const SimResult &r)
{
    return r.icacheAccesses == 0
        ? 0.0
        : static_cast<double>(r.icacheMisses)
            / static_cast<double>(r.icacheAccesses);
}

double
truthL1d(const SimResult &r)
{
    return r.dcacheAccesses == 0
        ? 0.0
        : static_cast<double>(r.dcacheMisses)
            / static_cast<double>(r.dcacheAccesses);
}

/** 5% relative-error ceiling, with an absolute floor for rates so
 *  close to zero that 5% of them is below measurement granularity. */
::testing::AssertionResult
within5Percent(double estimate, double truth)
{
    const double abs_err = std::abs(estimate - truth);
    const double rel =
        truth == 0.0 ? 0.0 : abs_err / std::abs(truth);
    if (rel <= 0.05 || abs_err <= 0.005)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << "estimate " << estimate << " vs truth " << truth
        << " (rel err " << rel * 100.0 << "%)";
}

/** CI containment with an absolute floor: for rates near zero a
 *  single miss inside one window already moves the per-window
 *  observation by more than the rate being measured, so the
 *  interval degenerates and containment is only demanded up to
 *  that one-miss granularity. */
::testing::AssertionResult
containsOrNegligible(const sample::SampledEstimate &e, double truth)
{
    if (e.contains(truth) || std::abs(e.mean - truth) <= 0.005)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
        << "truth " << truth << " outside [" << e.ciLow << ", "
        << e.ciHigh << "] (mean " << e.mean << ")";
}

/** Normalize the fields that legitimately differ between a
 *  fresh-warmed and a checkpoint-restored run before demanding
 *  byte identity. */
std::string
dumpNormalized(SimResult r)
{
    r.sampled.checkpointUsed = false;
    r.sampled.checkpointSaved = false;
    return toJson(r).dump(2);
}

/** In-memory checkpoint store for hook-level tests. */
struct MemStore
{
    std::map<std::string, Json> docs;
    std::vector<std::string> loads;

    sample::CheckpointHooks
    hooks()
    {
        sample::CheckpointHooks h;
        h.load =
            [this](const std::string &key) -> std::optional<Json> {
            loads.push_back(key);
            const auto it = docs.find(key);
            if (it == docs.end())
                return std::nullopt;
            return it->second;
        };
        h.save = [this](const std::string &key, Json &&doc) {
            docs.emplace(key, std::move(doc));
        };
        return h;
    }
};

std::string
freshDir(const std::string &tag)
{
    const fs::path dir =
        fs::temp_directory_path() / ("cgp-sample-test-" + tag);
    fs::remove_all(dir);
    return dir.string();
}

// ---------------------------------------------------------------
// Estimator math
// ---------------------------------------------------------------

TEST(SampleEstimator, NearestRankPercentileIsTotal)
{
    using sample::nearestRankPercentile;
    EXPECT_EQ(nearestRankPercentile({}, 50.0), 0.0);
    EXPECT_EQ(nearestRankPercentile({7.0}, 2.5), 7.0);
    EXPECT_EQ(nearestRankPercentile({7.0}, 97.5), 7.0);

    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    EXPECT_EQ(nearestRankPercentile(v, 0.0), 1.0);
    EXPECT_EQ(nearestRankPercentile(v, 100.0), 4.0);
    EXPECT_EQ(nearestRankPercentile(v, 50.0), 2.0);
    // Out-of-range and non-finite q never reach the float-to-int
    // cast: clamped / defaulted to the median.
    EXPECT_EQ(nearestRankPercentile(v, -10.0), 1.0);
    EXPECT_EQ(nearestRankPercentile(v, 400.0), 4.0);
    EXPECT_EQ(nearestRankPercentile(v, std::nan("")), 2.0);
}

TEST(SampleEstimator, MeanSemAndBandFollowTheFormulas)
{
    sample::WindowEstimator e;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        e.add(x);
    const sample::SampledEstimate est = e.estimate();
    ASSERT_EQ(est.samples, 8u);
    EXPECT_DOUBLE_EQ(est.mean, 5.0);
    // Sample variance (n-1) = 32/7; SEM = sqrt(var/8).
    EXPECT_NEAR(est.sem, std::sqrt(32.0 / 7.0 / 8.0), 1e-12);
    // The band is the union of the normal interval and the
    // percentile envelope, so it covers both.
    EXPECT_LE(est.ciLow, 5.0 - 1.96 * est.sem);
    EXPECT_GE(est.ciHigh, 5.0 + 1.96 * est.sem);
    EXPECT_LE(est.ciLow, 2.0);
    EXPECT_GE(est.ciHigh, 9.0);
    EXPECT_TRUE(est.contains(5.0));
    EXPECT_FALSE(est.contains(est.ciHigh + 1.0));
}

TEST(SampleEstimator, EmptyEstimateContainsNothing)
{
    const sample::SampledEstimate est =
        sample::WindowEstimator{}.estimate();
    EXPECT_EQ(est.samples, 0u);
    EXPECT_FALSE(est.contains(0.0));
}

TEST(SampleCheckpoint, KeySeparatesEveryIdentityComponent)
{
    using sample::checkpointKey;
    const std::string base = checkpointKey("w", "cfg", 1000);
    EXPECT_EQ(base, checkpointKey("w", "cfg", 1000));
    EXPECT_NE(base, checkpointKey("w2", "cfg", 1000));
    EXPECT_NE(base, checkpointKey("w", "cfg2", 1000));
    EXPECT_NE(base, checkpointKey("w", "cfg", 1001));
}

// ---------------------------------------------------------------
// Accuracy vs full-detail ground truth
// ---------------------------------------------------------------

struct AccuracyCase
{
    const char *name;
    unsigned functions;
    double workPerCall;
};

TEST(SampledAccuracy, EstimatesMatchFullDetailAcrossSeeds)
{
    // Five distinct phase structures (the "seed" axis): different
    // call-graph sizes and per-call work lengths change both the
    // I-cache working set and the CPI profile.
    const AccuracyCase cases[] = {
        {"acc-a", 40, 45.0}, {"acc-b", 60, 60.0},
        {"acc-c", 80, 80.0}, {"acc-d", 100, 55.0},
        {"acc-e", 50, 100.0},
    };
    for (const AccuracyCase &c : cases) {
        SCOPED_TRACE(c.name);
        // Long enough that the cold-start transient — which the
        // full-detail truth includes but sampling deliberately
        // warms past — is a negligible share of the run.  The
        // period is co-prime with the proxies' phase structure so
        // systematic sampling does not alias onto it.
        const Workload w =
            proxyWorkload(c.name, c.functions, c.workPerCall,
                          4'000'000);
        const SimConfig base = SimConfig::o5Om();
        const SimResult full = runSimulation(w, base);
        const SimResult smp = runSimulation(
            w, SimConfig::withSampling(base, 2500, 11311, 30'000));

        ASSERT_TRUE(smp.sampledEnabled);
        ASSERT_FALSE(full.sampledEnabled);
        ASSERT_GE(smp.sampled.windows, 5u);

        EXPECT_TRUE(smp.sampled.cpi.contains(truthCpi(full)));
        EXPECT_TRUE(
            smp.sampled.l1iMissRate.contains(truthL1i(full)));
        EXPECT_TRUE(containsOrNegligible(smp.sampled.l1dMissRate,
                                         truthL1d(full)));
        EXPECT_TRUE(
            within5Percent(smp.sampled.cpi.mean, truthCpi(full)));
        EXPECT_TRUE(within5Percent(smp.sampled.l1iMissRate.mean,
                                   truthL1i(full)));
        EXPECT_TRUE(within5Percent(smp.sampled.l1dMissRate.mean,
                                   truthL1d(full)));
    }
}

TEST(SampledAccuracy, HoldsUnderThePrefetchingConfiguration)
{
    const Workload w =
        proxyWorkload("acc-cgp", 60, 60.0, 2'000'000);
    const SimConfig base =
        SimConfig::withCgp(LayoutKind::PettisHansen, 4);
    const SimResult full = runSimulation(w, base);
    const SimResult smp = runSimulation(
        w, SimConfig::withSampling(base, 2500, 11311, 30'000));
    ASSERT_TRUE(smp.sampledEnabled);
    EXPECT_TRUE(smp.sampled.cpi.contains(truthCpi(full)));
    EXPECT_TRUE(smp.sampled.l1iMissRate.contains(truthL1i(full)));
    EXPECT_TRUE(
        within5Percent(smp.sampled.cpi.mean, truthCpi(full)));
}

TEST(SampledSpeedup, CycleLoopShrinksAtLeast5x)
{
    // The acceptance bar: at a 1:20 window/period ratio the
    // detailed cycle loop must run >= 5x less than full detail
    // while the ground truth stays inside every 95% CI.
    const Workload w =
        proxyWorkload("speed", 70, 70.0, 2'000'000);
    const SimConfig base = SimConfig::o5Om();
    const SimResult full = runSimulation(w, base);
    const SimResult smp = runSimulation(
        w, SimConfig::withSampling(base, 2500, 50'000, 30'000));

    ASSERT_TRUE(smp.sampledEnabled);
    ASSERT_GT(smp.sampled.detailedCycles, 0u);
    const double speedup = static_cast<double>(full.cycles) /
        static_cast<double>(smp.sampled.detailedCycles);
    EXPECT_GE(speedup, 5.0) << "detailed cycles "
                            << smp.sampled.detailedCycles << " of "
                            << full.cycles;
    EXPECT_TRUE(smp.sampled.cpi.contains(truthCpi(full)));
    EXPECT_TRUE(smp.sampled.l1iMissRate.contains(truthL1i(full)));
    EXPECT_TRUE(containsOrNegligible(smp.sampled.l1dMissRate,
                                     truthL1d(full)));
}

// ---------------------------------------------------------------
// Determinism and the disabled path
// ---------------------------------------------------------------

TEST(SampledDeterminism, ByteIdenticalAcrossThreadCounts)
{
    const std::vector<Workload> workloads = {
        proxyWorkload("det-a", 40, 50.0, 150'000),
        proxyWorkload("det-b", 60, 70.0, 150'000),
    };
    exp::CampaignSpec spec;
    spec.name = "sample-det";
    spec.title = "determinism";
    for (const Workload &w : workloads)
        spec.workloads.push_back(w.name);
    spec.explicitConfigs = {
        SimConfig::withSampling(SimConfig::o5Om(), 2000, 10'000,
                                15'000),
        SimConfig::withSampling(
            SimConfig::withCgp(LayoutKind::PettisHansen, 4), 2000,
            10'000, 15'000),
    };

    const auto runAt = [&](unsigned threads) {
        exp::InMemoryProvider provider(workloads);
        exp::EngineOptions opt;
        opt.threads = threads;
        opt.verbose = false;
        return exp::runCampaign(spec, provider, opt);
    };
    const exp::CampaignRun one = runAt(1);
    const exp::CampaignRun four = runAt(4);
    ASSERT_EQ(one.results.size(), four.results.size());
    for (std::size_t i = 0; i < one.results.size(); ++i) {
        ASSERT_TRUE(one.results[i].sampledEnabled);
        EXPECT_EQ(toJson(one.results[i]).dump(2),
                  toJson(four.results[i]).dump(2));
    }
}

TEST(SampledDisabled, LegacyResultsCarryNoSampledBlock)
{
    const Workload w = proxyWorkload("legacy", 40, 50.0, 100'000);
    const SimResult r = runSimulation(w, SimConfig::o5Om());
    EXPECT_FALSE(r.sampledEnabled);
    const std::string dump = toJson(r).dump(2);
    EXPECT_EQ(dump.find("\"sampled\""), std::string::npos);
    // Serialization round trip preserves the absence.
    EXPECT_FALSE(simResultFromJson(toJson(r)).sampledEnabled);
}

// ---------------------------------------------------------------
// Perturbation self-check
// ---------------------------------------------------------------

TEST(SampledPerturbation, UnwarmedRunFallsOutsideTheCI)
{
    // With functional warming off, fast-forward advances the trace
    // without touching the caches: every window starts against
    // stale state.  The workload's 400-function instruction
    // footprint exceeds the L1-I, so staleness is real damage (a
    // resident working set would make stale state still-correct
    // state), and tiny windows with long gaps never amortize it —
    // the CI claim is only meaningful if this deliberately broken
    // configuration lands *outside* the band.
    const Workload w =
        proxyWorkload("perturb", 400, 30.0, 2'000'000);
    const SimConfig base = SimConfig::o5Om();
    const SimResult full = runSimulation(w, base);

    SimConfig cold =
        SimConfig::withSampling(base, 1000, 25'000, 30'000);
    cold.sample.functionalWarming = false;
    const SimResult smp = runSimulation(w, cold);

    ASSERT_TRUE(smp.sampledEnabled);
    ASSERT_GE(smp.sampled.windows, 5u);
    EXPECT_GT(smp.sampled.cpi.mean, 2.0 * truthCpi(full));
    EXPECT_FALSE(smp.sampled.cpi.contains(truthCpi(full)));
    EXPECT_GT(smp.sampled.l1iMissRate.mean, truthL1i(full));

    // The properly warmed configuration at the same geometry keeps
    // the truth inside its band — the check discriminates.
    const SimResult warm = runSimulation(
        w, SimConfig::withSampling(base, 1000, 25'000, 30'000));
    EXPECT_TRUE(warm.sampled.cpi.contains(truthCpi(full)));
}

// ---------------------------------------------------------------
// Checkpoints: round trip, identity, sealed store, corruption
// ---------------------------------------------------------------

SimConfig
sampledConfig(SimConfig base)
{
    return SimConfig::withSampling(std::move(base), 2500, 12'500,
                                   40'000);
}

TEST(SampleCheckpointRoundTrip, RestoredRunContinuesByteIdentical)
{
    // Every serialized structure is on in at least one of these:
    // o5 (caches + branch + core), CGP_4 (CGHC), I+D combined
    // (stride + correlation + semantic + arbiter).
    const std::vector<SimConfig> configs = {
        SimConfig::o5(),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4),
        SimConfig::withIPlusD(DataPrefetchKind::Combined, true),
    };
    const Workload w = proxyWorkload("ckpt", 60, 60.0, 300'000);
    for (const SimConfig &base : configs) {
        SCOPED_TRACE(base.describe());
        MemStore store;

        SimConfig first = sampledConfig(base);
        first.sample.checkpoints = store.hooks();
        const SimResult warmed = runSimulation(w, first);
        ASSERT_TRUE(warmed.sampled.checkpointSaved);
        ASSERT_FALSE(warmed.sampled.checkpointUsed);
        ASSERT_EQ(store.docs.size(), 1u);

        SimConfig second = sampledConfig(base);
        second.sample.checkpoints = store.hooks();
        const SimResult restored = runSimulation(w, second);
        ASSERT_TRUE(restored.sampled.checkpointUsed);
        EXPECT_FALSE(restored.sampled.checkpointSaved);

        EXPECT_EQ(dumpNormalized(warmed), dumpNormalized(restored));
    }
}

TEST(SampleCheckpointRoundTrip, MismatchedIdentityTriggersRewarm)
{
    const Workload w = proxyWorkload("ckpt-id", 60, 60.0, 200'000);
    const Workload other =
        proxyWorkload("ckpt-id2", 60, 60.0, 200'000);

    // Capture a checkpoint for `other`, then serve it for *every*
    // key: applyCheckpoint must reject it on the metadata check
    // (before mutating anything) and the run re-warms from scratch.
    MemStore store;
    SimConfig cfg = sampledConfig(SimConfig::o5Om());
    cfg.sample.checkpoints = store.hooks();
    runSimulation(other, cfg);
    ASSERT_EQ(store.docs.size(), 1u);
    const Json alien = store.docs.begin()->second;

    SimConfig plain = sampledConfig(SimConfig::o5Om());
    const SimResult fresh = runSimulation(w, plain);

    SimConfig poisoned = sampledConfig(SimConfig::o5Om());
    poisoned.sample.checkpoints.load =
        [&alien](const std::string &) -> std::optional<Json> {
        return alien;
    };
    const SimResult rewarmed = runSimulation(w, poisoned);
    EXPECT_FALSE(rewarmed.sampled.checkpointUsed);
    EXPECT_EQ(dumpNormalized(fresh), dumpNormalized(rewarmed));
}

TEST(SampleCheckpointStore, SealedStoreRoundTripsOnDisk)
{
    const std::string dir = freshDir("store");
    const Workload w = proxyWorkload("store", 50, 55.0, 200'000);

    SimConfig first = sampledConfig(SimConfig::o5Om());
    first.sample.checkpoints = exp::makeSealedCheckpointStore(dir);
    const SimResult warmed = runSimulation(w, first);
    ASSERT_TRUE(warmed.sampled.checkpointSaved);

    const fs::path store = exp::checkpointStoreDir(dir);
    ASSERT_TRUE(fs::is_directory(store));
    std::size_t files = 0;
    for (const auto &e : fs::directory_iterator(store)) {
        if (e.is_regular_file())
            ++files;
    }
    EXPECT_EQ(files, 1u);

    SimConfig second = sampledConfig(SimConfig::o5Om());
    second.sample.checkpoints = exp::makeSealedCheckpointStore(dir);
    const SimResult restored = runSimulation(w, second);
    EXPECT_TRUE(restored.sampled.checkpointUsed);
    EXPECT_EQ(dumpNormalized(warmed), dumpNormalized(restored));
    fs::remove_all(dir);
}

TEST(SampleCheckpointStore, CorruptArtifactsAreQuarantined)
{
    const std::string dir = freshDir("corrupt");
    const Workload w = proxyWorkload("corrupt", 50, 55.0, 200'000);

    SimConfig cfg = sampledConfig(SimConfig::o5Om());
    cfg.sample.checkpoints = exp::makeSealedCheckpointStore(dir);
    const SimResult warmed = runSimulation(w, cfg);
    ASSERT_TRUE(warmed.sampled.checkpointSaved);

    const fs::path store = exp::checkpointStoreDir(dir);
    fs::path artifact;
    for (const auto &e : fs::directory_iterator(store)) {
        if (e.is_regular_file())
            artifact = e.path();
    }
    ASSERT_FALSE(artifact.empty());

    const auto rerun = [&] {
        SimConfig c = sampledConfig(SimConfig::o5Om());
        c.sample.checkpoints = exp::makeSealedCheckpointStore(dir);
        return runSimulation(w, c);
    };
    const auto quarantined = [&] {
        std::size_t n = 0;
        const fs::path q = store / "quarantine";
        if (fs::is_directory(q)) {
            for (const auto &e : fs::directory_iterator(q))
                (void)e, ++n;
        }
        return n;
    };

    // Bit flip: the seal fails, the artifact is moved aside (never
    // deleted) and the run transparently re-warms — byte-identical
    // to the original fresh-warm run.
    {
        std::fstream f(artifact,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        f.seekp(200);
        char c = 0;
        f.seekg(200);
        f.get(c);
        f.seekp(200);
        f.put(c == 'x' ? 'y' : 'x');
    }
    const SimResult after_flip = rerun();
    EXPECT_FALSE(after_flip.sampled.checkpointUsed);
    EXPECT_TRUE(after_flip.sampled.checkpointSaved); // re-saved
    EXPECT_EQ(dumpNormalized(warmed), dumpNormalized(after_flip));
    EXPECT_EQ(quarantined(), 1u);

    // Truncation: unparsable JSON takes the other quarantine path.
    {
        std::ifstream in(artifact, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        const std::string text = os.str();
        ASSERT_GT(text.size(), 64u);
        std::ofstream out(artifact,
                          std::ios::binary | std::ios::trunc);
        out << text.substr(0, text.size() / 2);
    }
    const SimResult after_trunc = rerun();
    EXPECT_FALSE(after_trunc.sampled.checkpointUsed);
    EXPECT_EQ(dumpNormalized(warmed), dumpNormalized(after_trunc));
    EXPECT_EQ(quarantined(), 2u);
    fs::remove_all(dir);
}

} // anonymous namespace
} // namespace cgp
