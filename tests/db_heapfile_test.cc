/**
 * @file
 * Heap file tests: Create_rec / getRec / updateRec round trips and
 * scan completeness across page boundaries.
 */

#include <gtest/gtest.h>

#include <set>

#include "db/heapfile.hh"

namespace cgp::db
{
namespace
{

struct HeapFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx{reg, buf};
    Volume vol{ctx};
    BufferPool pool{ctx, vol, 256};
    LockManager locks{ctx};
    WriteAheadLog log{ctx};
    Schema schema{{{"id", ColumnType::Int32, 4},
                   {"payload", ColumnType::Char, 64}}};
    HeapFile file{ctx, pool, vol, locks, log, &schema};
    TxnId txn = 1;

    Tuple
    makeRow(std::int32_t id)
    {
        Tuple t(&schema);
        t.setInt(0, id);
        t.setString(1, "row" + std::to_string(id));
        return t;
    }
};

TEST(HeapFile, CreateAndGetRoundTrip)
{
    HeapFixture fx;
    const Rid rid = fx.file.createRec(fx.txn, fx.makeRow(42));
    ASSERT_TRUE(rid.valid());
    const Tuple t = fx.file.getRec(fx.txn, rid);
    EXPECT_EQ(t.getInt(0), 42);
    EXPECT_EQ(t.getString(1), "row42");
    EXPECT_EQ(fx.file.recordCount(), 1u);
}

TEST(HeapFile, UpdateInPlace)
{
    HeapFixture fx;
    const Rid rid = fx.file.createRec(fx.txn, fx.makeRow(1));
    Tuple t = fx.makeRow(1);
    t.setString(1, "updated");
    fx.file.updateRec(fx.txn, rid, t);
    EXPECT_EQ(fx.file.getRec(fx.txn, rid).getString(1), "updated");
}

TEST(HeapFile, SpillsAcrossPages)
{
    HeapFixture fx;
    // 68-byte records: ~113 per 8KB page; insert 500 -> 5 pages.
    for (int i = 0; i < 500; ++i)
        fx.file.createRec(fx.txn, fx.makeRow(i));
    EXPECT_GE(fx.file.pageCount(), 4u);
    EXPECT_EQ(fx.file.recordCount(), 500u);
}

TEST(HeapFile, ScanSeesEveryRecordOnce)
{
    HeapFixture fx;
    const int n = 400;
    for (int i = 0; i < n; ++i)
        fx.file.createRec(fx.txn, fx.makeRow(i));

    HeapFile::Scan scan(fx.file, fx.txn);
    std::set<std::int32_t> seen;
    Tuple t;
    Rid rid;
    while (scan.next(t, &rid)) {
        EXPECT_TRUE(rid.valid());
        EXPECT_TRUE(seen.insert(t.getInt(0)).second)
            << "duplicate id " << t.getInt(0);
    }
    scan.close();
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST(HeapFile, ScanRidsResolveViaGetRec)
{
    HeapFixture fx;
    for (int i = 0; i < 50; ++i)
        fx.file.createRec(fx.txn, fx.makeRow(i));
    HeapFile::Scan scan(fx.file, fx.txn);
    Tuple t;
    Rid rid;
    while (scan.next(t, &rid)) {
        const Tuple u = fx.file.getRec(fx.txn, rid);
        EXPECT_EQ(u.getInt(0), t.getInt(0));
    }
    scan.close();
}

TEST(HeapFile, EarlyScanCloseUnpins)
{
    HeapFixture fx;
    for (int i = 0; i < 300; ++i)
        fx.file.createRec(fx.txn, fx.makeRow(i));
    {
        HeapFile::Scan scan(fx.file, fx.txn);
        Tuple t;
        scan.next(t);
        // Destructor closes with a page fixed.
    }
    for (std::size_t p = 0; p < fx.file.pageCount(); ++p)
        EXPECT_EQ(fx.pool.pinCount(fx.file.pageAt(p)), 0u);
    EXPECT_EQ(fx.locks.lockCount(fx.txn), 0u);
}

TEST(HeapFile, LogsEveryInsert)
{
    HeapFixture fx;
    const auto before = fx.log.records().size();
    fx.file.createRec(fx.txn, fx.makeRow(1));
    fx.file.createRec(fx.txn, fx.makeRow(2));
    EXPECT_EQ(fx.log.records().size(), before + 2);
    EXPECT_EQ(fx.log.records().back().type, LogRecordType::Insert);
}

} // namespace
} // namespace cgp::db
