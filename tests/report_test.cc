/**
 * @file
 * Tests for the report writers: both forms render the key numbers
 * and refuse mismatched comparisons.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "harness/report.hh"
#include "util/logging.hh"

namespace cgp
{
namespace
{

SimResult
sample(const char *config, Cycle cycles)
{
    SimResult r;
    r.workload = "w";
    r.config = config;
    r.cycles = cycles;
    r.instrs = 1000;
    r.icacheAccesses = 400;
    r.icacheMisses = 40;
    r.nl.issued = 90;
    r.nl.prefHits = 50;
    r.nl.delayedHits = 10;
    r.nl.useless = 30;
    r.cghc.issued = 10;
    r.cghc.prefHits = 8;
    r.cghc.useless = 2;
    r.cghcAccesses = 100;
    r.cghcHits = 80;
    r.busLines = 123;
    return r;
}

TEST(Report, SingleRunContainsKeyMetrics)
{
    std::ostringstream os;
    writeReport(sample("O5+OM+CGP_4", 2000), os);
    const std::string out = os.str();
    EXPECT_NE(out.find("O5+OM+CGP_4"), std::string::npos);
    EXPECT_NE(out.find("2,000"), std::string::npos);
    EXPECT_NE(out.find("I-cache misses"), std::string::npos);
    EXPECT_NE(out.find("prefetches issued"), std::string::npos);
    EXPECT_NE(out.find("CGHC hit rate"), std::string::npos);
}

TEST(Report, ComparisonNormalizesToFirst)
{
    std::ostringstream os;
    writeComparison({sample("A", 1000), sample("B", 500)}, os);
    const std::string out = os.str();
    EXPECT_NE(out.find("1.000"), std::string::npos);
    EXPECT_NE(out.find("0.500"), std::string::npos);
}

TEST(Report, SimResultJsonRoundTrip)
{
    SimResult r = sample("O5+OM+CGP_4", 2000);
    r.dcacheMisses = 11;
    r.l2Misses = 7;
    r.squashedPrefetches = 3;
    r.branchMispredicts = 21;
    r.prefetchDegraded = true;
    r.degradedReason = "cghc pressure";
    r.instrsPerCall = 43.25;

    const Json j = toJson(r);
    const SimResult back = simResultFromJson(j);
    EXPECT_EQ(back, r);

    // Through text too: serialize, parse, reconstruct.
    const SimResult back2 =
        simResultFromJson(Json::parse(j.dump(2)));
    EXPECT_EQ(back2, r);
}

TEST(Report, SimResultJsonCarriesBothPrefetchSources)
{
    const Json j = toJson(sample("X", 10));
    EXPECT_EQ(j.at("nl").at("issued").asUint(), 90u);
    EXPECT_EQ(j.at("cghc").at("pref_hits").asUint(), 8u);
    EXPECT_EQ(j.at("workload").asString(), "w");
}

TEST(Report, SimResultFromJsonRejectsMissingFields)
{
    Json j = toJson(sample("X", 10));
    Json stripped = Json::object();
    stripped.set("workload", j.at("workload"));
    EXPECT_THROW(simResultFromJson(stripped), std::runtime_error);
}

TEST(Report, ComparisonRejectsMixedWorkloads)
{
    detail::setThrowOnError(true);
    SimResult a = sample("A", 100);
    SimResult b = sample("B", 100);
    b.workload = "other";
    EXPECT_THROW(
        {
            std::ostringstream os;
            writeComparison({a, b}, os);
        },
        std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace cgp
