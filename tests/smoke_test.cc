/**
 * @file
 * End-to-end smoke test: build a tiny DB workload, run it through
 * the simulator under O5 and OM+CGP, and check basic sanity.
 */

#include <gtest/gtest.h>

#include "harness/simulator.hh"
#include "harness/workload.hh"

namespace cgp
{
namespace
{

TEST(Smoke, SpecWorkloadRuns)
{
    spec::SpecProgramSpec spec;
    spec.name = "smoke";
    spec.functions = 20;
    spec.hotFunctions = 10;
    spec.workPerCall = 50.0;
    spec.trainInstrs = 50'000;
    spec.testInstrs = 10'000;

    Workload w = WorkloadFactory::buildSpec(spec);
    ASSERT_NE(w.trace, nullptr);
    EXPECT_GT(w.trace->size(), 100u);

    const SimResult o5 = runSimulation(w, SimConfig::o5());
    EXPECT_GT(o5.instrs, 40'000u);
    EXPECT_GT(o5.cycles, 0u);

    const SimResult cgp = runSimulation(
        w, SimConfig::withCgp(LayoutKind::PettisHansen, 4));
    EXPECT_GT(cgp.instrs, 30'000u);
    EXPECT_GT(cgp.cghcAccesses, 0u);
}

} // namespace
} // namespace cgp
