/**
 * @file
 * Tests for the SPEC CPU2000 proxy generators.
 */

#include <gtest/gtest.h>

#include "spec/cpu2000.hh"

namespace cgp::spec
{
namespace
{

TEST(Cpu2000Suite, HasThePaperSevenInOrder)
{
    const auto suite = cpu2000Suite();
    ASSERT_EQ(suite.size(), 7u);
    const char *expected[] = {"gzip", "gcc",  "crafty", "parser",
                              "gap",  "bzip2", "twolf"};
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Cpu2000Suite, GccHasTheLargestHotSet)
{
    const auto suite = cpu2000Suite();
    unsigned gcc_hot = 0;
    for (const auto &s : suite) {
        if (s.name == "gcc")
            gcc_hot = s.hotFunctions;
    }
    for (const auto &s : suite) {
        if (s.name != "gcc")
            EXPECT_GT(gcc_hot, s.hotFunctions);
    }
}

TEST(SpecProgram, EmitsApproximatelyTargetInstrs)
{
    FunctionRegistry reg;
    SpecProgramSpec spec;
    spec.name = "target-test";
    spec.functions = 30;
    spec.hotFunctions = 12;
    spec.workPerCall = 80.0;
    SpecProgram prog(reg, spec);

    TraceBuffer buf;
    prog.emit(buf, 100'000, 42);
    EXPECT_GE(buf.approxInstrs(), 100'000u);
    EXPECT_LE(buf.approxInstrs(), 115'000u);
}

TEST(SpecProgram, TracesAreBalanced)
{
    FunctionRegistry reg;
    SpecProgramSpec spec;
    spec.name = "balance-test";
    SpecProgram prog(reg, spec);

    TraceBuffer buf;
    prog.emit(buf, 50'000, 7);
    int depth = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const auto e = buf.at(i);
        if (e.kind() == EventKind::Call)
            ++depth;
        else if (e.kind() == EventKind::Return)
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(SpecProgram, DeterministicForSeed)
{
    FunctionRegistry reg;
    SpecProgramSpec spec;
    spec.name = "det-test";
    SpecProgram prog(reg, spec);

    TraceBuffer a, b;
    prog.emit(a, 20'000, 99);
    prog.emit(b, 20'000, 99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a.at(i).raw(), b.at(i).raw());
}

TEST(SpecProgram, TestAndTrainInputsDiffer)
{
    FunctionRegistry reg;
    SpecProgramSpec spec;
    spec.name = "inputs-test";
    spec.testInstrs = 20'000;
    spec.trainInstrs = 20'000;
    SpecProgram prog(reg, spec);

    TraceBuffer test, train;
    prog.emitTest(test);
    prog.emitTrain(train);
    bool differ = test.size() != train.size();
    for (std::size_t i = 0; !differ && i < test.size(); ++i)
        differ = test.at(i).raw() != train.at(i).raw();
    EXPECT_TRUE(differ);
}

TEST(SpecProgram, OnlyHotFunctionsAreCalled)
{
    FunctionRegistry reg;
    SpecProgramSpec spec;
    spec.name = "hot-test";
    spec.functions = 40;
    spec.hotFunctions = 10;
    SpecProgram prog(reg, spec);

    TraceBuffer buf;
    prog.emit(buf, 100'000, 3);
    const auto first = reg.lookup("hot-test::fn0");
    for (std::size_t i = 0; i < buf.size(); ++i) {
        const auto e = buf.at(i);
        if (e.kind() == EventKind::Call) {
            EXPECT_LT(e.payload() - first, 10u)
                << "cold function called";
        }
    }
}

} // namespace
} // namespace cgp::spec
