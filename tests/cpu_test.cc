/**
 * @file
 * Tests for the out-of-order core: throughput bounds, in-order
 * commit, I-cache stall behaviour, perfect-I$ mode, branch-mispredict
 * penalties, and the prefetcher hook points.
 */

#include <gtest/gtest.h>

#include <memory>

#include "codegen/layout.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "prefetch/cgp.hh"
#include "trace/expand.hh"
#include "trace/recorder.hh"

namespace cgp
{
namespace
{

struct Machine
{
    FunctionRegistry reg;
    TraceBuffer trace;
    FunctionId a, b;

    Machine()
    {
        a = reg.declare("A", FunctionTraits::medium());
        b = reg.declare("B", FunctionTraits::small());
    }

    void
    record(unsigned iterations, unsigned work = 50)
    {
        TraceRecorder rec(trace);
        rec.call(a);
        for (unsigned i = 0; i < iterations; ++i) {
            rec.work(work);
            rec.call(b);
            rec.work(work / 2);
            rec.ret();
            rec.branch(i % 4 == 0);
        }
        rec.ret();
    }

    /** Run the trace through a fresh machine; owns the core. */
    Core &
    run(CoreConfig cfg = {}, InstrPrefetcher *pf = nullptr)
    {
        LayoutBuilder builder(reg);
        image = builder.buildOriginal();
        expander =
            std::make_unique<InstructionExpander>(reg, image, trace);
        mem = std::make_unique<MemoryHierarchy>();
        core = std::make_unique<Core>(*expander, *mem, pf, cfg);
        core->run();
        return *core;
    }

    CodeImage image;
    std::unique_ptr<InstructionExpander> expander;
    std::unique_ptr<MemoryHierarchy> mem;
    std::unique_ptr<Core> core;
};

TEST(Core, CommitsEveryInstruction)
{
    Machine m;
    m.record(50);
    const Core &core = m.run();
    EXPECT_EQ(core.committedInstrs(), m.expander->emittedInstrs());
    EXPECT_GT(core.cycles(), 0u);
}

TEST(Core, IpcWithinMachineWidth)
{
    Machine m;
    m.record(200);
    const Core &core = m.run();
    EXPECT_GT(core.ipc(), 0.1);
    EXPECT_LE(core.ipc(), 4.0); // Table 1: 4-wide
}

TEST(Core, PerfectICacheIsFaster)
{
    Machine m1, m2;
    m1.record(300);
    m2.record(300);
    CoreConfig perfect;
    perfect.perfectICache = true;
    const Core &base = m1.run();
    const Core &ideal = m2.run(perfect);
    EXPECT_EQ(base.committedInstrs(), ideal.committedInstrs());
    EXPECT_LT(ideal.cycles(), base.cycles());
    // No I-cache accesses at all in perfect mode.
    EXPECT_EQ(m2.mem->l1i().demandAccesses(), 0u);
}

TEST(Core, MaxInstrsTruncatesTheRun)
{
    Machine m;
    m.record(500);
    CoreConfig cfg;
    cfg.maxInstrs = 1000;
    const Core &core = m.run(cfg);
    EXPECT_GE(core.committedInstrs(), 1000u);
    EXPECT_LT(core.committedInstrs(), 1200u);
}

TEST(Core, DeterministicCycleCounts)
{
    Machine m1, m2;
    m1.record(100);
    m2.record(100);
    const Core &c1 = m1.run();
    const Core &c2 = m2.run();
    EXPECT_EQ(c1.cycles(), c2.cycles());
    EXPECT_EQ(c1.committedInstrs(), c2.committedInstrs());
}

TEST(Core, BranchStatsPopulated)
{
    Machine m;
    m.record(200);
    const Core &core = m.run();
    EXPECT_GT(core.branchUnit().lookups(), 0u);
    // Calls and returns dominate; after warmup most predict fine.
    EXPECT_LT(core.branchUnit().mispredicts(),
              core.branchUnit().lookups() / 2);
}

TEST(Core, ColdMispredictsCostCycles)
{
    // Same instruction stream, one run with a crippled RAS (depth
    // 1, wrecked by nesting) would be ideal, but the RAS depth
    // config covers it: compare a 32-deep RAS against a 1-deep one
    // under heavy nesting.
    FunctionRegistry reg;
    std::vector<FunctionId> fns;
    for (int i = 0; i < 6; ++i) {
        fns.push_back(reg.declare("n" + std::to_string(i),
                                  FunctionTraits::small()));
    }
    TraceBuffer trace;
    TraceRecorder rec(trace);
    // Deep nesting: n0 -> n1 -> ... -> n5, repeatedly.
    for (int r = 0; r < 50; ++r) {
        for (int i = 0; i < 6; ++i) {
            rec.call(fns[static_cast<std::size_t>(i)]);
            rec.work(10);
        }
        for (int i = 0; i < 6; ++i)
            rec.ret();
    }

    LayoutBuilder builder(reg);
    const CodeImage image = builder.buildOriginal();

    auto run_with_ras = [&](unsigned depth) {
        InstructionExpander ex(reg, image, trace);
        MemoryHierarchy mem;
        CoreConfig cfg;
        cfg.branch.rasEntries = depth;
        Core core(ex, mem, nullptr, cfg);
        core.run();
        return core.cycles();
    };
    const Cycle deep = run_with_ras(32);
    const Cycle shallow = run_with_ras(2);
    EXPECT_LT(deep, shallow);
}

TEST(Core, CgpHooksFireDuringExecution)
{
    Machine m;
    m.record(100);
    LayoutBuilder builder(m.reg);
    m.image = builder.buildOriginal();
    m.expander =
        std::make_unique<InstructionExpander>(m.reg, m.image, m.trace);
    m.mem = std::make_unique<MemoryHierarchy>();
    CgpPrefetcher cgp(m.mem->l1i(), CghcConfig::twoLevel2K32K(), 4);
    Core core(*m.expander, *m.mem, &cgp, CoreConfig{});
    core.run();
    // Two accesses per predicted call/return pair, ~100 iterations.
    EXPECT_GT(cgp.cghc().accesses(), 100u);
    EXPECT_GT(cgp.cghc().hits(), 50u);
}

TEST(Core, StatsGroupExposesCounters)
{
    Machine m;
    m.record(60);
    const Core &core = m.run();
    EXPECT_EQ(core.stats().counterValue("committed_instrs"),
              core.committedInstrs());
    EXPECT_TRUE(core.stats().hasCounter("fetch_icache_stall_cycles"));
    EXPECT_GT(core.stats().formulaValue("ipc"), 0.0);
}

} // namespace
} // namespace cgp
