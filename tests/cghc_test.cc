/**
 * @file
 * Tests for the Call Graph History Cache — the exact §3.2 semantics:
 * index arithmetic on calls and returns, allocation on miss, the
 * 8-slot cap, the two-level swap, and the infinite variant.
 */

#include <gtest/gtest.h>

#include "prefetch/cghc.hh"

namespace cgp
{
namespace
{

// Function start addresses (32-byte aligned, like the layouts).
constexpr Addr F = 0x400000;
constexpr Addr G = 0x400100;
constexpr Addr H = 0x400200;
constexpr Addr I = 0x400300;

TEST(Cghc, MissAllocatesWithoutPrefetching)
{
    Cghc cghc(CghcConfig::oneLevel1K());
    const auto r = cghc.callPrefetchAccess(G);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.prefetchTarget, invalidAddr);
    // The entry now exists: a second access hits (still nothing
    // recorded to prefetch).
    const auto r2 = cghc.callPrefetchAccess(G);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.prefetchTarget, invalidAddr);
}

TEST(Cghc, CallUpdateMissDepositsFirstCallee)
{
    // Paper §3.2: a miss on the update access for a call seeds
    // slot 1 with the callee.
    Cghc cghc(CghcConfig::oneLevel1K());
    cghc.callUpdateAccess(F, G);
    // F's entry now predicts G... but only at index 1, which a
    // return into F reads after the index reset.
    cghc.returnUpdateAccess(F);
    const auto r = cghc.returnPrefetchAccess(F);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.prefetchTarget, G);
}

TEST(Cghc, LearnsCallSequenceAcrossInvocations)
{
    // First invocation of F: calls G then H; CGHC records them.
    Cghc cghc(CghcConfig::twoLevel2K32K());

    // invocation 1: F calls G, G returns, F calls H, H returns,
    // F returns.
    cghc.callPrefetchAccess(G);
    cghc.callUpdateAccess(F, G);   // slot1 = G, index -> 2
    cghc.returnPrefetchAccess(F);  // predicts slot2: empty yet
    cghc.returnUpdateAccess(G);
    cghc.callPrefetchAccess(H);
    cghc.callUpdateAccess(F, H);   // slot2 = H
    cghc.returnPrefetchAccess(F);
    cghc.returnUpdateAccess(H);
    cghc.returnUpdateAccess(F);    // F's index resets to 1

    // invocation 2: on the call into F (predicted target F), the
    // prefetch access reads F's slot 1 = G.
    const auto on_entry = cghc.callPrefetchAccess(F);
    EXPECT_TRUE(on_entry.hit);
    EXPECT_EQ(on_entry.prefetchTarget, G);

    // F calls G; G returns; the return access into F now predicts H.
    cghc.callUpdateAccess(F, G); // index -> 2
    const auto after_g = cghc.returnPrefetchAccess(F);
    EXPECT_TRUE(after_g.hit);
    EXPECT_EQ(after_g.prefetchTarget, H);
}

TEST(Cghc, ReturnUpdateResetsIndex)
{
    Cghc cghc(CghcConfig::oneLevel32K());
    cghc.callUpdateAccess(F, G);
    cghc.callUpdateAccess(F, H); // index now 3
    cghc.returnUpdateAccess(F);  // reset
    // Return access into F reads slot 1 again.
    const auto r = cghc.returnPrefetchAccess(F);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.prefetchTarget, G);
}

TEST(Cghc, OnlyFirstEightCalleesStored)
{
    Cghc cghc(CghcConfig::oneLevel32K());
    // F calls 10 distinct functions.
    for (Addr callee = 0x500000; callee < 0x500000 + 10 * 0x40;
         callee += 0x40) {
        cghc.callUpdateAccess(F, callee);
    }
    cghc.returnUpdateAccess(F);

    // Replay: slots 1..8 are the first 8 callees; the 9th/10th were
    // dropped.
    for (int k = 0; k < 8; ++k) {
        const auto r = cghc.returnPrefetchAccess(F);
        ASSERT_TRUE(r.hit);
        EXPECT_EQ(r.prefetchTarget,
                  0x500000u + static_cast<Addr>(k) * 0x40)
            << "slot " << k + 1;
        cghc.callUpdateAccess(F, r.prefetchTarget); // advance index
    }
}

TEST(Cghc, DirectMappedConflictEvicts)
{
    // 1KB = 32 entries; two function starts 32 entries apart in set
    // index collide.
    Cghc cghc(CghcConfig::oneLevel1K());
    const Addr a = 0x400000;
    const Addr b = a + 32u * 32u; // same set (tag >> 5 % 32)
    cghc.callPrefetchAccess(a);   // allocate a
    EXPECT_TRUE(cghc.callPrefetchAccess(a).hit);
    cghc.callPrefetchAccess(b);   // allocate b, evicting a
    EXPECT_FALSE(cghc.callPrefetchAccess(a).hit);
}

TEST(Cghc, TwoLevelRetainsDisplacedEntries)
{
    // Same conflict as above, but the second level catches the
    // victim, so re-access hits (with the L2 latency).
    Cghc cghc(CghcConfig::twoLevel1K16K());
    const Addr a = 0x400000;
    const Addr b = a + 32u * 32u;
    cghc.callUpdateAccess(a, G);
    cghc.returnUpdateAccess(a);
    cghc.callPrefetchAccess(b); // displaces a to L2

    const auto r = cghc.callPrefetchAccess(a);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.prefetchTarget, G);
    EXPECT_GT(r.delay, 1u); // came from the second level
    // After the swap, it is back in the first level.
    const auto r2 = cghc.callPrefetchAccess(a);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.delay, 1u);
}

TEST(Cghc, InfiniteKeepsFullSequences)
{
    Cghc cghc(CghcConfig::infiniteSize());
    // F calls 12 functions — more than the finite 8-slot cap.
    std::vector<Addr> callees;
    for (int i = 0; i < 12; ++i)
        callees.push_back(0x600000 + static_cast<Addr>(i) * 0x40);
    for (Addr c : callees)
        cghc.callUpdateAccess(F, c);
    cghc.returnUpdateAccess(F);

    for (const Addr expected : callees) {
        const auto r = cghc.returnPrefetchAccess(F);
        ASSERT_TRUE(r.hit);
        EXPECT_EQ(r.prefetchTarget, expected);
        cghc.callUpdateAccess(F, expected);
    }
}

TEST(Cghc, InfiniteNeverConflicts)
{
    Cghc cghc(CghcConfig::infiniteSize());
    for (Addr f = 0x400000; f < 0x400000 + 4096 * 0x20; f += 0x20)
        cghc.callUpdateAccess(f, G);
    // Every one of the 4096 entries is still present.
    for (Addr f = 0x400000; f < 0x400000 + 4096 * 0x20; f += 0x20) {
        cghc.returnUpdateAccess(f);
        EXPECT_TRUE(cghc.returnPrefetchAccess(f).hit);
    }
}

TEST(Cghc, StatsCountAccessesAndHits)
{
    Cghc cghc(CghcConfig::twoLevel2K32K());
    cghc.callPrefetchAccess(G); // miss + alloc
    cghc.callPrefetchAccess(G); // hit
    cghc.returnPrefetchAccess(G); // hit
    EXPECT_EQ(cghc.accesses(), 3u);
    EXPECT_EQ(cghc.hits(), 2u);
}

class CghcGeometryTest
    : public ::testing::TestWithParam<CghcConfig>
{
};

TEST_P(CghcGeometryTest, SequencePredictionWorksEverywhere)
{
    Cghc cghc(GetParam());
    // Train F -> (G, H, I) twice, then verify the full prediction
    // chain on a third pass.
    for (int pass = 0; pass < 2; ++pass) {
        cghc.callPrefetchAccess(F);
        for (Addr c : {G, H, I}) {
            cghc.callPrefetchAccess(c);
            cghc.callUpdateAccess(F, c);
            cghc.returnPrefetchAccess(F);
            cghc.returnUpdateAccess(c);
        }
        cghc.returnUpdateAccess(F);
    }

    const auto entry = cghc.callPrefetchAccess(F);
    ASSERT_TRUE(entry.hit);
    EXPECT_EQ(entry.prefetchTarget, G);
    cghc.callUpdateAccess(F, G);
    EXPECT_EQ(cghc.returnPrefetchAccess(F).prefetchTarget, H);
    cghc.callUpdateAccess(F, H);
    EXPECT_EQ(cghc.returnPrefetchAccess(F).prefetchTarget, I);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CghcGeometryTest,
    ::testing::Values(CghcConfig::oneLevel1K(),
                      CghcConfig::oneLevel32K(),
                      CghcConfig::twoLevel1K16K(),
                      CghcConfig::twoLevel2K32K(),
                      CghcConfig::infiniteSize()));

TEST(Cghc, AssociativityAvoidsConflictEviction)
{
    // The direct-mapped conflict pair from above coexists in a
    // 2-way CGHC.
    CghcConfig cfg = CghcConfig::oneLevel1K();
    cfg.assoc = 2;
    Cghc cghc(cfg);
    const Addr a = 0x400000;
    const Addr b = a + 16u * 32u; // same set at 16 sets x 2 ways
    cghc.callPrefetchAccess(a);
    cghc.callPrefetchAccess(b);
    EXPECT_TRUE(cghc.callPrefetchAccess(a).hit);
    EXPECT_TRUE(cghc.callPrefetchAccess(b).hit);
}

TEST(Cghc, AssociativeLruEvictsColdest)
{
    CghcConfig cfg = CghcConfig::oneLevel1K();
    cfg.assoc = 2;
    cfg.l2Bytes = 0;
    Cghc cghc(cfg);
    const Addr set_stride = 16u * 32u; // 16 sets
    const Addr a = 0x400000;
    const Addr b = a + set_stride;
    const Addr c = a + 2 * set_stride;
    cghc.callPrefetchAccess(a);
    cghc.callPrefetchAccess(b);
    cghc.callPrefetchAccess(a); // refresh a
    cghc.callPrefetchAccess(c); // evicts b (LRU)
    EXPECT_TRUE(cghc.callPrefetchAccess(a).hit);
    EXPECT_FALSE(cghc.callPrefetchAccess(b).hit);
}

TEST(CghcConfig, DescribeStrings)
{
    EXPECT_EQ(CghcConfig::oneLevel1K().describe(), "CGHC-1K");
    EXPECT_EQ(CghcConfig::oneLevel32K().describe(), "CGHC-32K");
    EXPECT_EQ(CghcConfig::twoLevel1K16K().describe(), "CGHC-1K+16K");
    EXPECT_EQ(CghcConfig::twoLevel2K32K().describe(), "CGHC-2K+32K");
    EXPECT_EQ(CghcConfig::infiniteSize().describe(), "CGHC-Inf");
    CghcConfig assoc = CghcConfig::twoLevel2K32K();
    assoc.assoc = 4;
    EXPECT_EQ(assoc.describe(), "CGHC-2K+32K-4way");
}

} // namespace
} // namespace cgp
