/**
 * @file
 * B+-tree tests: point lookups, range scans, duplicates, splits and
 * tree growth, plus randomized property validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "db/btree.hh"
#include "util/rng.hh"

namespace cgp::db
{
namespace
{

struct TreeFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbContext ctx{reg, buf};
    Volume vol{ctx};
    BufferPool pool{ctx, vol, 512};
    LockManager locks{ctx};
    BTree tree{ctx, pool, vol, locks};
    TxnId txn = 1;
};

TEST(BTree, EmptySearchMisses)
{
    TreeFixture fx;
    Rid out;
    EXPECT_FALSE(fx.tree.search(fx.txn, 42, out));
    EXPECT_EQ(fx.tree.size(), 0u);
    EXPECT_EQ(fx.tree.height(), 1u);
}

TEST(BTree, InsertThenFind)
{
    TreeFixture fx;
    fx.tree.insert(fx.txn, 10, Rid{1, 2});
    fx.tree.insert(fx.txn, 20, Rid{3, 4});
    Rid out;
    ASSERT_TRUE(fx.tree.search(fx.txn, 10, out));
    EXPECT_EQ(out.page, 1u);
    EXPECT_EQ(out.slot, 2u);
    ASSERT_TRUE(fx.tree.search(fx.txn, 20, out));
    EXPECT_EQ(out.page, 3u);
    EXPECT_FALSE(fx.tree.search(fx.txn, 15, out));
}

TEST(BTree, SplitsGrowTheTree)
{
    TreeFixture fx;
    // More than one leaf's worth of ascending keys.
    const int n = 2000;
    for (int k = 0; k < n; ++k) {
        fx.tree.insert(fx.txn, k,
                       Rid{static_cast<PageId>(k), 0});
    }
    EXPECT_GT(fx.tree.height(), 1u);
    EXPECT_EQ(fx.tree.size(), static_cast<std::uint64_t>(n));
    EXPECT_TRUE(fx.tree.validate(fx.txn));

    Rid out;
    for (int k : {0, 1, 447, 448, 449, 1024, 1999}) {
        ASSERT_TRUE(fx.tree.search(fx.txn, k, out)) << "key " << k;
        EXPECT_EQ(out.page, static_cast<PageId>(k));
    }
}

TEST(BTree, RangeScanReturnsSortedWindow)
{
    TreeFixture fx;
    for (int k = 0; k < 500; ++k)
        fx.tree.insert(fx.txn, k * 2, Rid{static_cast<PageId>(k), 0});

    BTree::RangeScan scan(fx.tree, fx.txn, 100, 140);
    std::vector<std::int32_t> keys;
    std::int32_t k;
    Rid rid;
    while (scan.next(k, rid))
        keys.push_back(k);
    const std::vector<std::int32_t> expect{100, 102, 104, 106, 108,
                                           110, 112, 114, 116, 118,
                                           120, 122, 124, 126, 128,
                                           130, 132, 134, 136, 138,
                                           140};
    EXPECT_EQ(keys, expect);
}

TEST(BTree, RangeScanEmptyWindow)
{
    TreeFixture fx;
    fx.tree.insert(fx.txn, 10, Rid{1, 0});
    fx.tree.insert(fx.txn, 30, Rid{2, 0});
    BTree::RangeScan scan(fx.tree, fx.txn, 15, 25);
    std::int32_t k;
    Rid rid;
    EXPECT_FALSE(scan.next(k, rid));
}

TEST(BTree, DuplicateKeysAllEnumerable)
{
    TreeFixture fx;
    for (std::uint16_t i = 0; i < 5; ++i)
        fx.tree.insert(fx.txn, 77, Rid{9, i});
    fx.tree.insert(fx.txn, 76, Rid{1, 0});
    fx.tree.insert(fx.txn, 78, Rid{2, 0});

    BTree::RangeScan scan(fx.tree, fx.txn, 77, 77);
    std::set<std::uint16_t> slots;
    std::int32_t k;
    Rid rid;
    while (scan.next(k, rid)) {
        EXPECT_EQ(k, 77);
        slots.insert(rid.slot);
    }
    EXPECT_EQ(slots.size(), 5u);
}

TEST(BTree, NegativeKeysOrderCorrectly)
{
    TreeFixture fx;
    for (int k : {-5, 3, -10, 0, 7})
        fx.tree.insert(fx.txn, k, Rid{1, 0});
    BTree::RangeScan scan(fx.tree, fx.txn, -100, 100);
    std::vector<std::int32_t> keys;
    std::int32_t k;
    Rid rid;
    while (scan.next(k, rid))
        keys.push_back(k);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.size(), 5u);
}

class BTreeRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BTreeRandomTest, RandomInsertsStayValid)
{
    TreeFixture fx;
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
    std::set<std::int32_t> keys;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const auto k =
            static_cast<std::int32_t>(rng.nextRange(-50000, 50000));
        fx.tree.insert(fx.txn, k, Rid{static_cast<PageId>(i), 0});
        keys.insert(k);
    }
    EXPECT_EQ(fx.tree.size(), static_cast<std::uint64_t>(n));
    ASSERT_TRUE(fx.tree.validate(fx.txn));

    // Every inserted key is findable; absent keys are not.
    Rng probe(GetParam());
    Rid out;
    for (int i = 0; i < 200; ++i) {
        const auto k = static_cast<std::int32_t>(
            probe.nextRange(-50000, 50000));
        EXPECT_EQ(fx.tree.search(fx.txn, k, out),
                  keys.count(k) > 0)
            << "key " << k;
    }

    // Full scan sees exactly n entries in order.
    BTree::RangeScan scan(fx.tree, fx.txn, -60000, 60000);
    std::int32_t k, prev = -60001;
    Rid rid;
    std::uint64_t seen = 0;
    while (scan.next(k, rid)) {
        EXPECT_GE(k, prev);
        prev = k;
        ++seen;
    }
    EXPECT_EQ(seen, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomTest,
                         ::testing::Range(1, 6));

TEST(BTree, LocksAreReleasedAfterOperations)
{
    TreeFixture fx;
    for (int k = 0; k < 1000; ++k)
        fx.tree.insert(fx.txn, k, Rid{1, 0});
    Rid out;
    fx.tree.search(fx.txn, 500, out);
    // 2PL bookkeeping: B-tree ops release page locks before
    // returning (latch-style), so nothing is held now.
    EXPECT_EQ(fx.locks.lockCount(fx.txn), 0u);
}

TEST(BTree, NoPinnedPagesLeakAfterScans)
{
    TreeFixture fx;
    for (int k = 0; k < 2000; ++k)
        fx.tree.insert(fx.txn, k, Rid{1, 0});
    {
        BTree::RangeScan scan(fx.tree, fx.txn, 100, 1900);
        std::int32_t k;
        Rid rid;
        for (int i = 0; i < 50; ++i)
            scan.next(k, rid);
        // Destructor closes mid-scan.
    }
    // All frames unpinned: a tiny pool can still evict everything.
    for (PageId p = 0; p < static_cast<PageId>(fx.vol.pageCount());
         ++p) {
        EXPECT_EQ(fx.pool.pinCount(p), 0u) << "page " << p;
    }
}

TEST(BTree, RemoveMakesKeyUnfindable)
{
    TreeFixture fx;
    for (int k = 0; k < 100; ++k)
        fx.tree.insert(fx.txn, k, Rid{static_cast<PageId>(k), 0});
    ASSERT_TRUE(fx.tree.remove(fx.txn, 50, Rid{50, 0}));
    Rid out;
    EXPECT_FALSE(fx.tree.search(fx.txn, 50, out));
    EXPECT_EQ(fx.tree.size(), 99u);
    EXPECT_TRUE(fx.tree.validate(fx.txn));
    // Second removal of the same entry fails.
    EXPECT_FALSE(fx.tree.remove(fx.txn, 50, Rid{50, 0}));
}

TEST(BTree, RemoveSpecificDuplicate)
{
    TreeFixture fx;
    for (std::uint16_t s = 0; s < 4; ++s)
        fx.tree.insert(fx.txn, 7, Rid{1, s});
    ASSERT_TRUE(fx.tree.remove(fx.txn, 7, Rid{1, 2}));
    BTree::RangeScan scan(fx.tree, fx.txn, 7, 7);
    std::set<std::uint16_t> slots;
    std::int32_t k;
    Rid rid;
    while (scan.next(k, rid))
        slots.insert(rid.slot);
    EXPECT_EQ(slots, (std::set<std::uint16_t>{0, 1, 3}));
}

TEST(BTree, RemoveAcrossLeafBoundaries)
{
    TreeFixture fx;
    // Force splits, then remove entries from several leaves.
    const int n = 1500;
    for (int k = 0; k < n; ++k)
        fx.tree.insert(fx.txn, k, Rid{static_cast<PageId>(k), 0});
    ASSERT_GT(fx.tree.height(), 1u);
    for (int k = 0; k < n; k += 3) {
        ASSERT_TRUE(
            fx.tree.remove(fx.txn, k, Rid{static_cast<PageId>(k), 0}))
            << "key " << k;
    }
    EXPECT_EQ(fx.tree.size(), static_cast<std::uint64_t>(n - 500));
    EXPECT_TRUE(fx.tree.validate(fx.txn));
    Rid out;
    EXPECT_FALSE(fx.tree.search(fx.txn, 0, out));
    EXPECT_TRUE(fx.tree.search(fx.txn, 1, out));
}

TEST(BTree, RemoveMissingKeyReturnsFalse)
{
    TreeFixture fx;
    fx.tree.insert(fx.txn, 10, Rid{1, 0});
    EXPECT_FALSE(fx.tree.remove(fx.txn, 11, Rid{1, 0}));
    EXPECT_FALSE(fx.tree.remove(fx.txn, 10, Rid{2, 0})); // wrong rid
    EXPECT_EQ(fx.tree.size(), 1u);
}

} // namespace
} // namespace cgp::db

