/**
 * @file
 * Relational-operator tests: result correctness of scans, index
 * selections, all three join algorithms (cross-checked against each
 * other), aggregation, sort and projection.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "db/dbsys.hh"
#include "db/ops/aggregate.hh"
#include "db/ops/executor.hh"
#include "db/ops/index_select.hh"
#include "db/ops/joins.hh"
#include "db/ops/scan.hh"
#include "db/ops/external_sort.hh"
#include "db/ops/sort.hh"

namespace cgp::db
{
namespace
{

struct OpsFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    DbSystem db{reg, buf};
    TxnId txn = 0;

    OpsFixture()
    {
        Schema s({{"k", ColumnType::Int32, 4},
                  {"v", ColumnType::Int32, 4},
                  {"grp", ColumnType::Int32, 4}});
        db.createTable("t", s);
        db.createTable("u", s);

        txn = db.txns().begin();
        // t: k = 0..99, v = k*10, grp = k%4
        for (int k = 0; k < 100; ++k) {
            Tuple t(db.catalog().table("t").schema.get());
            t.setInt(0, k);
            t.setInt(1, k * 10);
            t.setInt(2, k % 4);
            db.insertRow(txn, "t", t);
        }
        // u: k = 50..149 (half overlaps t)
        for (int k = 50; k < 150; ++k) {
            Tuple t(db.catalog().table("u").schema.get());
            t.setInt(0, k);
            t.setInt(1, k);
            t.setInt(2, 0);
            db.insertRow(txn, "u", t);
        }
        db.createIndex("t", "k");
        db.createIndex("u", "k");
    }

    HeapFile &tfile() { return *db.catalog().table("t").file; }
    HeapFile &ufile() { return *db.catalog().table("u").file; }
};

std::uint64_t
drain(Operator &op)
{
    op.open();
    Tuple t;
    std::uint64_t rows = 0;
    while (op.next(t))
        ++rows;
    op.close();
    return rows;
}

TEST(SeqScanOp, FullScanAndPredicate)
{
    OpsFixture fx;
    SeqScan all(fx.db.ctx(), fx.tfile(), fx.txn);
    EXPECT_EQ(drain(all), 100u);

    Predicate p;
    p.andInt(0, CmpOp::Between, 10, 19);
    SeqScan ranged(fx.db.ctx(), fx.tfile(), fx.txn, p);
    EXPECT_EQ(drain(ranged), 10u);

    Predicate conj;
    conj.andInt(0, CmpOp::Ge, 50);
    conj.andInt(2, CmpOp::Eq, 1);
    SeqScan both(fx.db.ctx(), fx.tfile(), fx.txn, conj);
    EXPECT_EQ(drain(both), 12u); // k in {53,57,...,97}
}

TEST(SeqScanOp, RewindRestarts)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    scan.open();
    Tuple t;
    for (int i = 0; i < 5; ++i)
        scan.next(t);
    scan.rewind();
    std::uint64_t rows = 0;
    while (scan.next(t))
        ++rows;
    scan.close();
    EXPECT_EQ(rows, 100u);
}

TEST(IndexSelectOp, MatchesSeqScanResults)
{
    OpsFixture fx;
    // The same range via index and via scan must agree.
    for (auto [lo, hi] : {std::pair<int, int>{0, 9},
                          {40, 60},
                          {95, 99},
                          {99, 99},
                          {150, 160}}) {
        IndexSelect idx(fx.db.ctx(), fx.db.catalog().index("t", "k"),
                        fx.tfile(), fx.txn, lo, hi);
        Predicate p;
        p.andInt(0, CmpOp::Between, lo, hi);
        SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn, p);
        EXPECT_EQ(drain(idx), drain(scan))
            << "range [" << lo << "," << hi << "]";
    }
}

TEST(IndexSelectOp, ResidualPredicateFilters)
{
    OpsFixture fx;
    Predicate residual;
    residual.andInt(2, CmpOp::Eq, 0);
    IndexSelect idx(fx.db.ctx(), fx.db.catalog().index("t", "k"),
                    fx.tfile(), fx.txn, 0, 39, residual);
    EXPECT_EQ(drain(idx), 10u); // k in {0,4,...,36}
}

TEST(Joins, AllThreeAlgorithmsAgree)
{
    OpsFixture fx;
    // t JOIN u ON t.k == u.k: keys 50..99 -> 50 rows.
    auto run_nlj = [&fx]() {
        SeqScan outer(fx.db.ctx(), fx.tfile(), fx.txn);
        SeqScan inner(fx.db.ctx(), fx.ufile(), fx.txn);
        NestedLoopsJoin join(fx.db.ctx(), outer, inner, 0, 0);
        return drain(join);
    };
    auto run_inlj = [&fx]() {
        SeqScan outer(fx.db.ctx(), fx.tfile(), fx.txn);
        IndexedNLJoin join(fx.db.ctx(), outer,
                           fx.db.catalog().index("u", "k"),
                           fx.ufile(), fx.txn, 0, 0);
        return drain(join);
    };
    auto run_ghj = [&fx]() {
        SeqScan left(fx.db.ctx(), fx.tfile(), fx.txn);
        SeqScan right(fx.db.ctx(), fx.ufile(), fx.txn);
        GraceHashJoin join(fx.db.ctx(), fx.db.bufferPool(),
                           fx.db.volume(), fx.db.locks(),
                           fx.db.log(), left, right, fx.txn, 0, 0,
                           4);
        return drain(join);
    };

    const auto nlj = run_nlj();
    EXPECT_EQ(nlj, 50u);
    EXPECT_EQ(run_inlj(), nlj);
    EXPECT_EQ(run_ghj(), nlj);
}

TEST(Joins, OutputSchemaConcatenatesInputs)
{
    OpsFixture fx;
    SeqScan outer(fx.db.ctx(), fx.tfile(), fx.txn);
    SeqScan inner(fx.db.ctx(), fx.ufile(), fx.txn);
    NestedLoopsJoin join(fx.db.ctx(), outer, inner, 0, 0);
    EXPECT_EQ(join.schema()->columnCount(), 6u);

    join.open();
    Tuple t;
    ASSERT_TRUE(join.next(t));
    // Join key equal on both sides.
    EXPECT_EQ(t.getInt(0), t.getInt(3));
    join.close();
}

TEST(Joins, GraceJoinDuplicateKeysMultiply)
{
    OpsFixture fx;
    // Insert 3 duplicate keys into u at k=60 -> 1x4 pairs for k=60.
    for (int i = 0; i < 3; ++i) {
        Tuple t(fx.db.catalog().table("u").schema.get());
        t.setInt(0, 60);
        t.setInt(1, 1000 + i);
        t.setInt(2, 0);
        fx.db.insertRow(fx.txn, "u", t);
    }
    SeqScan left(fx.db.ctx(), fx.tfile(), fx.txn);
    SeqScan right(fx.db.ctx(), fx.ufile(), fx.txn);
    GraceHashJoin join(fx.db.ctx(), fx.db.bufferPool(),
                       fx.db.volume(), fx.db.locks(), fx.db.log(),
                       left, right, fx.txn, 0, 0, 4);
    EXPECT_EQ(drain(join), 53u); // 50 + 3 extra matches at k=60
}

TEST(Aggregate, GroupSumsAndCounts)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    HashAggregate agg(fx.db.ctx(), scan, {2},
                      {{AggKind::Sum, 1, "sum_v"},
                       {AggKind::Count, 0, "n"},
                       {AggKind::Min, 1, "min_v"},
                       {AggKind::Max, 1, "max_v"},
                       {AggKind::Avg, 1, "avg_v"}});

    agg.open();
    std::map<std::int32_t, std::vector<std::int32_t>> rows;
    Tuple t;
    while (agg.next(t)) {
        rows[t.getInt(0)] = {t.getInt(1), t.getInt(2), t.getInt(3),
                             t.getInt(4), t.getInt(5)};
    }
    agg.close();

    ASSERT_EQ(rows.size(), 4u);
    // grp 0: k = 0,4,...,96 -> sum v = 10*(0+4+...+96) = 12000.
    EXPECT_EQ(rows[0][0], 12000);
    EXPECT_EQ(rows[0][1], 25);
    EXPECT_EQ(rows[0][2], 0);
    EXPECT_EQ(rows[0][3], 960);
    EXPECT_EQ(rows[0][4], 480);
}

TEST(Aggregate, ScalarAggregateWithoutGroups)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    HashAggregate agg(fx.db.ctx(), scan, {},
                      {{AggKind::Count, 0, "n"}});
    agg.open();
    Tuple t;
    ASSERT_TRUE(agg.next(t));
    EXPECT_EQ(t.getInt(0), 100);
    EXPECT_FALSE(agg.next(t));
    agg.close();
}

TEST(SortOp, OrdersAndLimits)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    Sort sort(fx.db.ctx(), scan, 1, /*descending=*/true,
              /*limit=*/5);
    sort.open();
    Tuple t;
    std::vector<std::int32_t> vs;
    while (sort.next(t))
        vs.push_back(t.getInt(1));
    sort.close();
    EXPECT_EQ(vs, (std::vector<std::int32_t>{990, 980, 970, 960,
                                             950}));
}

TEST(SortOp, AscendingFullSort)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    Sort sort(fx.db.ctx(), scan, 0);
    sort.open();
    Tuple t;
    std::int32_t prev = -1;
    std::uint64_t rows = 0;
    while (sort.next(t)) {
        EXPECT_GT(t.getInt(0), prev);
        prev = t.getInt(0);
        ++rows;
    }
    sort.close();
    EXPECT_EQ(rows, 100u);
}

TEST(ProjectOp, SelectsColumns)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    Project proj(fx.db.ctx(), scan, {1});
    EXPECT_EQ(proj.schema()->columnCount(), 1u);
    proj.open();
    Tuple t;
    ASSERT_TRUE(proj.next(t));
    EXPECT_EQ(t.size(), 4u);
    proj.close();
}

TEST(ExternalSortOp, MatchesInMemorySort)
{
    OpsFixture fx;
    // Tiny run buffer forces multiple runs and a real k-way merge.
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    ExternalSort ext(fx.db.ctx(), fx.db.bufferPool(), fx.db.volume(),
                     fx.db.locks(), fx.db.log(), scan, fx.txn,
                     /*key_col=*/1, /*run_tuples=*/16);
    ext.open();
    EXPECT_GE(ext.runCount(), 6u); // 100 tuples / 16 per run
    Tuple t;
    std::int32_t prev = -1;
    std::uint64_t rows = 0;
    while (ext.next(t)) {
        EXPECT_GT(t.getInt(1), prev);
        prev = t.getInt(1);
        ++rows;
    }
    ext.close();
    EXPECT_EQ(rows, 100u);
}

TEST(ExternalSortOp, DescendingAndRewind)
{
    OpsFixture fx;
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn);
    ExternalSort ext(fx.db.ctx(), fx.db.bufferPool(), fx.db.volume(),
                     fx.db.locks(), fx.db.log(), scan, fx.txn, 0, 32,
                     /*descending=*/true);
    ext.open();
    Tuple t;
    ASSERT_TRUE(ext.next(t));
    EXPECT_EQ(t.getInt(0), 99);
    ext.rewind();
    ASSERT_TRUE(ext.next(t));
    EXPECT_EQ(t.getInt(0), 99);
    std::uint64_t rows = 1;
    while (ext.next(t))
        ++rows;
    ext.close();
    EXPECT_EQ(rows, 100u);
}

TEST(ExecutorOp, RunsPlanToCompletion)
{
    OpsFixture fx;
    Predicate p;
    p.andInt(0, CmpOp::Lt, 30);
    SeqScan scan(fx.db.ctx(), fx.tfile(), fx.txn, p);
    Executor exec(fx.db.ctx());
    EXPECT_EQ(exec.run("test-query", scan, 3), 30u);
}

} // namespace
} // namespace cgp::db
