/**
 * @file
 * Tests for the branch prediction hardware, including the paper's
 * modified return address stack.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace cgp
{
namespace
{

TEST(TwoLevel, LearnsBiasedBranch)
{
    TwoLevelPredictor pred(11);
    const Addr pc = 0x400100;
    // Train strongly taken.
    for (int i = 0; i < 64; ++i)
        pred.update(pc, true);
    EXPECT_TRUE(pred.predict(pc));
    for (int i = 0; i < 64; ++i)
        pred.update(pc, false);
    EXPECT_FALSE(pred.predict(pc));
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    TwoLevelPredictor pred(11);
    const Addr pc = 0x400200;
    // Warm up on a strict alternation; the global history lets the
    // two-level predictor capture it.
    bool taken = false;
    for (int i = 0; i < 400; ++i) {
        pred.update(pc, taken);
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        if (pred.predict(pc) == taken)
            ++correct;
        pred.update(pc, taken);
        taken = !taken;
    }
    EXPECT_GT(correct, 90);
}

TEST(Btb, StoresAndEvicts)
{
    Btb btb(16, 4); // 4 sets x 4 ways
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);

    // Overwrite with a new target.
    btb.update(0x1000, 0x3000);
    ASSERT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x3000u);

    // Flood one set (pcs differing only above the set bits) to force
    // LRU eviction of the oldest entry.
    for (int i = 1; i <= 4; ++i)
        btb.update(0x1000 + (i << 6), 0x9000 + i);
    EXPECT_FALSE(btb.lookup(0x1000, target));
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    EXPECT_TRUE(ras.empty());
    ras.push(0x100, 0xA00);
    ras.push(0x200, 0xB00);
    auto e = ras.pop();
    EXPECT_EQ(e.returnAddr, 0x200u);
    EXPECT_EQ(e.callerFuncStart, 0xB00u);
    e = ras.pop();
    EXPECT_EQ(e.returnAddr, 0x100u);
    EXPECT_EQ(e.callerFuncStart, 0xA00u);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, PopOnEmptyYieldsInvalid)
{
    ReturnAddressStack ras(4);
    const auto e = ras.pop();
    EXPECT_EQ(e.returnAddr, invalidAddr);
    EXPECT_EQ(e.callerFuncStart, invalidAddr);
}

TEST(Ras, OverflowWrapsAround)
{
    ReturnAddressStack ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 0x10, i * 0x100);
    EXPECT_EQ(ras.size(), 4u);
    // The newest four survive: 6, 5, 4, 3.
    EXPECT_EQ(ras.pop().returnAddr, 0x60u);
    EXPECT_EQ(ras.pop().returnAddr, 0x50u);
    EXPECT_EQ(ras.pop().returnAddr, 0x40u);
    EXPECT_EQ(ras.pop().returnAddr, 0x30u);
    EXPECT_TRUE(ras.empty());
}

TEST(BranchUnit, CallPushesCallerStartOntoRas)
{
    BranchUnit bu(BranchPredictorConfig{});
    // A call from function F (start 0xF000) at pc 0xF010.
    bu.predictCall(0xF010, 0xA000, 0xF000);
    // The matching return: target = pc + 4, and the modified RAS
    // yields the caller's start address (paper §3.2).
    const auto p = bu.predictReturn(0xA040, 0xF014);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0xF014u);
    EXPECT_EQ(p.callerFuncStart, 0xF000u);
}

TEST(BranchUnit, ColdCallMispredictsThenLearns)
{
    BranchUnit bu(BranchPredictorConfig{});
    const auto before = bu.mispredicts();
    bu.predictCall(0x1000, 0x2000, 0x900);
    EXPECT_EQ(bu.mispredicts(), before + 1); // BTB cold
    bu.predictReturn(0x2004, 0x1004);

    const auto p = bu.predictCall(0x1000, 0x2000, 0x900);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x2000u);
    EXPECT_EQ(bu.mispredicts(), before + 1); // now predicted
}

TEST(BranchUnit, ReturnMispredictOnRasMismatch)
{
    BranchUnit bu(BranchPredictorConfig{});
    bu.predictCall(0x1000, 0x2000, 0x900);
    const auto before = bu.mispredicts();
    // Return to somewhere other than pc+4.
    const auto p = bu.predictReturn(0x2004, 0xBEEF);
    EXPECT_NE(p.target, 0xBEEFu);
    EXPECT_EQ(bu.mispredicts(), before + 1);
}

TEST(BranchUnit, ConditionalStatsAccumulate)
{
    BranchUnit bu(BranchPredictorConfig{});
    for (int i = 0; i < 100; ++i)
        bu.predictConditional(0x3000, true, 0x3100);
    EXPECT_EQ(bu.lookups(), 100u);
    // After warmup the biased branch predicts well.
    EXPECT_LT(bu.mispredicts(), 20u);
    EXPECT_EQ(bu.stats().counterValue("cond_lookups"), 100u);
}

TEST(BranchUnit, JumpUsesTheBtb)
{
    BranchUnit bu(BranchPredictorConfig{});
    auto p = bu.predictJump(0x5000, 0x6000);
    EXPECT_FALSE(p.targetKnown); // cold
    p = bu.predictJump(0x5000, 0x6000);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x6000u);
}

class PredictorSizeTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PredictorSizeTest, BiasedStreamsPredictWellAtAnySize)
{
    TwoLevelPredictor pred(GetParam());
    // 64 branch sites, each strongly biased one way.
    int correct = 0, total = 0;
    for (int round = 0; round < 50; ++round) {
        for (Addr site = 0; site < 64; ++site) {
            const Addr pc = 0x400000 + (site << 4);
            const bool taken = (site % 2) == 0;
            if (round > 10) {
                ++total;
                correct += pred.predict(pc) == taken ? 1 : 0;
            }
            pred.update(pc, taken);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.80)
        << "PHT bits " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PhtSizes, PredictorSizeTest,
                         ::testing::Values(8u, 10u, 11u, 14u));

TEST(BranchUnit, RasDepthBoundsNesting)
{
    BranchPredictorConfig cfg;
    cfg.rasEntries = 4;
    BranchUnit bu(cfg);
    // Nest 6 calls; only the innermost 4 returns predict correctly.
    for (Addr d = 0; d < 6; ++d)
        bu.predictCall(0x1000 + d * 0x100, 0x8000 + d * 0x100,
                       0x1000 + d * 0x100);
    int correct = 0;
    for (int d = 5; d >= 0; --d) {
        const Addr expect = 0x1000 + static_cast<Addr>(d) * 0x100 + 4;
        const auto p = bu.predictReturn(0x9000, expect);
        correct += (p.targetKnown && p.target == expect) ? 1 : 0;
    }
    EXPECT_EQ(correct, 4);
}

} // namespace
} // namespace cgp
