/**
 * @file
 * Property tests for the code layout engines: both images must be
 * structurally valid (no overlap, alignment, entry-first), and the
 * Pettis-Hansen image must exhibit the two OM properties the paper
 * relies on — fall-through hot paths and caller/callee adjacency.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "codegen/layout.hh"
#include "codegen/profile.hh"
#include "codegen/registry.hh"
#include "util/rng.hh"

namespace cgp
{
namespace
{

FunctionRegistry
makeRegistry(unsigned n, std::uint64_t seed)
{
    FunctionRegistry reg;
    Rng rng(seed);
    for (unsigned i = 0; i < n; ++i) {
        FunctionTraits t;
        switch (rng.nextBelow(4)) {
          case 0:
            t = FunctionTraits::tiny();
            break;
          case 1:
            t = FunctionTraits::small();
            break;
          case 2:
            t = FunctionTraits::medium();
            break;
          default:
            t = FunctionTraits::large();
            break;
        }
        reg.declare("f" + std::to_string(i) + "_" +
                        std::to_string(seed),
                    t);
    }
    return reg;
}

ExecutionProfile
makeProfile(const FunctionRegistry &reg, std::uint64_t seed)
{
    ExecutionProfile p;
    Rng rng(seed);
    const auto n = static_cast<FunctionId>(reg.size());
    for (unsigned e = 0; e < n * 3; ++e) {
        const auto caller = static_cast<FunctionId>(rng.nextBelow(n));
        const auto callee = static_cast<FunctionId>(rng.nextBelow(n));
        if (caller == callee)
            continue;
        const auto w = 1 + rng.nextBelow(100);
        for (std::uint64_t i = 0; i < w; ++i)
            p.onCall(caller, callee);
        p.onEntry(callee);
    }
    // Block edges along each function's hot walk.
    for (const auto &f : reg.functions()) {
        for (std::size_t i = 0; i + 1 < f.hotWalk.size(); ++i) {
            for (int r = 0; r < 5; ++r)
                p.onBlockEdge(f.id, f.hotWalk[i], f.hotWalk[i + 1]);
        }
    }
    return p;
}

/** Validate structural invariants of an image. */
void
checkImage(const FunctionRegistry &reg, const CodeImage &image)
{
    // Every block has a unique, in-bounds, non-overlapping placement.
    std::map<Addr, std::pair<FunctionId, std::uint16_t>> placement;
    for (const auto &f : reg.functions()) {
        // Function starts are cache-line aligned, and equal to the
        // address of the first block in layout order.
        EXPECT_EQ(image.funcStart(f.id) % 32, 0u)
            << "function " << f.name;
        for (std::uint16_t b = 0;
             b < static_cast<std::uint16_t>(f.blocks.size()); ++b) {
            const Addr addr = image.blockAddr(f.id, b);
            EXPECT_GE(addr, CodeImage::textBase);
            EXPECT_LT(addr + f.blocks[b].sizeBytes(),
                      image.textLimit() + 1);
            auto [it, fresh] = placement.emplace(
                addr, std::make_pair(f.id, b));
            EXPECT_TRUE(fresh) << "block address collision";
            (void)it;
        }
    }

    // Walk the placements in address order: intervals must not
    // overlap.
    Addr prev_end = 0;
    for (const auto &[addr, which] : placement) {
        EXPECT_GE(addr, prev_end) << "overlapping blocks";
        const auto &f = reg.function(which.first);
        prev_end = addr + f.blocks[which.second].sizeBytes();
    }

    // Entry block sits at the function start.
    for (const auto &f : reg.functions()) {
        ASSERT_FALSE(f.hotWalk.empty());
        EXPECT_EQ(image.funcStart(f.id),
                  image.blockAddr(f.id, f.hotWalk.front()))
            << "entry not first for " << f.name;
    }

    // The order() list covers every function exactly once.
    std::vector<bool> seen(reg.size(), false);
    for (FunctionId fid : image.order()) {
        ASSERT_LT(fid, reg.size());
        EXPECT_FALSE(seen[fid]);
        seen[fid] = true;
    }
}

class LayoutPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LayoutPropertyTest, OriginalImageIsValid)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    FunctionRegistry reg = makeRegistry(20, seed);
    LayoutBuilder builder(reg);
    checkImage(reg, builder.buildOriginal());
}

TEST_P(LayoutPropertyTest, PettisHansenImageIsValid)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    FunctionRegistry reg = makeRegistry(20, seed);
    const ExecutionProfile profile = makeProfile(reg, seed * 7 + 1);
    LayoutBuilder builder(reg);
    checkImage(reg, builder.buildPettisHansen(profile));
}

TEST_P(LayoutPropertyTest, PettisHansenIsDenserThanOriginal)
{
    const auto seed = static_cast<std::uint64_t>(GetParam());
    FunctionRegistry reg = makeRegistry(24, seed);
    const ExecutionProfile profile = makeProfile(reg, seed * 13 + 5);
    LayoutBuilder builder(reg);
    const CodeImage o5 = builder.buildOriginal();
    const CodeImage om = builder.buildPettisHansen(profile);
    // The OM image drops inter-function padding, so the text segment
    // shrinks.
    EXPECT_LT(om.textLimit(), o5.textLimit());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPropertyTest,
                         ::testing::Range(1, 9));

TEST(Layout, PettisHansenMakesHotWalkFallThrough)
{
    // A function whose hot walk is displaced in the original layout
    // must become (mostly) fall-through under PH.
    FunctionRegistry reg;
    const auto id = reg.declare("hot", FunctionTraits::large());
    const Function &f = reg.function(id);

    ExecutionProfile profile;
    for (std::size_t i = 0; i + 1 < f.hotWalk.size(); ++i) {
        for (int r = 0; r < 100; ++r)
            profile.onBlockEdge(id, f.hotWalk[i], f.hotWalk[i + 1]);
    }

    LayoutBuilder builder(reg);
    const CodeImage om = builder.buildPettisHansen(profile);

    unsigned fallthrough = 0;
    for (std::size_t i = 0; i + 1 < f.hotWalk.size(); ++i) {
        const auto cur = f.hotWalk[i];
        const auto next = f.hotWalk[i + 1];
        const Addr end = om.blockAddr(id, cur) +
            f.blocks[cur].sizeBytes();
        if (om.blockAddr(id, next) == end)
            ++fallthrough;
    }
    // All profiled hot transitions chain contiguously.
    EXPECT_EQ(fallthrough, f.hotWalk.size() - 1);

    // Cold blocks are placed after the hot chain.
    Addr max_hot = 0;
    for (auto h : f.hotWalk)
        max_hot = std::max(max_hot, om.blockAddr(id, h));
    for (std::uint16_t b = 0;
         b < static_cast<std::uint16_t>(f.blocks.size()); ++b) {
        if (f.blocks[b].role == BlockRole::Cold)
            EXPECT_GT(om.blockAddr(id, b), max_hot);
    }
}

TEST(Layout, ClosestIsBestPlacesHeavyPairAdjacent)
{
    FunctionRegistry reg;
    const auto a = reg.declare("caller", FunctionTraits::medium());
    const auto b = reg.declare("callee", FunctionTraits::medium());
    const auto c = reg.declare("stranger", FunctionTraits::medium());

    ExecutionProfile profile;
    for (int i = 0; i < 1000; ++i)
        profile.onCall(a, b);
    profile.onCall(c, a);
    profile.onEntry(a);
    profile.onEntry(b);

    LayoutBuilder builder(reg);
    const CodeImage om = builder.buildPettisHansen(profile);

    // In memory order, callee directly follows caller.
    const auto &order = om.order();
    auto pos = [&order](FunctionId f) {
        return std::find(order.begin(), order.end(), f) -
            order.begin();
    };
    EXPECT_EQ(pos(b), pos(a) + 1);
}

TEST(Layout, UnprofiledFunctionsStillPlaced)
{
    FunctionRegistry reg = makeRegistry(10, 99);
    ExecutionProfile empty;
    LayoutBuilder builder(reg);
    const CodeImage om = builder.buildPettisHansen(empty);
    checkImage(reg, om);
}

TEST(Layout, LayoutKindNames)
{
    EXPECT_STREQ(layoutName(LayoutKind::Original), "O5");
    EXPECT_STREQ(layoutName(LayoutKind::PettisHansen), "O5+OM");
}

} // namespace
} // namespace cgp
