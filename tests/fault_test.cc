/**
 * @file
 * Unit tests for the fault-injection subsystem and the hardening it
 * exists to exercise: the injector's deterministic schedules, WAL
 * per-record checksums and torn-write detection, transient-I/O retry
 * with backoff, the transaction table's rejection of bogus ids, the
 * leveled log ring buffer, and the fail-soft prefetcher wrapper.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "db/heapfile.hh"
#include "db/recovery.hh"
#include "db/txn.hh"
#include "exp/chaosloop.hh"
#include "exp/engine.hh"
#include "fault/fault.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"
#include "prefetch/failsoft.hh"
#include "prefetch/nextline.hh"
#include "util/logging.hh"

namespace cgp
{
namespace
{

// ---------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, RegistryKnowsTheCompiledInPoints)
{
    const auto &points = fault::FaultInjector::crashPoints();
    EXPECT_GE(points.size(), 8u);
    EXPECT_TRUE(fault::FaultInjector::isRegistered("wal.pre_force"));
    EXPECT_TRUE(fault::FaultInjector::isRegistered("prefetch.issue"));
    // The campaign engine's crash points (exp/rundir, exp/engine).
    EXPECT_TRUE(fault::FaultInjector::isRegistered("exp.job"));
    EXPECT_TRUE(fault::FaultInjector::isRegistered("exp.mid_record"));
    EXPECT_TRUE(
        fault::FaultInjector::isRegistered("exp.artifact_write"));
    EXPECT_TRUE(fault::FaultInjector::isRegistered("exp.pre_bench"));
    EXPECT_FALSE(fault::FaultInjector::isRegistered("no.such.point"));
}

TEST(FaultInjector, FiresOnTheScheduledHitOnly)
{
    fault::FaultInjector inj;
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::TransientIo;
    spec.afterHits = 2;
    spec.count = 2;
    inj.arm("volume.write", spec);

    EXPECT_FALSE(inj.hit("volume.write").has_value()); // hit 1
    EXPECT_FALSE(inj.hit("volume.write").has_value()); // hit 2
    EXPECT_EQ(inj.hit("volume.write"),
              fault::FaultKind::TransientIo); // hit 3 fires
    EXPECT_EQ(inj.hit("volume.write"),
              fault::FaultKind::TransientIo); // hit 4 fires
    EXPECT_FALSE(inj.hit("volume.write").has_value()); // budget spent
    EXPECT_EQ(inj.hitCount("volume.write"), 5u);
    ASSERT_EQ(inj.fired().size(), 2u);
    EXPECT_EQ(inj.fired()[0].hitNo, 3u);
}

TEST(FaultInjector, CrashKindThrowsFromTheHit)
{
    fault::FaultInjector inj;
    inj.arm("pool.flush", {fault::FaultKind::Crash, 0, 1});
    try {
        inj.hit("pool.flush");
        FAIL() << "expected CrashInjected";
    } catch (const fault::CrashInjected &e) {
        EXPECT_EQ(e.point(), "pool.flush");
    }
}

TEST(FaultInjector, ContextInjectorWinsOverGlobal)
{
    fault::FaultInjector global_inj;
    fault::FaultInjector local_inj;
    fault::ScopedGlobalInjector guard(global_inj);
    local_inj.arm("volume.read",
                  {fault::FaultKind::TransientIo, 0, 1});

    EXPECT_EQ(fault::hit(&local_inj, "volume.read"),
              fault::FaultKind::TransientIo);
    // The global injector never saw the hit.
    EXPECT_EQ(global_inj.hitCount("volume.read"), 0u);
    // Without a preferred injector the global one is consulted.
    EXPECT_FALSE(fault::hit("volume.read").has_value());
    EXPECT_EQ(global_inj.hitCount("volume.read"), 1u);
}

// ---------------------------------------------------------------
// WAL checksums and torn writes

struct WalFixture
{
    FunctionRegistry reg;
    TraceBuffer buf;
    db::DbContext ctx{reg, buf};
    db::WriteAheadLog log{ctx};
};

TEST(WalChecksum, AppendedRecordsValidate)
{
    WalFixture fx;
    const std::uint8_t redo[] = {1, 2, 3, 4};
    const std::uint8_t undo[] = {9, 8};
    fx.log.append(1, db::LogRecordType::Begin);
    fx.log.append(1, db::LogRecordType::Insert, 0, 0, redo, 4);
    fx.log.append(1, db::LogRecordType::Update, 0, 0, redo, 4, undo,
                  2);
    for (const auto &r : fx.log.records())
        EXPECT_TRUE(db::WriteAheadLog::checksumValid(r))
            << "lsn " << r.lsn;
}

TEST(WalChecksum, TamperingInvalidatesTheRecord)
{
    WalFixture fx;
    const std::uint8_t redo[] = {1, 2, 3, 4};
    fx.log.append(7, db::LogRecordType::Insert, 0, 0, redo, 4);
    db::LogRecord r = fx.log.records().back();
    EXPECT_TRUE(db::WriteAheadLog::checksumValid(r));
    r.payload[2] ^= 0xff;
    EXPECT_FALSE(db::WriteAheadLog::checksumValid(r));
    r.payload[2] ^= 0xff;
    r.txn = 8;
    EXPECT_FALSE(db::WriteAheadLog::checksumValid(r));
}

TEST(WalChecksum, TornRecordReadsBackInvalid)
{
    WalFixture fx;
    const std::uint8_t redo[] = {1, 2, 3, 4, 5, 6};
    const db::Lsn lsn =
        fx.log.append(3, db::LogRecordType::Insert, 0, 0, redo, 6);
    fx.log.tearRecord(lsn);
    EXPECT_FALSE(
        db::WriteAheadLog::checksumValid(fx.log.records().back()));

    // A payload-less record tears too (checksum flip).
    const db::Lsn bare = fx.log.append(3, db::LogRecordType::Commit);
    fx.log.tearRecord(bare);
    EXPECT_FALSE(
        db::WriteAheadLog::checksumValid(fx.log.records().back()));
}

TEST(WalForce, TruncateToDurableDropsTheVolatileTail)
{
    WalFixture fx;
    const std::uint8_t redo[] = {1};
    fx.log.append(1, db::LogRecordType::Begin);
    const db::Lsn forced =
        fx.log.append(1, db::LogRecordType::Insert, 0, 0, redo, 1);
    fx.log.force(forced);
    fx.log.append(1, db::LogRecordType::Commit); // never forced
    EXPECT_EQ(fx.log.records().size(), 3u);

    fx.log.truncateToDurable();
    EXPECT_EQ(fx.log.records().size(), 2u);
    EXPECT_EQ(fx.log.tailLsn(), forced + 1);
}

TEST(WalForce, TransientErrorsAreRetriedWithBackoff)
{
    WalFixture fx;
    fault::FaultInjector inj;
    fx.ctx.fault = &inj;
    inj.arm("wal.pre_force", {fault::FaultKind::TransientIo, 0, 3});

    const db::Lsn lsn = fx.log.append(1, db::LogRecordType::Commit);
    fx.log.force(lsn); // three transient errors, then success
    EXPECT_EQ(fx.log.durableLsn(), lsn);
    EXPECT_EQ(fx.log.forceRetries(), 3u);
}

TEST(WalForce, PersistentTransientErrorEventuallyGivesUp)
{
    WalFixture fx;
    fault::FaultInjector inj;
    fx.ctx.fault = &inj;
    inj.arm("wal.pre_force", {fault::FaultKind::TransientIo, 0, 99});

    const db::Lsn lsn = fx.log.append(1, db::LogRecordType::Commit);
    EXPECT_THROW(fx.log.force(lsn), fault::TransientIoError);
    EXPECT_EQ(fx.log.durableLsn(), 0u);
}

// ---------------------------------------------------------------
// Buffer-pool transient-I/O retry

TEST(PoolRetry, TransientVolumeErrorsAreAbsorbed)
{
    WalFixture fx;
    db::Volume vol(fx.ctx);
    const db::PageId pid = vol.allocPage();

    fault::FaultInjector inj;
    fx.ctx.fault = &inj;
    inj.arm("volume.read", {fault::FaultKind::TransientIo, 0, 2});

    db::BufferPool pool(fx.ctx, vol, 4);
    std::uint8_t *frame = pool.fix(pid); // retried twice, then read
    EXPECT_NE(frame, nullptr);
    EXPECT_EQ(pool.ioRetries(), 2u);
    pool.unfix(pid, false);
}

// ---------------------------------------------------------------
// Transaction table

TEST(TxnTable, UnknownAndFinishedIdsAreRejected)
{
    WalFixture fx;
    db::LockManager locks(fx.ctx);
    db::TransactionManager txns(fx.ctx, locks, fx.log);

    EXPECT_FALSE(txns.commit(42)); // never begun
    EXPECT_FALSE(txns.abort(42));

    const db::TxnId t = txns.begin();
    EXPECT_TRUE(txns.isActive(t));
    EXPECT_EQ(txns.stateOf(t), db::TxnState::Active);
    EXPECT_TRUE(txns.commit(t));
    EXPECT_EQ(txns.stateOf(t), db::TxnState::Committed);
    EXPECT_FALSE(txns.commit(t)); // double commit
    EXPECT_FALSE(txns.abort(t));  // abort after commit
    EXPECT_EQ(txns.active(), 0u);

    const db::TxnId u = txns.begin();
    EXPECT_TRUE(txns.abort(u));
    EXPECT_EQ(txns.stateOf(u), db::TxnState::Aborted);
    EXPECT_FALSE(txns.abort(u)); // double abort
    EXPECT_FALSE(txns.stateOf(99).has_value());
}

TEST(TxnTable, RuntimeAbortRollsBackThroughTheBoundPool)
{
    WalFixture fx;
    db::Volume vol(fx.ctx);
    db::LockManager locks(fx.ctx);
    db::TransactionManager txns(fx.ctx, locks, fx.log);
    db::BufferPool pool(fx.ctx, vol, 8);
    txns.bindPool(&pool);
    db::Schema schema{{{"id", db::ColumnType::Int32, 4},
                       {"payload", db::ColumnType::Char, 16}}};
    db::HeapFile file(fx.ctx, pool, vol, locks, fx.log, &schema);

    auto row = [&](std::int32_t id, const std::string &s) {
        db::Tuple t(&schema);
        t.setInt(0, id);
        t.setString(1, s);
        return t;
    };

    const db::TxnId keeper = txns.begin();
    const db::Rid kept = file.createRec(keeper, row(1, "keep"));
    txns.commit(keeper);

    const db::TxnId loser = txns.begin();
    const db::Rid gone = file.createRec(loser, row(2, "gone"));
    file.updateRec(loser, kept, row(1, "clobbered"));
    txns.abort(loser);

    // The loser's insert is tombstoned and its update undone,
    // in memory, right now — not only after a restart.
    std::uint8_t *frame = pool.fix(gone.page);
    db::SlottedPage page(frame);
    EXPECT_EQ(page.read(gone.slot), nullptr);
    pool.unfix(gone.page, false);

    frame = pool.fix(kept.page);
    db::SlottedPage kept_page(frame);
    const db::Tuple back(&schema, kept_page.read(kept.slot));
    EXPECT_EQ(back.getString(1), "keep");
    pool.unfix(kept.page, false);
}

// ---------------------------------------------------------------
// Logging levels and the ring buffer

TEST(Logging, RingRecordsFilteredLevelsToo)
{
    clearRecentEvents();
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::Error); // print nothing below Error
    cgp_debug("quiet debug ", 1);
    cgp_inform("quiet info");
    cgp_warn("quiet warn");
    cgp_error("loud error");
    setLogLevel(prev);

    const auto events = recentEvents();
    ASSERT_GE(events.size(), 4u);
    const auto &tail4 = events[events.size() - 4];
    EXPECT_EQ(tail4.level, LogLevel::Debug);
    EXPECT_NE(tail4.message.find("quiet debug 1"), std::string::npos);
    EXPECT_EQ(events.back().level, LogLevel::Error);
    EXPECT_NE(events.back().message.find("loud error"),
              std::string::npos);
    // Sequence numbers increase monotonically.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].seq, events[i - 1].seq);
}

TEST(Logging, RingKeepsOnlyTheLastNEvents)
{
    setLogRingCapacity(4);
    const LogLevel prev = logLevel();
    setLogLevel(LogLevel::Error); // keep the test run quiet
    for (int i = 0; i < 10; ++i)
        cgp_inform("event ", i);
    setLogLevel(prev);

    const auto events = recentEvents();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_NE(events[0].message.find("event 6"), std::string::npos);
    EXPECT_NE(events[3].message.find("event 9"), std::string::npos);

    setLogRingCapacity(256); // restore the default for other tests
}

// ---------------------------------------------------------------
// Fail-soft prefetcher and simulator degradation

TEST(FailSoft, PrefetcherFaultDegradesToNoPrefetchNotACrash)
{
    CacheConfig cache_cfg;
    cache_cfg.name = "l1i";
    Cache l1i(cache_cfg, nullptr, nullptr);
    auto inner = std::make_unique<NextNLinePrefetcher>(l1i, 2);
    FailSoftPrefetcher pf(std::move(inner));

    fault::FaultInjector inj;
    fault::ScopedGlobalInjector guard(inj);
    inj.arm("prefetch.issue", {fault::FaultKind::TransientIo, 1, 1});

    pf.onFetchLine(0x1000, 1); // healthy
    EXPECT_FALSE(pf.degraded());
    pf.onFetchLine(0x2000, 2); // fault fires; absorbed
    EXPECT_TRUE(pf.degraded());
    EXPECT_FALSE(pf.reason().empty());
    EXPECT_STREQ(pf.name(), "none (degraded)");
    pf.onFetchLine(0x3000, 3); // no-op now, must not throw
}

TEST(FailSoft, SimulationSurvivesAnInjectedPrefetchFault)
{
    fault::FaultInjector inj;
    fault::ScopedGlobalInjector guard(inj);
    inj.arm("prefetch.issue", {fault::FaultKind::TransientIo, 10, 1});

    spec::SpecProgramSpec spec;
    spec.name = "fault-proxy";
    spec.functions = 40;
    spec.hotFunctions = 20;
    spec.workPerCall = 60.0;
    spec.trainInstrs = 60'000;
    spec.testInstrs = 20'000;
    const Workload wl = WorkloadFactory::buildSpec(spec);

    const SimResult r = runSimulation(
        wl, SimConfig::withNL(LayoutKind::Original, 4));

    EXPECT_TRUE(r.prefetchDegraded);
    EXPECT_FALSE(r.degradedReason.empty());
    EXPECT_GT(r.instrs, 0u); // the run completed regardless

    // The same run with nothing armed stays healthy.
    inj.disarmAll();
    const SimResult clean = runSimulation(
        wl, SimConfig::withNL(LayoutKind::Original, 4));
    EXPECT_FALSE(clean.prefetchDegraded);
}

// ---------------------------------------------------------------
// Chaos loop: the kill/resume/corrupt audit over the campaign
// engine (exp/chaosloop), on a tiny in-memory campaign.

TEST(ChaosLoop, ConvergesByteIdenticalThroughKillsAndCorruption)
{
    exp::CampaignSpec campaign;
    campaign.name = "chaos-unit";
    campaign.workloads = {"chaos-a", "chaos-b"};
    campaign.explicitConfigs = {
        SimConfig::o5Om(),
        SimConfig::withCgp(LayoutKind::PettisHansen, 4)};

    auto make = [](const char *name, unsigned funcs) {
        spec::SpecProgramSpec s;
        s.name = name;
        s.functions = funcs;
        s.hotFunctions = funcs / 2;
        s.workPerCall = 50.0;
        s.trainInstrs = 60'000;
        s.testInstrs = 15'000;
        return WorkloadFactory::buildSpec(s);
    };
    exp::InMemoryProvider provider(
        {make("chaos-a", 40), make("chaos-b", 60)});

    exp::ChaosLoopConfig config;
    config.cycles = 25;
    config.threads = 2;
    config.retries = 2;
    config.dir = (std::filesystem::temp_directory_path() /
                  "cgp-chaos-unit")
                     .string();

    exp::ChaosLoopHarness harness(campaign, provider, config);
    const exp::ChaosLoopResult result = harness.run();

    EXPECT_EQ(result.cycles, 25u);
    EXPECT_TRUE(result.identical) << result.mismatch;
    // The audit is vacuous unless the loop actually hurt the run.
    EXPECT_GE(result.crashes, 1u);
    EXPECT_GE(result.corruptions, 1u);
    EXPECT_GE(result.quarantined, 1u);
    std::filesystem::remove_all(config.dir);

    exp::ChaosLoopConfig bad;
    EXPECT_THROW(
        exp::ChaosLoopHarness(campaign, provider, bad).run(),
        std::invalid_argument);
}

} // namespace
} // namespace cgp
