/**
 * @file
 * Tests of the multi-core DB server model (src/server): the N=1
 * single-stream golden contract against the legacy path, the
 * byte-compat shim over the deprecated trace/interleave merger,
 * scheduler fairness and starvation bounds, Zipf-mix and think-time
 * determinism, shared-L2 multi-owner guards, and the SimResult
 * server-stats serialization round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "harness/report.hh"
#include "harness/simulator.hh"
#include "harness/workload.hh"
#include "mem/hierarchy.hh"
#include "server/compat.hh"
#include "server/scheduler.hh"
#include "server/stats.hh"
#include "trace/interleave.hh"
#include "trace/recorder.hh"
#include "util/rng.hh"

namespace cgp
{
namespace
{

Workload
smokeWorkload()
{
    spec::SpecProgramSpec s;
    s.name = "server-test";
    s.functions = 40;
    s.hotFunctions = 20;
    s.workPerCall = 60.0;
    s.trainInstrs = 60'000;
    s.testInstrs = 20'000;
    return WorkloadFactory::buildSpec(s);
}

/** The config exercised by the golden contract: every subsystem on
 *  (CGP, D-combined, shared arbiter). */
SimConfig
fullConfig()
{
    return SimConfig::withIPlusD(DataPrefetchKind::Combined, true);
}

// ---------------------------------------------------------------
// N = 1 golden contract
// ---------------------------------------------------------------

TEST(ServerGolden, SingleStreamRunIsByteIdenticalToLegacyPath)
{
    const Workload w = smokeWorkload();

    const SimConfig legacy_cfg = fullConfig();
    const SimResult legacy = runSimulation(w, legacy_cfg);

    SimConfig srv_cfg = fullConfig();
    srv_cfg.server.enabled = true;
    srv_cfg.server.singleStream = true;
    srv_cfg.server.cores = 1;
    srv_cfg.server.sessions = 1;
    SimResult srv = runSimulation(w, srv_cfg);

    ASSERT_TRUE(srv.serverEnabled);
    // Normalize the fields that legitimately differ — the config
    // label carries the +srv suffix and the server block only exists
    // on the server run — then demand byte identity.
    srv.config = legacy.config;
    srv.serverEnabled = false;
    srv.server = server::ServerStats{};
    EXPECT_EQ(toJson(legacy).dump(2), toJson(srv).dump(2));
    EXPECT_TRUE(legacy == srv);
}

// ---------------------------------------------------------------
// Legacy-interleave shim
// ---------------------------------------------------------------

TraceBuffer
queryTrace(FunctionId fid, unsigned works, std::uint32_t perWork)
{
    TraceBuffer buf;
    TraceRecorder rec(buf);
    TraceScope s(rec, fid);
    for (unsigned i = 0; i < works; ++i) {
        s.work(perWork);
        s.branch(i % 2 == 0);
    }
    return buf;
}

TEST(ServerCompat, ShimReproducesLegacyInterleaveExactly)
{
    const TraceBuffer a = queryTrace(1, 40, 500);
    const TraceBuffer b = queryTrace(2, 25, 900);
    const TraceBuffer c = queryTrace(3, 60, 300);
    const std::vector<const TraceBuffer *> threads = {&a, &b, &c};

    // The reference: the deprecated merger with a live onSwitch
    // callback recording the scheduler stub.
    InterleaveConfig cfg;
    cfg.quantumInstrs = 6000;
    cfg.onSwitch = [](TraceRecorder &rec) {
        TraceScope s(rec, 7);
        s.work(60);
        s.branch(true);
        {
            TraceScope save(rec, 8);
            save.work(35);
        }
        s.work(20);
    };
    const TraceBuffer expected = interleaveTraces(threads, cfg);

    // The shim: the same stub pre-recorded once, replayed per bind.
    TraceBuffer stub;
    {
        TraceRecorder rec(stub);
        TraceScope s(rec, 7);
        s.work(60);
        s.branch(true);
        {
            TraceScope save(rec, 8);
            save.work(35);
        }
        s.work(20);
    }
    const TraceBuffer merged =
        server::legacyMerge(threads, 6000, &stub);

    ASSERT_EQ(expected.size(), merged.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(expected.at(i).raw(), merged.at(i).raw())
            << "event " << i;
    }
}

TEST(ServerCompat, ShimWithoutStubMatchesLegacyWithoutOnSwitch)
{
    const TraceBuffer a = queryTrace(1, 10, 400);
    const TraceBuffer b = queryTrace(2, 12, 350);
    const std::vector<const TraceBuffer *> threads = {&a, &b};

    InterleaveConfig cfg;
    cfg.quantumInstrs = 2000;
    const TraceBuffer expected = interleaveTraces(threads, cfg);
    const TraceBuffer merged =
        server::legacyMerge(threads, 2000, nullptr);

    ASSERT_EQ(expected.size(), merged.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(expected.at(i).raw(), merged.at(i).raw());
}

// ---------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------

server::ServerConfig
schedConfig(unsigned cores, unsigned sessions)
{
    server::ServerConfig c;
    c.enabled = true;
    c.cores = cores;
    c.sessions = sessions;
    c.thinkMeanCycles = 0.0; // everyone ready at once
    c.queriesPerSession = 1'000'000;
    return c;
}

TEST(ServerScheduler, EverySessionDispatchedWithinStarvationBound)
{
    const unsigned kSessions = 6;
    server::AdmissionScheduler sched(schedConfig(1, kSessions), 4);
    sched.wake(1);

    // Single core, all sessions ready: repeatedly dispatch and
    // requeue.  The double-FIFO bound: between two dispatches of one
    // session every other session runs at most once and at most one
    // new session is admitted, so no gap may exceed sessions + 1.
    std::map<std::uint64_t, int> last;
    const int kRounds = 200;
    for (int i = 0; i < kRounds; ++i) {
        server::ClientSession *s = sched.dequeue(1, 0);
        ASSERT_NE(s, nullptr);
        const auto it = last.find(s->id);
        if (it != last.end()) {
            EXPECT_LE(i - it->second, kSessions + 1)
                << "session " << s->id << " starved";
        }
        last[s->id] = i;
        sched.requeue(*s, 0);
    }
    EXPECT_EQ(last.size(), kSessions); // everyone ran
}

TEST(ServerScheduler, DrainingStopsAdmissionButFinishesRunning)
{
    server::ServerConfig cfg = schedConfig(1, 3);
    cfg.queriesPerSession = 0;
    cfg.totalQueries = 1;
    server::AdmissionScheduler sched(cfg, 4);
    sched.wake(1);

    server::ClientSession *running = sched.dequeue(1, 0);
    ASSERT_NE(running, nullptr);
    running->cursor = 10; // mid-query
    EXPECT_FALSE(sched.draining());

    sched.onQueryComplete(*running, 100);
    EXPECT_TRUE(sched.draining());

    // The remaining fresh sessions retire instead of dispatching —
    // one per dequeue poll, as an idle core polls once per cycle.
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(sched.dequeue(101, 0), nullptr);
    EXPECT_TRUE(sched.allRetired());
    EXPECT_EQ(sched.queriesServed(), 1u);
}

TEST(ServerScheduler, LatenciesMeasureSubmitToCompletion)
{
    server::ServerConfig cfg = schedConfig(1, 1);
    server::AdmissionScheduler sched(cfg, 4);
    sched.wake(5); // think mean 0: submits at cycle 5
    server::ClientSession *s = sched.dequeue(5, 0);
    ASSERT_NE(s, nullptr);
    sched.onQueryComplete(*s, 905);
    ASSERT_EQ(sched.latencies().size(), 1u);
    EXPECT_EQ(sched.latencies()[0], 900u);
}

// ---------------------------------------------------------------
// Determinism of the stochastic inputs
// ---------------------------------------------------------------

TEST(ServerDeterminism, SessionStreamsReplayFromTheirSeed)
{
    const std::uint64_t base = 0x5e55;
    for (std::uint64_t id : {0ull, 1ull, 17ull}) {
        Rng a(server::AdmissionScheduler::sessionSeed(base, id));
        Rng b(server::AdmissionScheduler::sessionSeed(base, id));
        for (int i = 0; i < 100; ++i) {
            EXPECT_EQ(server::AdmissionScheduler::drawThink(a, 5e4),
                      server::AdmissionScheduler::drawThink(b, 5e4));
        }
    }
    // Different sessions get different streams.
    Rng a(server::AdmissionScheduler::sessionSeed(base, 0));
    Rng b(server::AdmissionScheduler::sessionSeed(base, 1));
    bool differ = false;
    for (int i = 0; i < 16 && !differ; ++i) {
        differ = server::AdmissionScheduler::drawThink(a, 5e4) !=
            server::AdmissionScheduler::drawThink(b, 5e4);
    }
    EXPECT_TRUE(differ);
}

TEST(ServerDeterminism, ZipfMixIsSeededAndSkewed)
{
    const std::size_t kQueries = 8;
    ZipfGenerator zipf(kQueries, 0.99);

    Rng a(42), b(42);
    std::vector<std::uint64_t> seq_a, seq_b;
    std::vector<std::uint64_t> counts(kQueries, 0);
    for (int i = 0; i < 4000; ++i) {
        seq_a.push_back(zipf.next(a));
        seq_b.push_back(zipf.next(b));
        ++counts[seq_a.back()];
    }
    EXPECT_EQ(seq_a, seq_b); // same seed, same mix
    // theta = 0.99 over 8 queries: rank 0 clearly dominates the tail.
    EXPECT_GT(counts[0], 2 * counts[kQueries - 1]);
}

TEST(ServerDeterminism, AdmissionRunsAreReproducible)
{
    const Workload w = smokeWorkload();
    SimConfig cfg = SimConfig::withServer(
        SimConfig::withCgp(LayoutKind::PettisHansen, 4), 2, 6, 3);
    cfg.server.quantumInstrs = 8000;
    cfg.server.thinkMeanCycles = 5000.0;

    const SimResult r1 = runSimulation(w, cfg);
    const SimResult r2 = runSimulation(w, cfg);
    EXPECT_TRUE(r1 == r2);
    EXPECT_EQ(toJson(r1).dump(2), toJson(r2).dump(2));

    ASSERT_TRUE(r1.serverEnabled);
    EXPECT_EQ(r1.server.cores, 2u);
    EXPECT_EQ(r1.server.perCore.size(), 2u);
    EXPECT_GE(r1.server.queriesServed, 3u);
    EXPECT_GT(r1.server.binds, 0u);
}

// ---------------------------------------------------------------
// Shared L2 multi-owner guards
// ---------------------------------------------------------------

TEST(ServerSharedL2, TwoBorrowersTickAndFinalizeOnce)
{
    HierarchyConfig cfg;
    SharedL2 shared(cfg.l2);
    MemoryHierarchy m0(cfg, shared, 0);
    MemoryHierarchy m1(cfg, shared, 1);
    EXPECT_FALSE(m0.ownsL2());
    EXPECT_FALSE(m1.ownsL2());
    EXPECT_EQ(&m0.l2(), &m1.l2());
    EXPECT_EQ(&m0.port(), &m1.port());

    // Both cores tick the same cycle — the SharedL2 guard makes the
    // second call a no-op rather than double-draining fills.
    for (Cycle now = 1; now <= 64; ++now) {
        m0.tick(now);
        m1.tick(now);
    }

    // Borrowers never finalize the L2; the owner does, idempotently.
    m0.finalize();
    m1.finalize();
    shared.finalize();
    shared.finalize();
    const auto misses = m0.l2().demandMisses();
    EXPECT_EQ(misses, m1.l2().demandMisses());
}

TEST(ServerSharedL2, PortAttributesWaitsPerRequester)
{
    SharedL2 shared(CacheConfig{"l2", 1024 * 1024, 4, 32, 16});
    MemoryPort &port = shared.port();
    // Two requesters hammer the same cycle: the FIFO serializes them
    // and charges the queueing delay to the right core.
    port.request(10, 0);
    port.request(10, 1);
    port.request(10, 1);
    EXPECT_EQ(port.requestsBy(0), 1u);
    EXPECT_EQ(port.requestsBy(1), 2u);
    EXPECT_EQ(port.waitCyclesBy(0) + port.waitCyclesBy(1),
              port.waitCycles());
    EXPECT_GT(port.waitCyclesBy(1), 0u);
}

// ---------------------------------------------------------------
// Stats plumbing
// ---------------------------------------------------------------

TEST(ServerStats, PercentileIsNearestRank)
{
    using server::percentile;
    EXPECT_EQ(percentile({}, 50.0), 0u);
    const std::vector<std::uint64_t> one = {7};
    EXPECT_EQ(percentile(one, 50.0), 7u);
    EXPECT_EQ(percentile(one, 99.0), 7u);
    std::vector<std::uint64_t> v;
    for (std::uint64_t i = 1; i <= 100; ++i)
        v.push_back(i * 10);
    EXPECT_EQ(percentile(v, 50.0), 500u);
    EXPECT_EQ(percentile(v, 95.0), 950u);
    EXPECT_EQ(percentile(v, 99.0), 990u);
    EXPECT_EQ(percentile(v, 100.0), 1000u);
}

TEST(ServerStats, PercentileEdgeCasesAreTotal)
{
    using server::percentile;
    // Empty sample: 0 for any q, finite or not.
    EXPECT_EQ(percentile({}, 0.0), 0u);
    EXPECT_EQ(percentile({}, 100.0), 0u);
    EXPECT_EQ(percentile({}, std::nan("")), 0u);

    // Single sample: every q selects it.
    const std::vector<std::uint64_t> one = {42};
    EXPECT_EQ(percentile(one, 0.0), 42u);
    EXPECT_EQ(percentile(one, 100.0), 42u);
    EXPECT_EQ(percentile(one, std::nan("")), 42u);

    // Boundaries: q = 0 is the minimum, q = 100 the maximum, and
    // out-of-range / non-finite q never reaches the float-to-int
    // cast (UB for NaN) — it is clamped (NaN is treated as 0).
    const std::vector<std::uint64_t> v = {10, 20, 30, 40};
    EXPECT_EQ(percentile(v, 0.0), 10u);
    EXPECT_EQ(percentile(v, 100.0), 40u);
    EXPECT_EQ(percentile(v, -5.0), 10u);
    EXPECT_EQ(percentile(v, 250.0), 40u);
    EXPECT_EQ(percentile(v, std::nan("")), 10u);
    EXPECT_EQ(
        percentile(v, std::numeric_limits<double>::infinity()),
        10u);
}

TEST(ServerDrain, TotalQueriesFloorStopsTheRun)
{
    // The drain path end to end: with a totalQueries floor the
    // scheduler stops admitting once the floor is reached, running
    // queries finish, and the machine winds down.  The floor is a
    // floor — queries in flight at the drain transition complete,
    // so the served count may exceed it by at most the core count.
    const Workload w = smokeWorkload();
    const SimConfig cfg =
        SimConfig::withServer(SimConfig::o5(), 2, 4, 3);
    const SimResult r = runSimulation(w, cfg);
    ASSERT_TRUE(r.serverEnabled);
    EXPECT_GE(r.server.queriesServed, 3u);
    EXPECT_LE(r.server.queriesServed, 3u + r.server.cores);
    EXPECT_GT(r.cycles, 0u);
    // Latency percentiles come from the served set only.
    EXPECT_GT(r.server.latencyP50, 0u);
    EXPECT_LE(r.server.latencyP50, r.server.latencyP99);
}

TEST(ServerStats, SimResultServerBlockRoundTripsThroughJson)
{
    SimResult r;
    r.workload = "w";
    r.config = "c+srv2c8s";
    r.cycles = 123456;
    r.instrs = 98765;
    r.serverEnabled = true;
    r.server.cores = 2;
    r.server.sessions = 8;
    r.server.cycles = 123456;
    r.server.queriesServed = 17;
    r.server.binds = 40;
    r.server.latencyP50 = 1000;
    r.server.latencyP95 = 5000;
    r.server.latencyP99 = 9000;
    r.server.portWaitCycles = 321;
    for (unsigned i = 0; i < 2; ++i) {
        server::ServerCoreStats c;
        c.cycles = 123456;
        c.instrs = 4000 + i;
        c.idleCycles = 100 * (i + 1);
        c.icacheAccesses = 11;
        c.icacheMisses = 2;
        c.dcacheAccesses = 22;
        c.dcacheMisses = 3;
        c.busLines = 44;
        c.portWaitCycles = 5;
        c.queries = 8 + i;
        c.binds = 20 + i;
        r.server.perCore.push_back(c);
    }

    const SimResult back = simResultFromJson(toJson(r));
    EXPECT_TRUE(back == r);
    EXPECT_EQ(toJson(back).dump(2), toJson(r).dump(2));

    // A legacy result keeps its byte-identical JSON: no server key.
    SimResult plain;
    plain.workload = "w";
    plain.config = "c";
    EXPECT_EQ(toJson(plain).find("server"), nullptr);
    EXPECT_FALSE(simResultFromJson(toJson(plain)).serverEnabled);
}

} // anonymous namespace
} // namespace cgp
