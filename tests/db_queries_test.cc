/**
 * @file
 * Workload-level tests: the Wisconsin generator/queries and the
 * TPC-H generator/queries produce correct data and plausible result
 * cardinalities while recording well-formed traces.
 */

#include <gtest/gtest.h>

#include <set>

#include "db/dbsys.hh"
#include "db/ops/scan.hh"
#include "db/tpch.hh"
#include "db/wisconsin.hh"

namespace cgp::db
{
namespace
{

TEST(Wisconsin, GeneratorProducesStandardColumns)
{
    FunctionRegistry reg;
    TraceBuffer scratch;
    DbSystem db(reg, scratch);
    const std::uint32_t n = 500;
    Wisconsin::load(db, n);

    TableInfo &big1 = db.catalog().table("big1");
    EXPECT_EQ(big1.file->recordCount(), n);
    EXPECT_EQ(db.catalog().table("big2").file->recordCount(), n);
    EXPECT_EQ(db.catalog().table("small").file->recordCount(),
              n / 10);

    // unique1 is a permutation of 0..n-1; unique2 is sequential;
    // derived columns are consistent.
    const TxnId txn = db.txns().begin();
    HeapFile::Scan scan(*big1.file, txn);
    Tuple t;
    std::set<std::int32_t> u1s;
    std::int32_t expect_u2 = 0;
    while (scan.next(t)) {
        const auto u1 = t.getInt(0);
        EXPECT_TRUE(u1s.insert(u1).second);
        EXPECT_GE(u1, 0);
        EXPECT_LT(u1, static_cast<std::int32_t>(n));
        EXPECT_EQ(t.getInt(1), expect_u2++);
        EXPECT_EQ(t.getInt(2), u1 % 2);          // two
        EXPECT_EQ(t.getInt(3), u1 % 4);          // four
        EXPECT_EQ(t.getInt(6), u1 % 100);        // onePercent
        EXPECT_EQ(t.getInt(10), u1);             // unique3
        EXPECT_EQ(t.getInt(11), (u1 % 100) * 2); // evenOnePercent
    }
    scan.close();
    EXPECT_EQ(u1s.size(), n);
    db.txns().commit(txn);

    EXPECT_TRUE(db.catalog().hasIndex("big1", "unique1"));
    EXPECT_TRUE(db.catalog().hasIndex("big1", "unique2"));
}

class WisconsinQueryTest : public ::testing::TestWithParam<int>
{
  protected:
    static constexpr std::uint32_t n = 1000;

    static DbSystem &
    db()
    {
        static FunctionRegistry reg;
        static TraceBuffer scratch;
        static DbSystem instance(reg, scratch);
        static bool loaded = false;
        if (!loaded) {
            Wisconsin::load(instance, n);
            loaded = true;
        }
        return instance;
    }
};

TEST_P(WisconsinQueryTest, CardinalityMatchesSelectivity)
{
    const int q = GetParam();
    TraceBuffer buf;
    db().record(buf);
    Rng rng(1234 + static_cast<std::uint64_t>(q));
    const std::uint64_t rows = Wisconsin::runQuery(db(), q, n, rng);

    switch (q) {
      case 1: // 1% selection
      case 3:
      case 5:
        EXPECT_EQ(rows, n / 100);
        break;
      case 2: // 10% selection
      case 4:
      case 6:
        EXPECT_EQ(rows, n / 10);
        break;
      case 7: // single tuple
        EXPECT_EQ(rows, 1u);
        break;
      case 9: // join with a 10% selection on one side
        EXPECT_EQ(rows, n / 10);
        break;
    }
    // The query left a non-trivial balanced trace behind.
    EXPECT_GT(buf.size(), 100u);
    EXPECT_GT(buf.calls(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Queries, WisconsinQueryTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 9));

TEST(Wisconsin, QueryNamesAreDescriptive)
{
    EXPECT_NE(std::string(Wisconsin::queryName(1)).find("1%"),
              std::string::npos);
    EXPECT_NE(std::string(Wisconsin::queryName(9)).find("join"),
              std::string::npos);
}

struct TpchFixture
{
    FunctionRegistry reg;
    TraceBuffer scratch;
    DbSystem db{reg, scratch};
    Tpch::Scale scale = Tpch::Scale::fromLineitems(2000);

    TpchFixture() { Tpch::load(db, scale); }
};

TEST(Tpch, GeneratorRespectsScaleAndSchema)
{
    TpchFixture fx;
    EXPECT_EQ(fx.db.catalog().table("lineitem").file->recordCount(),
              fx.scale.lineitem);
    EXPECT_EQ(fx.db.catalog().table("orders").file->recordCount(),
              fx.scale.orders);
    EXPECT_EQ(fx.db.catalog().table("customer").file->recordCount(),
              fx.scale.customer);
    EXPECT_EQ(fx.db.catalog().table("nation").file->recordCount(),
              25u);
    EXPECT_EQ(fx.db.catalog().table("region").file->recordCount(),
              5u);

    // Foreign keys stay in range.
    const TxnId txn = fx.db.txns().begin();
    HeapFile::Scan scan(*fx.db.catalog().table("lineitem").file,
                        txn);
    Tuple t;
    const Schema &li = *fx.db.catalog().table("lineitem").schema;
    while (scan.next(t)) {
        EXPECT_LT(t.getInt(li.indexOf("orderkey")),
                  static_cast<std::int32_t>(fx.scale.orders));
        EXPECT_LT(t.getInt(li.indexOf("suppkey")),
                  static_cast<std::int32_t>(fx.scale.supplier));
        EXPECT_GE(t.getInt(li.indexOf("shipdate")), 1);
        EXPECT_LE(t.getInt(li.indexOf("shipdate")), Tpch::maxDate);
    }
    scan.close();
    fx.db.txns().commit(txn);
}

class TpchQueryTest : public ::testing::TestWithParam<int>
{
};

TEST_P(TpchQueryTest, QueriesRunAndProduceRows)
{
    static TpchFixture fx;
    const int q = GetParam();
    TraceBuffer buf;
    fx.db.record(buf);
    Rng rng(77 + static_cast<std::uint64_t>(q));
    const std::uint64_t rows =
        Tpch::runQuery(fx.db, q, fx.scale, rng);

    switch (q) {
      case 1:
        // Group by (returnflag x linestatus): at most 6 groups.
        EXPECT_GE(rows, 1u);
        EXPECT_LE(rows, 6u);
        break;
      case 6:
        EXPECT_EQ(rows, 1u); // scalar aggregate
        break;
      case 3:
        EXPECT_LE(rows, 10u); // top-10
        break;
      case 2:
        EXPECT_GE(rows, 1u);
        break;
      case 5:
        // Revenue groups by nation: bounded by the nation count;
        // at tiny scales zero local-supplier matches is legitimate.
        EXPECT_LE(rows, 25u);
        break;
    }
    EXPECT_GT(buf.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Queries, TpchQueryTest,
                         ::testing::Values(1, 2, 3, 5, 6));

TEST(Tpch, ScaleDerivation)
{
    const auto s = Tpch::Scale::fromLineitems(8000);
    EXPECT_EQ(s.lineitem, 8000u);
    EXPECT_EQ(s.orders, 2000u);
    EXPECT_EQ(s.partsupp, s.part * 2);
    // Floors keep tiny scales usable.
    const auto tiny = Tpch::Scale::fromLineitems(1);
    EXPECT_GE(tiny.lineitem, 400u);
    EXPECT_GE(tiny.customer, 20u);
}

} // namespace
} // namespace cgp::db
