/**
 * @file
 * Unit tests for the util module: RNG determinism and distribution
 * sanity, bit helpers, statistics plumbing, table formatting, and
 * the panic/fatal error paths.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "util/bitops.hh"
#include "util/crc.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "util/watchdog.hh"

namespace cgp
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversDomain)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliApproximatesP)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.nextBool(0.3))
            ++hits;
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GeometricMeanApproximatesTarget)
{
    Rng rng(19);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(40.0));
    EXPECT_NEAR(sum / n, 40.0, 3.0);
}

TEST(Rng, GeometricNeverZero)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.nextGeometric(1.5), 1u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto w = v;
    rng.shuffle(w);
    auto ws = w;
    std::sort(ws.begin(), ws.end());
    EXPECT_EQ(ws, v);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(31);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Zipf, SkewsTowardLowRanks)
{
    Rng rng(37);
    ZipfGenerator zipf(100, 0.99);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 10000; ++i) {
        const auto v = zipf.next(rng);
        ASSERT_LT(v, 100u);
        if (v < 10)
            ++low;
        if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 3);
}

TEST(Bitops, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

TEST(Bitops, FloorAndCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bitops, Alignment)
{
    EXPECT_EQ(alignDown(37, 32), 32u);
    EXPECT_EQ(alignUp(37, 32), 64u);
    EXPECT_EQ(alignUp(64, 32), 64u);
    EXPECT_EQ(alignDown(64, 32), 64u);
}

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionBuckets)
{
    Distribution d(0, 99, 10);
    d.sample(5);
    d.sample(15, 2);
    d.sample(200); // overflow
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 2u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.minValue(), 5u);
    EXPECT_EQ(d.maxValue(), 200u);
    EXPECT_NEAR(d.mean(), (5 + 15 * 2 + 200) / 4.0, 1e-9);
}

TEST(Stats, GroupLookupAndDump)
{
    Counter hits, misses;
    hits += 30;
    misses += 10;
    StatGroup g("cache");
    g.addCounter("hits", &hits, "hits");
    g.addCounter("misses", &misses, "misses");
    g.addFormula(
        "ratio",
        [&]() {
            return static_cast<double>(misses.value()) /
                static_cast<double>(hits.value() + misses.value());
        },
        "miss ratio");

    EXPECT_EQ(g.counterValue("hits"), 30u);
    EXPECT_TRUE(g.hasCounter("misses"));
    EXPECT_FALSE(g.hasCounter("nope"));
    EXPECT_NEAR(g.formulaValue("ratio"), 0.25, 1e-9);

    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("hits"), std::string::npos);
    EXPECT_NE(os.str().find("30"), std::string::npos);
}

TEST(Stats, GroupChildDump)
{
    Counter c;
    StatGroup parent("parent"), child("child");
    child.addCounter("c", &c, "desc");
    parent.addChild(&child);
    std::ostringstream os;
    parent.dump(os);
    EXPECT_NE(os.str().find("child"), std::string::npos);
}

TEST(Table, FormatHelpers)
{
    EXPECT_EQ(TablePrinter::num(1234567), "1,234,567");
    EXPECT_EQ(TablePrinter::num(12), "12");
    EXPECT_EQ(TablePrinter::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::percent(0.256, 1), "25.6%");
}

TEST(Table, RendersAlignedRows)
{
    TablePrinter t("title");
    t.setHeader({"a", "bbbb"});
    t.addRow({"x", "1"});
    t.addRule();
    t.addRow({"longer", "2"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
}

TEST(Logging, PanicThrowsInTestMode)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(cgp_panic("boom ", 42), std::logic_error);
    EXPECT_THROW(cgp_fatal("bad config"), std::runtime_error);
    EXPECT_THROW(cgp_assert(1 == 2, "math broke"), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Crc32, MatchesTheIeeeKnownAnswer)
{
    // The CRC32 check value every IEEE 802.3 implementation must
    // reproduce.
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0x00000000u);
}

TEST(Crc32, IncrementalEqualsOneShot)
{
    const std::string text = "the quick brown fox";
    std::uint32_t state = crc32Init;
    state = crc32Update(state, text.substr(0, 7));
    state = crc32Update(state, text.substr(7));
    EXPECT_EQ(crc32Final(state), crc32(text));
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::string text = "{\"cycles\": 123456, \"instrs\": 7890}";
    const std::uint32_t clean = crc32(text);
    for (std::size_t i = 0; i < text.size(); ++i) {
        std::string flipped = text;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
        EXPECT_NE(crc32(flipped), clean) << "flip at " << i;
    }
    // Truncation is also caught.
    EXPECT_NE(crc32(text.substr(0, text.size() / 2)), clean);
}

TEST(Watchdog, CancelTokenRoundTrip)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.reset();
    EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, ScopedTokenBindsThread)
{
    EXPECT_FALSE(cancelRequested()); // no token installed
    CancelToken token;
    {
        ScopedCancelToken scoped(token);
        EXPECT_FALSE(cancelRequested());
        token.cancel();
        EXPECT_TRUE(cancelRequested());
    }
    // Uninstalled on scope exit.
    EXPECT_FALSE(cancelRequested());
}

} // namespace
} // namespace cgp
