/**
 * @file
 * Tests for the experiment-campaign subsystem: spec expansion, the
 * work-stealing scheduler, engine determinism across thread counts
 * (byte-identical run directories), and fault-injected kill/resume.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exp/campaign.hh"
#include "exp/campaigns.hh"
#include "exp/engine.hh"
#include "exp/rundir.hh"
#include "exp/scheduler.hh"
#include "fault/fault.hh"
#include "harness/workload.hh"

namespace cgp::exp
{
namespace
{

namespace fs = std::filesystem;

AxisPoint
depthPoint(const std::string &label, unsigned depth)
{
    return AxisPoint{label,
                     [depth](SimConfig &c) { c.depth = depth; }};
}

CampaignSpec
twoAxisSpec(SweepMode mode)
{
    CampaignSpec s;
    s.name = "t";
    s.workloads = {"w1", "w2"};
    s.base = SimConfig::withCgp(LayoutKind::PettisHansen, 1);
    ConfigAxis depth{"depth", {depthPoint("D2", 2),
                               depthPoint("D4", 4)}};
    ConfigAxis layout{
        "layout",
        {{"OM", [](SimConfig &c) {
              c.layout = LayoutKind::PettisHansen;
          }},
         {"O5", [](SimConfig &c) {
              c.layout = LayoutKind::Original;
          }}}};
    s.axes = {depth, layout};
    s.mode = mode;
    return s;
}

TEST(Campaign, CartesianExpansionFirstAxisSlowest)
{
    const auto configs = expandConfigs(twoAxisSpec(
        SweepMode::Cartesian));
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0].label, "D2+OM");
    EXPECT_EQ(configs[1].label, "D2+O5");
    EXPECT_EQ(configs[2].label, "D4+OM");
    EXPECT_EQ(configs[3].label, "D4+O5");
    EXPECT_EQ(configs[0].config.depth, 2u);
    EXPECT_EQ(configs[3].config.depth, 4u);
    EXPECT_EQ(configs[3].config.layout, LayoutKind::Original);
}

TEST(Campaign, ZipExpansionIsElementWise)
{
    const auto configs = expandConfigs(twoAxisSpec(SweepMode::Zip));
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].label, "D2+OM");
    EXPECT_EQ(configs[1].label, "D4+O5");
}

TEST(Campaign, ZipRejectsUnequalAxes)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Zip);
    s.axes[1].points.pop_back();
    EXPECT_THROW(expandConfigs(s), std::invalid_argument);
}

TEST(Campaign, EmptySpecRejected)
{
    CampaignSpec s;
    s.name = "empty";
    s.workloads = {"w"};
    EXPECT_THROW(expandConfigs(s), std::invalid_argument);
}

TEST(Campaign, ExplicitConfigLabelsFallBackToDescribe)
{
    CampaignSpec s;
    s.name = "t";
    s.workloads = {"w"};
    s.explicitConfigs = {SimConfig::o5(), SimConfig::o5Om()};
    const auto configs = expandConfigs(s);
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].label, "O5");
    EXPECT_EQ(configs[1].label, "O5+OM");

    s.explicitLabels = {"first", "second"};
    const auto named = expandConfigs(s);
    EXPECT_EQ(named[0].label, "first");
    EXPECT_EQ(named[1].label, "second");
}

TEST(Campaign, JobsAreWorkloadMajorWithDerivedSeeds)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Zip);
    s.seed = 42;
    const auto jobs = expandJobs(s);
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].workload, "w1");
    EXPECT_EQ(jobs[1].workload, "w1");
    EXPECT_EQ(jobs[2].workload, "w2");
    EXPECT_EQ(jobs[0].label, "D2+OM");
    EXPECT_EQ(jobs[1].label, "D4+O5");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        EXPECT_EQ(jobs[i].seed, jobSeed(42, i));
    }
    EXPECT_EQ(jobs[0].key(), "w1|D2+OM");

    // Seeds are distinct and reproducible.
    std::set<std::uint64_t> seeds;
    for (const auto &j : jobs)
        seeds.insert(j.seed);
    EXPECT_EQ(seeds.size(), jobs.size());
    EXPECT_EQ(expandJobs(s)[3].seed, jobs[3].seed);
}

TEST(Campaign, FingerprintPinsJobIdentity)
{
    CampaignSpec s = twoAxisSpec(SweepMode::Cartesian);
    const std::string fp = fingerprint(s, expandJobs(s));
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp, fingerprint(s, expandJobs(s)));

    CampaignSpec seeded = s;
    seeded.seed = 1;
    EXPECT_NE(fp, fingerprint(seeded, expandJobs(seeded)));

    CampaignSpec fewer = s;
    fewer.workloads.pop_back();
    EXPECT_NE(fp, fingerprint(fewer, expandJobs(fewer)));
}

TEST(Campaign, PaperRegistryExpands)
{
    for (const std::string &name : campaignNames()) {
        const CampaignSpec spec = paperCampaign(name);
        EXPECT_FALSE(expandJobs(spec).empty()) << name;
    }
    EXPECT_THROW(paperCampaign("nonsense"), std::invalid_argument);
    EXPECT_EQ(campaignGroup("figures").size(), 9u);
    EXPECT_EQ(campaignGroup("fig4").size(), 1u);
}

TEST(Scheduler, RunsEveryJobExactlyOnce)
{
    constexpr std::size_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    const ScheduleStats stats =
        runJobs(n, 8, [&hits](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
    EXPECT_GE(stats.threads, 1u);
}

TEST(Scheduler, InlineWhenSingleThreaded)
{
    std::vector<std::size_t> order;
    const ScheduleStats stats =
        runJobs(5, 1, [&order](std::size_t i) {
            order.push_back(i);
        });
    EXPECT_EQ(stats.threads, 1u);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PropagatesFirstException)
{
    EXPECT_THROW(runJobs(50, 4,
                         [](std::size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("boom");
                         }),
                 std::runtime_error);
}

TEST(Scheduler, ZeroJobsIsANoOp)
{
    const ScheduleStats stats =
        runJobs(0, 4, [](std::size_t) { FAIL(); });
    EXPECT_EQ(stats.steals, 0u);
}

/**
 * Engine tests run a real 2x2 campaign on tiny SPEC proxies.  The
 * workloads are built once and shared; runSimulation only reads
 * them.
 */
class EngineTest : public ::testing::Test
{
  protected:
    static CampaignSpec
    spec()
    {
        CampaignSpec s;
        s.name = "unit";
        s.title = "engine unit campaign";
        s.workloads = {"tiny-a", "tiny-b"};
        s.explicitConfigs = {
            SimConfig::o5Om(),
            SimConfig::withCgp(LayoutKind::PettisHansen, 4)};
        return s;
    }

    static InMemoryProvider &
    provider()
    {
        static InMemoryProvider p = [] {
            auto make = [](const char *name, unsigned funcs) {
                spec::SpecProgramSpec s;
                s.name = name;
                s.functions = funcs;
                s.hotFunctions = funcs / 2;
                s.workPerCall = 50.0;
                s.trainInstrs = 60'000;
                s.testInstrs = 15'000;
                return WorkloadFactory::buildSpec(s);
            };
            return InMemoryProvider(
                {make("tiny-a", 40), make("tiny-b", 60)});
        }();
        return p;
    }

    static std::string
    freshDir(const std::string &tag)
    {
        const fs::path dir =
            fs::temp_directory_path() / ("cgp-exp-test-" + tag);
        fs::remove_all(dir);
        return dir.string();
    }

    static std::string
    slurp(const fs::path &p)
    {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }
};

TEST_F(EngineTest, RunsAllJobsAndIndexesResults)
{
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    ASSERT_EQ(run.jobs.size(), 4u);
    ASSERT_EQ(run.results.size(), 4u);
    EXPECT_EQ(run.executed, 4u);
    EXPECT_EQ(run.skipped, 0u);
    EXPECT_EQ(run.workloadNames(),
              (std::vector<std::string>{"tiny-a", "tiny-b"}));
    EXPECT_EQ(run.configLabels(),
              (std::vector<std::string>{"O5+OM", "O5+OM+CGP_4"}));
    for (const JobSpec &j : run.jobs) {
        const SimResult &r = run.results[j.index];
        EXPECT_EQ(r.workload, j.workload);
        EXPECT_EQ(r.config, j.label);
        EXPECT_GT(r.cycles, 0u);
    }
    EXPECT_EQ(&run.at("tiny-a", "O5+OM"), run.find("tiny-a", "O5+OM"));
    EXPECT_EQ(run.find("tiny-a", "nope"), nullptr);
    EXPECT_THROW(run.at("tiny-a", "nope"), std::out_of_range);
}

TEST_F(EngineTest, RunDirIsByteIdenticalAcrossThreadCounts)
{
    std::vector<std::string> dirs;
    for (const unsigned threads : {1u, 2u, 8u}) {
        EngineOptions opt;
        opt.threads = threads;
        opt.verbose = false;
        opt.runDir =
            freshDir("det-" + std::to_string(threads));
        runCampaign(spec(), provider(), opt);
        dirs.push_back(opt.runDir);
    }

    const std::string manifest =
        slurp(fs::path(dirs[0]) / "manifest.json");
    EXPECT_FALSE(manifest.empty());
    // No execution-environment data may leak into the run dir.
    EXPECT_EQ(manifest.find("threads"), std::string::npos);
    EXPECT_EQ(manifest.find("wall"), std::string::npos);

    for (std::size_t d = 1; d < dirs.size(); ++d) {
        EXPECT_EQ(manifest,
                  slurp(fs::path(dirs[d]) / "manifest.json"));
        for (std::size_t i = 0; i < 4; ++i) {
            const std::string file = RunDir::jobFileName(i);
            EXPECT_EQ(slurp(fs::path(dirs[0]) / file),
                      slurp(fs::path(dirs[d]) / file))
                << file << " differs at threads variant " << d;
        }
    }
    for (const auto &d : dirs)
        fs::remove_all(d);
}

TEST_F(EngineTest, KilledRunResumesWithoutRerunningCompletedJobs)
{
    // Reference: a clean run, no run directory.
    EngineOptions ref_opt;
    ref_opt.threads = 1;
    ref_opt.verbose = false;
    const CampaignRun ref = runCampaign(spec(), provider(), ref_opt);

    const std::string dir = freshDir("resume");

    // Phase 1: single-threaded so completion order is the job order,
    // killed by an injected crash right after the second job becomes
    // durable ("exp.record" sits past the job file + manifest write).
    fault::FaultInjector inj;
    inj.arm("exp.record", {fault::FaultKind::Crash, 1, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    ASSERT_EQ(inj.fired().size(), 1u);
    EXPECT_EQ(inj.fired()[0].point, "exp.record");

    // Phase 2: resume (multi-threaded) — the two durable jobs are
    // loaded, only the two lost ones are simulated.
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 2u);
    EXPECT_EQ(resumed.executed, 2u);

    ASSERT_EQ(resumed.results.size(), ref.results.size());
    for (std::size_t i = 0; i < ref.results.size(); ++i)
        EXPECT_EQ(resumed.results[i], ref.results[i]) << "job " << i;

    // A second resume has nothing left to do.
    const CampaignRun again = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(again.skipped, 4u);
    EXPECT_EQ(again.executed, 0u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, CrashBeforeRecordLosesOnlyThatJob)
{
    const std::string dir = freshDir("prerecord");
    fault::FaultInjector inj;
    inj.arm("exp.pre_record", {fault::FaultKind::Crash, 0, 1});
    {
        fault::ScopedGlobalInjector scoped(inj);
        EngineOptions opt;
        opt.threads = 1;
        opt.verbose = false;
        opt.runDir = dir;
        EXPECT_THROW(runCampaign(spec(), provider(), opt),
                     fault::CrashInjected);
    }
    // The crash fired before anything was written: full re-run.
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun resumed = runCampaign(spec(), provider(), opt);
    EXPECT_EQ(resumed.skipped, 0u);
    EXPECT_EQ(resumed.executed, 4u);
    fs::remove_all(dir);
}

TEST_F(EngineTest, RunDirRejectsDifferentCampaign)
{
    const std::string dir = freshDir("mismatch");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    opt.runDir = dir;
    runCampaign(spec(), provider(), opt);

    CampaignSpec other = spec();
    other.seed = 99; // different fingerprint
    EXPECT_THROW(runCampaign(other, provider(), opt),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST_F(EngineTest, LoadRunDirReportsCompletion)
{
    const std::string dir = freshDir("load");
    EngineOptions opt;
    opt.threads = 2;
    opt.verbose = false;
    opt.runDir = dir;
    const CampaignRun run = runCampaign(spec(), provider(), opt);

    const LoadedRun loaded = loadRunDir(dir);
    EXPECT_EQ(loaded.campaign, "unit");
    EXPECT_EQ(loaded.fingerprint, run.fingerprint);
    ASSERT_EQ(loaded.jobs.size(), 4u);
    ASSERT_EQ(loaded.results.size(), 4u);
    for (const auto &[index, result] : loaded.results)
        EXPECT_EQ(result, run.results[index]);

    EXPECT_THROW(loadRunDir(dir + "-nonexistent"),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST_F(EngineTest, UnknownWorkloadNameThrows)
{
    CampaignSpec s = spec();
    s.workloads.push_back("missing");
    EngineOptions opt;
    opt.threads = 1;
    opt.verbose = false;
    EXPECT_THROW(runCampaign(s, provider(), opt),
                 std::invalid_argument);
}

} // namespace
} // namespace cgp::exp
